#!/usr/bin/env bash
# Runs the perf-regression microbenchmarks (bench_perf_micro) and normalizes
# google-benchmark's JSON into BENCH_perf.json at the repo root: a flat
# {benchmark name -> {ns_per_op, items_per_s}} map that successive PRs can
# diff to catch performance regressions.
#
# When the unveil CLI is present in the build tree, one simulate + analyze
# run with --metrics-out also merges per-stage pipeline wall times and work
# counters (the telemetry layer's dump) into BENCH_perf.json under
# "pipeline", so stage-level regressions show up next to the micro numbers.
#
# Usage: tools/run_perf_bench.sh [extra bench args...]
#   BUILD_DIR      build tree holding bench/bench_perf_micro (default: build)
#   BENCH_MIN_TIME --benchmark_min_time seconds (default: 0.05; use a smaller
#                  value for smoke runs, larger for stable numbers)
#   BENCH_FILTER   --benchmark_filter regex (default: all benchmarks)
#   OUT            output file (default: BENCH_perf.json at the repo root)

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$root/build}"
min_time="${BENCH_MIN_TIME:-0.05}"
filter="${BENCH_FILTER:-}"
out="${OUT:-$root/BENCH_perf.json}"
bench="$build_dir/bench/bench_perf_micro"

if [ ! -x "$bench" ]; then
  echo "error: $bench not found; build it first:" >&2
  echo "  cmake -B $build_dir -S $root && cmake --build $build_dir --target bench_perf_micro" >&2
  exit 1
fi

# The build type comes from the build tree's CMake cache, not from
# google-benchmark's library_build_type (which reports how the *benchmark
# library* was compiled and can say "debug" for a release tree, or vice
# versa). Numbers from anything but a Release build are misleading enough
# that we refuse to record them unless explicitly overridden.
build_type=""
if [ -f "$build_dir/CMakeCache.txt" ]; then
  build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")"
fi
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    if [ "${ALLOW_DEBUG_BENCH:-0}" = "1" ]; then
      echo "WARNING: benchmarking a '${build_type:-unknown}' build" >&2
      echo "WARNING: these numbers are NOT comparable to a Release baseline" >&2
    else
      echo "error: $build_dir is a '${build_type:-unknown}' build, not Release;" >&2
      echo "  benchmark numbers from unoptimized builds are meaningless." >&2
      echo "  Reconfigure with -DCMAKE_BUILD_TYPE=Release, or set" >&2
      echo "  ALLOW_DEBUG_BENCH=1 to record them anyway." >&2
      exit 1
    fi
    ;;
esac

raw="$(mktemp)"
workdir="$(mktemp -d)"
trap 'rm -f "$raw"; rm -rf "$workdir"' EXIT

args=(--benchmark_out="$raw" --benchmark_out_format=json
      --benchmark_min_time="$min_time")
[ -n "$filter" ] && args+=(--benchmark_filter="$filter")

"$bench" "${args[@]}" "$@"

if [ ! -s "$raw" ]; then
  echo "error: benchmark produced no output (filter '${filter}' matched nothing?)" >&2
  exit 1
fi

# Per-stage pipeline metrics from one instrumented CLI run, plus a second
# analyze in sampled-clustering mode so the sampling counters
# (cluster.sample_size / cluster.classified / cluster.bruteforce_fallbacks)
# are recorded alongside the exact-mode stage timings.
cli="$build_dir/src/unveil/cli/unveil"
metrics=""
metrics_sampled=""
metrics_campaign=""
campaign_traces=0
if [ -x "$cli" ]; then
  "$cli" simulate --app wavesim --ranks 8 --iterations 60 --seed 7 \
    --out "$workdir/perf.trace" --binary --quiet > /dev/null
  "$cli" analyze --trace "$workdir/perf.trace" \
    --metrics-out "$workdir/metrics.json" --quiet > /dev/null
  metrics="$workdir/metrics.json"
  "$cli" analyze --trace "$workdir/perf.trace" --cluster-sample \
    --metrics-out "$workdir/metrics_sampled.json" --quiet > /dev/null
  metrics_sampled="$workdir/metrics_sampled.json"
  # One instrumented 3-trace scaling campaign (wavesim at scale 1/4/16,
  # annotated as 4/16/64 ranks) so the cross-trace layer's counters land in
  # BENCH_perf.json next to the micro numbers. The trace count is recorded
  # alongside: campaign wall times only compare across runs with the same N.
  for i in 1 4 16; do
    "$cli" simulate --app wavesim --ranks 4 --iterations 40 --seed 7 \
      --scale "$i" --out "$workdir/campaign_$i.trace" --binary --quiet > /dev/null
    campaign_traces=$((campaign_traces + 1))
  done
  "$cli" campaign "$workdir/campaign_1.trace=4" "$workdir/campaign_4.trace=16" \
    "$workdir/campaign_16.trace=64" \
    --metrics-out "$workdir/metrics_campaign.json" --quiet > /dev/null
  metrics_campaign="$workdir/metrics_campaign.json"
else
  echo "note: $cli not found; skipping per-stage pipeline metrics" >&2
fi

UNVEIL_BENCH_BUILD_TYPE="$build_type" \
UNVEIL_BENCH_CAMPAIGN_TRACES="$campaign_traces" \
  python3 - "$raw" "$out" "$metrics" "$metrics_sampled" "$metrics_campaign" <<'EOF'
import json
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Google-benchmark time units, converted to nanoseconds per operation.
to_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

bench = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    scale = to_ns[b.get("time_unit", "ns")]
    entry = {"ns_per_op": b["real_time"] * scale}
    if "items_per_second" in b:
        entry["items_per_s"] = b["items_per_second"]
    # BM_Campaign exports the number of traces per campaign run; carry it so
    # later runs can tell whether a wall-time delta is a real regression or
    # just a different campaign size.
    if "traces" in b:
        entry["traces"] = b["traces"]
    bench[b["name"]] = entry

result = {
    "context": {
        "date": raw.get("context", {}).get("date", ""),
        "host_name": raw.get("context", {}).get("host_name", ""),
        "num_cpus": raw.get("context", {}).get("num_cpus", 0),
        "build_type": os.environ.get("UNVEIL_BENCH_BUILD_TYPE")
        or raw.get("context", {}).get("library_build_type", ""),
    },
    "benchmarks": dict(sorted(bench.items())),
}

# Merge the telemetry dump of one CLI analyze run: per-stage wall times
# (the pipeline.* spans) and the work counters that explain them.
metrics_path = sys.argv[3] if len(sys.argv) > 3 else ""
if metrics_path:
    with open(metrics_path) as f:
        metrics = json.load(f)
    stages = {
        name.removeprefix("pipeline."): entry
        for name, entry in metrics.get("spans", {}).items()
        if name.startswith("pipeline.")
    }
    result["pipeline"] = {
        "stages": stages,
        "counters": metrics.get("counters", {}),
        "gauges": metrics.get("gauges", {}),
    }
    # Sampler-derived resource distributions (PR 8): whole-run and per-stage
    # peak RSS / pool utilization. These are gated (loosely) by
    # check_perf_regression.py --mem-threshold, unlike the single-run stage
    # wall times above which stay context-only.
    resources = {}
    if "sampler" in metrics:
        resources["run"] = metrics["sampler"]
    if "stage_resources" in metrics:
        resources["stages"] = metrics["stage_resources"]
    if resources:
        result["pipeline"]["resources"] = resources

# A second analyze ran with --cluster-sample; record its cluster.* counters
# (sample_size, classified, bruteforce_fallbacks, ...) under
# pipeline.sampled so sampling behavior is diffable across PRs.
sampled_path = sys.argv[4] if len(sys.argv) > 4 else ""
if sampled_path:
    with open(sampled_path) as f:
        sampled = json.load(f)
    result.setdefault("pipeline", {})["sampled"] = {
        "counters": {
            name: value
            for name, value in sampled.get("counters", {}).items()
            if name.startswith("cluster.")
        }
    }

# The instrumented campaign run: its campaign.* counters plus the number of
# traces it covered (wall times across different N are not comparable, so
# the count travels with the numbers).
campaign_path = sys.argv[5] if len(sys.argv) > 5 else ""
if campaign_path:
    with open(campaign_path) as f:
        campaign = json.load(f)
    result["campaign"] = {
        "traces": int(os.environ.get("UNVEIL_BENCH_CAMPAIGN_TRACES", "0")),
        "counters": {
            name: value
            for name, value in campaign.get("counters", {}).items()
            if name.startswith("campaign.")
        },
        "spans": {
            name: entry
            for name, entry in campaign.get("spans", {}).items()
            if name.startswith("campaign.")
        },
    }

with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=False)
    f.write("\n")
stage_note = " + pipeline stages" if metrics_path else ""
if campaign_path:
    stage_note += " + campaign"
print(f"wrote {out_path} ({len(bench)} benchmarks{stage_note})")
EOF
