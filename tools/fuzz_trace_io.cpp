/// \file fuzz_trace_io.cpp
/// Deterministic corpus-based fuzz driver for the trace ingestion stack.
///
/// Every iteration takes a seed input from the corpus, applies a random (but
/// seeded, hence reproducible) stack of mutations — bit flips, truncations,
/// byte insertions, chunk duplications — and feeds the result through the
/// same readers production uses, in both strict and degrade modes, with
/// periodic I/O fault injection layered on top. The contract under test:
///
///   every input either parses into a valid Trace or raises a clean
///   unveil::Error — never a crash, hang, unbounded allocation, or
///   (under ASan/UBSan, as CI runs this) memory error or UB.
///
/// Inputs that still parse are round-tripped binary -> text -> binary and
/// the record counts compared, so the writers are exercised on every trace
/// shape the mutated corpus can produce.
///
/// usage: fuzz_trace_io <corpus_dir> [iterations=1000] [seed=1]
/// exit:  0 = budget completed, 1 = contract violation, 2 = bad usage

#include <algorithm>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/faulty_stream.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/io.hpp"

namespace {

using unveil::support::Rng;

std::vector<std::string> loadCorpus(const std::string& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file()) paths.push_back(entry.path());
  std::sort(paths.begin(), paths.end());  // deterministic order
  std::vector<std::string> corpus;
  for (const auto& p : paths) {
    std::ifstream f(p, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    corpus.push_back(ss.str());
    std::cout << "corpus: " << p.filename().string() << " (" << corpus.back().size()
              << " bytes)\n";
  }
  return corpus;
}

/// One random structural mutation; sizes stay bounded (<= 2x input) so the
/// parse cost per iteration stays trivially small.
std::string mutate(Rng& rng, std::string input) {
  if (input.empty()) return input;
  switch (rng.uniformInt(0, 4)) {
    case 0: {  // flip a bit
      const auto at = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(input.size()) - 1));
      input[at] = static_cast<char>(static_cast<unsigned char>(input[at]) ^
                                    (1u << rng.uniformInt(0, 7)));
      return input;
    }
    case 1: {  // overwrite a byte with an interesting value
      static constexpr unsigned char kMagicBytes[] = {0x00, 0x01, 0x7f, 0x80,
                                                      0xff, '\n', ' ', '9'};
      const auto at = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(input.size()) - 1));
      input[at] = static_cast<char>(kMagicBytes[rng.uniformInt(0, 7)]);
      return input;
    }
    case 2: {  // truncate
      const auto keep = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(input.size())));
      input.resize(keep);
      return input;
    }
    case 3: {  // insert a short run of random bytes
      const auto at = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(input.size())));
      std::string run(static_cast<std::size_t>(rng.uniformInt(1, 8)), '\0');
      for (auto& c : run) c = static_cast<char>(rng.uniformInt(0, 255));
      input.insert(at, run);
      return input;
    }
    default: {  // duplicate a chunk (shifts every later offset)
      const auto from = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(input.size()) - 1));
      const auto len = std::min<std::size_t>(
          static_cast<std::size_t>(rng.uniformInt(1, 64)), input.size() - from);
      input.insert(from, input.substr(from, len));
      return input;
    }
  }
}

struct Tally {
  std::uint64_t parsed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t degraded = 0;
};

/// Parses \p bytes the way readAutoFile would; returns true when a Trace
/// came back. Throwing anything but unveil::Error is the bug being hunted.
bool parseOnce(const std::string& bytes, bool strict, Tally& tally) {
  std::istringstream is(bytes);
  is.exceptions(std::ios::goodbit);
  unveil::trace::ReadOptions options;
  options.strict = strict;
  unveil::trace::ReadReport report;
  try {
    const unveil::trace::Trace t =
        !bytes.empty() && bytes[0] == 'U'
            ? unveil::trace::readBinary(is, options, &report)
            : unveil::trace::read(is);
    ++tally.parsed;
    if (!report.droppedShards.empty()) ++tally.degraded;
    // Round-trip: whatever parsed must serialize and re-parse losslessly.
    std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
    unveil::trace::writeBinary(t, bin);
    const unveil::trace::Trace back = unveil::trace::readBinary(bin);
    if (back.stats().totalRecords != t.stats().totalRecords)
      throw std::logic_error("binary round-trip changed record count");
    std::stringstream text;
    unveil::trace::write(t, text);
    const unveil::trace::Trace tback = unveil::trace::read(text);
    if (tback.stats().totalRecords != t.stats().totalRecords)
      throw std::logic_error("text round-trip changed record count");
    return true;
  } catch (const unveil::Error&) {
    ++tally.rejected;  // clean, typed rejection: the expected outcome
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: fuzz_trace_io <corpus_dir> [iterations=1000] [seed=1]\n";
    return 2;
  }
  const std::string corpusDir = argv[1];
  const std::uint64_t iterations = argc > 2 ? std::stoull(argv[2]) : 1000;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 1;

  unveil::support::setLogLevel(unveil::support::LogLevel::Off);
  const auto corpus = loadCorpus(corpusDir);
  if (corpus.empty()) {
    std::cerr << "fuzz_trace_io: no corpus files in " << corpusDir << '\n';
    return 2;
  }

  Rng rng(seed, "fuzz_trace_io");
  Tally tally;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    std::string input =
        corpus[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(corpus.size()) - 1))];
    const auto mutations = rng.uniformInt(1, 4);
    for (std::int64_t m = 0; m < mutations; ++m) input = mutate(rng, input);

    // Every 8th iteration additionally injects stream faults under the
    // parse, via the same hook the UNVEIL_FAULT_SPEC env var uses.
    const bool injectFaults = (i % 8) == 7;
    if (injectFaults) {
      unveil::support::FaultSpec spec;
      switch (rng.uniformInt(0, 2)) {
        case 0:
          spec.failReadAfter = static_cast<std::uint64_t>(
              rng.uniformInt(0, static_cast<std::int64_t>(input.size())));
          break;
        case 1:
          spec.flipByteAt = static_cast<std::uint64_t>(
              rng.uniformInt(0, static_cast<std::int64_t>(input.size())));
          spec.flipMask = static_cast<std::uint8_t>(rng.uniformInt(1, 255));
          break;
        default:
          spec.shortReadMax = static_cast<std::uint64_t>(rng.uniformInt(1, 7));
          break;
      }
      unveil::support::setFaultSpecForTesting(spec);
    }

    try {
      if (injectFaults) {
        // Route through the file-based readers so the fault hook engages.
        const std::string path =
            std::filesystem::temp_directory_path().string() + "/fuzz_trace_io.bin";
        {
          std::ofstream f(path, std::ios::binary);
          f.write(input.data(), static_cast<std::streamsize>(input.size()));
        }
        unveil::trace::ReadReport report;
        try {
          (void)unveil::trace::readAutoFile(path, {.strict = false}, &report);
          ++tally.parsed;
        } catch (const unveil::Error&) {
          ++tally.rejected;
        }
        unveil::support::setFaultSpecForTesting(std::nullopt);
      } else {
        parseOnce(input, /*strict=*/true, tally);
        parseOnce(input, /*strict=*/false, tally);
      }
    } catch (const std::exception& e) {
      unveil::support::setFaultSpecForTesting(std::nullopt);
      std::cerr << "fuzz_trace_io: CONTRACT VIOLATION at iteration " << i
                << " (seed " << seed << "): " << e.what() << '\n';
      return 1;
    }

    if ((i + 1) % 10000 == 0)
      std::cout << "  " << (i + 1) << "/" << iterations << " iterations\n";
  }

  std::cout << "fuzz_trace_io: completed " << iterations << " iterations ("
            << tally.parsed << " parsed, " << tally.rejected << " rejected, "
            << tally.degraded << " degraded) with zero contract violations\n";
  return 0;
}
