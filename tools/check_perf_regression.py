#!/usr/bin/env python3
"""Compare a fresh BENCH_perf.json against the committed baseline.

Fails (exit 1) when any benchmark's ns_per_op regressed by more than the
threshold. Benchmarks present in only one file are reported but never fail
the check (new benchmarks have no baseline; retired ones have no current
number). Pipeline stage timings are printed for context only — they come
from a single run and are too noisy to gate on.

Usage: tools/check_perf_regression.py BASELINE CURRENT [--threshold PCT]
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    return {
        name: entry["ns_per_op"]
        for name, entry in data.get("benchmarks", {}).items()
        if "ns_per_op" in entry
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("current", help="freshly generated BENCH_perf.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="maximum allowed slowdown in percent (default: 25)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    regressions = []
    rows = []
    for name in sorted(baseline.keys() | current.keys()):
        if name not in baseline:
            rows.append((name, None, current[name], "new (no baseline)"))
            continue
        if name not in current:
            rows.append((name, baseline[name], None, "missing in current run"))
            continue
        base, cur = baseline[name], current[name]
        delta = (cur / base - 1.0) * 100.0 if base > 0 else 0.0
        status = f"{delta:+.1f}%"
        if delta > args.threshold:
            status += f"  REGRESSION (> {args.threshold:g}%)"
            regressions.append((name, delta))
        rows.append((name, base, cur, status))

    width = max((len(r[0]) for r in rows), default=10)
    for name, base, cur, status in rows:
        base_s = f"{base / 1e3:12.1f}" if base is not None else f"{'-':>12}"
        cur_s = f"{cur / 1e3:12.1f}" if cur is not None else f"{'-':>12}"
        print(f"{name:<{width}}  {base_s} us  {cur_s} us  {status}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:g}% vs {args.baseline}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
