#!/usr/bin/env python3
"""Compare a fresh BENCH_perf.json against the committed baseline.

Fails (exit 1) when any benchmark's ns_per_op regressed by more than the
threshold. Benchmarks present in only one file are reported but never fail
the check (new benchmarks have no baseline; retired ones have no current
number); additions are summarized separately so a PR that introduces
benchmarks shows them as additions, not anomalies. A build-type mismatch
between the two files (or a non-Release build on either side) is warned
about loudly — such comparisons are apples to oranges. Pipeline stage
timings are printed for context only — they come from a single run and are
too noisy to gate on.

Usage: tools/check_perf_regression.py BASELINE CURRENT [--threshold PCT]
"""

import argparse
import json
import sys


def load_file(path):
    with open(path) as f:
        data = json.load(f)
    benchmarks = {
        name: entry["ns_per_op"]
        for name, entry in data.get("benchmarks", {}).items()
        if "ns_per_op" in entry
    }
    build_type = data.get("context", {}).get("build_type", "")
    return benchmarks, build_type


def check_build_types(base_type, cur_type):
    warnings = []
    if base_type.lower() != cur_type.lower():
        warnings.append(
            f"build type mismatch: baseline '{base_type or 'unknown'}' vs "
            f"current '{cur_type or 'unknown'}' — deltas are not meaningful"
        )
    for label, value in (("baseline", base_type), ("current", cur_type)):
        if value.lower() not in ("release", "relwithdebinfo"):
            warnings.append(
                f"{label} build type is '{value or 'unknown'}', not Release — "
                "regenerate with tools/run_perf_bench.sh on a Release build"
            )
    return warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("current", help="freshly generated BENCH_perf.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="maximum allowed slowdown in percent (default: 25)",
    )
    args = parser.parse_args()

    baseline, base_type = load_file(args.baseline)
    current, cur_type = load_file(args.current)

    regressions = []
    additions = []
    rows = []
    for name in sorted(baseline.keys() | current.keys()):
        if name not in baseline:
            additions.append(name)
            rows.append((name, None, current[name], "new (no baseline)"))
            continue
        if name not in current:
            rows.append((name, baseline[name], None, "missing in current run"))
            continue
        base, cur = baseline[name], current[name]
        delta = (cur / base - 1.0) * 100.0 if base > 0 else 0.0
        status = f"{delta:+.1f}%"
        if delta > args.threshold:
            status += f"  REGRESSION (> {args.threshold:g}%)"
            regressions.append((name, delta))
        rows.append((name, base, cur, status))

    width = max((len(r[0]) for r in rows), default=10)
    for name, base, cur, status in rows:
        base_s = f"{base / 1e3:12.1f}" if base is not None else f"{'-':>12}"
        cur_s = f"{cur / 1e3:12.1f}" if cur is not None else f"{'-':>12}"
        print(f"{name:<{width}}  {base_s} us  {cur_s} us  {status}")

    if additions:
        print(f"\n{len(additions)} new benchmark(s) with no baseline (not gated):")
        for name in additions:
            print(f"  {name}")

    for warning in check_build_types(base_type, cur_type):
        print(f"\nWARNING: {warning}", file=sys.stderr)

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:g}% vs {args.baseline}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
