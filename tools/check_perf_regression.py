#!/usr/bin/env python3
"""Compare a fresh BENCH_perf.json against the committed baseline.

Fails (exit 1) when any benchmark's ns_per_op regressed by more than the
threshold. Benchmarks present in only one file are reported but never fail
the check (new benchmarks have no baseline; retired ones have no current
number); additions are summarized separately so a PR that introduces
benchmarks shows them as additions, not anomalies. A build-type mismatch
between the two files (or a non-Release build on either side) is warned
about loudly — such comparisons are apples to oranges. Pipeline stage
timings are printed for context only — they come from a single run and are
too noisy to gate on.

Resource distributions under pipeline.resources (whole-run and per-stage
peak RSS plus pool utilization, recorded by the telemetry sampler) ARE
gated, with a separate, much looser --mem-threshold: allocator high-water
marks wobble run to run, but a doubling of a stage's peak RSS is a real
finding. Small baselines never flag (see the noise floors below).

The campaign block (counters and trace count of one instrumented `unveil
campaign` run) is printed as context only: on first appearance it is an
ungated addition, and a trace-count mismatch between baseline and current
is flagged because campaign wall times only compare at equal N.

Usage: tools/check_perf_regression.py BASELINE CURRENT [--threshold PCT]
                                      [--mem-threshold PCT]
"""

import argparse
import json
import sys

# Noise floors for resource gating: baselines below these never flag.
MEM_FLOOR_BYTES = 16 * 1024 * 1024  # peak-RSS deltas under 16 MiB are jitter
UTIL_FLOOR_PCT = 10.0  # utilization of a near-idle pool is meaningless


def load_file(path):
    with open(path) as f:
        data = json.load(f)
    benchmarks = {
        name: entry["ns_per_op"]
        for name, entry in data.get("benchmarks", {}).items()
        if "ns_per_op" in entry
    }
    build_type = data.get("context", {}).get("build_type", "")
    return benchmarks, build_type, load_resources(data), data.get("campaign", {})


def load_resources(data):
    """Flattens pipeline.resources into {metric name: value} for gating.

    Emits `<scope>.rss_peak_bytes` (gated on increase) and
    `<scope>.utilization_pct` (gated on decrease) where scope is `run` or
    `stage.<name>`.
    """
    resources = data.get("pipeline", {}).get("resources", {})
    flat = {}
    scopes = {}
    if "run" in resources:
        scopes["run"] = resources["run"]
    for stage, entry in resources.get("stages", {}).items():
        scopes[f"stage.{stage}"] = entry
    for scope, entry in scopes.items():
        if "rss_peak_bytes" in entry:
            flat[f"{scope}.rss_peak_bytes"] = float(entry["rss_peak_bytes"])
        if "utilization_pct" in entry:
            flat[f"{scope}.utilization_pct"] = float(entry["utilization_pct"])
    return flat


def check_build_types(base_type, cur_type):
    warnings = []
    if base_type.lower() != cur_type.lower():
        warnings.append(
            f"build type mismatch: baseline '{base_type or 'unknown'}' vs "
            f"current '{cur_type or 'unknown'}' — deltas are not meaningful"
        )
    for label, value in (("baseline", base_type), ("current", cur_type)):
        if value.lower() not in ("release", "relwithdebinfo"):
            warnings.append(
                f"{label} build type is '{value or 'unknown'}', not Release — "
                "regenerate with tools/run_perf_bench.sh on a Release build"
            )
    return warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("current", help="freshly generated BENCH_perf.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="maximum allowed slowdown in percent (default: 25)",
    )
    parser.add_argument(
        "--mem-threshold",
        type=float,
        default=75.0,
        help="maximum allowed resource worsening in percent: peak-RSS "
        "growth or pool-utilization drop (default: 75)",
    )
    args = parser.parse_args()

    baseline, base_type, base_resources, base_campaign = load_file(args.baseline)
    current, cur_type, cur_resources, cur_campaign = load_file(args.current)

    regressions = []
    additions = []
    rows = []
    for name in sorted(baseline.keys() | current.keys()):
        if name not in baseline:
            additions.append(name)
            rows.append((name, None, current[name], "new (no baseline)"))
            continue
        if name not in current:
            rows.append((name, baseline[name], None, "missing in current run"))
            continue
        base, cur = baseline[name], current[name]
        delta = (cur / base - 1.0) * 100.0 if base > 0 else 0.0
        status = f"{delta:+.1f}%"
        if delta > args.threshold:
            status += f"  REGRESSION (> {args.threshold:g}%)"
            regressions.append((name, delta))
        rows.append((name, base, cur, status))

    width = max((len(r[0]) for r in rows), default=10)
    for name, base, cur, status in rows:
        base_s = f"{base / 1e3:12.1f}" if base is not None else f"{'-':>12}"
        cur_s = f"{cur / 1e3:12.1f}" if cur is not None else f"{'-':>12}"
        print(f"{name:<{width}}  {base_s} us  {cur_s} us  {status}")

    if additions:
        print(f"\n{len(additions)} new benchmark(s) with no baseline (not gated):")
        for name in additions:
            print(f"  {name}")

    # Resource gating: peak RSS must not grow, utilization must not drop, by
    # more than --mem-threshold. Metrics present on only one side (new stage,
    # first run with a sampler) are informational.
    if base_resources or cur_resources:
        print(f"\nresources (gated at {args.mem_threshold:g}%):")
        rwidth = max(
            (len(n) for n in base_resources.keys() | cur_resources.keys()),
            default=10,
        )
        for name in sorted(base_resources.keys() | cur_resources.keys()):
            base = base_resources.get(name)
            cur = cur_resources.get(name)
            if base is None or cur is None:
                status = "new (no baseline)" if base is None else "missing in current"
            else:
                delta = (cur / base - 1.0) * 100.0 if base > 0 else 0.0
                status = f"{delta:+.1f}%"
                is_rss = name.endswith(".rss_peak_bytes")
                above_floor = (
                    base >= MEM_FLOOR_BYTES if is_rss else base >= UTIL_FLOOR_PCT
                )
                worsened = (
                    delta > args.mem_threshold
                    if is_rss
                    else delta < -args.mem_threshold
                )
                if above_floor and worsened:
                    status += f"  REGRESSION (> {args.mem_threshold:g}%)"
                    regressions.append((name, delta))
            base_s = f"{base:14.1f}" if base is not None else f"{'-':>14}"
            cur_s = f"{cur:14.1f}" if cur is not None else f"{'-':>14}"
            print(f"{name:<{rwidth}}  {base_s}  {cur_s}  {status}")

    # Campaign context (never gated): the number of traces the instrumented
    # campaign run covered. Campaign wall times are only comparable between
    # runs with the same trace count, so a mismatch is called out — on first
    # appearance the campaign block (like any new benchmark) is an ungated
    # addition.
    if base_campaign or cur_campaign:
        base_n = base_campaign.get("traces")
        cur_n = cur_campaign.get("traces")
        print(
            f"\ncampaign context: baseline {base_n if base_n is not None else '-'}"
            f" trace(s), current {cur_n if cur_n is not None else '-'} trace(s)"
        )
        if base_n is None:
            print("  campaign block is new in this run (not gated)")
        elif cur_n is not None and base_n != cur_n:
            print(
                "  WARNING: trace counts differ — campaign timing deltas are "
                "not meaningful",
                file=sys.stderr,
            )

    for warning in check_build_types(base_type, cur_type):
        print(f"\nWARNING: {warning}", file=sys.stderr)

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed past their "
            f"threshold vs {args.baseline}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(
        f"\nOK: no benchmark regressed more than {args.threshold:g}% "
        f"(resources: {args.mem_threshold:g}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
