#!/usr/bin/env sh
# Renders every figure data file the benches emitted (bench_out/*.dat) to
# PNG using gnuplot. The .dat format is gnuplot-native: one block per
# series, separated by blank lines, with "# series: <label>" headers.
#
# Usage: tools/plot_figures.sh [bench_out_dir] [output_dir]

set -eu

in_dir="${1:-bench_out}"
out_dir="${2:-bench_out/png}"

if ! command -v gnuplot >/dev/null 2>&1; then
  echo "gnuplot not found; install it or plot the .dat files manually" >&2
  exit 1
fi
mkdir -p "$out_dir"

for dat in "$in_dir"/*.dat; do
  [ -e "$dat" ] || continue
  base="$(basename "$dat" .dat)"
  xlabel="$(sed -n 's/^# xlabel: //p' "$dat" | head -1)"
  ylabel="$(sed -n 's/^# ylabel: //p' "$dat" | head -1)"
  title="$(sed -n 's/^# figure: //p' "$dat" | head -1)"
  nblocks="$(grep -c '^# series: ' "$dat")"
  plotcmd=""
  i=0
  while [ "$i" -lt "$nblocks" ]; do
    label="$(sed -n 's/^# series: //p' "$dat" | sed -n "$((i + 1))p")"
    style="with lines"
    case "$label" in
      *samples*|*cluster*" "[0-9]*) style="with points pointtype 7 pointsize 0.3" ;;
    esac
    sep=""
    [ -n "$plotcmd" ] && sep=", "
    plotcmd="$plotcmd$sep'$dat' index $i using 1:2 $style title '$label'"
    i=$((i + 1))
  done
  gnuplot <<EOF
set terminal pngcairo size 1000,600
set output '$out_dir/$base.png'
set title '$title'
set xlabel '$xlabel'
set ylabel '$ylabel'
set key outside right
plot $plotcmd
EOF
  echo "rendered $out_dir/$base.png"
done
