/// \file bench_f6_evolution.cpp
/// F6 — the internal-evolution gallery.
///
/// For every folded cluster of every application: the reconstructed
/// instantaneous MIPS and L2-miss-per-microsecond curves. These are the
/// plots the paper's title promises — what happens *inside* each
/// computation phase: the stencil sweep's cache-overflow decay, the SpMV
/// sawtooth, the force evaluation's memory-bound tail.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/41);
    const auto mc = sim::MeasurementConfig::folding();
    const auto run = analysis::runMeasured(appName, params, mc);
    const auto result =
        analysis::analyze(run.trace, analysis::calibratedPipelineConfig(mc));

    const auto mips =
        analysis::rateSeries(result, counters::CounterId::TotIns, "F6." + appName + ".mips");
    bench::emitFigure(mips, "f6_mips_" + appName + ".dat");
    const auto l2 =
        analysis::rateSeries(result, counters::CounterId::L2Dcm, "F6." + appName + ".l2");
    bench::emitFigure(l2, "f6_l2_" + appName + ".dat");

    for (const auto& c : result.clusters) {
      if (!c.folded) continue;
      std::cout << "  cluster " << c.clusterId << " = phase '"
                << (c.modalTruthPhase != cluster::kNoPhase
                        ? run.app->phase(c.modalTruthPhase).model.name()
                        : std::string("?"))
                << "', " << c.instances << " instances, time share "
                << c.totalTimeFraction * 100.0 << "%\n";
    }
    std::cout << '\n';
  }
  return 0;
}
