/// \file bench_f2_timeline.cpp
/// F2 — per-rank cluster timelines.
///
/// The detected structure over time: each rank's burst sequence colored by
/// cluster id (here: emitted as series of (start time, cluster id)). The
/// repeating pattern is the application's iterative skeleton; the detected
/// period is printed alongside.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/17);
    const auto run =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::folding());
    const auto result = analysis::analyze(run.trace);
    const auto set = analysis::timelineSeries(result, "F2." + appName);
    bench::emitFigure(set, "f2_timeline_" + appName + ".dat");
    std::cout << "  detected period: " << result.period.period
              << " bursts/iteration, self-similarity "
              << result.period.matchFraction * 100.0 << "%\n";
    std::cout << "  iteration signature:";
    for (int label : result.period.signature) std::cout << " " << label;
    std::cout << "\n\n";
  }
  return 0;
}
