/// \file bench_a5_nonstationary.cpp
/// A5 — robustness to non-stationary behaviour (extension study).
///
/// amrflow's advection phase changes performance regime at the mid-run mesh
/// refinement: same source loop, ~1.8x the work, different internal
/// evolution. The methodology's correct answer is *two* clusters for that
/// loop — clusters are performance phases, not code regions — each folding
/// to its own accurate internal profile, with the timeline showing the
/// switch at the refinement iteration. This bench verifies all three
/// properties.

#include <algorithm>

#include "bench_common.hpp"
#include "unveil/folding/accuracy.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  auto params = analysis::standardParams(/*seed=*/73);
  params.iterations = 160;
  const auto mc = sim::MeasurementConfig::folding();
  const auto run = analysis::runMeasured("amrflow", params, mc);
  const auto result =
      analysis::analyze(run.trace, analysis::calibratedPipelineConfig(mc));

  support::Table t({"cluster", "phase", "instances", "first seen (ms)",
                    "last seen (ms)", "vs exact truth (%)"});
  for (const auto& c : result.clusters) {
    if (c.modalTruthPhase == cluster::kNoPhase) continue;
    trace::TimeNs first = ~trace::TimeNs{0}, last = 0;
    for (std::size_t i : c.memberIdx) {
      first = std::min(first, result.bursts[i].begin);
      last = std::max(last, result.bursts[i].begin);
    }
    double err = -1.0;
    const auto it = c.rates.find(counters::CounterId::TotIns);
    if (it != c.rates.end()) {
      const auto& shape = run.app->phase(c.modalTruthPhase)
                              .model.profile(counters::CounterId::TotIns)
                              .shape;
      err = folding::meanAbsDiffPercent(
          it->second.normRate, folding::truthNormalizedRate(shape, it->second.t));
    }
    t.addRow({static_cast<long long>(c.clusterId),
              run.app->phase(c.modalTruthPhase).model.name(),
              static_cast<long long>(c.instances),
              static_cast<double>(first) / 1e6, static_cast<double>(last) / 1e6,
              err});
  }
  t.print(std::cout, "A5: non-stationary amrflow (refinement at iteration 80)");
  std::cout << "\nclusters found: " << result.clustering.numClusters
            << " (expected 3: coarse advection, fine advection, projection)\n";
  std::cout << "note the advect clusters' disjoint lifetimes around the\n"
               "refinement event — clustering reports performance phases,\n"
               "and folding reconstructs each regime separately.\n";
  t.saveCsv(bench::outPath("a5_nonstationary.csv"));
  return 0;
}
