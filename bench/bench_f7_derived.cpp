/// \file bench_f7_derived.cpp
/// F7 — derived intra-phase metrics (extension).
///
/// Instantaneous IPC and L2 misses per kilo-instruction *inside* each
/// detected phase, computed as ratios of independently folded counter
/// curves. This is the analyst-facing form of the paper's figures: IPC
/// dipping exactly where MPKI spikes localizes the memory-bound region of a
/// phase without any fine-grain measurement.

#include "bench_common.hpp"
#include "unveil/folding/derived.hpp"
#include "unveil/folding/rate.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/59);
    const auto mc = sim::MeasurementConfig::folding();
    const auto run = analysis::runMeasured(appName, params, mc);
    auto cfg = analysis::calibratedPipelineConfig(mc);
    cfg.rateCounters = {counters::CounterId::TotIns, counters::CounterId::TotCyc,
                        counters::CounterId::L2Dcm};
    const auto result = analysis::analyze(run.trace, cfg);

    support::SeriesSet ipcFig("F7." + appName + ".ipc",
                              "normalized intra-phase time", "instantaneous IPC");
    support::SeriesSet mpkiFig("F7." + appName + ".mpki",
                               "normalized intra-phase time",
                               "L2 misses per kilo-instruction");
    for (const auto& c : result.clusters) {
      const auto ins = c.rates.find(counters::CounterId::TotIns);
      const auto cyc = c.rates.find(counters::CounterId::TotCyc);
      const auto l2 = c.rates.find(counters::CounterId::L2Dcm);
      if (ins == c.rates.end() || cyc == c.rates.end()) continue;
      const auto ipc = folding::instantaneousIpc(ins->second, cyc->second);
      ipcFig.add("cluster " + std::to_string(c.clusterId), ipc.t, ipc.value);
      if (l2 != c.rates.end()) {
        const auto mpki = folding::instantaneousPerKiloIns(l2->second, ins->second);
        mpkiFig.add("cluster " + std::to_string(c.clusterId), mpki.t, mpki.value);
      }
    }
    bench::emitFigure(ipcFig, "f7_ipc_" + appName + ".dat");
    bench::emitFigure(mpkiFig, "f7_mpki_" + appName + ".dat");
    std::cout << '\n';
  }
  return 0;
}
