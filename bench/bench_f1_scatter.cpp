/// \file bench_f1_scatter.cpp
/// F1 — computation-burst scatter plots.
///
/// The canonical clustering figure: every burst as a point in
/// (log duration × IPC) space, one series per DBSCAN cluster plus noise, for
/// each application. Dense blobs are the application's computation phases.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/17);
    const auto run =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::folding());
    const auto result = analysis::analyze(run.trace);
    const auto set =
        analysis::scatterSeries(result, cluster::FeatureId::LogDurationNs,
                                cluster::FeatureId::Ipc, "F1." + appName);
    bench::emitFigure(set, "f1_scatter_" + appName + ".dat");
    std::cout << '\n';
  }
  return 0;
}
