/// \file bench_a1_fit_ablation.cpp
/// A1 — fit-method and pruning ablation.
///
/// The design choices DESIGN.md calls out for the folding fit, quantified on
/// the dominant cluster of each application: PCHIP (monotone, the paper's
/// character) versus Gaussian-kernel regression versus naive binned-linear,
/// each with and without MAD outlier pruning. Also reports the worst
/// negative reconstructed rate — only the monotone fit guarantees none.

#include <algorithm>

#include "bench_common.hpp"
#include "unveil/folding/accuracy.hpp"
#include "unveil/folding/fit.hpp"
#include "unveil/folding/prune.hpp"
#include "unveil/support/math.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"app", "phase", "fit", "pruned", "vs exact truth (%)",
                    "min rate (negative = bad)"});
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/43);
    const auto mc = sim::MeasurementConfig::folding();
    const auto run = analysis::runMeasured(appName, params, mc);
    const auto cfg = analysis::calibratedPipelineConfig(mc);
    const auto result = analysis::analyze(run.trace, cfg);

    const analysis::ClusterReport* dominant = nullptr;
    for (const auto& c : result.clusters)
      if (c.folded && (!dominant || c.totalTimeFraction > dominant->totalTimeFraction))
        dominant = &c;
    if (dominant == nullptr) continue;

    const auto rawFolded =
        folding::foldCluster(run.trace, result.bursts, dominant->memberIdx,
                             counters::CounterId::TotIns, cfg.reconstruct.fold);
    const auto& shape = run.app->phase(dominant->modalTruthPhase)
                            .model.profile(counters::CounterId::TotIns)
                            .shape;
    const auto grid = support::linspace(0.0, 1.0, 201);
    const auto truth = folding::truthNormalizedRate(shape, grid);

    for (const auto method : {folding::FitMethod::Pchip, folding::FitMethod::Kernel,
                              folding::FitMethod::BinnedLinear}) {
      for (const bool prune : {false, true}) {
        auto folded = rawFolded;
        if (prune) folded = folding::pruneOutliers(folded).pruned;
        folding::FitParams fp;
        fp.method = method;
        const auto fit = folding::fitCumulative(folded, fp);
        std::vector<double> rate(grid.size());
        double minRate = 0.0;
        for (std::size_t i = 0; i < grid.size(); ++i) {
          rate[i] = fit->derivative(grid[i]);
          minRate = std::min(minRate, rate[i]);
        }
        folding::movingAverage(rate, 9);
        t.addRow({appName,
                  run.app->phase(dominant->modalTruthPhase).model.name(),
                  std::string(folding::fitMethodName(method)),
                  std::string(prune ? "yes" : "no"),
                  folding::meanAbsDiffPercent(rate, truth), minRate});
      }
    }
  }
  t.print(std::cout, "A1: fit-method x pruning ablation (dominant clusters)");
  t.saveCsv(bench::outPath("a1_fit_ablation.csv"));
  return 0;
}
