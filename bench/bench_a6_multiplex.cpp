/// \file bench_a6_multiplex.cpp
/// A6 — counter multiplexing study (extension).
///
/// Real PMUs read a handful of counters at once; PAPI multiplexes larger
/// event sets by rotating groups between interrupts. Folding inherits the
/// cost transparently: rotated-out counters simply contribute fewer folded
/// points. The sweep measures reconstruction error for a fixed counter
/// (TOT_INS, always read) and a rotated one (L2_DCM) as the group count
/// grows. Expected shape: TOT_INS flat; L2 error grows mildly with 1/g
/// point density — folding degrades gracefully, it does not break.

#include "bench_common.hpp"
#include "unveil/folding/accuracy.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"multiplex groups", "counter", "folded points",
                    "vs exact truth (%)"});
  for (std::size_t groups : {1u, 2u, 3u, 4u}) {
    auto mc = sim::MeasurementConfig::folding();
    mc.sampling.multiplexGroups = groups;
    const auto params = analysis::standardParams(/*seed=*/83);
    const auto run = analysis::runMeasured("wavesim", params, mc);
    auto cfg = analysis::calibratedPipelineConfig(mc);
    const auto result = analysis::analyze(run.trace, cfg);

    const analysis::ClusterReport* dominant = nullptr;
    for (const auto& c : result.clusters)
      if (c.folded && (!dominant || c.totalTimeFraction > dominant->totalTimeFraction))
        dominant = &c;
    if (dominant == nullptr) continue;

    for (counters::CounterId id :
         {counters::CounterId::TotIns, counters::CounterId::L2Dcm}) {
      const auto it = dominant->rates.find(id);
      if (it == dominant->rates.end()) continue;
      const auto& shape =
          run.app->phase(dominant->modalTruthPhase).model.profile(id).shape;
      const auto truth = folding::truthNormalizedRate(shape, it->second.t);
      t.addRow({static_cast<long long>(groups),
                std::string(counters::counterName(id)),
                static_cast<long long>(it->second.sourcePoints),
                folding::meanAbsDiffPercent(it->second.normRate, truth)});
    }
  }
  t.print(std::cout, "A6: folding under PMU counter multiplexing (wavesim sweep)");
  t.saveCsv(bench::outPath("a6_multiplex.csv"));
  return 0;
}
