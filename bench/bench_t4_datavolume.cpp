/// \file bench_t4_datavolume.cpp
/// T4 — trace data volume.
///
/// Folding's second selling point besides overhead: the coarse-sampled trace
/// it consumes is far smaller than a fine-grain-sampled trace carrying the
/// same analytical value. Rows report record counts and in-memory footprint
/// per configuration, plus the reduction factor.

#include "bench_common.hpp"
#include "unveil/trace/binary_io.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"app", "configuration", "events", "samples", "records",
                    "binary (MiB)", "reduction vs fine"});
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/5);
    const auto coarse =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::folding());
    const auto fine =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::fineGrain());
    const auto cs = coarse.trace.stats();
    const auto fs = fine.trace.stats();
    const auto coarseBytes = trace::binarySize(coarse.trace);
    const auto fineBytes = trace::binarySize(fine.trace);
    auto mib = [](std::size_t b) { return static_cast<double>(b) / (1024.0 * 1024.0); };
    t.addRow({appName, std::string("fine-grain sampling"),
              static_cast<long long>(fs.events), static_cast<long long>(fs.samples),
              static_cast<long long>(fs.totalRecords), mib(fineBytes), 1.0});
    t.addRow({appName, std::string("coarse sampling (folding)"),
              static_cast<long long>(cs.events), static_cast<long long>(cs.samples),
              static_cast<long long>(cs.totalRecords), mib(coarseBytes),
              static_cast<double>(fineBytes) / static_cast<double>(coarseBytes)});
  }
  t.print(std::cout, "T4: trace data volume (compact binary serialization)");
  t.saveCsv(bench::outPath("t4_datavolume.csv"));
  return 0;
}
