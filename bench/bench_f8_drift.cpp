/// \file bench_f8_drift.cpp
/// F8 — cross-run evolution of the detected phases (extension).
///
/// The inverse validation of the simulator/analysis pair: wavesim's stencil
/// sweep carries a built-in +8 % duration drift and particlemesh's force
/// evaluation +5 %, everything else is stationary. The evolution analysis
/// must recover exactly that from the measured trace. Also emits the
/// per-instance duration series (subsampled) for the drifting clusters.

#include <algorithm>

#include "bench_common.hpp"
#include "unveil/analysis/evolution.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"app", "cluster", "phase", "built-in drift (%)",
                    "detected drift (%)", "t score", "trend"});
  // Built-in drifts from the application definitions.
  const std::map<std::string, std::map<std::uint32_t, double>> builtIn = {
      {"wavesim", {{0, 0.0}, {1, 8.0}, {2, 0.0}}},
      {"nbsolver", {{0, 2.0}, {1, 0.0}, {2, 0.0}}},
      {"particlemesh", {{0, 0.0}, {1, 5.0}, {2, 0.0}}},
  };

  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/79);
    const auto run =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::folding());
    const auto result = analysis::analyze(run.trace);
    support::SeriesSet fig("F8." + appName, "run position",
                           "instance duration (us)");
    for (const auto& r : analysis::durationEvolution(result)) {
      if (r.modalTruthPhase == cluster::kNoPhase) continue;
      t.addRow({appName, static_cast<long long>(r.clusterId),
                run.app->phase(r.modalTruthPhase).model.name(),
                builtIn.at(appName).at(r.modalTruthPhase),
                r.relativeDrift * 100.0, r.tScore,
                std::string(analysis::trendKindName(r.kind))});
      if (r.kind == analysis::TrendKind::Drifting) {
        support::Series s;
        s.label = "cluster " + std::to_string(r.clusterId) + " durations";
        const auto& members = result.clusters[static_cast<std::size_t>(
                                                  r.clusterId)]
                                  .memberIdx;
        const std::size_t stride = std::max<std::size_t>(1, members.size() / 400);
        for (std::size_t i = 0; i < members.size(); i += stride) {
          const auto& b = result.bursts[members[i]];
          s.x.push_back(static_cast<double>(b.begin) /
                        static_cast<double>(run.trace.durationNs()));
          s.y.push_back(static_cast<double>(b.durationNs()) / 1e3);
        }
        fig.add(std::move(s));
      }
    }
    if (!fig.series().empty())
      bench::emitFigure(fig, "f8_drift_" + appName + ".dat");
  }
  t.print(std::cout, "F8: cross-run drift detection vs built-in ground truth");
  t.saveCsv(bench::outPath("f8_drift.csv"));
  return 0;
}
