/// \file bench_t3_clustering.cpp
/// T3 — structure detection quality.
///
/// DBSCAN's cluster assignment versus the ground-truth phase labels for all
/// three applications: adjusted Rand index, purity, silhouette, clusters
/// found versus true phases, and the detected iteration period versus the
/// true phases-per-iteration.

#include <map>

#include "bench_common.hpp"
#include "unveil/cluster/quality.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  // True bursts per iteration per app (from the application definitions).
  const std::map<std::string, std::size_t> truePeriod = {
      {"wavesim", 3}, {"nbsolver", 4}, {"particlemesh", 3}};
  const std::map<std::string, std::size_t> truePhases = {
      {"wavesim", 3}, {"nbsolver", 3}, {"particlemesh", 3}};

  support::Table t({"app", "true phases", "clusters found", "noise (%)", "ARI",
                    "purity", "silhouette", "period found", "true period"});
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/13);
    const auto run =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::folding());
    const auto result = analysis::analyze(run.trace);

    std::vector<std::uint32_t> truth;
    truth.reserve(result.bursts.size());
    for (const auto& b : result.bursts) truth.push_back(b.truthPhase);

    const auto features =
        cluster::buildFeatures(result.bursts, cluster::defaultFeatures());
    const auto normalized = cluster::ZScoreNormalizer::fit(features).apply(features);

    t.addRow({appName, static_cast<long long>(truePhases.at(appName)),
              static_cast<long long>(result.clustering.numClusters),
              100.0 * static_cast<double>(result.clustering.noiseCount()) /
                  static_cast<double>(result.bursts.size()),
              cluster::adjustedRandIndex(result.clustering.labels, truth),
              cluster::purity(result.clustering.labels, truth),
              cluster::silhouette(normalized, result.clustering.labels),
              static_cast<long long>(result.period.period),
              static_cast<long long>(truePeriod.at(appName))});
  }
  t.print(std::cout, "T3: clustering quality vs ground truth");
  t.saveCsv(bench::outPath("t3_clustering.csv"));
  return 0;
}
