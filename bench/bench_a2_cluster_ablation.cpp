/// \file bench_a2_cluster_ablation.cpp
/// A2 — clustering-algorithm ablation.
///
/// DBSCAN (the paper's choice) versus k-means at several k, and a DBSCAN
/// minPts/eps-quantile sweep, all scored by ARI against ground-truth phase
/// labels. Shows why density clustering fits computation bursts: no k to
/// guess, stragglers become noise instead of polluting a cluster, and
/// non-spherical duration spreads stay together.

#include "bench_common.hpp"
#include "unveil/cluster/kmeans.hpp"
#include "unveil/cluster/quality.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"app", "algorithm", "parameter", "clusters", "ARI", "purity"});
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/47);
    const auto run =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::folding());
    const cluster::BurstExtraction extraction;
    const auto bursts = extraction.fromPhaseEvents(run.trace);
    std::vector<std::uint32_t> truth;
    truth.reserve(bursts.size());
    for (const auto& b : bursts) truth.push_back(b.truthPhase);

    const auto features = cluster::buildFeatures(bursts, cluster::defaultFeatures());
    const auto normalized = cluster::ZScoreNormalizer::fit(features).apply(features);

    // DBSCAN sweep over eps quantiles.
    for (double q : {0.80, 0.90, 0.95}) {
      cluster::DbscanParams dp;
      dp.eps = cluster::estimateEps(normalized, dp.minPts, q);
      const auto clustering = cluster::dbscan(normalized, dp);
      t.addRow({appName, std::string("dbscan"), "eps q=" + std::to_string(q),
                static_cast<long long>(clustering.numClusters),
                cluster::adjustedRandIndex(clustering.labels, truth),
                cluster::purity(clustering.labels, truth)});
    }
    // minPts sweep at the default quantile.
    for (std::size_t minPts : {5u, 20u, 40u}) {
      cluster::DbscanParams dp;
      dp.minPts = minPts;
      dp.eps = cluster::estimateEps(normalized, minPts, 0.92);
      const auto clustering = cluster::dbscan(normalized, dp);
      t.addRow({appName, std::string("dbscan"),
                "minPts=" + std::to_string(minPts),
                static_cast<long long>(clustering.numClusters),
                cluster::adjustedRandIndex(clustering.labels, truth),
                cluster::purity(clustering.labels, truth)});
    }
    // k-means baseline.
    for (std::size_t k : {2u, 3u, 4u, 6u}) {
      cluster::KmeansParams kp;
      kp.k = k;
      const auto km = cluster::kmeans(normalized, kp);
      t.addRow({appName, std::string("k-means"), "k=" + std::to_string(k),
                static_cast<long long>(km.clustering.numClusters),
                cluster::adjustedRandIndex(km.clustering.labels, truth),
                cluster::purity(km.clustering.labels, truth)});
    }
  }
  t.print(std::cout, "A2: clustering ablation (scored by ARI vs ground truth)");
  t.saveCsv(bench::outPath("a2_cluster_ablation.csv"));
  return 0;
}
