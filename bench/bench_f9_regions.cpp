/// \file bench_f9_regions.cpp
/// F9 — code-region attribution inside detected phases (extension).
///
/// Folding the sampled callstacks' region ids locates each phase's internal
/// code structure on the normalized timeline: which source region owns which
/// part of the phase, and hence which code is responsible for an observed
/// regime (e.g. wavesim's MIPS collapse after t = 0.6 lands exactly in
/// "overflow_tail"). Rows compare the recovered boundaries and time shares
/// against the phase models' ground-truth region tables.

#include "bench_common.hpp"
#include "unveil/folding/regions.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"app", "phase", "region", "true span", "folded span",
                    "time share (%)", "confidence"});
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/89);
    const auto mc = sim::MeasurementConfig::folding();
    const auto run = analysis::runMeasured(appName, params, mc);
    const auto cfg = analysis::calibratedPipelineConfig(mc);
    const auto result = analysis::analyze(run.trace, cfg);

    for (const auto& c : result.clusters) {
      if (c.modalTruthPhase == cluster::kNoPhase || !c.folded) continue;
      const auto& model = run.app->phase(c.modalTruthPhase).model;
      if (model.numRegions() < 2) continue;  // single-region phases are trivial
      folding::RegionParams rp;
      rp.fold = cfg.reconstruct.fold;
      const auto profile =
          folding::regionProfile(run.trace, result.bursts, c.memberIdx, rp);
      for (const auto& seg : profile.segments) {
        const std::size_t idx = seg.regionId - 1;  // 1-based ids
        const auto& truth = model.regions()[idx];
        char trueSpan[48], foldedSpan[48];
        std::snprintf(trueSpan, sizeof(trueSpan), "[%.2f, %.2f]", truth.begin,
                      truth.end);
        std::snprintf(foldedSpan, sizeof(foldedSpan), "[%.2f, %.2f]", seg.begin,
                      seg.end);
        t.addRow({appName, model.name(), truth.name, std::string(trueSpan),
                  std::string(foldedSpan),
                  profile.timeShare.at(seg.regionId) * 100.0, seg.confidence});
      }
    }
  }
  t.print(std::cout, "F9: folded code-region structure vs ground truth");
  t.saveCsv(bench::outPath("f9_regions.csv"));
  return 0;
}
