/// \file bench_t1_accuracy.cpp
/// T1 — the paper's headline validation table.
///
/// For each of the three applications, run the folding setup (coarse
/// sampling) and the fine-grain reference setup, analyze the coarse trace,
/// and report per cluster the mean absolute difference of the reconstructed
/// instantaneous instruction rate against (a) the fine-grain-sampled
/// empirical reference — the comparison the paper reports, claiming < 5 % —
/// and (b) the exact analytic ground truth only a simulator can provide.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  using bench::apps;

  support::Table t({"app", "counter", "cluster", "phase", "instances",
                    "folded points", "vs fine-grain (%)", "vs exact truth (%)"});
  double worstVsFine = 0.0;
  double sumVsFine = 0.0;
  std::size_t rows = 0;

  for (const auto& appName : apps()) {
    const auto params = analysis::standardParams(/*seed=*/21);
    const auto coarse =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::folding());
    const auto fine =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::fineGrain());
    const auto result = analysis::analyze(
        coarse.trace,
        analysis::calibratedPipelineConfig(sim::MeasurementConfig::folding()));
    // The <5% claim is about folding itself, not one counter: check both the
    // instruction rate and the L2 miss rate.
    for (counters::CounterId counter :
         {counters::CounterId::TotIns, counters::CounterId::L2Dcm}) {
      for (const auto& a :
           analysis::foldingAccuracy(coarse, fine, result, counter)) {
        t.addRow({appName, std::string(counters::counterName(counter)),
                  static_cast<long long>(a.clusterId), a.phaseName,
                  static_cast<long long>(a.instances),
                  static_cast<long long>(a.foldedPoints), a.vsFinePercent,
                  a.vsTruthPercent});
        worstVsFine = std::max(worstVsFine, a.vsFinePercent);
        sumVsFine += a.vsFinePercent;
        ++rows;
      }
    }
  }

  t.print(std::cout, "T1: folding accuracy, instantaneous counter rates");
  std::cout << "\nmean abs difference vs fine-grain: mean "
            << (rows ? sumVsFine / static_cast<double>(rows) : 0.0) << "%, worst "
            << worstVsFine << "%\n";
  std::cout << "paper claim: absolute mean difference below 5% -> "
            << (worstVsFine < 5.0 ? "REPRODUCED (all clusters)"
                                  : (sumVsFine / static_cast<double>(rows) < 5.0
                                         ? "REPRODUCED on average"
                                         : "NOT reproduced"))
            << "\n";
  t.saveCsv(bench::outPath("t1_accuracy.csv"));
  return 0;
}
