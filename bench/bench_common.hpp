#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the experiment benches: output directory handling and
/// the canonical application list. Every bench binary regenerates one table
/// or figure from the paper's evaluation (see DESIGN.md §4) and prints its
/// rows to stdout; figure benches additionally save series data under
/// bench_out/.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/analysis/report.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/series.hpp"
#include "unveil/support/table.hpp"

namespace unveil::bench {

/// Applications every experiment sweeps, in canonical order.
inline const std::vector<std::string>& apps() {
  return sim::apps::applicationNames();
}

/// Ensures bench_out/ exists and returns the path for \p filename inside it.
inline std::string outPath(const std::string& filename) {
  std::filesystem::create_directories("bench_out");
  return (std::filesystem::path("bench_out") / filename).string();
}

/// Saves a series set under bench_out/ and prints its summary to stdout.
/// The save confirmation is progress narration, so it goes through the
/// logger and disappears under --quiet.
inline void emitFigure(const support::SeriesSet& set, const std::string& filename) {
  const std::string path = outPath(filename);
  set.save(path);
  set.printSummary(std::cout);
  support::logInfo("saved " + path);
}

}  // namespace unveil::bench
