/// \file bench_t2_overhead.cpp
/// T2 — measurement overhead table.
///
/// Runtime dilation per application under: no measurement, instrumentation
/// only, coarse sampling (folding's input), and fine-grain sampling. The
/// paper's claim: folding delivers fine-grain insight "without overhead of
/// fine grain" — i.e. the coarse-sampling column should sit near the
/// instrumentation-only column while fine-grain dilation is an order of
/// magnitude larger.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  struct Setup {
    const char* label;
    sim::MeasurementConfig config;
  };
  const Setup setups[] = {
      {"none", sim::MeasurementConfig::none()},
      {"instrumentation", sim::MeasurementConfig::instrumentationOnly()},
      {"coarse sampling (folding)", sim::MeasurementConfig::folding()},
      {"fine-grain sampling", sim::MeasurementConfig::fineGrain()},
  };

  support::Table t({"app", "configuration", "runtime (s)", "dilation (%)",
                    "samples", "events"});
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/5);
    double baseline = 0.0;
    for (const auto& s : setups) {
      const auto run = analysis::runMeasured(appName, params, s.config);
      const double seconds = static_cast<double>(run.totalRuntimeNs) / 1e9;
      if (baseline == 0.0) baseline = seconds;
      t.addRow({appName, std::string(s.label), seconds,
                (seconds / baseline - 1.0) * 100.0,
                static_cast<long long>(run.trace.samples().size()),
                static_cast<long long>(run.trace.events().size())});
    }
  }
  t.print(std::cout, "T2: measurement overhead (runtime dilation)");
  t.saveCsv(bench::outPath("t2_overhead.csv"));
  return 0;
}
