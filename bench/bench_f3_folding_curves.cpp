/// \file bench_f3_folding_curves.cpp
/// F3 — the headline folding figure.
///
/// For the dominant (longest-total-time) cluster of each application: the
/// folded point cloud (cumulative fractions), the fitted monotone cumulative
/// curve, and the derived instantaneous MIPS, together with the exact ground
/// truth the simulator knows. This is the figure that shows coarse samples
/// from many instances becoming one fine-grain intra-phase profile.

#include <algorithm>

#include "bench_common.hpp"
#include "unveil/folding/accuracy.hpp"
#include "unveil/folding/band.hpp"
#include "unveil/folding/fit.hpp"
#include "unveil/folding/prune.hpp"
#include "unveil/support/math.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/29);
    const auto mc = sim::MeasurementConfig::folding();
    const auto run = analysis::runMeasured(appName, params, mc);
    const auto cfg = analysis::calibratedPipelineConfig(mc);
    const auto result = analysis::analyze(run.trace, cfg);

    // Dominant folded cluster by time share.
    const analysis::ClusterReport* dominant = nullptr;
    for (const auto& c : result.clusters)
      if (c.folded && (!dominant || c.totalTimeFraction > dominant->totalTimeFraction))
        dominant = &c;
    if (dominant == nullptr) {
      std::cout << appName << ": no folded cluster\n";
      continue;
    }

    auto folded = folding::foldCluster(run.trace, result.bursts, dominant->memberIdx,
                                       counters::CounterId::TotIns,
                                       cfg.reconstruct.fold);
    folded = folding::pruneOutliers(folded).pruned;
    const auto fit = folding::fitCumulative(folded, cfg.reconstruct.fit);

    support::SeriesSet set("F3." + appName, "normalized intra-phase time",
                           "cumulative fraction / normalized rate");
    // Folded cloud (subsampled to keep files readable).
    {
      support::Series cloud;
      cloud.label = "folded samples (cumulative)";
      const std::size_t stride = std::max<std::size_t>(1, folded.points.size() / 800);
      for (std::size_t i = 0; i < folded.points.size(); i += stride) {
        cloud.x.push_back(folded.points[i].t);
        cloud.y.push_back(folded.points[i].y);
      }
      set.add(std::move(cloud));
    }
    const auto grid = support::linspace(0.0, 1.0, 201);
    {
      support::Series fitted;
      fitted.label = "fitted cumulative (pchip)";
      for (double t : grid) {
        fitted.x.push_back(t);
        fitted.y.push_back(fit->value(t));
      }
      set.add(std::move(fitted));
    }
    {
      support::Series rate;
      rate.label = "reconstructed normalized rate";
      for (double t : grid) {
        rate.x.push_back(t);
        rate.y.push_back(fit->derivative(t));
      }
      set.add(std::move(rate));
    }
    {
      const auto& shape = run.app->phase(dominant->modalTruthPhase)
                              .model.profile(counters::CounterId::TotIns)
                              .shape;
      support::Series truth;
      truth.label = "ground-truth normalized rate";
      for (double t : grid) {
        truth.x.push_back(t);
        truth.y.push_back(shape.normalizedRate(t));
      }
      set.add(std::move(truth));
    }
    const auto band = folding::foldBand(folded);
    set.add("rate band (lo)", band.t, band.rateLo);
    set.add("rate band (hi)", band.t, band.rateHi);
    bench::emitFigure(set, "f3_folding_" + appName + ".dat");
    std::cout << "  dispersion band mean half-width: " << band.meanHalfWidth
              << " (cumulative fraction units)\n";
    std::cout << "  dominant cluster " << dominant->clusterId << " ("
              << run.app->phase(dominant->modalTruthPhase).model.name() << "), "
              << folded.points.size() << " folded points from "
              << folded.instances << " instances\n\n";
  }
  return 0;
}
