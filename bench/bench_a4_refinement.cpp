/// \file bench_a4_refinement.cpp
/// A4 — structural-refinement ablation.
///
/// The headline weakness of DBSCAN on imbalanced bursts is eps sensitivity:
/// a slightly too-small eps fragments a duration-stretched phase into
/// per-rank-group blobs. The ablation sweeps the eps quantile downward on
/// particlemesh (whose force evaluation carries strong static imbalance)
/// with refinement off and on. Expected shape: with refinement off the
/// cluster count explodes as eps shrinks and ARI degrades; with refinement
/// on, structurally identical fragments re-merge and the pipeline stays near
/// the 3 true phases across the whole eps range — refinement buys eps
/// robustness.

#include "bench_common.hpp"
#include "unveil/cluster/quality.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"eps quantile", "refinement", "clusters", "merges", "ARI",
                    "period"});
  auto params = analysis::standardParams(/*seed=*/71);
  params.iterations = 100;
  const auto run =
      analysis::runMeasured("particlemesh", params, sim::MeasurementConfig::folding());
  for (double q : {0.70, 0.80, 0.88, 0.94}) {
    for (const bool refine : {false, true}) {
      analysis::PipelineConfig config;
      config.epsQuantile = q;
      config.refineFragments = refine;
      const auto result = analysis::analyze(run.trace, config);
      std::vector<std::uint32_t> truth;
      for (const auto& b : result.bursts) truth.push_back(b.truthPhase);
      t.addRow({q, std::string(refine ? "on" : "off"),
                static_cast<long long>(result.clustering.numClusters),
                static_cast<long long>(result.refinementMerges),
                cluster::adjustedRandIndex(result.clustering.labels, truth),
                static_cast<long long>(result.period.period)});
    }
  }
  t.print(std::cout, "A4: structural refinement vs eps sensitivity (particlemesh)");
  t.saveCsv(bench::outPath("a4_refinement.csv"));
  return 0;
}
