/// \file bench_perf_micro.cpp
/// Performance microbenchmarks (google-benchmark) for the library's hot
/// paths: DBSCAN scaling, folding + fitting throughput, trace serialization
/// and the simulation engine itself. These guard the tool's own efficiency —
/// an analysis that cannot keep up with trace sizes is useless at scale.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <vector>

#include "unveil/analysis/campaign.hpp"
#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/streaming.hpp"
#include "unveil/cluster/dbscan.hpp"
#include "unveil/cluster/sample.hpp"
#include "unveil/folding/band.hpp"
#include "unveil/folding/fit.hpp"
#include "unveil/folding/folded.hpp"
#include "unveil/support/math.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/support/sampler.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/io.hpp"

namespace {

using namespace unveil;

/// Synthetic feature matrix: `blobs` Gaussian blobs of `n` points in 2D.
cluster::FeatureMatrix makeBlobs(std::size_t n, std::size_t blobs) {
  support::Rng rng(99, "blobs");
  cluster::FeatureMatrix m(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<double>(i % blobs);
    m.at(i, 0) = rng.normal(b * 3.0, 0.15);
    m.at(i, 1) = rng.normal(b * -2.0, 0.15);
  }
  return m;
}

void BM_Dbscan(benchmark::State& state) {
  const auto m = makeBlobs(static_cast<std::size_t>(state.range(0)), 4);
  cluster::DbscanParams params;
  params.eps = 0.5;
  params.minPts = 8;
  for (auto _ : state) {
    auto c = cluster::dbscan(m, params);
    benchmark::DoNotOptimize(c.numClusters);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Dbscan)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_DbscanSampled(benchmark::State& state) {
  const auto m = makeBlobs(static_cast<std::size_t>(state.range(0)), 4);
  cluster::SampledDbscanParams params;
  params.dbscan.eps = 0.5;
  params.dbscan.minPts = 8;
  for (auto _ : state) {
    auto c = cluster::dbscanSampled(m, params);
    benchmark::DoNotOptimize(c.clustering.numClusters);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DbscanSampled)
    ->Arg(50000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

folding::FoldedCounter makeCloud(std::size_t n) {
  support::Rng rng(7, "cloud");
  folding::FoldedCounter f;
  f.counter = counters::CounterId::TotIns;
  f.instances = n / 2;
  f.meanDurationNs = 1e6;
  f.meanTotal = 2e6;
  for (std::size_t i = 0; i < n; ++i) {
    folding::FoldedPoint p;
    p.t = rng.uniform(0.0, 1.0);
    p.y = p.t * p.t;  // quadratic cumulative profile
    f.points.push_back(p);
  }
  f.points.sortCanonical();
  return f;
}

void BM_FitPchip(benchmark::State& state) {
  const auto cloud = makeCloud(static_cast<std::size_t>(state.range(0)));
  folding::FitParams params;
  for (auto _ : state) {
    auto fit = folding::fitCumulative(cloud, params);
    benchmark::DoNotOptimize(fit->value(0.5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FitPchip)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TraceRoundTrip(benchmark::State& state) {
  auto params = analysis::standardParams(3);
  params.ranks = 4;
  params.iterations = static_cast<std::uint32_t>(state.range(0));
  const auto run =
      analysis::runMeasured("wavesim", params, sim::MeasurementConfig::folding());
  for (auto _ : state) {
    std::stringstream ss;
    trace::write(run.trace, ss);
    auto back = trace::read(ss);
    benchmark::DoNotOptimize(back.stats().totalRecords);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(run.trace.stats().totalRecords));
}
BENCHMARK(BM_TraceRoundTrip)->Arg(20)->Arg(100);

void BM_SimulateWavesim(benchmark::State& state) {
  auto params = analysis::standardParams(3);
  params.ranks = static_cast<trace::Rank>(state.range(0));
  params.iterations = 50;
  for (auto _ : state) {
    auto run =
        analysis::runMeasured("wavesim", params, sim::MeasurementConfig::folding());
    benchmark::DoNotOptimize(run.totalRuntimeNs);
  }
}
BENCHMARK(BM_SimulateWavesim)->Arg(4)->Arg(16)->Arg(64);

void BM_FoldBand(benchmark::State& state) {
  const auto cloud = makeCloud(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto band = folding::foldBand(cloud);
    benchmark::DoNotOptimize(band.meanHalfWidth);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FoldBand)->Arg(1000)->Arg(10000);

void BM_BinaryTraceWrite(benchmark::State& state) {
  auto params = analysis::standardParams(3);
  params.ranks = 4;
  params.iterations = static_cast<std::uint32_t>(state.range(0));
  const auto run =
      analysis::runMeasured("wavesim", params, sim::MeasurementConfig::folding());
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::binarySize(run.trace));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(run.trace.stats().totalRecords));
}
BENCHMARK(BM_BinaryTraceWrite)->Arg(20)->Arg(100);

/// Counters for the multi-fold comparison: the 4-counter workload the
/// pipeline would fold for a full hardware-counter report.
constexpr std::array<counters::CounterId, 4> kFoldCounters{
    counters::CounterId::TotIns, counters::CounterId::TotCyc,
    counters::CounterId::L1Dcm, counters::CounterId::L2Dcm};

/// A realistic fold workload: the sample-richest cluster of an analyzed
/// fine-grain-sampled wavesim run, shared by the per-counter and multi-fold
/// benches. Fine-grain sampling gives bursts dense sample runs — the regime
/// where the fold stage's cost (walking samples) actually matters.
struct FoldWorkload {
  sim::RunResult run;
  std::vector<cluster::Burst> bursts;
  std::vector<std::size_t> members;
  /// Built once and shared by every fold, as analyze() does per analysis.
  folding::SampleColumns columns;
};

const FoldWorkload& foldWorkload() {
  static const FoldWorkload w = [] {
    auto params = analysis::standardParams(3);
    params.ranks = 8;
    params.iterations = 60;
    FoldWorkload out{
        analysis::runMeasured("wavesim", params, sim::MeasurementConfig::fineGrain()),
        {},
        {}};
    auto result = analysis::analyze(out.run.trace);
    out.bursts = std::move(result.bursts);
    std::size_t bestSamples = 0;
    for (auto& report : result.clusters) {
      std::size_t samples = 0;
      for (std::size_t i : report.memberIdx)
        samples += out.bursts[i].sampleCount;
      if (samples > bestSamples) {
        bestSamples = samples;
        out.members = report.memberIdx;
      }
    }
    out.columns.build(out.run.trace);
    return out;
  }();
  return w;
}

void BM_FoldPerCounter(benchmark::State& state) {
  const auto& w = foldWorkload();
  for (auto _ : state) {
    for (counters::CounterId id : kFoldCounters) {
      auto folded = folding::foldCluster(w.run.trace, w.bursts, w.members, id);
      benchmark::DoNotOptimize(folded.points.size());
    }
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(kFoldCounters.size() * w.members.size()));
}
BENCHMARK(BM_FoldPerCounter);

void BM_FoldMulti(benchmark::State& state) {
  // Columns are prebuilt in the workload — the pipeline builds them once
  // per analysis and amortizes across every cluster's fold, so the timed
  // region here is the marginal per-cluster cost analyze() actually pays.
  // BM_FoldColumnar/cold below covers the build-included variant.
  const auto& w = foldWorkload();
  for (auto _ : state) {
    auto entries =
        folding::foldClusterMulti(w.columns, w.bursts, w.members, kFoldCounters);
    benchmark::DoNotOptimize(entries.size());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(kFoldCounters.size() * w.members.size()));
}
BENCHMARK(BM_FoldMulti);

/// A-B pair for the columnar store itself: `cold` rebuilds the SampleColumns
/// from the trace inside the timed region (the convenience overload), `warm`
/// folds against the shared prebuilt columns. The A-B margin is the column
/// build — the one-time cost the pipeline amortizes over all clusters.
void BM_FoldColumnar(benchmark::State& state) {
  const auto& w = foldWorkload();
  const bool cold = state.range(0) == 0;
  for (auto _ : state) {
    auto entries =
        cold ? folding::foldClusterMulti(w.run.trace, w.bursts, w.members,
                                         kFoldCounters)
             : folding::foldClusterMulti(w.columns, w.bursts, w.members,
                                         kFoldCounters);
    benchmark::DoNotOptimize(entries.size());
  }
  state.SetLabel(cold ? "cold:build+fold" : "warm:shared-columns");
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(kFoldCounters.size() * w.members.size()));
}
BENCHMARK(BM_FoldColumnar)->Arg(0)->Arg(1);

void BM_KernelFit(benchmark::State& state, bool windowed) {
  const auto cloud = makeCloud(50000);
  folding::FitParams params;
  params.method = folding::FitMethod::Kernel;
  params.kernelBandwidth = 0.005;
  params.kernelWindowed = windowed;
  const auto fit = folding::fitCumulative(cloud, params);
  const auto grid = support::linspace(0.0, 1.0, 201);
  for (auto _ : state) {
    double sum = 0.0;
    for (double t : grid) sum += fit->value(t);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(grid.size()));
}
void BM_KernelFitNaive(benchmark::State& state) { BM_KernelFit(state, false); }
void BM_KernelFitWindowed(benchmark::State& state) { BM_KernelFit(state, true); }
BENCHMARK(BM_KernelFitNaive);
BENCHMARK(BM_KernelFitWindowed);

void BM_EstimateEps(benchmark::State& state) {
  const auto m = makeBlobs(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::estimateEps(m, 8));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EstimateEps)->Arg(10000)->Arg(50000);

void BM_AnalyzeThreeApps(benchmark::State& state) {
  static const std::vector<sim::RunResult>& runs = []() -> const auto& {
    static std::vector<sim::RunResult> r;
    for (const char* app : {"wavesim", "nbsolver", "particlemesh"}) {
      auto params = analysis::standardParams(3);
      params.ranks = 4;
      params.iterations = 40;
      r.push_back(
          analysis::runMeasured(app, params, sim::MeasurementConfig::folding()));
    }
    return r;
  }();
  for (auto _ : state) {
    std::size_t clusters = 0;
    for (const auto& run : runs)
      clusters += analysis::analyze(run.trace).clusters.size();
    benchmark::DoNotOptimize(clusters);
  }
}
BENCHMARK(BM_AnalyzeThreeApps);

/// A-B: file-to-result analysis via the batch path (read whole trace, then
/// analyze) vs the streaming engine (two shard-at-a-time passes). Streaming
/// reads the file twice, so this bench prices the memory bound: the
/// acceptable regression here is what buys O(largest shard) peak RSS.
void BM_AnalyzeFile(benchmark::State& state) {
  static const std::string path = [] {
    auto params = analysis::standardParams(3);
    params.ranks = 16;
    params.iterations = 60;
    const auto run = analysis::runMeasured("wavesim", params,
                                           sim::MeasurementConfig::folding());
    const std::string p =
        (std::filesystem::temp_directory_path() / "unveil_bench_stream.utb")
            .string();
    trace::writeBinaryFile(run.trace, p);
    return p;
  }();
  const bool streamed = state.range(0) != 0;
  for (auto _ : state) {
    if (streamed) {
      auto out = analysis::analyzeStreaming(path);
      benchmark::DoNotOptimize(out.result.clusters.size());
    } else {
      auto t = trace::readBinaryFile(path);
      auto result = analysis::analyze(t);
      benchmark::DoNotOptimize(result.clusters.size());
    }
  }
  state.SetLabel(streamed ? "streaming" : "batch");
}
BENCHMARK(BM_AnalyzeFile)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  auto params = analysis::standardParams(3);
  params.ranks = 8;
  params.iterations = 60;
  const auto run =
      analysis::runMeasured("wavesim", params, sim::MeasurementConfig::folding());
  for (auto _ : state) {
    auto result = analysis::analyze(run.trace);
    benchmark::DoNotOptimize(result.clusters.size());
  }
}
BENCHMARK(BM_FullPipeline);

/// The full N-trace scaling campaign over a 3-point wavesim series: per-trace
/// pipelines (pool tasks), N-way matching and model fitting. Prices the
/// cross-trace layer on top of BM_FullPipeline's single-trace cost.
void BM_Campaign(benchmark::State& state) {
  static const std::vector<analysis::CampaignMemberSpec> specs = [] {
    std::vector<analysis::CampaignMemberSpec> out;
    const double scales[] = {1.0, 4.0, 16.0};
    const double params[] = {4.0, 16.0, 64.0};
    for (std::size_t i = 0; i < 3; ++i) {
      auto p = analysis::standardParams(3);
      p.ranks = 4;
      p.iterations = 40;
      p.scale = scales[i];
      const auto run =
          analysis::runMeasured("wavesim", p, sim::MeasurementConfig::folding());
      const std::string path =
          (std::filesystem::temp_directory_path() /
           ("unveil_bench_campaign_" + std::to_string(i) + ".utb"))
              .string();
      trace::writeBinaryFile(run.trace, path);
      out.push_back({path, params[i]});
    }
    return out;
  }();
  for (auto _ : state) {
    auto campaign = analysis::runCampaign(specs, analysis::CampaignOptions{});
    benchmark::DoNotOptimize(campaign.phases.size());
  }
  state.counters["traces"] =
      benchmark::Counter(static_cast<double>(specs.size()));
}
BENCHMARK(BM_Campaign)->Unit(benchmark::kMillisecond);

/// A-B: the full pipeline with self-tracing off (arg 0) vs on (arg 1).
/// The same build runs both, so the delta is exactly what an active
/// telemetry::Session costs.
void BM_AnalyzeTelemetry(benchmark::State& state) {
  auto params = analysis::standardParams(3);
  params.ranks = 4;
  params.iterations = 40;
  const auto run =
      analysis::runMeasured("wavesim", params, sim::MeasurementConfig::folding());
  const bool enabled = state.range(0) != 0;
  for (auto _ : state) {
    if (enabled) {
      telemetry::Session session;
      session.activate();
      auto result = analysis::analyze(run.trace);
      session.deactivate();
      benchmark::DoNotOptimize(result.telemetry.size());
    } else {
      auto result = analysis::analyze(run.trace);
      benchmark::DoNotOptimize(result.clusters.size());
    }
  }
  state.SetLabel(enabled ? "telemetry-on" : "telemetry-off");
}
BENCHMARK(BM_AnalyzeTelemetry)->Arg(0)->Arg(1);

/// A-B: instrumented pipeline without (arg 0) vs with (arg 1) the
/// background sampler at its 10 ms default. The delta is the whole sampler
/// subsystem: the tick thread, /proc reads, pool-health snapshots and the
/// live-span census bookkeeping Span now does per construction.
void BM_AnalyzeSampler(benchmark::State& state) {
  auto params = analysis::standardParams(3);
  params.ranks = 4;
  params.iterations = 40;
  const auto run =
      analysis::runMeasured("wavesim", params, sim::MeasurementConfig::folding());
  const bool sampled = state.range(0) != 0;
  for (auto _ : state) {
    telemetry::Session session;
    session.activate();
    {
      std::unique_ptr<support::Sampler> sampler;
      if (sampled) sampler = std::make_unique<support::Sampler>(session);
      auto result = analysis::analyze(run.trace);
      benchmark::DoNotOptimize(result.telemetry.size());
    }
    session.deactivate();
  }
  state.SetLabel(sampled ? "sampler-on" : "sampler-off");
}
BENCHMARK(BM_AnalyzeSampler)->Arg(0)->Arg(1);

/// Asserted A-B case: with no Session active, the compiled-in hooks must
/// cost < 1% of an instrumented pipeline run. Estimated conservatively as
/// (hooks per run) x (disabled per-hook cost) / (disabled run time) — a
/// direct off-vs-on wall-clock diff at this scale is noise-bound, while the
/// per-hook cost (one relaxed load + branch) is cleanly measurable in a
/// tight loop.
int telemetryOverheadCheck() {
  using clock = std::chrono::steady_clock;
  auto params = analysis::standardParams(3);
  params.ranks = 4;
  params.iterations = 40;
  const auto run =
      analysis::runMeasured("wavesim", params, sim::MeasurementConfig::folding());

  auto analyzeSeconds = [&] {
    const auto t0 = clock::now();
    auto result = analysis::analyze(run.trace);
    benchmark::DoNotOptimize(result.clusters.size());
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  analyzeSeconds();  // warm-up
  std::array<double, 5> off{};
  for (double& t : off) t = analyzeSeconds();
  std::sort(off.begin(), off.end());
  const double offSeconds = off[off.size() / 2];

  // Hooks one run executes: spans plus metric updates, counted by an
  // instrumented run.
  telemetry::Session session;
  session.activate();
  auto result = analysis::analyze(run.trace);
  session.deactivate();
  const auto snap = session.snapshot();
  std::uint64_t metricUpdates = 0;
  metricUpdates += snap.counters.size() + snap.gauges.size();
  for (const auto& [name, h] : snap.histograms) metricUpdates += h.count;
  const std::uint64_t hooks =
      snap.spans.size() + metricUpdates + result.telemetry.size();

  // Disabled per-hook cost: RAII span + one attr + one counter bump, all
  // no-ops without a session.
  constexpr std::uint64_t kReps = 2'000'000;
  const auto t0 = clock::now();
  for (std::uint64_t i = 0; i < kReps; ++i) {
    telemetry::Span span("bench.hook");
    span.attr("i", i);
    telemetry::count("bench.hook");
    benchmark::DoNotOptimize(span.active());
  }
  const double hookSeconds =
      std::chrono::duration<double>(clock::now() - t0).count() /
      static_cast<double>(kReps);

  const double overheadPercent =
      100.0 * hookSeconds * static_cast<double>(hooks) / offSeconds;
  std::printf(
      "telemetry A-B: run %.3f ms disabled, %llu hooks x %.1f ns/hook "
      "disabled -> %.4f%% overhead (budget 1%%)\n",
      offSeconds * 1e3, static_cast<unsigned long long>(hooks),
      hookSeconds * 1e9, overheadPercent);
  if (overheadPercent >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: disabled-telemetry overhead %.4f%% >= 1%% budget\n",
                 overheadPercent);
    return 1;
  }
  return 0;
}

/// Asserted A-B case for the background sampler: per-tick cost over the
/// 10 ms default interval must be a < 1% duty cycle. Like
/// telemetryOverheadCheck(), this is modeled — (median per-tick seconds) /
/// (interval seconds) — because a wall-clock off-vs-on diff of a whole
/// pipeline run is noise-bound on shared CI machines, while one tick's cost
/// is cleanly measurable in a tight loop.
int samplerOverheadCheck() {
  using clock = std::chrono::steady_clock;
  constexpr double kIntervalSeconds = 0.010;  // the CLI default

  telemetry::Session session;
  session.activate();
  // Sample under realistic conditions: live spans and a warm thread pool.
  telemetry::Span outer("bench.sampler");
  support::SamplerConfig config;
  config.intervalMs = 0;  // no background thread; we tick explicitly
  support::Sampler sampler(session, config);

  auto tickSeconds = [&] {
    constexpr int kReps = 64;
    const auto t0 = clock::now();
    for (int i = 0; i < kReps; ++i) sampler.sampleOnce();
    return std::chrono::duration<double>(clock::now() - t0).count() / kReps;
  };
  tickSeconds();  // warm-up (procfs, pool registration)
  std::array<double, 9> ticks{};
  for (double& t : ticks) t = tickSeconds();
  std::sort(ticks.begin(), ticks.end());
  const double perTick = ticks[ticks.size() / 2];

  const double dutyCyclePercent = 100.0 * perTick / kIntervalSeconds;
  std::printf(
      "sampler A-B: %.1f us/tick -> %.4f%% duty cycle at the 10 ms default "
      "(budget 1%%)\n",
      perTick * 1e6, dutyCyclePercent);
  session.deactivate();
  if (dutyCyclePercent >= 1.0) {
    std::fprintf(stderr, "FAIL: sampler duty cycle %.4f%% >= 1%% budget\n",
                 dutyCyclePercent);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int telemetryRc = telemetryOverheadCheck();
  const int samplerRc = samplerOverheadCheck();
  return telemetryRc != 0 ? telemetryRc : samplerRc;
}
