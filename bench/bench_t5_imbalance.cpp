/// \file bench_t5_imbalance.cpp
/// T5 — per-cluster load-balance characterization (companion analysis).
///
/// For each application: imbalance factor, persistent cross-rank CV and
/// transfer potential per detected phase. Expected shape: particlemesh's
/// force evaluation dominates every imbalance column (its per-rank duration
/// spread is built into the model), while wavesim/nbsolver stay near 1.0.
/// Also cross-validates the two period detectors (burst-sequence vs
/// signal-autocorrelation).

#include "bench_common.hpp"
#include "unveil/analysis/imbalance.hpp"
#include "unveil/analysis/spectral.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"app", "cluster", "phase", "imbalance factor",
                    "persistent CV", "time share (%)", "transfer potential (%)"});
  support::Table periods({"app", "burst-sequence period (bursts)",
                          "spectral period (ms)", "mean iteration (ms)"});
  for (const auto& appName : bench::apps()) {
    const auto params = analysis::standardParams(/*seed=*/67);
    const auto run =
        analysis::runMeasured(appName, params, sim::MeasurementConfig::folding());
    const auto result = analysis::analyze(run.trace);
    for (const auto& r : analysis::imbalanceAnalysis(result, params.ranks)) {
      t.addRow({appName, static_cast<long long>(r.clusterId),
                r.modalTruthPhase == cluster::kNoPhase
                    ? support::Cell{std::string("-")}
                    : support::Cell{run.app->phase(r.modalTruthPhase).model.name()},
                r.imbalanceFactor, r.durationCovAcrossRanks, r.timeShare * 100.0,
                r.transferPotential * 100.0});
    }
    const auto spectral = analysis::detectSpectralPeriod(run.trace, 0);
    periods.addRow({appName, static_cast<long long>(result.period.period),
                    spectral.periodNs / 1e6,
                    static_cast<double>(run.totalRuntimeNs) /
                        static_cast<double>(params.iterations) / 1e6});
  }
  t.print(std::cout, "T5: load-balance characterization per cluster");
  std::cout << '\n';
  periods.print(std::cout, "T5b: period detectors cross-validation");
  t.saveCsv(bench::outPath("t5_imbalance.csv"));
  return 0;
}
