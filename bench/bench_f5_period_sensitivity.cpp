/// \file bench_f5_period_sensitivity.cpp
/// F5 — sensitivity to the sampling period.
///
/// Sweeping the sampling period from fine (50 µs) to very coarse (8 ms)
/// shows the trade folding navigates: shorter periods give more folded
/// points (lower reconstruction error) but dilate the run; longer periods
/// are nearly free but starve the fit. The crossover argument: at ~1 ms the
/// error is already close to the fine-grain floor while the overhead is two
/// orders of magnitude lower.

#include "bench_common.hpp"
#include "unveil/folding/accuracy.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"period (us)", "dilation (%)", "folded points",
                    "vs exact truth (%)"});
  support::SeriesSet fig("F5.period", "sampling period (us)",
                         "error (%) / dilation (%)");
  support::Series errSeries, dilSeries;
  errSeries.label = "reconstruction error vs truth (%)";
  dilSeries.label = "runtime dilation (%)";

  const auto params = analysis::standardParams(/*seed=*/37);
  const auto baseline =
      analysis::runMeasured("wavesim", params, sim::MeasurementConfig::none());
  const double baseSeconds = static_cast<double>(baseline.totalRuntimeNs);

  for (double periodUs : {50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
    const auto mc = sim::MeasurementConfig::folding(periodUs * 1e3);
    const auto run = analysis::runMeasured("wavesim", params, mc);
    const double dilation =
        (static_cast<double>(run.totalRuntimeNs) / baseSeconds - 1.0) * 100.0;
    auto cfg = analysis::calibratedPipelineConfig(mc);
    const auto result = analysis::analyze(run.trace, cfg);

    for (const auto& c : result.clusters) {
      if (!c.folded || c.modalTruthPhase != 1) continue;  // stencil sweep
      const auto it = c.rates.find(counters::CounterId::TotIns);
      if (it == c.rates.end()) continue;
      const auto& shape =
          run.app->phase(1).model.profile(counters::CounterId::TotIns).shape;
      const auto truth = folding::truthNormalizedRate(shape, it->second.t);
      const double err = folding::meanAbsDiffPercent(it->second.normRate, truth);
      t.addRow({periodUs, dilation, static_cast<long long>(it->second.sourcePoints),
                err});
      errSeries.x.push_back(periodUs);
      errSeries.y.push_back(err);
      dilSeries.x.push_back(periodUs);
      dilSeries.y.push_back(dilation);
    }
  }
  fig.add(std::move(errSeries));
  fig.add(std::move(dilSeries));
  t.print(std::cout, "F5: sampling-period sensitivity (wavesim stencil sweep)");
  bench::emitFigure(fig, "f5_period.dat");
  t.saveCsv(bench::outPath("f5_period.csv"));
  return 0;
}
