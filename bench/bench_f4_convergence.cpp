/// \file bench_f4_convergence.cpp
/// F4 — folding accuracy versus the number of folded instances.
///
/// Folding works *because* iterative applications repeat each phase many
/// times. Sweeping the iteration count shows the reconstruction error of the
/// dominant wavesim cluster (the stencil sweep) falling as instances — and
/// therefore folded samples — accumulate. The paper's qualitative claim:
/// a few hundred instances of a phase suffice for a faithful profile.

#include "bench_common.hpp"
#include "unveil/folding/accuracy.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  support::Table t({"iterations", "instances", "folded points",
                    "vs exact truth (%)"});
  support::SeriesSet fig("F4.convergence", "folded instances",
                         "mean abs diff vs truth (%)");
  support::Series curve;
  curve.label = "wavesim stencil_sweep";

  for (std::uint32_t iters : {10u, 20u, 40u, 80u, 150u, 300u}) {
    auto params = analysis::standardParams(/*seed=*/31);
    params.iterations = iters;
    const auto mc = sim::MeasurementConfig::folding();
    const auto run = analysis::runMeasured("wavesim", params, mc);
    auto cfg = analysis::calibratedPipelineConfig(mc);
    cfg.minClusterInstances = 4;  // allow folding at tiny instance counts
    const auto result = analysis::analyze(run.trace, cfg);

    // The stencil sweep is ground-truth phase 1; when drift splits it, track
    // the largest matching cluster only.
    const analysis::ClusterReport* sweep = nullptr;
    for (const auto& c : result.clusters)
      if (c.folded && c.modalTruthPhase == 1 &&
          (!sweep || c.instances > sweep->instances))
        sweep = &c;
    if (sweep != nullptr) {
      const auto it = sweep->rates.find(counters::CounterId::TotIns);
      if (it != sweep->rates.end()) {
        const auto& shape =
            run.app->phase(1).model.profile(counters::CounterId::TotIns).shape;
        const auto truth = folding::truthNormalizedRate(shape, it->second.t);
        const double err = folding::meanAbsDiffPercent(it->second.normRate, truth);
        t.addRow({static_cast<long long>(iters),
                  static_cast<long long>(it->second.sourceInstances),
                  static_cast<long long>(it->second.sourcePoints), err});
        curve.x.push_back(static_cast<double>(it->second.sourceInstances));
        curve.y.push_back(err);
      }
    }
  }
  fig.add(std::move(curve));
  t.print(std::cout, "F4: accuracy convergence with folded instances");
  bench::emitFigure(fig, "f4_convergence.dat");
  t.saveCsv(bench::outPath("f4_convergence.csv"));
  return 0;
}
