/// \file bench_a3_jitter.cpp
/// A3 — sampling-decorrelation ablation.
///
/// Folding relies on samples being *uncorrelated* with phase position: only
/// then do a few samples per instance spread across [0,1] over hundreds of
/// instances. Two mechanisms provide that: per-gap timer jitter and random
/// per-rank clock offsets. This ablation removes them one at a time and
/// measures (a) how uniformly the folded points cover [0,1] — scored by the
/// coefficient of variation of decile occupancy, 0 = perfectly uniform —
/// and (b) the reconstruction error of the dominant wavesim cluster.

#include <cmath>

#include "bench_common.hpp"
#include "unveil/folding/accuracy.hpp"
#include "unveil/folding/folded.hpp"

namespace {

/// Coefficient of variation of decile occupancy of the folded cloud.
double coverageCv(const unveil::folding::FoldedCounter& folded) {
  std::array<double, 10> bins{};
  for (const auto& p : folded.points)
    ++bins[std::min(static_cast<std::size_t>(p.t * 10.0), std::size_t{9})];
  double mean = 0.0;
  for (double b : bins) mean += b;
  mean /= 10.0;
  if (mean == 0.0) return 10.0;
  double var = 0.0;
  for (double b : bins) var += (b - mean) * (b - mean);
  return std::sqrt(var / 10.0) / mean;
}

}  // namespace

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  struct Setup {
    const char* label;
    double jitterFrac;
    bool randomOffsets;
  };
  const Setup setups[] = {
      {"jitter + random offsets (default)", 0.2, true},
      {"no jitter, random offsets", 0.0, true},
      {"jitter, aligned offsets", 0.2, false},
      {"no jitter, aligned offsets (aliasing)", 0.0, false},
  };

  support::Table t({"configuration", "folded points", "coverage CV",
                    "vs exact truth (%)"});
  for (const auto& s : setups) {
    auto mc = sim::MeasurementConfig::folding();
    mc.sampling.jitterFrac = s.jitterFrac;
    mc.sampling.randomOffsets = s.randomOffsets;
    const auto params = analysis::standardParams(/*seed=*/53);
    const auto run = analysis::runMeasured("wavesim", params, mc);
    const auto cfg = analysis::calibratedPipelineConfig(mc);
    const auto result = analysis::analyze(run.trace, cfg);

    const analysis::ClusterReport* dominant = nullptr;
    for (const auto& c : result.clusters)
      if (c.folded && (!dominant || c.totalTimeFraction > dominant->totalTimeFraction))
        dominant = &c;
    if (dominant == nullptr) {
      t.addRow({std::string(s.label), 0LL, 10.0, 100.0});
      continue;
    }
    const auto folded =
        folding::foldCluster(run.trace, result.bursts, dominant->memberIdx,
                             counters::CounterId::TotIns, cfg.reconstruct.fold);
    const auto it = dominant->rates.find(counters::CounterId::TotIns);
    double err = 100.0;
    if (it != dominant->rates.end()) {
      const auto& shape = run.app->phase(dominant->modalTruthPhase)
                              .model.profile(counters::CounterId::TotIns)
                              .shape;
      const auto truth = folding::truthNormalizedRate(shape, it->second.t);
      err = folding::meanAbsDiffPercent(it->second.normRate, truth);
    }
    t.addRow({std::string(s.label), static_cast<long long>(folded.points.size()),
              coverageCv(folded), err});
  }
  t.print(std::cout, "A3: sampling decorrelation ablation (wavesim sweep)");
  t.saveCsv(bench::outPath("a3_jitter.csv"));
  std::cout << "\nhigher coverage CV = clumpier folded cloud; the aliasing row\n"
               "shows why uncorrelated sampling is a load-bearing design choice.\n";
  return 0;
}
