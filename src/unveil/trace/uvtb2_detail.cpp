#include "unveil/trace/uvtb2_detail.hpp"

#include <algorithm>

#include "unveil/support/error_context.hpp"
#include "unveil/support/flight_recorder.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::trace::detail {

namespace {

/// Per-rank delta state for timestamps and cumulative counters.
struct RankDeltas {
  TimeNs lastTime = 0;
  counters::CounterSet lastCounters;
};

DecodedShard decodeShardBody(ByteReader& r, Rank rank, const ShardCounts& counts,
                             TimeNs duration) {
  DecodedShard out;
  // The counts come from an untrusted shard table. They have been validated
  // against the byte budget already, but clamp the reserves against the
  // bytes actually in hand anyway — a reserve() must never be able to
  // request more memory than the input paid for.
  const auto budget = static_cast<std::uint64_t>(r.end - r.p);
  out.events.reserve(std::min(counts.events, budget / kMinEventBytes));
  out.samples.reserve(std::min(counts.samples, budget / kMinSampleBytes));
  out.states.reserve(std::min(counts.states, budget / kMinStateBytes));
  // Delta-decoded times are monotone by construction, so bounding them
  // against the header duration only needs one compare per record; a
  // violation is shard-local corruption, caught here so it can be
  // attributed (and degraded) per shard instead of failing finalize().
  const bool checkTime = duration > 0;
  {
    RankDeltas d;
    for (std::uint64_t i = 0; i < counts.events; ++i) {
      Event e;
      e.rank = rank;
      e.time = d.lastTime + r.varint();
      d.lastTime = e.time;
      if (checkTime && e.time > duration)
        throw TraceError("binary event time exceeds trace duration");
      const int kind = r.get();
      if (kind > static_cast<int>(EventKind::MpiEnd))
        throw TraceError("binary event kind invalid");
      e.kind = static_cast<EventKind>(kind);
      e.value = static_cast<std::uint32_t>(r.varint());
      for (std::size_t c = 0; c < counters::kNumCounters; ++c)
        e.counters.values[c] = d.lastCounters.values[c] + r.varint();
      d.lastCounters = e.counters;
      out.events.push_back(e);
    }
  }
  {
    RankDeltas d;
    for (std::uint64_t i = 0; i < counts.samples; ++i) {
      Sample s;
      s.rank = rank;
      s.time = d.lastTime + r.varint();
      d.lastTime = s.time;
      if (checkTime && s.time > duration)
        throw TraceError("binary sample time exceeds trace duration");
      const int mask = r.get();
      if (mask > static_cast<int>(kAllCountersMask))
        throw TraceError("binary sample mask invalid");
      s.validMask = static_cast<CounterMask>(mask);
      s.regionId = static_cast<std::uint32_t>(r.varint());
      for (std::size_t c = 0; c < counters::kNumCounters; ++c) {
        if (!maskHas(s.validMask, static_cast<counters::CounterId>(c))) continue;
        s.counters.values[c] = d.lastCounters.values[c] + r.varint();
        d.lastCounters.values[c] = s.counters.values[c];
      }
      out.samples.push_back(s);
    }
  }
  {
    TimeNs lastBegin = 0;
    for (std::uint64_t i = 0; i < counts.states; ++i) {
      StateInterval s;
      s.rank = rank;
      s.begin = lastBegin + r.varint();
      s.end = s.begin + r.varint();
      if (checkTime && s.end > duration)
        throw TraceError("binary state interval exceeds trace duration");
      const int state = r.get();
      if (state > static_cast<int>(State::Idle))
        throw TraceError("binary state code invalid");
      s.state = static_cast<State>(state);
      lastBegin = s.begin;
      out.states.push_back(s);
    }
  }
  if (!r.exhausted())
    throw TraceError("binary trace shard has trailing bytes");
  return out;
}

}  // namespace

std::uint64_t addChecked(std::uint64_t a, std::uint64_t b, const char* what) {
  std::uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    throw TraceError(std::string("binary trace ") + what + " overflows");
  return out;
}

DecodedShard decodeShard(ByteReader& r, Rank rank, const ShardCounts& counts,
                         TimeNs duration, std::uint64_t shardFileOffset) {
  try {
    return decodeShardBody(r, rank, counts, duration);
  } catch (const Error& e) {
    support::rethrowTraceErrorWith(
        e, support::ErrorContext{}
               .with("shard", static_cast<std::uint64_t>(rank))
               .with("rank", static_cast<std::uint64_t>(rank))
               .with("offset", shardFileOffset + r.consumed()));
  }
}

V2Header readV2Header(CountingSource& src, const ReadOptions& options) {
  V2Header h;
  const auto nameLen = src.varint();
  if (nameLen > 4096) throw TraceError("binary trace app name too long");
  h.appName.assign(nameLen, '\0');
  if (src.readSome(h.appName.data(), nameLen) != nameLen)
    throw TraceError("binary trace truncated in app name");
  const auto rankCount = src.varint();
  if (rankCount == 0) throw TraceError("binary trace has zero ranks");
  if (rankCount > (1u << 24))
    throw TraceError("binary trace rank count implausible");
  h.ranks = static_cast<Rank>(rankCount);
  h.durationNs = src.varint();
  h.nEvents = src.varint();
  h.nSamples = src.varint();
  h.nStates = src.varint();

  // Shard table: per-rank record counts and encoded byte length. Every
  // field is untrusted. Structural rules (checked sums, header agreement)
  // are fatal: if the table itself is inconsistent, no shard boundary can
  // be believed. A count that cannot fit in its shard's byte budget is
  // shard-local — the budget caps what the decode stage may allocate, so
  // such a shard is failed (and in non-strict mode skipped) without ever
  // reserving what it claims.
  //
  // The per-rank vectors grow with the table as it is read (each entry
  // consumes at least 4 stream bytes), not from the claimed rank count: a
  // tiny file claiming 2^24 ranks fails on truncation after a few entries
  // instead of allocating gigabytes up front.
  const auto reserveHint =
      static_cast<std::size_t>(std::min<std::uint64_t>(rankCount, 4096));
  h.counts.reserve(reserveHint);
  h.shardBytes.reserve(reserveHint);
  h.failures.reserve(reserveHint);
  std::uint64_t totalEvents = 0, totalSamples = 0, totalStates = 0;
  for (Rank r = 0; r < h.ranks; ++r) {
    h.counts.emplace_back();
    h.shardBytes.emplace_back();
    h.failures.emplace_back();
    h.counts[r].events = src.varint();
    h.counts[r].samples = src.varint();
    h.counts[r].states = src.varint();
    h.shardBytes[r] = src.varint();
    if (h.shardBytes[r] > (std::uint64_t{1} << 48))
      throw TraceError("binary trace shard byte length implausible (shard " +
                       std::to_string(r) + ")");
    totalEvents = addChecked(totalEvents, h.counts[r].events, "event count");
    totalSamples = addChecked(totalSamples, h.counts[r].samples, "sample count");
    totalStates = addChecked(totalStates, h.counts[r].states, "state count");
    h.totalBytes = addChecked(h.totalBytes, h.shardBytes[r], "shard byte total");
    if (h.counts[r].events > h.shardBytes[r] / kMinEventBytes ||
        h.counts[r].samples > h.shardBytes[r] / kMinSampleBytes ||
        h.counts[r].states > h.shardBytes[r] / kMinStateBytes) {
      h.failures[r] = "shard table claims more records than its " +
                      std::to_string(h.shardBytes[r]) +
                      " byte budget can encode [shard=" + std::to_string(r) +
                      ", rank=" + std::to_string(r) + "]";
    }
  }
  if (totalEvents != h.nEvents || totalSamples != h.nSamples ||
      totalStates != h.nStates)
    throw TraceError("binary trace shard table disagrees with header counts");
  h.dataStart = src.consumed;
  if (options.strict) {
    for (Rank r = 0; r < h.ranks; ++r)
      if (!h.failures[r].empty()) throw TraceError(h.failures[r]);
  }
  h.offsets.assign(h.ranks, 0);
  for (Rank r = 1; r < h.ranks; ++r)
    h.offsets[r] = h.offsets[r - 1] + h.shardBytes[r - 1];
  return h;
}

void noteShardDrop(Rank rank, std::uint64_t absoluteOffset,
                   const std::string& reason, ReadReport* report) {
  support::logWarn("skipping corrupt trace shard: " + reason);
  support::flightRecord(support::FlightKind::ShardDrop, reason);
  if (report) report->droppedShards.push_back({rank, absoluteOffset, reason});
}

void noteDegradedRead(std::size_t dropped) {
  if (dropped == 0) return;
  telemetry::count("trace.shards_dropped", dropped);
  // Degraded-but-continuing is exactly the situation a later "why were
  // those shards bad" investigation needs context for; snapshot the ring
  // (which now holds the per-shard failure reasons) while it is fresh.
  auto& recorder = support::FlightRecorder::instance();
  if (recorder.enabled() && recorder.dumpOnDegradation()) {
    if (recorder.dump("shard-degradation"))
      support::logWarn("flight recorder -> " + recorder.dumpPath());
  }
}

}  // namespace unveil::trace::detail
