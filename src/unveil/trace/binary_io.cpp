#include "unveil/trace/binary_io.hpp"

#include "unveil/trace/io.hpp"
#include "unveil/trace/uvtb2_detail.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/error_context.hpp"
#include "unveil/support/faulty_stream.hpp"
#include "unveil/support/flight_recorder.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::trace {

namespace {

void putVarint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t getVarint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof())
      throw TraceError("binary trace truncated inside varint");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw TraceError("binary trace varint overflow");
  }
  return v;
}

/// Append-only byte sink for encoding one rank's shard in memory (shards
/// are built on worker threads, then written out in rank order).
struct ByteWriter {
  std::string buf;

  void put(char c) { buf.push_back(c); }
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf.push_back(static_cast<char>(v));
  }
};

/// Per-rank delta state for timestamps and cumulative counters.
struct RankDeltas {
  TimeNs lastTime = 0;
  counters::CounterSet lastCounters;
};

counters::CounterSet getCounterDeltas(std::istream& is, RankDeltas& d) {
  counters::CounterSet c;
  for (std::size_t i = 0; i < counters::kNumCounters; ++i)
    c.values[i] = d.lastCounters.values[i] + getVarint(is);
  d.lastCounters = c;
  return c;
}

/// Contiguous [begin, end) slice of a (rank, time)-sorted record vector
/// belonging to each rank.
template <typename Record>
std::vector<std::pair<std::size_t, std::size_t>> rankRanges(
    const std::vector<Record>& records, Rank ranks) {
  std::vector<std::pair<std::size_t, std::size_t>> out(ranks, {0, 0});
  std::size_t i = 0;
  while (i < records.size()) {
    const Rank r = records[i].rank;
    std::size_t j = i;
    while (j < records.size() && records[j].rank == r) ++j;
    out[r] = {i, j};
    i = j;
  }
  return out;
}

// ---------------------------------------------------------------------------
// V2 shard encode/decode (one rank, self-contained delta contexts)
// ---------------------------------------------------------------------------

std::string encodeShard(const Trace& trace, Rank rank,
                        std::pair<std::size_t, std::size_t> eventRange,
                        std::pair<std::size_t, std::size_t> sampleRange,
                        std::pair<std::size_t, std::size_t> stateRange) {
  ByteWriter w;
  {
    RankDeltas d;
    for (std::size_t i = eventRange.first; i < eventRange.second; ++i) {
      const Event& e = trace.events()[i];
      w.varint(e.time - d.lastTime);
      d.lastTime = e.time;
      w.put(static_cast<char>(e.kind));
      w.varint(e.value);
      for (std::size_t c = 0; c < counters::kNumCounters; ++c) {
        UNVEIL_ASSERT(e.counters.values[c] >= d.lastCounters.values[c],
                      "binary writer requires monotone counters (finalized trace)");
        w.varint(e.counters.values[c] - d.lastCounters.values[c]);
      }
      d.lastCounters = e.counters;
    }
  }
  {
    RankDeltas d;
    for (std::size_t i = sampleRange.first; i < sampleRange.second; ++i) {
      const Sample& s = trace.samples()[i];
      w.varint(s.time - d.lastTime);
      d.lastTime = s.time;
      w.put(static_cast<char>(s.validMask));
      w.varint(s.regionId);
      // Only valid counters are stored; the delta context advances per
      // counter on its own last valid observation.
      for (std::size_t c = 0; c < counters::kNumCounters; ++c) {
        if (!maskHas(s.validMask, static_cast<counters::CounterId>(c))) continue;
        UNVEIL_ASSERT(s.counters.values[c] >= d.lastCounters.values[c],
                      "binary writer requires monotone counters (finalized trace)");
        w.varint(s.counters.values[c] - d.lastCounters.values[c]);
        d.lastCounters.values[c] = s.counters.values[c];
      }
    }
  }
  {
    // States are (rank, begin)-sorted after finalize(), so begin deltas
    // from the previous *begin* are always non-negative (ends interleave).
    TimeNs lastBegin = 0;
    for (std::size_t i = stateRange.first; i < stateRange.second; ++i) {
      const StateInterval& s = trace.states()[i];
      w.varint(s.begin - lastBegin);
      w.varint(s.end - s.begin);
      w.put(static_cast<char>(s.state));
      lastBegin = s.begin;
    }
  }
  (void)rank;
  return std::move(w.buf);
}

Trace readBinaryV2(std::istream& rawIs, const ReadOptions& options,
                   ReadReport* report) {
  // magic already consumed by the caller
  detail::CountingSource src{rawIs, detail::kMagicLen};
  const detail::V2Header h = detail::readV2Header(src, options);
  if (report) report->totalRanks = h.ranks;
  const Rank ranks = h.ranks;
  // Mutable copy: decode failures join the table-budget failures below.
  std::vector<std::string> failures = h.failures;

  // Shard data. Read in bounded chunks instead of sizing the buffer from
  // the (untrusted) byte total upfront: memory grows only as bytes actually
  // arrive, so a tiny file claiming terabytes stays tiny in RSS and fails
  // as soon as the stream runs dry.
  std::string blob;
  constexpr std::uint64_t kChunk = 4u << 20;
  blob.reserve(static_cast<std::size_t>(std::min(h.totalBytes, kChunk)));
  std::uint64_t blobGot = 0;
  while (blobGot < h.totalBytes) {
    const std::uint64_t want = std::min(kChunk, h.totalBytes - blobGot);
    blob.resize(static_cast<std::size_t>(blobGot + want));
    const std::uint64_t got = src.readSome(blob.data() + blobGot, want);
    blobGot += got;
    if (got < want) {
      blob.resize(static_cast<std::size_t>(blobGot));
      break;
    }
  }
  if (blobGot < h.totalBytes && options.strict)
    throw TraceError("binary trace truncated in shard data (have " +
                     std::to_string(blobGot) + " of " +
                     std::to_string(h.totalBytes) + " bytes)");
  if (blobGot == h.totalBytes) {
    // The shard table accounts for every remaining byte; anything after it
    // means the file was appended to or mis-framed (e.g. concatenated
    // traces). Fatal in strict mode, warned in degrade mode — the shards
    // themselves are still intact.
    char extra = 0;
    if (src.readSome(&extra, 1) == 1) {
      if (options.strict)
        throw TraceError("trailing garbage after shard data at offset " +
                         std::to_string(src.consumed - 1));
      support::logWarn("binary trace has trailing garbage after shard data; ignored");
    }
  }

  // Shards are independent; decode them in parallel, each into its own
  // slot, then append in rank order — the decoded trace is identical for
  // any thread count. Failures are captured per slot: strict mode rethrows
  // the lowest-rank one, non-strict drops those shards and proceeds.
  const auto& offsets = h.offsets;
  for (Rank r = 0; r < ranks; ++r) {
    if (failures[r].empty() && offsets[r] + h.shardBytes[r] > blobGot)
      failures[r] = "shard data truncated [shard=" + std::to_string(r) +
                    ", rank=" + std::to_string(r) +
                    ", offset=" + std::to_string(h.dataStart + offsets[r]) + "]";
  }
  std::vector<detail::DecodedShard> shards(ranks);
  support::globalPool().parallelFor(ranks, [&](std::size_t r) {
    if (!failures[r].empty()) return;
    detail::ByteReader reader(blob.data() + offsets[r],
                              blob.data() + offsets[r] + h.shardBytes[r]);
    try {
      shards[r] = detail::decodeShard(reader, static_cast<Rank>(r), h.counts[r],
                                      h.durationNs, h.dataStart + offsets[r]);
    } catch (const Error& e) {
      failures[r] = support::strippedMessage(e);
    }
  });

  std::size_t dropped = 0;
  for (Rank r = 0; r < ranks; ++r) {
    if (failures[r].empty()) continue;
    if (options.strict) throw TraceError(failures[r]);
    ++dropped;
    detail::noteShardDrop(r, h.dataStart + offsets[r], failures[r], report);
  }
  if (dropped == ranks)
    throw TraceError("all " + std::to_string(ranks) +
                     " shards corrupt; first: " + failures[0]);
  detail::noteDegradedRead(dropped);

  Trace trace(h.appName, ranks);
  trace.setDurationNs(h.durationNs);
  for (auto& shard : shards) {
    for (auto& e : shard.events) trace.addEvent(e);
    for (auto& s : shard.samples) trace.addSample(s);
    for (auto& s : shard.states) trace.addState(s);
  }
  trace.finalize();
  return trace;
}

// ---------------------------------------------------------------------------
// V1 (legacy) reader — interleaved-rank streams, sequential by design
// ---------------------------------------------------------------------------

Trace readBinaryV1(std::istream& is) {
  const auto nameLen = getVarint(is);
  if (nameLen > 4096) throw TraceError("binary trace app name too long");
  std::string name(nameLen, '\0');
  is.read(name.data(), static_cast<std::streamsize>(nameLen));
  if (is.gcount() != static_cast<std::streamsize>(nameLen))
    throw TraceError("binary trace truncated in app name");
  const auto rankCount = getVarint(is);
  if (rankCount == 0) throw TraceError("binary trace has zero ranks");
  // V1 has no shard table to budget ranks against, so the decoder's
  // per-rank delta contexts (~56 B each) are sized directly from this
  // untrusted count; bound it before allocating. 2^20 is far beyond any
  // trace the legacy format was ever used for.
  if (rankCount > (1u << 20))
    throw TraceError("binary trace rank count implausible");
  const auto ranks = static_cast<Rank>(rankCount);
  const auto duration = getVarint(is);
  const auto nEvents = getVarint(is);
  const auto nSamples = getVarint(is);
  const auto nStates = getVarint(is);

  Trace trace(name, ranks);
  trace.setDurationNs(duration);
  {
    std::vector<RankDeltas> ctx(ranks);
    for (std::uint64_t i = 0; i < nEvents; ++i) {
      Event e;
      e.rank = static_cast<Rank>(getVarint(is));
      if (e.rank >= ranks) throw TraceError("binary event rank out of range");
      e.time = ctx[e.rank].lastTime + getVarint(is);
      ctx[e.rank].lastTime = e.time;
      const int kind = is.get();
      if (kind < 0 || kind > static_cast<int>(EventKind::MpiEnd))
        throw TraceError("binary event kind invalid");
      e.kind = static_cast<EventKind>(kind);
      e.value = static_cast<std::uint32_t>(getVarint(is));
      e.counters = getCounterDeltas(is, ctx[e.rank]);
      trace.addEvent(e);
    }
  }
  {
    std::vector<RankDeltas> ctx(ranks);
    for (std::uint64_t i = 0; i < nSamples; ++i) {
      Sample s;
      s.rank = static_cast<Rank>(getVarint(is));
      if (s.rank >= ranks) throw TraceError("binary sample rank out of range");
      s.time = ctx[s.rank].lastTime + getVarint(is);
      ctx[s.rank].lastTime = s.time;
      const int mask = is.get();
      if (mask < 0 || mask > static_cast<int>(kAllCountersMask))
        throw TraceError("binary sample mask invalid");
      s.validMask = static_cast<CounterMask>(mask);
      s.regionId = static_cast<std::uint32_t>(getVarint(is));
      for (std::size_t c = 0; c < counters::kNumCounters; ++c) {
        if (!maskHas(s.validMask, static_cast<counters::CounterId>(c))) continue;
        s.counters.values[c] = ctx[s.rank].lastCounters.values[c] + getVarint(is);
        ctx[s.rank].lastCounters.values[c] = s.counters.values[c];
      }
      trace.addSample(s);
    }
  }
  {
    std::vector<TimeNs> lastBegin(ranks, 0);
    for (std::uint64_t i = 0; i < nStates; ++i) {
      StateInterval s;
      s.rank = static_cast<Rank>(getVarint(is));
      if (s.rank >= ranks) throw TraceError("binary state rank out of range");
      s.begin = lastBegin[s.rank] + getVarint(is);
      s.end = s.begin + getVarint(is);
      const int state = is.get();
      if (state < 0 || state > static_cast<int>(State::Idle))
        throw TraceError("binary state code invalid");
      s.state = static_cast<State>(state);
      lastBegin[s.rank] = s.begin;
      trace.addState(s);
    }
  }
  trace.finalize();
  return trace;
}

}  // namespace

void writeBinary(const Trace& trace, std::ostream& os) {
  if (!trace.finalized())
    throw TraceError("binary export requires a finalized trace");
  telemetry::Span span("trace.write_binary");
  span.attr("app", trace.appName());
  span.attr("format", "UVTB2");
  telemetry::count("trace.records_written", trace.events().size() +
                                                trace.samples().size() +
                                                trace.states().size());

  const Rank ranks = trace.numRanks();
  const auto eventRanges = rankRanges(trace.events(), ranks);
  const auto sampleRanges = rankRanges(trace.samples(), ranks);
  const auto stateRanges = rankRanges(trace.states(), ranks);

  // Encode every rank's shard on the pool; each job owns its slot, and the
  // shards are emitted in rank order, so the byte stream is identical for
  // any thread count.
  std::vector<std::string> shards(ranks);
  support::globalPool().parallelFor(ranks, [&](std::size_t r) {
    shards[r] = encodeShard(trace, static_cast<Rank>(r), eventRanges[r],
                            sampleRanges[r], stateRanges[r]);
  });

  os.write(detail::kMagicV2, detail::kMagicLen);
  putVarint(os, trace.appName().size());
  os.write(trace.appName().data(),
           static_cast<std::streamsize>(trace.appName().size()));
  putVarint(os, ranks);
  putVarint(os, trace.durationNs());
  putVarint(os, trace.events().size());
  putVarint(os, trace.samples().size());
  putVarint(os, trace.states().size());
  for (Rank r = 0; r < ranks; ++r) {
    putVarint(os, eventRanges[r].second - eventRanges[r].first);
    putVarint(os, sampleRanges[r].second - sampleRanges[r].first);
    putVarint(os, stateRanges[r].second - stateRanges[r].first);
    putVarint(os, shards[r].size());
  }
  for (const auto& shard : shards)
    os.write(shard.data(), static_cast<std::streamsize>(shard.size()));
}

Trace readBinary(std::istream& is, const ReadOptions& options,
                 ReadReport* report) {
  telemetry::Span span("trace.read_binary");
  char magic[detail::kMagicLen];
  is.read(magic, detail::kMagicLen);
  if (is.gcount() != static_cast<std::streamsize>(detail::kMagicLen))
    throw TraceError("not a binary unveil trace (bad magic)");
  const std::string_view seen(magic, detail::kMagicLen);
  Trace trace = [&] {
    if (seen == std::string_view(detail::kMagicV2, detail::kMagicLen))
      return readBinaryV2(is, options, report);
    if (seen == std::string_view(detail::kMagicV1, detail::kMagicLen))
      return readBinaryV1(is);
    throw TraceError("not a binary unveil trace (bad magic)");
  }();
  const auto stats = trace.stats();
  span.attr("app", trace.appName());
  span.attr("records", stats.totalRecords);
  if (report) span.attr("shards_dropped", report->droppedShards.size());
  telemetry::count("trace.records_read", stats.totalRecords);
  return trace;
}

void writeBinaryFile(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for writing: " + path);
  if (const auto spec = support::activeFaultSpec(); spec && spec->any()) {
    support::FaultyStreamBuf buf(f.rdbuf(), *spec);
    std::ostream os(&buf);
    writeBinary(trace, os);
    os.flush();
    if (!os.good())
      throw Error(support::ErrorContext{}.with("file", path).annotate(
          "write failed (disk full or I/O error)"));
    return;
  }
  writeBinary(trace, f);
  f.flush();
  // An ofstream swallows ENOSPC/EIO silently; without this check a full
  // disk yields a truncated file and a success return.
  if (!f.good())
    throw Error(support::ErrorContext{}.with("file", path).annotate(
        "write failed (disk full or I/O error)"));
}

Trace readBinaryFile(const std::string& path, const ReadOptions& options,
                     ReadReport* report) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  try {
    if (const auto spec = support::activeFaultSpec(); spec && spec->any()) {
      support::FaultyStreamBuf buf(f.rdbuf(), *spec);
      std::istream is(&buf);
      return readBinary(is, options, report);
    }
    return readBinary(f, options, report);
  } catch (const Error& e) {
    support::rethrowTraceErrorWith(e, support::ErrorContext{}.with("file", path));
  }
}

std::size_t binarySize(const Trace& trace) {
  std::ostringstream os(std::ios::binary);
  writeBinary(trace, os);
  return os.str().size();
}

Trace readAutoFile(const std::string& path, const ReadOptions& options,
                   ReadReport* report) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  char first = 0;
  f.get(first);
  f.unget();
  try {
    if (const auto spec = support::activeFaultSpec(); spec && spec->any()) {
      support::FaultyStreamBuf buf(f.rdbuf(), *spec);
      std::istream is(&buf);
      return first == 'U' ? readBinary(is, options, report) : read(is);
    }
    return first == 'U' ? readBinary(f, options, report) : read(f);
  } catch (const Error& e) {
    support::rethrowTraceErrorWith(e, support::ErrorContext{}.with("file", path));
  }
}

}  // namespace unveil::trace
