#include "unveil/trace/binary_io.hpp"

#include "unveil/trace/io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::trace {

namespace {

constexpr char kMagic[] = "UVTB1\n";
constexpr std::size_t kMagicLen = 6;

void putVarint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t getVarint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof())
      throw TraceError("binary trace truncated inside varint");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw TraceError("binary trace varint overflow");
  }
  return v;
}

/// Per-rank delta state for timestamps and cumulative counters.
struct RankDeltas {
  TimeNs lastTime = 0;
  counters::CounterSet lastCounters;
};

void putCounterDeltas(std::ostream& os, RankDeltas& d, const counters::CounterSet& c) {
  for (std::size_t i = 0; i < counters::kNumCounters; ++i) {
    UNVEIL_ASSERT(c.values[i] >= d.lastCounters.values[i],
                  "binary writer requires monotone counters (finalized trace)");
    putVarint(os, c.values[i] - d.lastCounters.values[i]);
  }
  d.lastCounters = c;
}

counters::CounterSet getCounterDeltas(std::istream& is, RankDeltas& d) {
  counters::CounterSet c;
  for (std::size_t i = 0; i < counters::kNumCounters; ++i)
    c.values[i] = d.lastCounters.values[i] + getVarint(is);
  d.lastCounters = c;
  return c;
}

}  // namespace

void writeBinary(const Trace& trace, std::ostream& os) {
  if (!trace.finalized())
    throw TraceError("binary export requires a finalized trace");
  telemetry::Span span("trace.write_binary");
  span.attr("app", trace.appName());
  telemetry::count("trace.records_written", trace.events().size() +
                                                trace.samples().size() +
                                                trace.states().size());
  os.write(kMagic, kMagicLen);
  putVarint(os, trace.appName().size());
  os.write(trace.appName().data(),
           static_cast<std::streamsize>(trace.appName().size()));
  putVarint(os, trace.numRanks());
  putVarint(os, trace.durationNs());
  putVarint(os, trace.events().size());
  putVarint(os, trace.samples().size());
  putVarint(os, trace.states().size());

  // Events and samples share one delta context per rank so interleaved
  // cumulative counters stay small; records are stored stream-by-stream but
  // each stream is (rank, time)-sorted, so deltas within a stream are
  // non-negative for time and counters. Separate contexts per stream keep
  // the invariant simple.
  {
    std::vector<RankDeltas> ctx(trace.numRanks());
    for (const auto& e : trace.events()) {
      putVarint(os, e.rank);
      putVarint(os, e.time - ctx[e.rank].lastTime);
      ctx[e.rank].lastTime = e.time;
      os.put(static_cast<char>(e.kind));
      putVarint(os, e.value);
      putCounterDeltas(os, ctx[e.rank], e.counters);
    }
  }
  {
    std::vector<RankDeltas> ctx(trace.numRanks());
    for (const auto& s : trace.samples()) {
      putVarint(os, s.rank);
      putVarint(os, s.time - ctx[s.rank].lastTime);
      ctx[s.rank].lastTime = s.time;
      os.put(static_cast<char>(s.validMask));
      putVarint(os, s.regionId);
      // Only valid counters are stored; the delta context advances per
      // counter on its own last valid observation.
      for (std::size_t i = 0; i < counters::kNumCounters; ++i) {
        if (!maskHas(s.validMask, static_cast<counters::CounterId>(i))) continue;
        UNVEIL_ASSERT(
            s.counters.values[i] >= ctx[s.rank].lastCounters.values[i],
            "binary writer requires monotone counters (finalized trace)");
        putVarint(os, s.counters.values[i] - ctx[s.rank].lastCounters.values[i]);
        ctx[s.rank].lastCounters.values[i] = s.counters.values[i];
      }
    }
  }
  {
    // States are (rank, begin)-sorted after finalize(), so begin deltas from
    // the previous *begin* are always non-negative (ends may interleave).
    std::vector<TimeNs> lastBegin(trace.numRanks(), 0);
    for (const auto& s : trace.states()) {
      putVarint(os, s.rank);
      putVarint(os, s.begin - lastBegin[s.rank]);
      putVarint(os, s.end - s.begin);
      os.put(static_cast<char>(s.state));
      lastBegin[s.rank] = s.begin;
    }
  }
}

Trace readBinary(std::istream& is) {
  telemetry::Span span("trace.read_binary");
  char magic[kMagicLen];
  is.read(magic, kMagicLen);
  if (is.gcount() != static_cast<std::streamsize>(kMagicLen) ||
      std::string_view(magic, kMagicLen) != std::string_view(kMagic, kMagicLen))
    throw TraceError("not a binary unveil trace (bad magic)");
  const auto nameLen = getVarint(is);
  if (nameLen > 4096) throw TraceError("binary trace app name too long");
  std::string name(nameLen, '\0');
  is.read(name.data(), static_cast<std::streamsize>(nameLen));
  if (is.gcount() != static_cast<std::streamsize>(nameLen))
    throw TraceError("binary trace truncated in app name");
  const auto ranks = static_cast<Rank>(getVarint(is));
  if (ranks == 0) throw TraceError("binary trace has zero ranks");
  const auto duration = getVarint(is);
  const auto nEvents = getVarint(is);
  const auto nSamples = getVarint(is);
  const auto nStates = getVarint(is);

  Trace trace(name, ranks);
  trace.setDurationNs(duration);
  {
    std::vector<RankDeltas> ctx(ranks);
    for (std::uint64_t i = 0; i < nEvents; ++i) {
      Event e;
      e.rank = static_cast<Rank>(getVarint(is));
      if (e.rank >= ranks) throw TraceError("binary event rank out of range");
      e.time = ctx[e.rank].lastTime + getVarint(is);
      ctx[e.rank].lastTime = e.time;
      const int kind = is.get();
      if (kind < 0 || kind > static_cast<int>(EventKind::MpiEnd))
        throw TraceError("binary event kind invalid");
      e.kind = static_cast<EventKind>(kind);
      e.value = static_cast<std::uint32_t>(getVarint(is));
      e.counters = getCounterDeltas(is, ctx[e.rank]);
      trace.addEvent(e);
    }
  }
  {
    std::vector<RankDeltas> ctx(ranks);
    for (std::uint64_t i = 0; i < nSamples; ++i) {
      Sample s;
      s.rank = static_cast<Rank>(getVarint(is));
      if (s.rank >= ranks) throw TraceError("binary sample rank out of range");
      s.time = ctx[s.rank].lastTime + getVarint(is);
      ctx[s.rank].lastTime = s.time;
      const int mask = is.get();
      if (mask < 0 || mask > static_cast<int>(kAllCountersMask))
        throw TraceError("binary sample mask invalid");
      s.validMask = static_cast<CounterMask>(mask);
      s.regionId = static_cast<std::uint32_t>(getVarint(is));
      for (std::size_t c = 0; c < counters::kNumCounters; ++c) {
        if (!maskHas(s.validMask, static_cast<counters::CounterId>(c))) continue;
        s.counters.values[c] = ctx[s.rank].lastCounters.values[c] + getVarint(is);
        ctx[s.rank].lastCounters.values[c] = s.counters.values[c];
      }
      trace.addSample(s);
    }
  }
  {
    std::vector<TimeNs> lastBegin(ranks, 0);
    for (std::uint64_t i = 0; i < nStates; ++i) {
      StateInterval s;
      s.rank = static_cast<Rank>(getVarint(is));
      if (s.rank >= ranks) throw TraceError("binary state rank out of range");
      s.begin = lastBegin[s.rank] + getVarint(is);
      s.end = s.begin + getVarint(is);
      const int state = is.get();
      if (state < 0 || state > static_cast<int>(State::Idle))
        throw TraceError("binary state code invalid");
      s.state = static_cast<State>(state);
      lastBegin[s.rank] = s.begin;
      trace.addState(s);
    }
  }
  trace.finalize();
  span.attr("app", trace.appName());
  span.attr("records", nEvents + nSamples + nStates);
  telemetry::count("trace.records_read", nEvents + nSamples + nStates);
  return trace;
}

void writeBinaryFile(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for writing: " + path);
  writeBinary(trace, f);
}

Trace readBinaryFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  return readBinary(f);
}

std::size_t binarySize(const Trace& trace) {
  std::ostringstream os(std::ios::binary);
  writeBinary(trace, os);
  return os.str().size();
}

Trace readAutoFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  char first = 0;
  f.get(first);
  f.unget();
  if (first == 'U') return readBinary(f);
  return read(f);
}

}  // namespace unveil::trace
