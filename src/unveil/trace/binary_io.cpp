#include "unveil/trace/binary_io.hpp"

#include "unveil/trace/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/error_context.hpp"
#include "unveil/support/faulty_stream.hpp"
#include "unveil/support/flight_recorder.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::trace {

namespace {

constexpr char kMagicV1[] = "UVTB1\n";
constexpr char kMagicV2[] = "UVTB2\n";
constexpr std::size_t kMagicLen = 6;

void putVarint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t getVarint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof())
      throw TraceError("binary trace truncated inside varint");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw TraceError("binary trace varint overflow");
  }
  return v;
}

/// Append-only byte sink for encoding one rank's shard in memory (shards
/// are built on worker threads, then written out in rank order).
struct ByteWriter {
  std::string buf;

  void put(char c) { buf.push_back(c); }
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf.push_back(static_cast<char>(v));
  }
};

/// Bounds-checked cursor over one rank's shard bytes.
struct ByteReader {
  const char* begin;
  const char* p;
  const char* end;

  ByteReader(const char* b, const char* e) : begin(b), p(b), end(e) {}

  [[nodiscard]] bool exhausted() const noexcept { return p == end; }
  /// Bytes consumed so far — offset of the next (possibly failing) byte.
  [[nodiscard]] std::uint64_t consumed() const noexcept {
    return static_cast<std::uint64_t>(p - begin);
  }
  int get() {
    if (p == end) throw TraceError("binary trace shard truncated");
    return static_cast<unsigned char>(*p++);
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const int c = get();
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) throw TraceError("binary trace varint overflow");
    }
    return v;
  }
};

/// Per-rank delta state for timestamps and cumulative counters.
struct RankDeltas {
  TimeNs lastTime = 0;
  counters::CounterSet lastCounters;
};

counters::CounterSet getCounterDeltas(std::istream& is, RankDeltas& d) {
  counters::CounterSet c;
  for (std::size_t i = 0; i < counters::kNumCounters; ++i)
    c.values[i] = d.lastCounters.values[i] + getVarint(is);
  d.lastCounters = c;
  return c;
}

/// Contiguous [begin, end) slice of a (rank, time)-sorted record vector
/// belonging to each rank.
template <typename Record>
std::vector<std::pair<std::size_t, std::size_t>> rankRanges(
    const std::vector<Record>& records, Rank ranks) {
  std::vector<std::pair<std::size_t, std::size_t>> out(ranks, {0, 0});
  std::size_t i = 0;
  while (i < records.size()) {
    const Rank r = records[i].rank;
    std::size_t j = i;
    while (j < records.size() && records[j].rank == r) ++j;
    out[r] = {i, j};
    i = j;
  }
  return out;
}

// ---------------------------------------------------------------------------
// V2 shard encode/decode (one rank, self-contained delta contexts)
// ---------------------------------------------------------------------------

struct ShardCounts {
  std::uint64_t events = 0;
  std::uint64_t samples = 0;
  std::uint64_t states = 0;
};

std::string encodeShard(const Trace& trace, Rank rank,
                        std::pair<std::size_t, std::size_t> eventRange,
                        std::pair<std::size_t, std::size_t> sampleRange,
                        std::pair<std::size_t, std::size_t> stateRange) {
  ByteWriter w;
  {
    RankDeltas d;
    for (std::size_t i = eventRange.first; i < eventRange.second; ++i) {
      const Event& e = trace.events()[i];
      w.varint(e.time - d.lastTime);
      d.lastTime = e.time;
      w.put(static_cast<char>(e.kind));
      w.varint(e.value);
      for (std::size_t c = 0; c < counters::kNumCounters; ++c) {
        UNVEIL_ASSERT(e.counters.values[c] >= d.lastCounters.values[c],
                      "binary writer requires monotone counters (finalized trace)");
        w.varint(e.counters.values[c] - d.lastCounters.values[c]);
      }
      d.lastCounters = e.counters;
    }
  }
  {
    RankDeltas d;
    for (std::size_t i = sampleRange.first; i < sampleRange.second; ++i) {
      const Sample& s = trace.samples()[i];
      w.varint(s.time - d.lastTime);
      d.lastTime = s.time;
      w.put(static_cast<char>(s.validMask));
      w.varint(s.regionId);
      // Only valid counters are stored; the delta context advances per
      // counter on its own last valid observation.
      for (std::size_t c = 0; c < counters::kNumCounters; ++c) {
        if (!maskHas(s.validMask, static_cast<counters::CounterId>(c))) continue;
        UNVEIL_ASSERT(s.counters.values[c] >= d.lastCounters.values[c],
                      "binary writer requires monotone counters (finalized trace)");
        w.varint(s.counters.values[c] - d.lastCounters.values[c]);
        d.lastCounters.values[c] = s.counters.values[c];
      }
    }
  }
  {
    // States are (rank, begin)-sorted after finalize(), so begin deltas
    // from the previous *begin* are always non-negative (ends interleave).
    TimeNs lastBegin = 0;
    for (std::size_t i = stateRange.first; i < stateRange.second; ++i) {
      const StateInterval& s = trace.states()[i];
      w.varint(s.begin - lastBegin);
      w.varint(s.end - s.begin);
      w.put(static_cast<char>(s.state));
      lastBegin = s.begin;
    }
  }
  (void)rank;
  return std::move(w.buf);
}

/// Decoded contents of one rank's shard.
struct DecodedShard {
  std::vector<Event> events;
  std::vector<Sample> samples;
  std::vector<StateInterval> states;
};

/// Smallest possible encodings, used to bound untrusted record counts
/// against the bytes actually present before any allocation.
constexpr std::uint64_t kMinEventBytes = 3 + counters::kNumCounters;
constexpr std::uint64_t kMinSampleBytes = 3;  // all counters may be masked out
constexpr std::uint64_t kMinStateBytes = 3;

DecodedShard decodeShardBody(ByteReader& r, Rank rank, const ShardCounts& counts,
                             TimeNs duration) {
  DecodedShard out;
  // The counts come from an untrusted shard table. They have been validated
  // against the byte budget already, but clamp the reserves against the
  // bytes actually in hand anyway — a reserve() must never be able to
  // request more memory than the input paid for.
  const auto budget = static_cast<std::uint64_t>(r.end - r.p);
  out.events.reserve(std::min(counts.events, budget / kMinEventBytes));
  out.samples.reserve(std::min(counts.samples, budget / kMinSampleBytes));
  out.states.reserve(std::min(counts.states, budget / kMinStateBytes));
  // Delta-decoded times are monotone by construction, so bounding them
  // against the header duration only needs one compare per record; a
  // violation is shard-local corruption, caught here so it can be
  // attributed (and degraded) per shard instead of failing finalize().
  const bool checkTime = duration > 0;
  {
    RankDeltas d;
    for (std::uint64_t i = 0; i < counts.events; ++i) {
      Event e;
      e.rank = rank;
      e.time = d.lastTime + r.varint();
      d.lastTime = e.time;
      if (checkTime && e.time > duration)
        throw TraceError("binary event time exceeds trace duration");
      const int kind = r.get();
      if (kind > static_cast<int>(EventKind::MpiEnd))
        throw TraceError("binary event kind invalid");
      e.kind = static_cast<EventKind>(kind);
      e.value = static_cast<std::uint32_t>(r.varint());
      for (std::size_t c = 0; c < counters::kNumCounters; ++c)
        e.counters.values[c] = d.lastCounters.values[c] + r.varint();
      d.lastCounters = e.counters;
      out.events.push_back(e);
    }
  }
  {
    RankDeltas d;
    for (std::uint64_t i = 0; i < counts.samples; ++i) {
      Sample s;
      s.rank = rank;
      s.time = d.lastTime + r.varint();
      d.lastTime = s.time;
      if (checkTime && s.time > duration)
        throw TraceError("binary sample time exceeds trace duration");
      const int mask = r.get();
      if (mask > static_cast<int>(kAllCountersMask))
        throw TraceError("binary sample mask invalid");
      s.validMask = static_cast<CounterMask>(mask);
      s.regionId = static_cast<std::uint32_t>(r.varint());
      for (std::size_t c = 0; c < counters::kNumCounters; ++c) {
        if (!maskHas(s.validMask, static_cast<counters::CounterId>(c))) continue;
        s.counters.values[c] = d.lastCounters.values[c] + r.varint();
        d.lastCounters.values[c] = s.counters.values[c];
      }
      out.samples.push_back(s);
    }
  }
  {
    TimeNs lastBegin = 0;
    for (std::uint64_t i = 0; i < counts.states; ++i) {
      StateInterval s;
      s.rank = rank;
      s.begin = lastBegin + r.varint();
      s.end = s.begin + r.varint();
      if (checkTime && s.end > duration)
        throw TraceError("binary state interval exceeds trace duration");
      const int state = r.get();
      if (state > static_cast<int>(State::Idle))
        throw TraceError("binary state code invalid");
      s.state = static_cast<State>(state);
      lastBegin = s.begin;
      out.states.push_back(s);
    }
  }
  if (!r.exhausted())
    throw TraceError("binary trace shard has trailing bytes");
  return out;
}

/// Decodes one shard, annotating any failure with shard/rank and the
/// absolute file offset of the failing byte.
DecodedShard decodeShard(ByteReader& r, Rank rank, const ShardCounts& counts,
                         TimeNs duration, std::uint64_t shardFileOffset) {
  try {
    return decodeShardBody(r, rank, counts, duration);
  } catch (const Error& e) {
    support::rethrowTraceErrorWith(
        e, support::ErrorContext{}
               .with("shard", static_cast<std::uint64_t>(rank))
               .with("rank", static_cast<std::uint64_t>(rank))
               .with("offset", shardFileOffset + r.consumed()));
  }
}

/// Counting wrapper over the header stream so errors (and shard drops) can
/// report absolute file offsets even on non-seekable streams.
struct CountingSource {
  std::istream& is;
  std::uint64_t consumed;

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const int c = is.get();
      if (c == std::char_traits<char>::eof())
        throw TraceError("binary trace truncated inside varint at offset " +
                         std::to_string(consumed));
      ++consumed;
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) break;
      shift += 7;
      if (shift > 63)
        throw TraceError("binary trace varint overflow at offset " +
                         std::to_string(consumed));
    }
    return v;
  }

  /// Reads up to \p n bytes; returns the count actually read.
  std::uint64_t readSome(char* dst, std::uint64_t n) {
    is.read(dst, static_cast<std::streamsize>(n));
    const auto got = static_cast<std::uint64_t>(is.gcount());
    consumed += got;
    return got;
  }
};

std::uint64_t addChecked(std::uint64_t a, std::uint64_t b, const char* what) {
  std::uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    throw TraceError(std::string("binary trace ") + what + " overflows");
  return out;
}

Trace readBinaryV2(std::istream& rawIs, const ReadOptions& options,
                   ReadReport* report) {
  CountingSource src{rawIs, kMagicLen};  // magic already consumed by the caller
  const auto nameLen = src.varint();
  if (nameLen > 4096) throw TraceError("binary trace app name too long");
  std::string name(nameLen, '\0');
  if (src.readSome(name.data(), nameLen) != nameLen)
    throw TraceError("binary trace truncated in app name");
  const auto rankCount = src.varint();
  if (rankCount == 0) throw TraceError("binary trace has zero ranks");
  if (rankCount > (1u << 24))
    throw TraceError("binary trace rank count implausible");
  const auto ranks = static_cast<Rank>(rankCount);
  const auto duration = src.varint();
  const auto nEvents = src.varint();
  const auto nSamples = src.varint();
  const auto nStates = src.varint();
  if (report) report->totalRanks = ranks;

  // Shard table: per-rank record counts and encoded byte length. Every
  // field is untrusted. Structural rules (checked sums, header agreement)
  // are fatal: if the table itself is inconsistent, no shard boundary can
  // be believed. A count that cannot fit in its shard's byte budget is
  // shard-local — the budget caps what the decode stage may allocate, so
  // such a shard is failed (and in non-strict mode skipped) without ever
  // reserving what it claims.
  //
  // The per-rank vectors grow with the table as it is read (each entry
  // consumes at least 4 stream bytes), not from the claimed rank count: a
  // tiny file claiming 2^24 ranks fails on truncation after a few entries
  // instead of allocating gigabytes up front.
  std::vector<ShardCounts> counts;
  std::vector<std::uint64_t> shardBytes;
  std::vector<std::string> failures;
  const auto reserveHint = static_cast<std::size_t>(std::min<std::uint64_t>(rankCount, 4096));
  counts.reserve(reserveHint);
  shardBytes.reserve(reserveHint);
  failures.reserve(reserveHint);
  std::uint64_t totalEvents = 0, totalSamples = 0, totalStates = 0,
                totalBytes = 0;
  for (Rank r = 0; r < ranks; ++r) {
    counts.emplace_back();
    shardBytes.emplace_back();
    failures.emplace_back();
    counts[r].events = src.varint();
    counts[r].samples = src.varint();
    counts[r].states = src.varint();
    shardBytes[r] = src.varint();
    if (shardBytes[r] > (std::uint64_t{1} << 48))
      throw TraceError("binary trace shard byte length implausible (shard " +
                       std::to_string(r) + ")");
    totalEvents = addChecked(totalEvents, counts[r].events, "event count");
    totalSamples = addChecked(totalSamples, counts[r].samples, "sample count");
    totalStates = addChecked(totalStates, counts[r].states, "state count");
    totalBytes = addChecked(totalBytes, shardBytes[r], "shard byte total");
    if (counts[r].events > shardBytes[r] / kMinEventBytes ||
        counts[r].samples > shardBytes[r] / kMinSampleBytes ||
        counts[r].states > shardBytes[r] / kMinStateBytes) {
      failures[r] = "shard table claims more records than its " +
                    std::to_string(shardBytes[r]) +
                    " byte budget can encode [shard=" + std::to_string(r) +
                    ", rank=" + std::to_string(r) + "]";
    }
  }
  if (totalEvents != nEvents || totalSamples != nSamples || totalStates != nStates)
    throw TraceError("binary trace shard table disagrees with header counts");
  const std::uint64_t dataStart = src.consumed;
  if (options.strict) {
    for (Rank r = 0; r < ranks; ++r)
      if (!failures[r].empty()) throw TraceError(failures[r]);
  }

  // Shard data. Read in bounded chunks instead of sizing the buffer from
  // the (untrusted) byte total upfront: memory grows only as bytes actually
  // arrive, so a tiny file claiming terabytes stays tiny in RSS and fails
  // as soon as the stream runs dry.
  std::string blob;
  constexpr std::uint64_t kChunk = 4u << 20;
  blob.reserve(static_cast<std::size_t>(std::min(totalBytes, kChunk)));
  std::uint64_t blobGot = 0;
  while (blobGot < totalBytes) {
    const std::uint64_t want = std::min(kChunk, totalBytes - blobGot);
    blob.resize(static_cast<std::size_t>(blobGot + want));
    const std::uint64_t got = src.readSome(blob.data() + blobGot, want);
    blobGot += got;
    if (got < want) {
      blob.resize(static_cast<std::size_t>(blobGot));
      break;
    }
  }
  if (blobGot < totalBytes && options.strict)
    throw TraceError("binary trace truncated in shard data (have " +
                     std::to_string(blobGot) + " of " +
                     std::to_string(totalBytes) + " bytes)");
  if (blobGot == totalBytes) {
    // The shard table accounts for every remaining byte; anything after it
    // means the file was appended to or mis-framed (e.g. concatenated
    // traces). Fatal in strict mode, warned in degrade mode — the shards
    // themselves are still intact.
    char extra = 0;
    if (src.readSome(&extra, 1) == 1) {
      if (options.strict)
        throw TraceError("trailing garbage after shard data at offset " +
                         std::to_string(src.consumed - 1));
      support::logWarn("binary trace has trailing garbage after shard data; ignored");
    }
  }

  // Shards are independent; decode them in parallel, each into its own
  // slot, then append in rank order — the decoded trace is identical for
  // any thread count. Failures are captured per slot: strict mode rethrows
  // the lowest-rank one, non-strict drops those shards and proceeds.
  std::vector<std::uint64_t> offsets(ranks, 0);
  for (Rank r = 1; r < ranks; ++r) offsets[r] = offsets[r - 1] + shardBytes[r - 1];
  for (Rank r = 0; r < ranks; ++r) {
    if (failures[r].empty() && offsets[r] + shardBytes[r] > blobGot)
      failures[r] = "shard data truncated [shard=" + std::to_string(r) +
                    ", rank=" + std::to_string(r) +
                    ", offset=" + std::to_string(dataStart + offsets[r]) + "]";
  }
  std::vector<DecodedShard> shards(ranks);
  support::globalPool().parallelFor(ranks, [&](std::size_t r) {
    if (!failures[r].empty()) return;
    ByteReader reader(blob.data() + offsets[r],
                      blob.data() + offsets[r] + shardBytes[r]);
    try {
      shards[r] = decodeShard(reader, static_cast<Rank>(r), counts[r], duration,
                              dataStart + offsets[r]);
    } catch (const Error& e) {
      failures[r] = support::strippedMessage(e);
    }
  });

  std::size_t dropped = 0;
  for (Rank r = 0; r < ranks; ++r) {
    if (failures[r].empty()) continue;
    if (options.strict) throw TraceError(failures[r]);
    ++dropped;
    support::logWarn("skipping corrupt trace shard: " + failures[r]);
    support::flightRecord(support::FlightKind::ShardDrop, failures[r]);
    if (report)
      report->droppedShards.push_back(
          {r, dataStart + offsets[r], failures[r]});
  }
  if (dropped == ranks)
    throw TraceError("all " + std::to_string(ranks) +
                     " shards corrupt; first: " + failures[0]);
  if (dropped > 0) {
    telemetry::count("trace.shards_dropped", dropped);
    // Degraded-but-continuing is exactly the situation a later "why were
    // those shards bad" investigation needs context for; snapshot the ring
    // (which now holds the per-shard failure reasons) while it is fresh.
    auto& recorder = support::FlightRecorder::instance();
    if (recorder.enabled() && recorder.dumpOnDegradation()) {
      if (recorder.dump("shard-degradation"))
        support::logWarn("flight recorder -> " + recorder.dumpPath());
    }
  }

  Trace trace(name, ranks);
  trace.setDurationNs(duration);
  for (auto& shard : shards) {
    for (auto& e : shard.events) trace.addEvent(e);
    for (auto& s : shard.samples) trace.addSample(s);
    for (auto& s : shard.states) trace.addState(s);
  }
  trace.finalize();
  return trace;
}

// ---------------------------------------------------------------------------
// V1 (legacy) reader — interleaved-rank streams, sequential by design
// ---------------------------------------------------------------------------

Trace readBinaryV1(std::istream& is) {
  const auto nameLen = getVarint(is);
  if (nameLen > 4096) throw TraceError("binary trace app name too long");
  std::string name(nameLen, '\0');
  is.read(name.data(), static_cast<std::streamsize>(nameLen));
  if (is.gcount() != static_cast<std::streamsize>(nameLen))
    throw TraceError("binary trace truncated in app name");
  const auto rankCount = getVarint(is);
  if (rankCount == 0) throw TraceError("binary trace has zero ranks");
  // V1 has no shard table to budget ranks against, so the decoder's
  // per-rank delta contexts (~56 B each) are sized directly from this
  // untrusted count; bound it before allocating. 2^20 is far beyond any
  // trace the legacy format was ever used for.
  if (rankCount > (1u << 20))
    throw TraceError("binary trace rank count implausible");
  const auto ranks = static_cast<Rank>(rankCount);
  const auto duration = getVarint(is);
  const auto nEvents = getVarint(is);
  const auto nSamples = getVarint(is);
  const auto nStates = getVarint(is);

  Trace trace(name, ranks);
  trace.setDurationNs(duration);
  {
    std::vector<RankDeltas> ctx(ranks);
    for (std::uint64_t i = 0; i < nEvents; ++i) {
      Event e;
      e.rank = static_cast<Rank>(getVarint(is));
      if (e.rank >= ranks) throw TraceError("binary event rank out of range");
      e.time = ctx[e.rank].lastTime + getVarint(is);
      ctx[e.rank].lastTime = e.time;
      const int kind = is.get();
      if (kind < 0 || kind > static_cast<int>(EventKind::MpiEnd))
        throw TraceError("binary event kind invalid");
      e.kind = static_cast<EventKind>(kind);
      e.value = static_cast<std::uint32_t>(getVarint(is));
      e.counters = getCounterDeltas(is, ctx[e.rank]);
      trace.addEvent(e);
    }
  }
  {
    std::vector<RankDeltas> ctx(ranks);
    for (std::uint64_t i = 0; i < nSamples; ++i) {
      Sample s;
      s.rank = static_cast<Rank>(getVarint(is));
      if (s.rank >= ranks) throw TraceError("binary sample rank out of range");
      s.time = ctx[s.rank].lastTime + getVarint(is);
      ctx[s.rank].lastTime = s.time;
      const int mask = is.get();
      if (mask < 0 || mask > static_cast<int>(kAllCountersMask))
        throw TraceError("binary sample mask invalid");
      s.validMask = static_cast<CounterMask>(mask);
      s.regionId = static_cast<std::uint32_t>(getVarint(is));
      for (std::size_t c = 0; c < counters::kNumCounters; ++c) {
        if (!maskHas(s.validMask, static_cast<counters::CounterId>(c))) continue;
        s.counters.values[c] = ctx[s.rank].lastCounters.values[c] + getVarint(is);
        ctx[s.rank].lastCounters.values[c] = s.counters.values[c];
      }
      trace.addSample(s);
    }
  }
  {
    std::vector<TimeNs> lastBegin(ranks, 0);
    for (std::uint64_t i = 0; i < nStates; ++i) {
      StateInterval s;
      s.rank = static_cast<Rank>(getVarint(is));
      if (s.rank >= ranks) throw TraceError("binary state rank out of range");
      s.begin = lastBegin[s.rank] + getVarint(is);
      s.end = s.begin + getVarint(is);
      const int state = is.get();
      if (state < 0 || state > static_cast<int>(State::Idle))
        throw TraceError("binary state code invalid");
      s.state = static_cast<State>(state);
      lastBegin[s.rank] = s.begin;
      trace.addState(s);
    }
  }
  trace.finalize();
  return trace;
}

}  // namespace

void writeBinary(const Trace& trace, std::ostream& os) {
  if (!trace.finalized())
    throw TraceError("binary export requires a finalized trace");
  telemetry::Span span("trace.write_binary");
  span.attr("app", trace.appName());
  span.attr("format", "UVTB2");
  telemetry::count("trace.records_written", trace.events().size() +
                                                trace.samples().size() +
                                                trace.states().size());

  const Rank ranks = trace.numRanks();
  const auto eventRanges = rankRanges(trace.events(), ranks);
  const auto sampleRanges = rankRanges(trace.samples(), ranks);
  const auto stateRanges = rankRanges(trace.states(), ranks);

  // Encode every rank's shard on the pool; each job owns its slot, and the
  // shards are emitted in rank order, so the byte stream is identical for
  // any thread count.
  std::vector<std::string> shards(ranks);
  support::globalPool().parallelFor(ranks, [&](std::size_t r) {
    shards[r] = encodeShard(trace, static_cast<Rank>(r), eventRanges[r],
                            sampleRanges[r], stateRanges[r]);
  });

  os.write(kMagicV2, kMagicLen);
  putVarint(os, trace.appName().size());
  os.write(trace.appName().data(),
           static_cast<std::streamsize>(trace.appName().size()));
  putVarint(os, ranks);
  putVarint(os, trace.durationNs());
  putVarint(os, trace.events().size());
  putVarint(os, trace.samples().size());
  putVarint(os, trace.states().size());
  for (Rank r = 0; r < ranks; ++r) {
    putVarint(os, eventRanges[r].second - eventRanges[r].first);
    putVarint(os, sampleRanges[r].second - sampleRanges[r].first);
    putVarint(os, stateRanges[r].second - stateRanges[r].first);
    putVarint(os, shards[r].size());
  }
  for (const auto& shard : shards)
    os.write(shard.data(), static_cast<std::streamsize>(shard.size()));
}

Trace readBinary(std::istream& is, const ReadOptions& options,
                 ReadReport* report) {
  telemetry::Span span("trace.read_binary");
  char magic[kMagicLen];
  is.read(magic, kMagicLen);
  if (is.gcount() != static_cast<std::streamsize>(kMagicLen))
    throw TraceError("not a binary unveil trace (bad magic)");
  const std::string_view seen(magic, kMagicLen);
  Trace trace = [&] {
    if (seen == std::string_view(kMagicV2, kMagicLen))
      return readBinaryV2(is, options, report);
    if (seen == std::string_view(kMagicV1, kMagicLen)) return readBinaryV1(is);
    throw TraceError("not a binary unveil trace (bad magic)");
  }();
  const auto stats = trace.stats();
  span.attr("app", trace.appName());
  span.attr("records", stats.totalRecords);
  if (report) span.attr("shards_dropped", report->droppedShards.size());
  telemetry::count("trace.records_read", stats.totalRecords);
  return trace;
}

void writeBinaryFile(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for writing: " + path);
  if (const auto spec = support::activeFaultSpec(); spec && spec->any()) {
    support::FaultyStreamBuf buf(f.rdbuf(), *spec);
    std::ostream os(&buf);
    writeBinary(trace, os);
    os.flush();
    if (!os.good())
      throw Error(support::ErrorContext{}.with("file", path).annotate(
          "write failed (disk full or I/O error)"));
    return;
  }
  writeBinary(trace, f);
  f.flush();
  // An ofstream swallows ENOSPC/EIO silently; without this check a full
  // disk yields a truncated file and a success return.
  if (!f.good())
    throw Error(support::ErrorContext{}.with("file", path).annotate(
        "write failed (disk full or I/O error)"));
}

Trace readBinaryFile(const std::string& path, const ReadOptions& options,
                     ReadReport* report) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  try {
    if (const auto spec = support::activeFaultSpec(); spec && spec->any()) {
      support::FaultyStreamBuf buf(f.rdbuf(), *spec);
      std::istream is(&buf);
      return readBinary(is, options, report);
    }
    return readBinary(f, options, report);
  } catch (const Error& e) {
    support::rethrowTraceErrorWith(e, support::ErrorContext{}.with("file", path));
  }
}

std::size_t binarySize(const Trace& trace) {
  std::ostringstream os(std::ios::binary);
  writeBinary(trace, os);
  return os.str().size();
}

Trace readAutoFile(const std::string& path, const ReadOptions& options,
                   ReadReport* report) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  char first = 0;
  f.get(first);
  f.unget();
  try {
    if (const auto spec = support::activeFaultSpec(); spec && spec->any()) {
      support::FaultyStreamBuf buf(f.rdbuf(), *spec);
      std::istream is(&buf);
      return first == 'U' ? readBinary(is, options, report) : read(is);
    }
    return first == 'U' ? readBinary(f, options, report) : read(f);
  } catch (const Error& e) {
    support::rethrowTraceErrorWith(e, support::ErrorContext{}.with("file", path));
  }
}

}  // namespace unveil::trace
