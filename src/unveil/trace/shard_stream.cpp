#include "unveil/trace/shard_stream.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "unveil/support/error.hpp"
#include "unveil/support/error_context.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/trace/uvtb2_detail.hpp"

namespace unveil::trace {

bool isShardStreamable(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[detail::kMagicLen];
  f.read(magic, detail::kMagicLen);
  if (f.gcount() != static_cast<std::streamsize>(detail::kMagicLen)) return false;
  return std::string_view(magic, detail::kMagicLen) ==
         std::string_view(detail::kMagicV2, detail::kMagicLen);
}

/// Stream state. Owns the file plus the optional fault-injection wrapper
/// (the wrapper keeps a raw pointer into the ifstream's rdbuf, so member
/// declaration order is load-bearing here).
struct ShardStreamReader::Impl {
  std::string path;
  StreamOptions options;
  std::ifstream file;
  std::optional<support::FaultyStreamBuf> faultBuf;
  std::optional<std::istream> faultStream;
  std::optional<detail::CountingSource> src;
  detail::V2Header h;
  Rank nextRank = 0;
  std::uint64_t blobGot = 0;    ///< Blob bytes actually read so far.
  bool streamDry = false;       ///< Hit EOF inside the blob.
  bool finished = false;        ///< End-of-stream bookkeeping done.
  std::size_t survived = 0;
  std::size_t dropped = 0;
  std::string firstFailure;

  [[noreturn]] void throwWithFile(const Error& e) const {
    support::rethrowTraceErrorWith(e,
                                   support::ErrorContext{}.with("file", path));
  }

  [[nodiscard]] std::string truncatedReason(Rank r) const {
    return "shard data truncated [shard=" + std::to_string(r) +
           ", rank=" + std::to_string(r) +
           ", offset=" + std::to_string(h.dataStart + h.offsets[r]) + "]";
  }
};

ShardStreamReader::ShardStreamReader(const std::string& path,
                                     StreamOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->path = path;
  impl_->options = options;
  impl_->file.open(path, std::ios::binary);
  if (!impl_->file) throw Error("cannot open for reading: " + path);
  // Per-request fault spec wins over the process-wide one; both wrap the
  // raw rdbuf exactly like readBinaryFile so injected faults hit the same
  // byte positions in either reader.
  std::optional<support::FaultSpec> spec = options.fault;
  if (!spec) spec = support::activeFaultSpec();
  std::istream* is = &impl_->file;
  if (spec && spec->any()) {
    impl_->faultBuf.emplace(impl_->file.rdbuf(), *spec);
    impl_->faultStream.emplace(&*impl_->faultBuf);
    is = &*impl_->faultStream;
  }
  try {
    char magic[detail::kMagicLen];
    is->read(magic, detail::kMagicLen);
    if (is->gcount() != static_cast<std::streamsize>(detail::kMagicLen))
      throw TraceError("not a binary unveil trace (bad magic)");
    const std::string_view seen(magic, detail::kMagicLen);
    if (seen == std::string_view(detail::kMagicV1, detail::kMagicLen))
      throw TraceError(
          "UVTB1 traces interleave ranks and cannot be shard-streamed; "
          "use the batch reader");
    if (seen != std::string_view(detail::kMagicV2, detail::kMagicLen))
      throw TraceError("not a binary unveil trace (bad magic)");
    impl_->src.emplace(detail::CountingSource{*is, detail::kMagicLen});
    impl_->h = detail::readV2Header(*impl_->src, options.read);
  } catch (const Error& e) {
    impl_->throwWithFile(e);
  }
  header_.appName = impl_->h.appName;
  header_.ranks = impl_->h.ranks;
  header_.durationNs = impl_->h.durationNs;
  header_.events = impl_->h.nEvents;
  header_.samples = impl_->h.nSamples;
  header_.states = impl_->h.nStates;
  report_.totalRanks = impl_->h.ranks;
}

ShardStreamReader::~ShardStreamReader() = default;

std::optional<ShardStreamReader::Shard> ShardStreamReader::next() {
  Impl& im = *impl_;
  const detail::V2Header& h = im.h;
  if (im.nextRank >= h.ranks) return std::nullopt;
  telemetry::Span span("trace.read_shard");
  const Rank r = im.nextRank++;
  span.attr("shard", static_cast<std::uint64_t>(r));

  Shard out;
  out.rank = r;
  out.offset = h.dataStart + h.offsets[r];
  out.bytes = h.shardBytes[r];

  std::string failure = h.failures[r];  // table-budget violation, if any
  std::string blob;
  if (im.streamDry) {
    // An earlier short read exhausted the file; every later shard is gone.
    if (failure.empty()) failure = im.truncatedReason(r);
  } else {
    // The shard's bytes must be consumed even when the table already failed
    // it — later shards live at fixed offsets behind them.
    blob.resize(static_cast<std::size_t>(h.shardBytes[r]));
    const std::uint64_t got = im.src->readSome(blob.data(), h.shardBytes[r]);
    im.blobGot += got;
    if (got < h.shardBytes[r]) {
      im.streamDry = true;
      if (im.options.read.strict) {
        // Batch reads the whole blob first, so its "have N of M" counts all
        // bytes present; a short read here means EOF, so the totals agree.
        try {
          throw TraceError("binary trace truncated in shard data (have " +
                           std::to_string(im.blobGot) + " of " +
                           std::to_string(h.totalBytes) + " bytes)");
        } catch (const Error& e) {
          im.throwWithFile(e);
        }
      }
      if (failure.empty()) failure = im.truncatedReason(r);
    }
  }

  if (failure.empty()) {
    detail::ByteReader reader(blob.data(), blob.data() + blob.size());
    try {
      detail::DecodedShard d = detail::decodeShard(
          reader, r, h.counts[r], h.durationNs, out.offset);
      // The encoded bytes are spent; free them before building the trace so
      // the peak while this shard is resident is decoded + trace, not
      // decoded + trace + blob (this reader's whole job is a tight bound).
      blob.clear();
      blob.shrink_to_fit();
      // A single-rank trace that still declares the full rank count: burst
      // ranks, SPMD scoring and rank-range bookkeeping downstream must see
      // the same world a batch read produces.
      Trace t(h.appName, h.ranks);
      t.setDurationNs(h.durationNs);
      for (auto& e : d.events) t.addEvent(e);
      d.events.clear();
      d.events.shrink_to_fit();
      for (auto& s : d.samples) t.addSample(s);
      d.samples.clear();
      d.samples.shrink_to_fit();
      for (auto& s : d.states) t.addState(s);
      d.states.clear();
      d.states.shrink_to_fit();
      t.finalize();
      out.trace = std::move(t);
    } catch (const Error& e) {
      failure = support::strippedMessage(e);
    }
  }

  if (!failure.empty()) {
    if (im.options.read.strict) {
      try {
        throw TraceError(failure);
      } catch (const Error& e) {
        im.throwWithFile(e);
      }
    }
    ++im.dropped;
    if (im.firstFailure.empty()) im.firstFailure = failure;
    if (im.options.quietDrops) {
      report_.droppedShards.push_back({r, out.offset, failure});
    } else {
      detail::noteShardDrop(r, out.offset, failure, &report_);
    }
    out.dropped = true;
    out.dropReason = failure;
  } else {
    ++im.survived;
    span.attr("records", out.trace.events().size() +
                             out.trace.samples().size() +
                             out.trace.states().size());
  }

  if (im.nextRank >= h.ranks && !im.finished) {
    im.finished = true;
    if (im.survived == 0) {
      try {
        throw TraceError("all " + std::to_string(h.ranks) +
                         " shards corrupt; first: " + im.firstFailure);
      } catch (const Error& e) {
        im.throwWithFile(e);
      }
    }
    if (!im.streamDry) {
      // The shard table accounts for every remaining byte; anything after
      // it means the file was appended to or mis-framed. Fatal in strict
      // mode, warned in degrade mode — the shards themselves are intact.
      char extra = 0;
      if (im.src->readSome(&extra, 1) == 1) {
        if (im.options.read.strict) {
          try {
            throw TraceError("trailing garbage after shard data at offset " +
                             std::to_string(im.src->consumed - 1));
          } catch (const Error& e) {
            im.throwWithFile(e);
          }
        }
        if (!im.options.quietDrops)
          support::logWarn(
              "binary trace has trailing garbage after shard data; ignored");
      }
    }
    if (!im.options.quietDrops) detail::noteDegradedRead(im.dropped);
  }
  return out;
}

}  // namespace unveil::trace
