#pragma once

/// \file paraver.hpp
/// Paraver trace export (.prv / .pcf / .row triple).
///
/// The paper's toolchain (Extrae → Paraver) consumes this format, so unveil
/// traces can be inspected with the same GUI the authors used. We emit the
/// subset of the Paraver 2.x text format our records map onto:
///
///   .prv  header `#Paraver (dd/mm/yy at hh:mm):totalNs:1(nRanks):1:nRanks(1:1,…)`
///         state records   `1:cpu:app:task:thread:begin:end:state`
///         event records   `2:cpu:app:task:thread:time:type:value[:type:value…]`
///   .pcf  labels for state codes, event types and values
///   .row  per-level object names
///
/// Mapping: rank r → (cpu r+1, app 1, task r+1, thread 1). Phase probes emit
/// event type 60000001 (value = phaseId+1 on entry, 0 on exit); MPI probes
/// emit 50000001 (value = op+1 / 0), mirroring Extrae's MPI event encoding.
/// Samples emit the hardware-counter event types 42000050.. with absolute
/// cumulative values.

#include <iosfwd>
#include <string>

#include "unveil/trace/trace.hpp"

namespace unveil::trace {

/// Paraver event-type codes used by the exporter.
struct ParaverCodes {
  static constexpr std::uint32_t kPhaseType = 60000001;
  static constexpr std::uint32_t kMpiType = 50000001;
  /// Counter event types: kCounterBase + counter index.
  static constexpr std::uint32_t kCounterBase = 42000050;
};

/// Writes the .prv body for \p trace to \p os. \p trace must be finalized.
void writeParaverPrv(const Trace& trace, std::ostream& os);

/// Writes the .pcf (configuration/labels) matching writeParaverPrv output.
void writeParaverPcf(const Trace& trace, std::ostream& os);

/// Writes the .row (object names) for \p trace.
void writeParaverRow(const Trace& trace, std::ostream& os);

/// Writes the triple `basePath.prv/.pcf/.row`. Throws unveil::Error on IO
/// failure, TraceError if \p trace is not finalized.
void exportParaver(const Trace& trace, const std::string& basePath);

}  // namespace unveil::trace
