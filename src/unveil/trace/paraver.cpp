#include "unveil/trace/paraver.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/error_context.hpp"

namespace unveil::trace {

namespace {

/// Object triple "cpu:app:task:thread" for a rank.
void writeObject(std::ostream& os, Rank r) {
  os << (r + 1) << ":1:" << (r + 1) << ":1";
}

/// Paraver state codes (match the .pcf we emit).
unsigned paraverState(State s) {
  switch (s) {
    case State::Compute: return 1;  // Running
    case State::Mpi: return 12;     // Group communication / MPI
    case State::Idle: return 0;     // Idle
  }
  return 0;
}

}  // namespace

void writeParaverPrv(const Trace& trace, std::ostream& os) {
  if (!trace.finalized()) throw TraceError("paraver export requires a finalized trace");
  const Rank n = trace.numRanks();
  // Fixed date stamp: traces are deterministic artifacts; embedding the
  // wall-clock date would break reproducible diffs.
  os << "#Paraver (01/01/11 at 00:00):" << trace.durationNs() << ":1(" << n
     << "):1:" << n << '(';
  for (Rank r = 0; r < n; ++r) os << (r ? "," : "") << "1:" << (r + 1);
  os << ")\n";

  // Records must be emitted in global time order for Paraver to stream them.
  struct Line {
    TimeNs time;
    int order;  // tie-break: states before events at the same time
    std::string text;
  };
  std::vector<Line> lines;
  lines.reserve(trace.states().size() + trace.events().size() +
                trace.samples().size());

  for (const auto& s : trace.states()) {
    std::string text = "1:";
    {
      std::ostringstream ls;
      writeObject(ls, s.rank);
      ls << ':' << s.begin << ':' << s.end << ':' << paraverState(s.state);
      text += ls.str();
    }
    lines.push_back({s.begin, 0, std::move(text)});
  }
  for (const auto& e : trace.events()) {
    std::ostringstream ls;
    ls << "2:";
    writeObject(ls, e.rank);
    ls << ':' << e.time;
    switch (e.kind) {
      case EventKind::PhaseBegin:
        ls << ':' << ParaverCodes::kPhaseType << ':' << (e.value + 1);
        break;
      case EventKind::PhaseEnd:
        ls << ':' << ParaverCodes::kPhaseType << ":0";
        break;
      case EventKind::MpiBegin:
        ls << ':' << ParaverCodes::kMpiType << ':' << (e.value + 1);
        break;
      case EventKind::MpiEnd:
        ls << ':' << ParaverCodes::kMpiType << ":0";
        break;
    }
    lines.push_back({e.time, 1, ls.str()});
  }
  for (const auto& s : trace.samples()) {
    std::ostringstream ls;
    ls << "2:";
    writeObject(ls, s.rank);
    ls << ':' << s.time;
    for (std::size_t i = 0; i < counters::kNumCounters; ++i)
      ls << ':' << (ParaverCodes::kCounterBase + i) << ':' << s.counters.values[i];
    lines.push_back({s.time, 2, ls.str()});
  }

  std::stable_sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });
  for (const auto& line : lines) os << line.text << '\n';
}

void writeParaverPcf(const Trace& trace, std::ostream& os) {
  (void)trace;
  os << "DEFAULT_OPTIONS\n\nLEVEL               THREAD\nUNITS               NANOSEC\n\n";
  os << "STATES\n0    Idle\n1    Running\n12   MPI\n\n";
  os << "EVENT_TYPE\n0    " << ParaverCodes::kPhaseType << "    Computation phase\n";
  os << "VALUES\n0      End\n";
  // Phase values are application-specific; emit generic labels for the ids
  // the bundled apps use (1-based in the .prv).
  for (int i = 1; i <= 16; ++i) os << i << "      Phase " << (i - 1) << '\n';
  os << '\n';
  os << "EVENT_TYPE\n0    " << ParaverCodes::kMpiType << "    MPI call\n";
  os << "VALUES\n0      End\n";
  for (std::uint32_t op = 0; op <= static_cast<std::uint32_t>(MpiOp::Waitall); ++op)
    os << (op + 1) << "      " << mpiOpName(static_cast<MpiOp>(op)) << '\n';
  os << '\n';
  os << "EVENT_TYPE\n";
  for (std::size_t i = 0; i < counters::kNumCounters; ++i) {
    os << "0    " << (ParaverCodes::kCounterBase + i) << "    "
       << counters::counterName(static_cast<counters::CounterId>(i)) << '\n';
  }
  os << '\n';
}

void writeParaverRow(const Trace& trace, std::ostream& os) {
  const Rank n = trace.numRanks();
  os << "LEVEL CPU SIZE " << n << '\n';
  for (Rank r = 0; r < n; ++r) os << "CPU " << (r + 1) << '\n';
  os << "\nLEVEL TASK SIZE " << n << '\n';
  for (Rank r = 0; r < n; ++r) os << "Rank " << r << '\n';
  os << "\nLEVEL THREAD SIZE " << n << '\n';
  for (Rank r = 0; r < n; ++r) os << "Rank " << r << ".1\n";
}

void exportParaver(const Trace& trace, const std::string& basePath) {
  if (!trace.finalized()) throw TraceError("paraver export requires a finalized trace");
  const auto writeChecked = [&](const std::string& suffix, auto&& writer) {
    const std::string path = basePath + suffix;
    std::ofstream f(path);
    if (!f) throw Error("cannot open for writing: " + path);
    writer(trace, f);
    f.flush();
    if (!f.good())
      throw Error(support::ErrorContext{}.with("file", path).annotate(
          "write failed (disk full or I/O error)"));
  };
  writeChecked(".prv", [](const Trace& t, std::ostream& os) { writeParaverPrv(t, os); });
  writeChecked(".pcf", [](const Trace& t, std::ostream& os) { writeParaverPcf(t, os); });
  writeChecked(".row", [](const Trace& t, std::ostream& os) { writeParaverRow(t, os); });
}

}  // namespace unveil::trace
