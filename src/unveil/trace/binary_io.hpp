#pragma once

/// \file binary_io.hpp
/// Compact binary trace serialization (.utb).
///
/// The text format (io.hpp) is diffable and greppable; this one is for
/// volume. All integers are LEB128 varints; timestamps and hardware
/// counters are *delta-encoded per rank*, which is where the big win comes
/// from — counters are cumulative and timestamps monotone, so deltas are
/// small. Typical traces shrink 4–8x versus the text format.
///
/// Two on-disk versions exist:
///  - "UVTB1\n" (legacy, read-only): header then three interleaved-rank
///    record streams — inherently sequential to decode.
///  - "UVTB2\n" (current, written by writeBinary): header, a per-rank shard
///    table (record counts + encoded byte length per rank), then one
///    self-contained shard per rank holding that rank's events, samples and
///    states. Shards are independent, so writeBinary encodes them and
///    readBinary decodes them in parallel on support::globalPool(); shard
///    bytes and the decoded trace are bit-identical for any thread count
///    (shards are always emitted/merged in rank order).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "unveil/trace/trace.hpp"

namespace unveil::trace {

/// How the readers treat recoverable damage in a trace file.
///
/// UVTB2 shards are self-contained per rank, so one corrupt shard does not
/// poison the others. With strict=false a shard that fails to decode (or is
/// cut off by a truncated file) is skipped — recorded in the ReadReport,
/// warned via support::log and counted in telemetry ("trace.shards_dropped")
/// — and the surviving ranks are returned. Structural damage that cannot be
/// attributed to one shard (bad magic, truncated header, self-inconsistent
/// shard table) always throws, as does the degenerate case where every
/// shard is corrupt.
///
/// The library default is strict (fail fast on the first bad byte);
/// the CLI flips it to degrade unless --strict is given, because unattended
/// analysis over large trace collections should salvage what it can.
struct ReadOptions {
  bool strict = true;
};

/// One shard skipped by a non-strict read.
struct ShardDrop {
  Rank rank = 0;
  std::uint64_t offset = 0;  ///< Absolute file offset of the shard's data.
  std::string reason;
};

/// What a read salvaged and what it dropped.
struct ReadReport {
  std::vector<ShardDrop> droppedShards;
  Rank totalRanks = 0;
};

/// Writes \p trace in binary form. \p trace must be finalized (the delta
/// encoding relies on canonical record order).
void writeBinary(const Trace& trace, std::ostream& os);

/// Reads a binary trace; throws TraceError on malformed input. With
/// non-strict \p options, per-shard damage is skipped and reported in
/// \p report (when non-null) instead of thrown.
[[nodiscard]] Trace readBinary(std::istream& is, const ReadOptions& options = {},
                               ReadReport* report = nullptr);

/// File variants; throw unveil::Error on IO failure.
void writeBinaryFile(const Trace& trace, const std::string& path);
[[nodiscard]] Trace readBinaryFile(const std::string& path,
                                   const ReadOptions& options = {},
                                   ReadReport* report = nullptr);

/// Serialized size in bytes without materializing the output (for data-
/// volume accounting).
[[nodiscard]] std::size_t binarySize(const Trace& trace);

/// Reads a trace file in either format, sniffing the magic/header line.
[[nodiscard]] Trace readAutoFile(const std::string& path,
                                 const ReadOptions& options = {},
                                 ReadReport* report = nullptr);

}  // namespace unveil::trace
