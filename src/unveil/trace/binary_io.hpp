#pragma once

/// \file binary_io.hpp
/// Compact binary trace serialization (.utb).
///
/// The text format (io.hpp) is diffable and greppable; this one is for
/// volume. Layout: magic "UVTB1\n", header (app name, ranks, duration,
/// record counts), then the three record streams. All integers are LEB128
/// varints; timestamps and hardware counters are *delta-encoded per rank*,
/// which is where the big win comes from — counters are cumulative and
/// timestamps monotone, so deltas are small. Typical traces shrink 4–8x
/// versus the text format.

#include <iosfwd>
#include <string>

#include "unveil/trace/trace.hpp"

namespace unveil::trace {

/// Writes \p trace in binary form. \p trace must be finalized (the delta
/// encoding relies on canonical record order).
void writeBinary(const Trace& trace, std::ostream& os);

/// Reads a binary trace; throws TraceError on malformed input.
[[nodiscard]] Trace readBinary(std::istream& is);

/// File variants; throw unveil::Error on IO failure.
void writeBinaryFile(const Trace& trace, const std::string& path);
[[nodiscard]] Trace readBinaryFile(const std::string& path);

/// Serialized size in bytes without materializing the output (for data-
/// volume accounting).
[[nodiscard]] std::size_t binarySize(const Trace& trace);

/// Reads a trace file in either format, sniffing the magic/header line.
[[nodiscard]] Trace readAutoFile(const std::string& path);

}  // namespace unveil::trace
