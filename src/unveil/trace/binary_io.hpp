#pragma once

/// \file binary_io.hpp
/// Compact binary trace serialization (.utb).
///
/// The text format (io.hpp) is diffable and greppable; this one is for
/// volume. All integers are LEB128 varints; timestamps and hardware
/// counters are *delta-encoded per rank*, which is where the big win comes
/// from — counters are cumulative and timestamps monotone, so deltas are
/// small. Typical traces shrink 4–8x versus the text format.
///
/// Two on-disk versions exist:
///  - "UVTB1\n" (legacy, read-only): header then three interleaved-rank
///    record streams — inherently sequential to decode.
///  - "UVTB2\n" (current, written by writeBinary): header, a per-rank shard
///    table (record counts + encoded byte length per rank), then one
///    self-contained shard per rank holding that rank's events, samples and
///    states. Shards are independent, so writeBinary encodes them and
///    readBinary decodes them in parallel on support::globalPool(); shard
///    bytes and the decoded trace are bit-identical for any thread count
///    (shards are always emitted/merged in rank order).

#include <iosfwd>
#include <string>

#include "unveil/trace/trace.hpp"

namespace unveil::trace {

/// Writes \p trace in binary form. \p trace must be finalized (the delta
/// encoding relies on canonical record order).
void writeBinary(const Trace& trace, std::ostream& os);

/// Reads a binary trace; throws TraceError on malformed input.
[[nodiscard]] Trace readBinary(std::istream& is);

/// File variants; throw unveil::Error on IO failure.
void writeBinaryFile(const Trace& trace, const std::string& path);
[[nodiscard]] Trace readBinaryFile(const std::string& path);

/// Serialized size in bytes without materializing the output (for data-
/// volume accounting).
[[nodiscard]] std::size_t binarySize(const Trace& trace);

/// Reads a trace file in either format, sniffing the magic/header line.
[[nodiscard]] Trace readAutoFile(const std::string& path);

}  // namespace unveil::trace
