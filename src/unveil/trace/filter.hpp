#pragma once

/// \file filter.hpp
/// Trace slicing utilities: restrict a trace to a time window or a rank
/// subset. Production traces are routinely cut down before analysis (skip
/// initialization, focus on a representative region — exactly what the
/// group's ICPADS'11 follow-up automates); these are the primitives.

#include <vector>

#include "unveil/trace/trace.hpp"

namespace unveil::trace {

/// Returns the sub-trace of records overlapping [beginNs, endNs).
/// Punctual records (events, samples) are kept when begin <= t < end; state
/// intervals are kept when they overlap and are clipped to the window.
/// Timestamps are preserved (not rebased). The result is finalized.
/// Throws ConfigError when beginNs >= endNs.
[[nodiscard]] Trace sliceTime(const Trace& trace, TimeNs beginNs, TimeNs endNs);

/// Returns the sub-trace containing only the listed ranks. Rank ids are
/// preserved; numRanks stays the same so rank identities remain stable.
/// Throws ConfigError when \p ranks is empty or contains an out-of-range id.
[[nodiscard]] Trace selectRanks(const Trace& trace, const std::vector<Rank>& ranks);

}  // namespace unveil::trace
