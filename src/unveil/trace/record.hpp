#pragma once

/// \file record.hpp
/// Trace record types — the information content of an Extrae/Paraver trace
/// reduced to what clustering and folding consume.
///
/// Three record kinds exist, mirroring the paper's measurement setup:
///  - Event:  a punctual instrumentation probe (phase or MPI enter/exit)
///            carrying a full hardware-counter snapshot;
///  - Sample: an asynchronous sampling interrupt carrying a counter snapshot;
///  - StateInterval: a [begin, end) interval labelling what the rank was
///            doing (useful for timelines and data-volume accounting).
///
/// All timestamps are nanoseconds since application start. All counter
/// snapshots are cumulative per rank since rank start.

#include <cstdint>

#include "unveil/counters/counter.hpp"

namespace unveil::trace {

/// Nanoseconds since application start.
using TimeNs = std::uint64_t;

/// Zero-based MPI-style rank index.
using Rank = std::uint32_t;

/// What an instrumentation event marks.
enum class EventKind : std::uint8_t {
  PhaseBegin = 0,  ///< Entering a computation phase; value = phase id.
  PhaseEnd,        ///< Leaving a computation phase; value = phase id.
  MpiBegin,        ///< Entering an MPI operation; value = MpiOp.
  MpiEnd,          ///< Leaving an MPI operation; value = MpiOp.
};

/// MPI operation codes recorded in Mpi* events' value field.
enum class MpiOp : std::uint32_t {
  Send = 0,
  Recv,
  Allreduce,
  Barrier,
  Alltoall,
  Waitall,
};

/// Name of an MpiOp, e.g. "MPI_Allreduce".
[[nodiscard]] const char* mpiOpName(MpiOp op) noexcept;

/// A punctual instrumentation probe with a counter snapshot.
struct Event {
  Rank rank = 0;
  TimeNs time = 0;
  EventKind kind = EventKind::PhaseBegin;
  std::uint32_t value = 0;  ///< Phase id or MpiOp, per kind.
  counters::CounterSet counters;
};

/// Bit mask over CounterId indices; bit i set = counter i was read.
using CounterMask = std::uint8_t;

/// Mask with every modelled counter present.
inline constexpr CounterMask kAllCountersMask =
    static_cast<CounterMask>((1u << counters::kNumCounters) - 1u);

/// True when \p mask contains counter \p id.
[[nodiscard]] constexpr bool maskHas(CounterMask mask,
                                     counters::CounterId id) noexcept {
  return (mask >> counters::counterIndex(id)) & 1u;
}

/// An asynchronous sampling interrupt with a counter snapshot.
///
/// Real PMUs cannot read arbitrarily many counters at once; tools multiplex
/// by rotating counter sets between interrupts. validMask records which
/// counters this sample actually carries — values of absent counters are 0
/// and must be ignored.
/// Sample regionId value meaning "no code region attributed" (sample landed
/// outside computation, or callstack sampling was off).
inline constexpr std::uint32_t kNoRegion = 0;

struct Sample {
  Rank rank = 0;
  TimeNs time = 0;
  counters::CounterSet counters;
  CounterMask validMask = kAllCountersMask;
  /// Code-region attribution from the sampled callstack: 1 + the phase's
  /// region index, or kNoRegion. Folding region ids over many instances
  /// recovers the phase's internal code structure (see folding/regions.hpp).
  std::uint32_t regionId = kNoRegion;
};

/// What a rank was doing during an interval.
enum class State : std::uint8_t {
  Compute = 0,  ///< Useful computation (a burst).
  Mpi,          ///< Inside an MPI operation (incl. wait time).
  Idle,         ///< Blocked with nothing to do.
};

/// Name of a State ("compute"/"mpi"/"idle").
[[nodiscard]] const char* stateName(State s) noexcept;

/// A [begin, end) interval labelled with a State.
struct StateInterval {
  Rank rank = 0;
  TimeNs begin = 0;
  TimeNs end = 0;
  State state = State::Compute;
};

}  // namespace unveil::trace
