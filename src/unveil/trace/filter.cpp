#include "unveil/trace/filter.hpp"

#include <algorithm>

#include "unveil/support/error.hpp"

namespace unveil::trace {

Trace sliceTime(const Trace& trace, TimeNs beginNs, TimeNs endNs) {
  if (beginNs >= endNs) throw ConfigError("sliceTime requires begin < end");
  Trace out(trace.appName(), trace.numRanks());
  out.setDurationNs(std::min(endNs, trace.durationNs()));
  for (const auto& e : trace.events())
    if (e.time >= beginNs && e.time < endNs) out.addEvent(e);
  for (const auto& s : trace.samples())
    if (s.time >= beginNs && s.time < endNs) out.addSample(s);
  for (auto s : trace.states()) {
    if (s.end <= beginNs || s.begin >= endNs) continue;
    s.begin = std::max(s.begin, beginNs);
    s.end = std::min(s.end, endNs);
    out.addState(s);
  }
  out.finalize();
  return out;
}

Trace selectRanks(const Trace& trace, const std::vector<Rank>& ranks) {
  if (ranks.empty()) throw ConfigError("selectRanks requires at least one rank");
  std::vector<bool> keep(trace.numRanks(), false);
  for (Rank r : ranks) {
    if (r >= trace.numRanks()) throw ConfigError("selectRanks rank out of range");
    keep[r] = true;
  }
  Trace out(trace.appName(), trace.numRanks());
  out.setDurationNs(trace.durationNs());
  for (const auto& e : trace.events())
    if (keep[e.rank]) out.addEvent(e);
  for (const auto& s : trace.samples())
    if (keep[s.rank]) out.addSample(s);
  for (const auto& s : trace.states())
    if (keep[s.rank]) out.addState(s);
  out.finalize();
  return out;
}

}  // namespace unveil::trace
