#pragma once

/// \file trace.hpp
/// The Trace container: everything a measured run produced, plus validation
/// and accounting used by the data-volume experiment (T4).

#include <cstddef>
#include <string>
#include <vector>

#include "unveil/trace/record.hpp"

namespace unveil::trace {

/// Record counts and estimated serialized size of a trace.
struct TraceStats {
  std::size_t events = 0;
  std::size_t samples = 0;
  std::size_t states = 0;
  std::size_t totalRecords = 0;
  std::size_t estimatedBytes = 0;  ///< In-memory record footprint.
};

/// A complete measured run: metadata + events + samples + state intervals.
///
/// Records may be appended in any order; finalize() sorts them into canonical
/// (rank, time) order and validates the invariants every consumer relies on:
/// timestamps within the run duration and per-rank monotone non-decreasing
/// hardware counters across interleaved events and samples.
class Trace {
 public:
  Trace() = default;

  /// \param appName application label.
  /// \param numRanks number of ranks (> 0).
  Trace(std::string appName, Rank numRanks);

  /// Appends one instrumentation event.
  void addEvent(Event e);
  /// Appends one sampling record.
  void addSample(Sample s);
  /// Appends one state interval.
  void addState(StateInterval s);

  /// Sorts all record vectors by (rank, time) and validates invariants.
  /// Throws TraceError when counters regress or timestamps exceed duration.
  void finalize();

  /// Application label.
  [[nodiscard]] const std::string& appName() const noexcept { return appName_; }
  /// Number of ranks.
  [[nodiscard]] Rank numRanks() const noexcept { return numRanks_; }
  /// Total run duration (ns); kept as max record time unless set explicitly.
  [[nodiscard]] TimeNs durationNs() const noexcept { return durationNs_; }
  /// Sets the run duration explicitly (e.g. from the simulator's clock).
  void setDurationNs(TimeNs d) noexcept { durationNs_ = d; }

  /// All instrumentation events (sorted after finalize()).
  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  /// All samples (sorted after finalize()).
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  /// All state intervals (sorted after finalize()).
  [[nodiscard]] const std::vector<StateInterval>& states() const noexcept {
    return states_;
  }

  /// Record counts and footprint.
  [[nodiscard]] TraceStats stats() const noexcept;

  /// True once finalize() succeeded and no records were added since.
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

 private:
  void validate() const;

  std::string appName_ = "unnamed";
  Rank numRanks_ = 1;
  TimeNs durationNs_ = 0;
  std::vector<Event> events_;
  std::vector<Sample> samples_;
  std::vector<StateInterval> states_;
  bool finalized_ = false;
};

}  // namespace unveil::trace
