#pragma once

/// \file uvtb2_detail.hpp
/// Internal UVTB2 decode machinery shared by the batch reader (binary_io.cpp)
/// and the incremental shard reader (shard_stream.cpp).
///
/// Not part of the public trace API — everything here deals in raw shard
/// bytes and untrusted on-disk integers. The two readers must agree byte for
/// byte on validation rules and failure messages (the CLI's degraded-mode
/// warnings are part of the batch/streaming bit-identity contract), which is
/// why this lives in one place instead of two anonymous namespaces.

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "unveil/counters/counter.hpp"
#include "unveil/support/error.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::trace::detail {

inline constexpr char kMagicV1[] = "UVTB1\n";
inline constexpr char kMagicV2[] = "UVTB2\n";
inline constexpr std::size_t kMagicLen = 6;

/// Smallest possible encodings, used to bound untrusted record counts
/// against the bytes actually present before any allocation.
inline constexpr std::uint64_t kMinEventBytes = 3 + counters::kNumCounters;
inline constexpr std::uint64_t kMinSampleBytes = 3;  // counters may be masked out
inline constexpr std::uint64_t kMinStateBytes = 3;

/// Bounds-checked cursor over one rank's shard bytes.
struct ByteReader {
  const char* begin;
  const char* p;
  const char* end;

  ByteReader(const char* b, const char* e) : begin(b), p(b), end(e) {}

  [[nodiscard]] bool exhausted() const noexcept { return p == end; }
  /// Bytes consumed so far — offset of the next (possibly failing) byte.
  [[nodiscard]] std::uint64_t consumed() const noexcept {
    return static_cast<std::uint64_t>(p - begin);
  }
  int get() {
    if (p == end) throw TraceError("binary trace shard truncated");
    return static_cast<unsigned char>(*p++);
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const int c = get();
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) throw TraceError("binary trace varint overflow");
    }
    return v;
  }
};

/// Per-rank record counts from the shard table.
struct ShardCounts {
  std::uint64_t events = 0;
  std::uint64_t samples = 0;
  std::uint64_t states = 0;
};

/// Decoded contents of one rank's shard.
struct DecodedShard {
  std::vector<Event> events;
  std::vector<Sample> samples;
  std::vector<StateInterval> states;
};

/// Counting wrapper over the header stream so errors (and shard drops) can
/// report absolute file offsets even on non-seekable streams.
struct CountingSource {
  std::istream& is;
  std::uint64_t consumed;

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      const int c = is.get();
      if (c == std::char_traits<char>::eof())
        throw TraceError("binary trace truncated inside varint at offset " +
                         std::to_string(consumed));
      ++consumed;
      v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) break;
      shift += 7;
      if (shift > 63)
        throw TraceError("binary trace varint overflow at offset " +
                         std::to_string(consumed));
    }
    return v;
  }

  /// Reads up to \p n bytes; returns the count actually read.
  std::uint64_t readSome(char* dst, std::uint64_t n) {
    is.read(dst, static_cast<std::streamsize>(n));
    const auto got = static_cast<std::uint64_t>(is.gcount());
    consumed += got;
    return got;
  }
};

/// Overflow-checked sum for untrusted on-disk totals.
[[nodiscard]] std::uint64_t addChecked(std::uint64_t a, std::uint64_t b,
                                       const char* what);

/// Decodes one shard, annotating any failure with shard/rank and the
/// absolute file offset of the failing byte.
[[nodiscard]] DecodedShard decodeShard(ByteReader& r, Rank rank,
                                       const ShardCounts& counts,
                                       TimeNs duration,
                                       std::uint64_t shardFileOffset);

/// Parsed V2 header + shard table — everything that precedes the shard blob.
struct V2Header {
  std::string appName;
  Rank ranks = 0;
  TimeNs durationNs = 0;
  std::uint64_t nEvents = 0;
  std::uint64_t nSamples = 0;
  std::uint64_t nStates = 0;
  std::vector<ShardCounts> counts;      ///< Per-shard record counts.
  std::vector<std::uint64_t> shardBytes;  ///< Per-shard encoded length.
  /// Per-shard table-budget violations (empty = table entry plausible).
  /// Strict reads never see these — they throw inside readV2Header.
  std::vector<std::string> failures;
  std::vector<std::uint64_t> offsets;  ///< Blob-relative shard offsets.
  std::uint64_t dataStart = 0;  ///< Absolute file offset of the shard blob.
  std::uint64_t totalBytes = 0;  ///< Sum of shardBytes (checked).
};

/// Reads the V2 header and shard table from \p src (magic already consumed).
/// Structural damage (truncation, inconsistent table, implausible counts)
/// always throws; per-shard budget violations throw in strict mode and are
/// recorded in V2Header::failures otherwise.
[[nodiscard]] V2Header readV2Header(CountingSource& src,
                                    const ReadOptions& options);

/// The degraded-read bookkeeping both readers share for one dropped shard:
/// warn, flight-record, and append to \p report when non-null.
void noteShardDrop(Rank rank, std::uint64_t absoluteOffset,
                   const std::string& reason, ReadReport* report);

/// End-of-read bookkeeping once \p dropped shards were skipped: telemetry
/// count plus a flight-recorder snapshot while the drop reasons are fresh.
void noteDegradedRead(std::size_t dropped);

}  // namespace unveil::trace::detail
