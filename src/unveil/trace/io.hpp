#pragma once

/// \file io.hpp
/// Text serialization of traces (a simplified Paraver-like format).
///
/// Format (line oriented, '#' comments allowed):
///   #UNVEIL_TRACE v1
///   app <name>
///   ranks <n>
///   duration <ns>
///   counters <name>...            (fixed order, documents the columns)
///   E <rank> <time> <kind> <value> <c0>..<c5>
///   S <rank> <time> <c0>..<c5>
///   T <rank> <begin> <end> <state>
///
/// write/read round-trips exactly; read() finalizes (sorts + validates) the
/// returned trace and throws TraceError on malformed input.

#include <iosfwd>
#include <string>

#include "unveil/trace/trace.hpp"

namespace unveil::trace {

/// Writes \p trace to \p os in the text format above.
void write(const Trace& trace, std::ostream& os);

/// Writes \p trace to the file at \p path; throws unveil::Error on IO failure.
void writeFile(const Trace& trace, const std::string& path);

/// Parses a trace from \p is; throws TraceError on malformed input.
[[nodiscard]] Trace read(std::istream& is);

/// Reads a trace from the file at \p path.
[[nodiscard]] Trace readFile(const std::string& path);

}  // namespace unveil::trace
