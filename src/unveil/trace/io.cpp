#include "unveil/trace/io.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "unveil/support/error.hpp"
#include "unveil/support/error_context.hpp"
#include "unveil/support/faulty_stream.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::trace {

namespace {

std::string trimmed(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

/// Rejects tokens left over after a record line parsed completely; corrupt
/// producers commonly append garbage that would otherwise be silently
/// dropped, masking the corruption.
void rejectTrailing(std::istringstream& ls, int lineNo) {
  ls.clear();
  std::string extra;
  if (ls >> extra)
    throw TraceError("line " + std::to_string(lineNo) + ": trailing garbage '" +
                     extra + "'");
}

void writeCounters(std::ostream& os, const counters::CounterSet& c) {
  for (std::size_t i = 0; i < counters::kNumCounters; ++i) os << ' ' << c.values[i];
}

counters::CounterSet parseCounters(std::istringstream& ls, int lineNo) {
  counters::CounterSet c;
  for (std::size_t i = 0; i < counters::kNumCounters; ++i) {
    if (!(ls >> c.values[i]))
      throw TraceError("line " + std::to_string(lineNo) + ": missing counter value");
  }
  return c;
}

}  // namespace

void write(const Trace& trace, std::ostream& os) {
  telemetry::Span span("trace.write_text");
  span.attr("app", trace.appName());
  telemetry::count("trace.records_written", trace.events().size() +
                                                trace.samples().size() +
                                                trace.states().size());
  os << "#UNVEIL_TRACE v1\n";
  os << "app " << trace.appName() << '\n';
  os << "ranks " << trace.numRanks() << '\n';
  os << "duration " << trace.durationNs() << '\n';
  os << "counters";
  for (counters::CounterId id : counters::kAllCounters)
    os << ' ' << counters::counterName(id);
  os << '\n';
  for (const auto& e : trace.events()) {
    os << "E " << e.rank << ' ' << e.time << ' '
       << static_cast<unsigned>(e.kind) << ' ' << e.value;
    writeCounters(os, e.counters);
    os << '\n';
  }
  for (const auto& s : trace.samples()) {
    os << "S " << s.rank << ' ' << s.time;
    writeCounters(os, s.counters);
    // Trailing optional fields (older writers omit them; the reader
    // defaults): validity mask, then region id. The mask is emitted whenever
    // the region is, so the trailing-field positions stay unambiguous.
    if (s.validMask != kAllCountersMask || s.regionId != kNoRegion) {
      os << ' ' << static_cast<unsigned>(s.validMask);
      if (s.regionId != kNoRegion) os << ' ' << s.regionId;
    }
    os << '\n';
  }
  for (const auto& s : trace.states()) {
    os << "T " << s.rank << ' ' << s.begin << ' ' << s.end << ' '
       << static_cast<unsigned>(s.state) << '\n';
  }
}

void writeFile(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw Error("cannot open for writing: " + path);
  if (const auto spec = support::activeFaultSpec(); spec && spec->any()) {
    support::FaultyStreamBuf buf(f.rdbuf(), *spec);
    std::ostream os(&buf);
    write(trace, os);
    os.flush();
    if (!os.good())
      throw Error(support::ErrorContext{}.with("file", path).annotate(
          "write failed (disk full or I/O error)"));
    return;
  }
  write(trace, f);
  f.flush();
  // An ofstream swallows ENOSPC/EIO silently; without this check a full
  // disk yields a truncated file and a success return.
  if (!f.good())
    throw Error(support::ErrorContext{}.with("file", path).annotate(
        "write failed (disk full or I/O error)"));
}

Trace read(std::istream& is) {
  telemetry::Span span("trace.read_text");
  std::string line;
  int lineNo = 0;
  std::string appName = "unnamed";
  Rank numRanks = 0;
  TimeNs duration = 0;
  bool sawHeader = false;
  Trace trace;
  std::vector<Event> events;
  std::vector<Sample> samples;
  std::vector<StateInterval> states;

  // Record ranks may only be range-checked once the rank count is known, so
  // records are rejected until the ranks header line has been seen.
  auto requireRanks = [&](int ln) {
    if (numRanks == 0)
      throw TraceError("line " + std::to_string(ln) + ": record before ranks line");
  };

  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("#UNVEIL_TRACE", 0) == 0) sawHeader = true;
      continue;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "app") {
      // The whole rest of the line is the name: write() emits it verbatim,
      // so a token read would truncate "gromacs mdrun" at the space and
      // break write -> read round-trips.
      std::string rest;
      std::getline(ls, rest);
      rest = trimmed(rest);
      if (!rest.empty()) appName = rest;
    } else if (tag == "ranks") {
      if (!(ls >> numRanks) || numRanks == 0)
        throw TraceError("line " + std::to_string(lineNo) + ": bad ranks");
    } else if (tag == "duration") {
      if (!(ls >> duration))
        throw TraceError("line " + std::to_string(lineNo) + ": bad duration");
    } else if (tag == "counters") {
      // Column-order documentation line; verify the names match our build.
      for (counters::CounterId id : counters::kAllCounters) {
        std::string name;
        if (!(ls >> name) || name != counters::counterName(id))
          throw TraceError("line " + std::to_string(lineNo) +
                           ": counter columns do not match this build");
      }
    } else if (tag == "E") {
      requireRanks(lineNo);
      Event e;
      unsigned kind = 0;
      if (!(ls >> e.rank >> e.time >> kind >> e.value))
        throw TraceError("line " + std::to_string(lineNo) + ": bad event");
      if (e.rank >= numRanks)
        throw TraceError("line " + std::to_string(lineNo) + ": event rank " +
                         std::to_string(e.rank) + " out of range (ranks " +
                         std::to_string(numRanks) + ")");
      if (kind > static_cast<unsigned>(EventKind::MpiEnd))
        throw TraceError("line " + std::to_string(lineNo) + ": bad event kind");
      e.kind = static_cast<EventKind>(kind);
      e.counters = parseCounters(ls, lineNo);
      rejectTrailing(ls, lineNo);
      events.push_back(e);
    } else if (tag == "S") {
      requireRanks(lineNo);
      Sample s;
      if (!(ls >> s.rank >> s.time))
        throw TraceError("line " + std::to_string(lineNo) + ": bad sample");
      if (s.rank >= numRanks)
        throw TraceError("line " + std::to_string(lineNo) + ": sample rank " +
                         std::to_string(s.rank) + " out of range (ranks " +
                         std::to_string(numRanks) + ")");
      s.counters = parseCounters(ls, lineNo);
      unsigned mask = kAllCountersMask;
      if (ls >> mask) {
        if (mask > kAllCountersMask)
          throw TraceError("line " + std::to_string(lineNo) + ": bad sample mask");
        s.validMask = static_cast<CounterMask>(mask);
        std::uint32_t region = kNoRegion;
        if (ls >> region) s.regionId = region;
      }
      rejectTrailing(ls, lineNo);
      samples.push_back(s);
    } else if (tag == "T") {
      requireRanks(lineNo);
      StateInterval s;
      unsigned state = 0;
      if (!(ls >> s.rank >> s.begin >> s.end >> state))
        throw TraceError("line " + std::to_string(lineNo) + ": bad state interval");
      if (s.rank >= numRanks)
        throw TraceError("line " + std::to_string(lineNo) + ": state rank " +
                         std::to_string(s.rank) + " out of range (ranks " +
                         std::to_string(numRanks) + ")");
      if (s.begin > s.end)
        throw TraceError("line " + std::to_string(lineNo) +
                         ": state interval has begin > end");
      if (state > static_cast<unsigned>(State::Idle))
        throw TraceError("line " + std::to_string(lineNo) + ": bad state code");
      s.state = static_cast<State>(state);
      rejectTrailing(ls, lineNo);
      states.push_back(s);
    } else {
      throw TraceError("line " + std::to_string(lineNo) + ": unknown tag '" + tag + "'");
    }
  }
  if (!sawHeader) throw TraceError("missing #UNVEIL_TRACE header");
  if (numRanks == 0) throw TraceError("missing ranks line");
  trace = Trace(appName, numRanks);
  trace.setDurationNs(duration);
  for (const auto& e : events) trace.addEvent(e);
  for (const auto& s : samples) trace.addSample(s);
  for (const auto& s : states) trace.addState(s);
  trace.finalize();
  span.attr("app", trace.appName());
  span.attr("records", events.size() + samples.size() + states.size());
  telemetry::count("trace.records_read",
                   events.size() + samples.size() + states.size());
  return trace;
}

Trace readFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw Error("cannot open for reading: " + path);
  try {
    if (const auto spec = support::activeFaultSpec(); spec && spec->any()) {
      support::FaultyStreamBuf buf(f.rdbuf(), *spec);
      std::istream is(&buf);
      return read(is);
    }
    return read(f);
  } catch (const Error& e) {
    support::rethrowTraceErrorWith(e, support::ErrorContext{}.with("file", path));
  }
}

}  // namespace unveil::trace
