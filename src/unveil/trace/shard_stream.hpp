#pragma once

/// \file shard_stream.hpp
/// Incremental UVTB2 shard reader — the trace-layer half of the streaming
/// engine (analysis/streaming.hpp).
///
/// readBinaryFile() materializes the whole trace: every shard's blob bytes
/// and every decoded record are resident at once, so peak memory is O(trace).
/// ShardStreamReader instead parses the header + shard table up front and
/// then yields one decoded shard at a time; only the current shard's bytes
/// and records are ever held, so a consumer that processes-and-drops each
/// shard runs in O(largest shard) memory no matter how many ranks the trace
/// has.
///
/// Degradation semantics mirror the batch reader exactly (same validation
/// rules, same failure strings — both delegate to trace::detail): structural
/// damage throws; with strict=false a corrupt shard comes back as a
/// dropped-Shard record and the stream continues; strict mode throws at the
/// first bad shard. When every shard drops, next() throws the same
/// "all N shards corrupt" error batch reads produce.

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "unveil/support/faulty_stream.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::trace {

/// True when \p path starts with the UVTB2 magic, i.e. ShardStreamReader
/// can stream it. False for text traces, legacy UVTB1 and unreadable files
/// — callers use this to pick streaming vs the batch reader.
[[nodiscard]] bool isShardStreamable(const std::string& path);

/// Trace-level metadata from the UVTB2 header (known before any shard).
struct StreamHeader {
  std::string appName;
  Rank ranks = 0;           ///< Total ranks == total shards.
  TimeNs durationNs = 0;
  std::uint64_t events = 0;
  std::uint64_t samples = 0;
  std::uint64_t states = 0;
};

/// Extra knobs for ShardStreamReader beyond the shared ReadOptions.
struct StreamOptions {
  ReadOptions read;
  /// Per-request I/O fault injection: when set, the file stream is wrapped
  /// in a FaultyStreamBuf with this spec. When unset, the process-wide
  /// UNVEIL_FAULT_SPEC (support::activeFaultSpec) applies, matching
  /// readBinaryFile. The daemon uses this to scope an injected fault to one
  /// request instead of the whole process.
  std::optional<support::FaultSpec> fault;
  /// Suppress the per-drop warn/flight-record/telemetry side effects. The
  /// streaming engine's second pass re-reads a file it already reported on;
  /// without this every drop would be double-counted.
  bool quietDrops = false;
};

class ShardStreamReader {
 public:
  /// Opens \p path, parses magic + header + shard table. Throws TraceError
  /// on structural damage (annotated with [file=...]) and on the legacy
  /// UVTB1 format, which has interleaved rank streams and cannot be
  /// shard-streamed — callers fall back to the batch reader for it.
  explicit ShardStreamReader(const std::string& path, StreamOptions options = {});
  ~ShardStreamReader();
  ShardStreamReader(ShardStreamReader&&) = delete;
  ShardStreamReader& operator=(ShardStreamReader&&) = delete;

  [[nodiscard]] const StreamHeader& header() const noexcept { return header_; }

  /// One decoded shard. The trace is finalized, carries the *full* rank
  /// count (so burst ranks, SPMD scoring and per-rank bookkeeping agree
  /// with a batch read) but holds only this rank's records.
  struct Shard {
    Rank rank = 0;
    Trace trace{"", 1};
    bool dropped = false;      ///< Decode failed and strict=false.
    std::string dropReason;    ///< Failure string when dropped.
    std::uint64_t offset = 0;  ///< Absolute file offset of the shard data.
    std::uint64_t bytes = 0;   ///< Encoded size on disk.
  };

  /// Decodes and returns the next shard in rank order; nullopt after the
  /// last. Strict mode throws on the first corrupt shard; otherwise corrupt
  /// shards are returned with dropped=true. Throws "all N shards corrupt"
  /// (like the batch reader) when the final shard drops and none survived.
  [[nodiscard]] std::optional<Shard> next();

  /// Drops observed so far (totalRanks is filled from the header).
  [[nodiscard]] const ReadReport& report() const noexcept { return report_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  StreamHeader header_;
  ReadReport report_;
};

}  // namespace unveil::trace
