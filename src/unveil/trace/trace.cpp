#include "unveil/trace/trace.hpp"

#include <algorithm>
#include <string>

#include "unveil/support/error.hpp"

namespace unveil::trace {

const char* mpiOpName(MpiOp op) noexcept {
  switch (op) {
    case MpiOp::Send: return "MPI_Send";
    case MpiOp::Recv: return "MPI_Recv";
    case MpiOp::Allreduce: return "MPI_Allreduce";
    case MpiOp::Barrier: return "MPI_Barrier";
    case MpiOp::Alltoall: return "MPI_Alltoall";
    case MpiOp::Waitall: return "MPI_Waitall";
  }
  return "MPI_Unknown";
}

const char* stateName(State s) noexcept {
  switch (s) {
    case State::Compute: return "compute";
    case State::Mpi: return "mpi";
    case State::Idle: return "idle";
  }
  return "?";
}

Trace::Trace(std::string appName, Rank numRanks)
    : appName_(std::move(appName)), numRanks_(numRanks) {
  if (numRanks == 0) throw ConfigError("trace requires numRanks > 0");
}

void Trace::addEvent(Event e) {
  finalized_ = false;
  events_.push_back(e);
}

void Trace::addSample(Sample s) {
  finalized_ = false;
  samples_.push_back(s);
}

void Trace::addState(StateInterval s) {
  finalized_ = false;
  states_.push_back(s);
}

void Trace::finalize() {
  auto byRankTime = [](const auto& a, const auto& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.time < b.time;
  };
  std::stable_sort(events_.begin(), events_.end(), byRankTime);
  std::stable_sort(samples_.begin(), samples_.end(), byRankTime);
  std::stable_sort(states_.begin(), states_.end(), [](const auto& a, const auto& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.begin < b.begin;
  });
  if (durationNs_ == 0) {
    for (const auto& e : events_) durationNs_ = std::max(durationNs_, e.time);
    for (const auto& s : samples_) durationNs_ = std::max(durationNs_, s.time);
    for (const auto& s : states_) durationNs_ = std::max(durationNs_, s.end);
  }
  validate();
  finalized_ = true;
}

void Trace::validate() const {
  for (const auto& e : events_) {
    if (e.rank >= numRanks_) throw TraceError("event rank out of range");
    if (e.time > durationNs_) throw TraceError("event time exceeds duration");
  }
  for (const auto& s : samples_) {
    if (s.rank >= numRanks_) throw TraceError("sample rank out of range");
    if (s.time > durationNs_) throw TraceError("sample time exceeds duration");
  }
  for (const auto& s : states_) {
    if (s.rank >= numRanks_) throw TraceError("state rank out of range");
    if (s.begin > s.end) throw TraceError("state interval has begin > end");
    if (s.end > durationNs_) throw TraceError("state interval exceeds duration");
  }

  // Hardware counters are cumulative per rank: walking a rank's events and
  // samples in chronological order, no counter may decrease. Merge the two
  // sorted streams per rank.
  for (Rank r = 0; r < numRanks_; ++r) {
    auto evLo = std::lower_bound(events_.begin(), events_.end(), r,
                                 [](const Event& e, Rank rank) { return e.rank < rank; });
    auto evHi = std::upper_bound(events_.begin(), events_.end(), r,
                                 [](Rank rank, const Event& e) { return rank < e.rank; });
    auto smLo = std::lower_bound(samples_.begin(), samples_.end(), r,
                                 [](const Sample& s, Rank rank) { return s.rank < rank; });
    auto smHi = std::upper_bound(samples_.begin(), samples_.end(), r,
                                 [](Rank rank, const Sample& s) { return rank < s.rank; });
    // Records sharing a timestamp are unordered (timestamps are rounded to
    // ns), so monotonicity is enforced between *time groups*: every record
    // must dominate the component-wise max of all records at strictly
    // earlier times.
    counters::CounterSet committedMax;  // max over all earlier-time records
    counters::CounterSet groupMax;      // max within the current time group
    TimeNs groupTime = 0;
    bool any = false;
    auto check = [&](const counters::CounterSet& cur, CounterMask mask, TimeNs t) {
      if (any && t != groupTime) {
        for (std::size_t i = 0; i < counters::kNumCounters; ++i)
          committedMax.values[i] =
              std::max(committedMax.values[i], groupMax.values[i]);
        groupTime = t;
        groupMax = counters::CounterSet{};
      } else if (!any) {
        groupTime = t;
        any = true;
      }
      for (std::size_t i = 0; i < counters::kNumCounters; ++i) {
        // Multiplexed-out counters carry no information: skip both the
        // check and the max update.
        if (!maskHas(mask, static_cast<counters::CounterId>(i))) continue;
        groupMax.values[i] = std::max(groupMax.values[i], cur.values[i]);
        if (cur.values[i] < committedMax.values[i])
          throw TraceError("counter regression on rank " + std::to_string(r) +
                           " at t=" + std::to_string(t));
      }
    };
    auto ev = evLo;
    auto sm = smLo;
    while (ev != evHi || sm != smHi) {
      const bool takeEvent =
          sm == smHi || (ev != evHi && ev->time <= sm->time);
      if (takeEvent) {
        check(ev->counters, kAllCountersMask, ev->time);
        ++ev;
      } else {
        check(sm->counters, sm->validMask, sm->time);
        ++sm;
      }
    }

    // The binary writer delta-encodes a rank's event and sample streams
    // independently, in stored order, with unsigned deltas — so each stream
    // must additionally be monotone record-to-record, including across
    // records that share a timestamp (which the group check above does not
    // order). Without this a crafted trace passes validation and then
    // aborts serialization on delta underflow.
    counters::CounterSet lastEv;
    for (auto it = evLo; it != evHi; ++it) {
      for (std::size_t i = 0; i < counters::kNumCounters; ++i) {
        if (it->counters.values[i] < lastEv.values[i])
          throw TraceError("counter regression on rank " + std::to_string(r) +
                           " at t=" + std::to_string(it->time));
        lastEv.values[i] = it->counters.values[i];
      }
    }
    counters::CounterSet lastSm;
    for (auto it = smLo; it != smHi; ++it) {
      for (std::size_t i = 0; i < counters::kNumCounters; ++i) {
        if (!maskHas(it->validMask, static_cast<counters::CounterId>(i))) continue;
        if (it->counters.values[i] < lastSm.values[i])
          throw TraceError("counter regression on rank " + std::to_string(r) +
                           " at t=" + std::to_string(it->time));
        lastSm.values[i] = it->counters.values[i];
      }
    }
  }
}

TraceStats Trace::stats() const noexcept {
  TraceStats s;
  s.events = events_.size();
  s.samples = samples_.size();
  s.states = states_.size();
  s.totalRecords = s.events + s.samples + s.states;
  s.estimatedBytes = events_.size() * sizeof(Event) +
                     samples_.size() * sizeof(Sample) +
                     states_.size() * sizeof(StateInterval);
  return s;
}

}  // namespace unveil::trace
