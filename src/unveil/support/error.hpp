#pragma once

/// \file error.hpp
/// Error handling primitives shared by every unveil library.
///
/// Philosophy (per C++ Core Guidelines E.*): programming errors are checked
/// with UNVEIL_ASSERT and abort in all build types (an analysis tool that
/// silently continues on a broken invariant produces wrong science); input
/// and environment errors throw typed exceptions derived from unveil::Error.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace unveil {

/// Base class for all recoverable unveil errors (bad input, malformed trace,
/// invalid configuration). Catch as `const unveil::Error&`.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a user-supplied configuration value is out of range or
/// inconsistent (e.g. negative sampling period, eps <= 0).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Thrown when parsing or interpreting a trace fails (truncated file,
/// unsorted records where sorted are required, unknown record tag).
class TraceError : public Error {
 public:
  explicit TraceError(const std::string& what) : Error("trace error: " + what) {}
};

/// Thrown when an analysis step cannot proceed on the given data (e.g. a
/// cluster with no sampled instances, a curve fit with zero support points).
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& what) : Error("analysis error: " + what) {}
};

namespace detail {
[[noreturn]] inline void assertFail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "unveil assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}
}  // namespace detail

}  // namespace unveil

/// Invariant check that is active in every build type. `msg` is a string
/// literal describing the violated invariant.
#define UNVEIL_ASSERT(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::unveil::detail::assertFail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                   \
  } while (false)
