#include "unveil/support/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "unveil/support/error.hpp"
#include "unveil/support/flight_recorder.hpp"

namespace unveil::telemetry {

namespace {

std::atomic<Session*> gActive{nullptr};
std::atomic<std::uint64_t> gGeneration{0};

/// Per-thread span parent cursor. Global (not per-session): only one
/// session is active at a time, and ScopedParent/Span save-restore keeps it
/// balanced across session switches.
thread_local std::uint64_t tCurrentParent = 0;

std::int64_t steadyNowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string formatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// MetricsRegistry snapshots
// ---------------------------------------------------------------------------

std::map<std::string, std::uint64_t> MetricsRegistry::counterValues() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c.value());
  return out;
}

std::map<std::string, double> MetricsRegistry::gaugeValues() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g.value());
  return out;
}

std::map<std::string, Histogram::Summary> MetricsRegistry::histogramValues() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Histogram::Summary> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h.summary());
  return out;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Span sink of one recording thread. The owning thread appends under the
/// buffer's own mutex (uncontended except against a concurrent snapshot),
/// so completion never takes a lock shared with other recorders.
struct Session::ThreadBuffer {
  std::uint32_t threadId = 0;
  std::mutex mutex;
  std::vector<SpanRecord> spans;
  /// Innermost span currently open on the owning thread (0 = none) — what
  /// the sampler reads for its live-thread census. Written by the owner on
  /// span open/close, read by the sampler thread, hence atomic.
  std::atomic<std::uint64_t> currentSpanId{0};
};

Session::Session()
    : epochNs_(steadyNowNs()),
      generation_(gGeneration.fetch_add(1, std::memory_order_relaxed) + 1) {}

Session::~Session() { deactivate(); }

Session* Session::active() noexcept {
  return gActive.load(std::memory_order_acquire);
}

void Session::activate() noexcept {
  gActive.store(this, std::memory_order_release);
}

void Session::deactivate() noexcept {
  Session* expected = this;
  gActive.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

std::int64_t Session::nowNs() const noexcept { return steadyNowNs() - epochNs_; }

Session::ThreadBuffer& Session::threadBuffer() {
  // (session generation, buffer) cache: only a thread's first span in a
  // given session pays the registration lock. The generation check
  // invalidates the cache when a new session (even one reusing this
  // session's address) starts.
  thread_local std::uint64_t cachedGeneration = 0;
  thread_local ThreadBuffer* cachedBuffer = nullptr;
  if (cachedGeneration == generation_ && cachedBuffer != nullptr)
    return *cachedBuffer;
  const std::lock_guard<std::mutex> lock(buffersMutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->threadId = static_cast<std::uint32_t>(buffers_.size());
  buffers_.push_back(std::move(buffer));
  cachedGeneration = generation_;
  cachedBuffer = buffers_.back().get();
  return *cachedBuffer;
}

void Session::recordSample(SampleRecord sample) {
  const std::lock_guard<std::mutex> lock(samplesMutex_);
  samples_.push_back(std::move(sample));
}

void Session::setSampleCounterNames(std::vector<std::string> names) {
  const std::lock_guard<std::mutex> lock(samplesMutex_);
  sampleCounterNames_ = std::move(names);
}

std::vector<Session::LiveSpan> Session::liveThreadSpans() const {
  std::vector<LiveSpan> live;
  const std::lock_guard<std::mutex> lock(buffersMutex_);
  live.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    const std::uint64_t spanId =
        buffer->currentSpanId.load(std::memory_order_acquire);
    if (spanId != 0) live.push_back({buffer->threadId, spanId});
  }
  return live;
}

Snapshot Session::snapshot() const {
  Snapshot snap;
  {
    const std::lock_guard<std::mutex> lock(samplesMutex_);
    snap.samples = samples_;
    snap.sampleCounterNames = sampleCounterNames_;
  }
  {
    const std::lock_guard<std::mutex> lock(buffersMutex_);
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> bufLock(buffer->mutex);
      snap.spans.insert(snap.spans.end(), buffer->spans.begin(),
                        buffer->spans.end());
    }
  }
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.startNs != b.startNs) return a.startNs < b.startNs;
              return a.id < b.id;
            });
  snap.counters = metrics_.counterValues();
  snap.gauges = metrics_.gaugeValues();
  snap.histograms = metrics_.histogramValues();
  return snap;
}

// ---------------------------------------------------------------------------
// Span / ScopedParent
// ---------------------------------------------------------------------------

Span::Span(std::string_view name) : session_(Session::active()) {
  if (session_ == nullptr) return;
  rec_.name.assign(name);
  rec_.id = session_->nextSpanId();
  rec_.parentId = tCurrentParent;
  rec_.startNs = session_->nowNs();
  savedParent_ = tCurrentParent;
  tCurrentParent = rec_.id;
  // Publish this thread's innermost open span for the sampler's census.
  // The previous value (NOT the parent cursor: ScopedParent re-points the
  // cursor at a span on another thread) is restored on close, so a worker
  // thread goes back to "idle" when its loop job's span ends.
  Session::ThreadBuffer& buffer = session_->threadBuffer();
  rec_.threadId = buffer.threadId;
  savedLiveSpan_ = buffer.currentSpanId.load(std::memory_order_relaxed);
  buffer.currentSpanId.store(rec_.id, std::memory_order_release);
  support::flightRecord(support::FlightKind::SpanBegin, rec_.name);
}

Span::~Span() {
  if (session_ == nullptr) return;
  rec_.durationNs = session_->nowNs() - rec_.startNs;
  tCurrentParent = savedParent_;
  support::flightRecord(support::FlightKind::SpanEnd, rec_.name);
  Session::ThreadBuffer& buffer = session_->threadBuffer();
  buffer.currentSpanId.store(savedLiveSpan_, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.spans.push_back(std::move(rec_));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (session_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key), std::string(value));
}

void Span::attr(std::string_view key, double value) {
  if (session_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key), formatDouble(value));
}

void Span::attrUint(std::string_view key, std::uint64_t value) {
  if (session_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key), std::to_string(value));
}

void Span::attrInt(std::string_view key, std::int64_t value) {
  if (session_ == nullptr) return;
  rec_.attrs.emplace_back(std::string(key), std::to_string(value));
}

std::uint64_t currentParent() noexcept { return tCurrentParent; }

ScopedParent::ScopedParent(std::uint64_t parentId) noexcept
    : saved_(tCurrentParent) {
  tCurrentParent = parentId;
}

ScopedParent::~ScopedParent() { tCurrentParent = saved_; }

// ---------------------------------------------------------------------------
// Free-function metric helpers
// ---------------------------------------------------------------------------

void count(std::string_view name, std::uint64_t n) {
  if (Session* s = Session::active()) s->metrics().counter(name).add(n);
}

void gauge(std::string_view name, double value) {
  if (Session* s = Session::active()) s->metrics().gauge(name).set(value);
}

void observe(std::string_view name, double value) {
  if (Session* s = Session::active()) s->metrics().histogram(name).observe(value);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::string escapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

/// Microseconds with sub-ns spillover preserved (chrome's native unit).
std::string microseconds(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

std::ofstream openOut(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw Error("cannot open for writing [file=" + path + "]");
  return f;
}

/// Nearest-rank percentile of an unsorted copy; 0 for an empty series.
double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

/// Distribution summary of one sampled quantity over a set of samples.
struct SampleDist {
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

SampleDist distOf(const std::vector<double>& values) {
  SampleDist d;
  d.p50 = percentile(values, 0.50);
  d.p95 = percentile(values, 0.95);
  for (const double v : values) d.max = std::max(d.max, v);
  return d;
}

void writeDist(std::ostream& os, const SampleDist& d) {
  os << "{\"p50\": " << formatDouble(d.p50) << ", \"p95\": "
     << formatDouble(d.p95) << ", \"max\": " << formatDouble(d.max) << "}";
}

/// Pool-utilization term of one sample: busy helpers over spawned helpers.
double sampleUtilization(const SampleRecord& s) {
  const std::uint32_t workers = s.poolThreads > 0 ? s.poolThreads - 1 : 0;
  if (workers == 0) return 0.0;
  return 100.0 * static_cast<double>(s.busyWorkers) / static_cast<double>(workers);
}

/// Aggregates a subset of samples (all of them, or those inside one stage's
/// span windows) into the distributions the metrics JSON reports.
struct SampleAggregate {
  std::size_t count = 0;
  SampleDist queueDepth;
  SampleDist busyWorkers;
  double utilizationPct = 0.0;  ///< Mean busy/workers over the subset, in %.
  std::uint64_t rssPeakBytes = 0;
  std::uint64_t hwmPeakBytes = 0;

  template <typename Filter>
  static SampleAggregate over(const std::vector<SampleRecord>& samples,
                              const Filter& keep) {
    SampleAggregate agg;
    std::vector<double> queued;
    std::vector<double> busy;
    double utilSum = 0.0;
    for (const SampleRecord& s : samples) {
      if (!keep(s)) continue;
      ++agg.count;
      queued.push_back(static_cast<double>(s.queuedTasks + s.injectDepth));
      busy.push_back(static_cast<double>(s.busyWorkers));
      utilSum += sampleUtilization(s);
      agg.rssPeakBytes = std::max(agg.rssPeakBytes, s.rssBytes);
      agg.hwmPeakBytes = std::max(agg.hwmPeakBytes, s.hwmBytes);
    }
    agg.queueDepth = distOf(queued);
    agg.busyWorkers = distOf(busy);
    if (agg.count > 0) agg.utilizationPct = utilSum / static_cast<double>(agg.count);
    return agg;
  }

  void write(std::ostream& os) const {
    os << "{\"samples\": " << count << ", \"queue_depth\": ";
    writeDist(os, queueDepth);
    os << ", \"busy_workers\": ";
    writeDist(os, busyWorkers);
    os << ", \"utilization_pct\": " << formatDouble(utilizationPct)
       << ", \"rss_peak_bytes\": " << rssPeakBytes
       << ", \"hwm_peak_bytes\": " << hwmPeakBytes << "}";
  }
};

}  // namespace

void writeChromeTrace(const Snapshot& snapshot, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : snapshot.spans) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"" << escapeJson(span.name)
       << "\",\"cat\":\"unveil\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.threadId
       << ",\"ts\":" << microseconds(span.startNs)
       << ",\"dur\":" << microseconds(span.durationNs) << ",\"args\":{";
    os << "\"span_id\":" << span.id << ",\"parent_id\":" << span.parentId;
    for (const auto& [key, value] : span.attrs)
      os << ",\"" << escapeJson(key) << "\":\"" << escapeJson(value) << "\"";
    os << "}}";
  }
  // Sampler time-series as chrome counter tracks ("ph":"C"): pool pressure,
  // memory, live-span census, and each tracked counter that ever moved.
  std::vector<bool> counterMoved(snapshot.sampleCounterNames.size(), false);
  for (const SampleRecord& s : snapshot.samples)
    for (std::size_t c = 0; c < s.counters.size() && c < counterMoved.size(); ++c)
      if (s.counters[c] != 0) counterMoved[c] = true;
  for (const SampleRecord& s : snapshot.samples) {
    const std::string ts = microseconds(s.tNs);
    const auto counterEvent = [&](const char* name, const std::string& args) {
      if (!first) os << ',';
      first = false;
      os << "\n{\"name\":\"" << name
         << "\",\"cat\":\"unveil\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" << ts
         << ",\"args\":{" << args << "}}";
    };
    counterEvent("pool", "\"busy\":" + std::to_string(s.busyWorkers) +
                             ",\"queued\":" + std::to_string(s.queuedTasks) +
                             ",\"inject\":" + std::to_string(s.injectDepth));
    counterEvent("memory_mb",
                 "\"rss\":" + formatDouble(static_cast<double>(s.rssBytes) / 1e6) +
                     ",\"hwm\":" +
                     formatDouble(static_cast<double>(s.hwmBytes) / 1e6));
    counterEvent("live_span_threads",
                 "\"threads\":" + std::to_string(s.liveSpanThreads));
    for (std::size_t c = 0; c < s.counters.size() && c < counterMoved.size(); ++c) {
      if (!counterMoved[c]) continue;
      if (!first) os << ',';
      first = false;
      os << "\n{\"name\":\"" << escapeJson(snapshot.sampleCounterNames[c])
         << "\",\"cat\":\"unveil\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" << ts
         << ",\"args\":{\"value\":" << s.counters[c] << "}}";
    }
  }
  os << "\n]}\n";
}

void writeChromeTraceFile(const Snapshot& snapshot, const std::string& path) {
  auto f = openOut(path);
  writeChromeTrace(snapshot, f);
}

void writeMetricsJson(const Snapshot& snapshot, std::ostream& os) {
  // Aggregate spans by name (insertion order = first appearance in the
  // time-sorted list, emitted sorted for stable diffs).
  struct Agg {
    std::uint64_t count = 0;
    std::int64_t totalNs = 0;
  };
  std::map<std::string, Agg> byName;
  for (const SpanRecord& span : snapshot.spans) {
    Agg& a = byName[span.name];
    ++a.count;
    a.totalNs += span.durationNs;
  }

  os << "{\n  \"spans\": {";
  bool first = true;
  for (const auto& [name, agg] : byName) {
    if (!first) os << ',';
    first = false;
    os << "\n    \"" << escapeJson(name) << "\": {\"count\": " << agg.count
       << ", \"total_ns\": " << agg.totalNs << ", \"mean_ns\": "
       << (agg.count > 0 ? agg.totalNs / static_cast<std::int64_t>(agg.count) : 0)
       << "}";
  }
  os << "\n  },\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ',';
    first = false;
    os << "\n    \"" << escapeJson(name) << "\": " << value;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) os << ',';
    first = false;
    os << "\n    \"" << escapeJson(name) << "\": " << formatDouble(value);
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) os << ',';
    first = false;
    os << "\n    \"" << escapeJson(name) << "\": {\"count\": " << h.count
       << ", \"sum\": " << formatDouble(h.sum)
       << ", \"min\": " << formatDouble(h.min)
       << ", \"max\": " << formatDouble(h.max)
       << ", \"mean\": " << formatDouble(h.mean()) << "}";
  }

  // Whole-run sampler distributions (zeros when the sampler was off), then
  // the same aggregation restricted to each pipeline stage's span windows —
  // the per-stage queue/utilization/peak-RSS view telemetry-diff compares.
  os << "\n  },\n  \"sampler\": ";
  SampleAggregate::over(snapshot.samples, [](const SampleRecord&) { return true; })
      .write(os);
  struct Window {
    std::int64_t begin;
    std::int64_t end;
    const std::string* name;
  };
  std::vector<Window> windows;
  for (const SpanRecord& span : snapshot.spans) {
    if (span.name.rfind("pipeline.", 0) != 0 || span.name == "pipeline.analyze")
      continue;
    windows.push_back({span.startNs, span.startNs + span.durationNs, &span.name});
  }
  std::map<std::string, std::vector<const Window*>> stageWindows;
  for (const Window& w : windows) stageWindows[*w.name].push_back(&w);
  os << ",\n  \"stage_resources\": {";
  first = true;
  for (const auto& [name, ws] : stageWindows) {
    const auto agg = SampleAggregate::over(
        snapshot.samples, [&ws = ws](const SampleRecord& s) {
          for (const Window* w : ws)
            if (s.tNs >= w->begin && s.tNs < w->end) return true;
          return false;
        });
    if (!first) os << ',';
    first = false;
    os << "\n    \"" << escapeJson(name) << "\": ";
    agg.write(os);
  }
  os << "\n  }\n}\n";
}

void writeMetricsJsonFile(const Snapshot& snapshot, const std::string& path) {
  auto f = openOut(path);
  writeMetricsJson(snapshot, f);
}

support::Table summaryTable(const Snapshot& snapshot) {
  struct Agg {
    std::uint64_t count = 0;
    std::int64_t totalNs = 0;
  };
  std::map<std::string, Agg> byName;
  for (const SpanRecord& span : snapshot.spans) {
    Agg& a = byName[span.name];
    ++a.count;
    a.totalNs += span.durationNs;
  }
  std::vector<std::pair<std::string, Agg>> rows(byName.begin(), byName.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.totalNs != b.second.totalNs)
      return a.second.totalNs > b.second.totalNs;
    return a.first < b.first;
  });

  support::Table table({"span", "count", "total (ms)", "mean (ms)"});
  for (const auto& [name, agg] : rows) {
    const double totalMs = static_cast<double>(agg.totalNs) / 1e6;
    table.addRow({name, static_cast<long long>(agg.count), totalMs,
                  agg.count > 0 ? totalMs / static_cast<double>(agg.count) : 0.0});
  }
  return table;
}

}  // namespace unveil::telemetry
