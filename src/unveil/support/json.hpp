#pragma once

/// \file json.hpp
/// Minimal read-only JSON parser for the tool's own artifacts: metrics
/// dumps (`--metrics-out`), flight-recorder files, and BENCH_perf.json.
/// These are machine-written, small (KBs), and trusted-ish — the parser
/// still rejects malformed input with a contextful Error (line/column), it
/// just does not chase performance or streaming.
///
/// One value type covers the whole JSON data model; numbers are doubles
/// (every number these files contain is exactly representable), objects
/// keep sorted key order via std::map for deterministic iteration.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace unveil::support::json {

class Value {
 public:
  using Object = std::map<std::string, Value>;
  using Array = std::vector<Value>;

  Value() = default;  // null
  explicit Value(bool b) : data_(b) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(Array a) : data_(std::move(a)) {}
  explicit Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] bool isNull() const noexcept {
    return std::holds_alternative<std::monostate>(data_);
  }
  [[nodiscard]] bool isBool() const noexcept {
    return std::holds_alternative<bool>(data_);
  }
  [[nodiscard]] bool isNumber() const noexcept {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool isString() const noexcept {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] bool isArray() const noexcept {
    return std::holds_alternative<Array>(data_);
  }
  [[nodiscard]] bool isObject() const noexcept {
    return std::holds_alternative<Object>(data_);
  }

  /// Typed accessors with fallbacks — the shape queries diff/analysis code
  /// wants ("give me spans.pipeline.fold.total_ns or 0").
  [[nodiscard]] bool asBool(bool fallback = false) const noexcept {
    return isBool() ? std::get<bool>(data_) : fallback;
  }
  [[nodiscard]] double asDouble(double fallback = 0.0) const noexcept {
    return isNumber() ? std::get<double>(data_) : fallback;
  }
  [[nodiscard]] std::string asString(std::string fallback = {}) const {
    return isString() ? std::get<std::string>(data_) : std::move(fallback);
  }
  [[nodiscard]] const Array& asArray() const noexcept {
    static const Array kEmpty;
    return isArray() ? std::get<Array>(data_) : kEmpty;
  }
  [[nodiscard]] const Object& asObject() const noexcept {
    static const Object kEmpty;
    return isObject() ? std::get<Object>(data_) : kEmpty;
  }

  /// Member lookup; nullptr when this is not an object or the key is absent.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// Dotted-path lookup ("spans.pipeline\\.fold" is NOT supported — path
  /// segments are split on '.', so use find() chains for keys containing
  /// dots). nullptr when any hop is missing.
  [[nodiscard]] const Value* at(std::initializer_list<std::string_view> path) const;

 private:
  std::variant<std::monostate, bool, double, std::string, Array, Object> data_;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// Throws support::Error with a "line L, column C" locator on malformed
/// input. Depth is bounded (64) so hostile nesting cannot overflow the
/// stack.
[[nodiscard]] Value parse(std::string_view text);

/// parse() over a whole file; errors carry a "[file=...]" suffix in the
/// PR 4 contextful style.
[[nodiscard]] Value parseFile(const std::string& path);

}  // namespace unveil::support::json
