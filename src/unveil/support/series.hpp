#pragma once

/// \file series.hpp
/// Named (x, y) series — the unit in which figure-reproducing benches emit
/// their data. A SeriesSet corresponds to one figure: several labelled
/// curves/point clouds sharing one x axis meaning.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace unveil::support {

/// One labelled curve or point cloud.
struct Series {
  std::string label;       ///< Legend entry, e.g. "cluster 1 fitted MIPS".
  std::vector<double> x;   ///< Abscissae.
  std::vector<double> y;   ///< Ordinates; same length as x.
};

/// A figure's worth of series plus axis metadata.
class SeriesSet {
 public:
  /// \param name   figure identifier, e.g. "F3.wavesim".
  /// \param xLabel x-axis caption.
  /// \param yLabel y-axis caption.
  SeriesSet(std::string name, std::string xLabel, std::string yLabel);

  /// Adds a series; x and y must have equal length.
  void add(Series s);

  /// Convenience: adds a series from parallel vectors.
  void add(const std::string& label, std::vector<double> x, std::vector<double> y);

  /// Figure identifier.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// All series in insertion order.
  [[nodiscard]] const std::vector<Series>& series() const noexcept { return series_; }

  /// Writes a gnuplot-friendly block format: one "# series: label" header per
  /// series followed by "x y" lines and a blank separator.
  void write(std::ostream& os) const;

  /// Writes a compact preview (first/last points and count per series) so a
  /// bench's stdout stays readable while full data goes to a file.
  void printSummary(std::ostream& os) const;

  /// Saves write() output to \p path; throws unveil::Error on failure.
  void save(const std::string& path) const;

 private:
  std::string name_;
  std::string xLabel_;
  std::string yLabel_;
  std::vector<Series> series_;
};

}  // namespace unveil::support
