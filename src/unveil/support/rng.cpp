#include "unveil/support/rng.hpp"

#include "unveil/support/error.hpp"

namespace unveil::support {

namespace {

/// SplitMix64 finalizer; good avalanche, stable everywhere.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t deriveSeed(std::uint64_t root, std::string_view label) noexcept {
  std::uint64_t h = mix64(root);
  for (unsigned char c : label) {
    h = mix64(h ^ static_cast<std::uint64_t>(c));
  }
  return h;
}

Rng Rng::fork(std::string_view label) {
  // Consume one draw from the parent so repeated forks with the same label
  // still yield distinct children.
  const std::uint64_t salt = engine_();
  return Rng(deriveSeed(salt, label));
}

double Rng::uniform(double lo, double hi) {
  UNVEIL_ASSERT(lo <= hi, "uniform bounds must satisfy lo <= hi");
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  UNVEIL_ASSERT(lo <= hi, "uniformInt bounds must satisfy lo <= hi");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  UNVEIL_ASSERT(stddev >= 0.0, "normal stddev must be non-negative");
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::lognormalMedian(double median, double sigma) {
  UNVEIL_ASSERT(median > 0.0, "lognormal median must be positive");
  UNVEIL_ASSERT(sigma >= 0.0, "lognormal sigma must be non-negative");
  if (sigma == 0.0) return median;
  std::lognormal_distribution<double> d(std::log(median), sigma);
  return d(engine_);
}

double Rng::exponential(double mean) {
  UNVEIL_ASSERT(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  UNVEIL_ASSERT(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0,1]");
  std::bernoulli_distribution d(p);
  return d(engine_);
}

}  // namespace unveil::support
