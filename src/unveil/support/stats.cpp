#include "unveil/support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "unveil/support/error.hpp"

namespace unveil::support {

void RunningStats::add(double x) noexcept {
  if (!any_) {
    min_ = x;
    max_ = x;
    any_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nTotal = na + nb;
  mean_ += delta * nb / nTotal;
  m2_ += other.m2_ + delta * delta * na * nb / nTotal;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw AnalysisError("quantile of empty range");
  UNVEIL_ASSERT(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v.front();
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double madSigma(std::span<const double> values) {
  const double m = median(values);
  std::vector<double> dev;
  dev.reserve(values.size());
  for (double x : values) dev.push_back(std::abs(x - m));
  return 1.4826 * median(dev);
}

double mean(std::span<const double> values) {
  if (values.empty()) throw AnalysisError("mean of empty range");
  double s = 0.0;
  for (double x : values) s += x;
  return s / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (!(hi > lo)) throw ConfigError("histogram requires hi > lo");
  if (bins == 0) throw ConfigError("histogram requires at least one bin");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  double idx = (x - lo_) / width_;
  idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size()) - 1.0);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t i) const {
  UNVEIL_ASSERT(i < counts_.size(), "histogram bin index out of range");
  return counts_[i];
}

double Histogram::binCenter(std::size_t i) const {
  UNVEIL_ASSERT(i < counts_.size(), "histogram bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

}  // namespace unveil::support
