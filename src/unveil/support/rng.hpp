#pragma once

/// \file rng.hpp
/// Deterministic random number generation with named substreams.
///
/// Every stochastic component in unveil (burst noise, sampling jitter, load
/// imbalance, k-means seeding) draws from an Rng obtained by deriving a
/// substream from a root seed and a stable label. Two runs with the same
/// root seed therefore produce bit-identical traces, cluster assignments and
/// folded curves, regardless of the order in which components are invoked.

#include <cstdint>
#include <random>
#include <string_view>

namespace unveil::support {

/// Derives a 64-bit stream seed from a root seed and a label using
/// SplitMix64-style mixing over the label bytes. Stable across platforms.
[[nodiscard]] std::uint64_t deriveSeed(std::uint64_t root, std::string_view label) noexcept;

/// Deterministic random generator (mt19937_64 core) with convenience
/// distributions. Cheap to copy; copies continue the same sequence
/// independently from the copy point.
class Rng {
 public:
  /// Constructs a generator seeded directly with \p seed.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Constructs the substream identified by (\p root, \p label).
  Rng(std::uint64_t root, std::string_view label) : engine_(deriveSeed(root, label)) {}

  /// Creates a child substream; children are independent of the parent's
  /// future draws.
  [[nodiscard]] Rng fork(std::string_view label);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Lognormal such that the *median* of the distribution is \p median and
  /// the underlying normal sigma is \p sigma. Useful for multiplicative
  /// noise factors: lognormalMedian(1.0, s) has median exactly 1.
  [[nodiscard]] double lognormalMedian(double median, double sigma);

  /// Exponential with the given mean (mean = 1/lambda).
  [[nodiscard]] double exponential(double mean);

  /// Bernoulli draw with probability \p p of returning true.
  [[nodiscard]] bool bernoulli(double p);

  /// Raw 64-bit draw, for hashing/seeding uses.
  [[nodiscard]] std::uint64_t next() { return engine_(); }

  /// Access to the underlying engine for use with std:: distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace unveil::support
