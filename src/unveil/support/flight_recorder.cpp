#include "unveil/support/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace unveil::support {

namespace {

std::int64_t steadyNowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Dense per-thread id in first-record order (mirrors log.cpp's scheme; a
/// separate counter so the recorder works without any log call).
std::uint32_t flightThreadId() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* kindName(std::uint8_t kind) noexcept {
  switch (static_cast<FlightKind>(kind)) {
    case FlightKind::Marker: return "marker";
    case FlightKind::SpanBegin: return "span_begin";
    case FlightKind::SpanEnd: return "span_end";
    case FlightKind::Log: return "log";
    case FlightKind::Fault: return "fault";
    case FlightKind::ShardDrop: return "shard_drop";
  }
  return "unknown";
}

// ---- async-signal-safe output helpers -------------------------------------
// No stdio, no allocation: a small stack buffer flushed with write(2). Every
// function below is callable from a SIGSEGV handler.

struct FdWriter {
  int fd;
  char buf[512];
  std::size_t len = 0;
  bool ok = true;

  explicit FdWriter(int f) noexcept : fd(f) {}

  void flush() noexcept {
    std::size_t off = 0;
    while (ok && off < len) {
      const ::ssize_t n = ::write(fd, buf + off, len - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }

  void putChar(char c) noexcept {
    if (len == sizeof(buf)) flush();
    buf[len++] = c;
  }

  void putStr(const char* s) noexcept {
    for (; *s != '\0'; ++s) putChar(*s);
  }

  void putUint(std::uint64_t v) noexcept {
    char digits[20];
    int n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) putChar(digits[--n]);
  }

  void putInt(std::int64_t v) noexcept {
    if (v < 0) {
      putChar('-');
      // Negate via uint64 so INT64_MIN does not overflow.
      putUint(~static_cast<std::uint64_t>(v) + 1);
    } else {
      putUint(static_cast<std::uint64_t>(v));
    }
  }

  /// JSON string body with escaping; control bytes become \u00XX.
  void putEscaped(const char* s, std::size_t max) noexcept {
    static const char hex[] = "0123456789abcdef";
    for (std::size_t i = 0; i < max && s[i] != '\0'; ++i) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      if (c == '"' || c == '\\') {
        putChar('\\');
        putChar(static_cast<char>(c));
      } else if (c == '\n') {
        putStr("\\n");
      } else if (c == '\t') {
        putStr("\\t");
      } else if (c < 0x20) {
        putStr("\\u00");
        putChar(hex[c >> 4]);
        putChar(hex[c & 0xf]);
      } else {
        putChar(static_cast<char>(c));
      }
    }
  }
};

}  // namespace

FlightRecorder& FlightRecorder::instance() noexcept {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(std::size_t capacity) {
  std::size_t cap = 8;
  while (cap < capacity && cap < (std::size_t{1} << 20)) cap <<= 1;
  if (!ring_ || mask_ != cap - 1) {
    ring_ = std::make_unique<Entry[]>(cap);
    mask_ = cap - 1;
    head_.store(0, std::memory_order_relaxed);
  }
  if (epochNs_ == 0) epochNs_ = steadyNowNs();
  enabled_.store(true, std::memory_order_release);
}

void FlightRecorder::clear() noexcept {
  if (!ring_) return;
  // Stop writers, reset every slot, resume. Not atomic with respect to an
  // in-flight record() — acceptable for the test/CLI call sites.
  const bool wasEnabled = enabled_.exchange(false, std::memory_order_acq_rel);
  for (std::size_t i = 0; i <= mask_; ++i) {
    ring_[i].seq.store(0, std::memory_order_relaxed);
    ring_[i].text[0] = '\0';
  }
  head_.store(0, std::memory_order_release);
  if (wasEnabled) enabled_.store(true, std::memory_order_release);
}

bool FlightRecorder::setDumpDirectory(std::string_view dir) noexcept {
  if (dir.empty() || dir.size() >= sizeof(dumpDir_)) return false;
  std::memcpy(dumpDir_, dir.data(), dir.size());
  dumpDir_[dir.size()] = '\0';
  return true;
}

void FlightRecorder::record(FlightKind kind, std::string_view text) noexcept {
  if (!enabled_.load(std::memory_order_acquire) || !ring_) return;
  const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Entry& slot = ring_[idx & mask_];
  // Mark in-progress so a concurrent dump skips the slot instead of reading
  // a torn payload, then publish payload before the final seq store.
  slot.seq.store(0, std::memory_order_release);
  slot.tNs = steadyNowNs() - epochNs_;
  slot.tid = flightThreadId();
  slot.kind = static_cast<std::uint8_t>(kind);
  const std::size_t n = text.size() < kTextMax - 1 ? text.size() : kTextMax - 1;
  std::memcpy(slot.text, text.data(), n);
  slot.text[n] = '\0';
  slot.seq.store(idx + 1, std::memory_order_release);
}

bool FlightRecorder::dumpTo(int fd, const char* reason) const noexcept {
  if (!ring_) return false;
  FdWriter w(fd);
  w.putStr("{\"reason\":\"");
  w.putEscaped(reason != nullptr ? reason : "unknown", 256);
  w.putStr("\",\"pid\":");
  w.putUint(static_cast<std::uint64_t>(::getpid()));
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  w.putStr(",\"recorded\":");
  w.putUint(head);
  const std::uint64_t cap = mask_ + 1;
  w.putStr(",\"capacity\":");
  w.putUint(cap);
  w.putStr(",\"events\":[");
  const std::uint64_t first = head > cap ? head - cap : 0;
  bool any = false;
  for (std::uint64_t i = first; i < head; ++i) {
    const Entry& slot = ring_[i & mask_];
    // A slot mid-write (seq 0) or already overwritten by a racing wrap
    // (seq != i+1) is silently skipped — dumps must never block on writers.
    if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
    if (any) w.putChar(',');
    any = true;
    w.putStr("{\"seq\":");
    w.putUint(i + 1);
    w.putStr(",\"t_ns\":");
    w.putInt(slot.tNs);
    w.putStr(",\"tid\":");
    w.putUint(slot.tid);
    w.putStr(",\"kind\":\"");
    w.putStr(kindName(slot.kind));
    w.putStr("\",\"text\":\"");
    w.putEscaped(slot.text, kTextMax);
    w.putStr("\"}");
    // Re-check after the copy: if the slot wrapped under us the emitted
    // object may be torn, but it is still well-formed JSON (escaped,
    // NUL-bounded), so the file as a whole stays parseable.
  }
  w.putStr("]}\n");
  w.flush();
  return w.ok;
}

bool FlightRecorder::dump(const char* reason) const noexcept {
  if (!ring_) return false;
  // Build "<dir>/unveil-flightrec-<pid>.json" without allocation.
  char path[sizeof(dumpDir_) + 64];
  std::size_t len = 0;
  for (const char* s = dumpDir_; *s != '\0'; ++s) path[len++] = *s;
  if (len > 0 && path[len - 1] != '/') path[len++] = '/';
  const char* stem = "unveil-flightrec-";
  for (const char* s = stem; *s != '\0'; ++s) path[len++] = *s;
  std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
  char digits[20];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + pid % 10);
    pid /= 10;
  } while (pid != 0);
  while (n > 0) path[len++] = digits[--n];
  for (const char* s = ".json"; *s != '\0'; ++s) path[len++] = *s;
  path[len] = '\0';

  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dumpTo(fd, reason);
  ::close(fd);
  return ok;
}

std::string FlightRecorder::dumpPath() const {
  std::string path(dumpDir_);
  if (!path.empty() && path.back() != '/') path += '/';
  path += "unveil-flightrec-";
  path += std::to_string(::getpid());
  path += ".json";
  return path;
}

namespace {

void crashDump(int signal) noexcept {
  const char* reason = signal == SIGSEGV   ? "SIGSEGV"
                       : signal == SIGABRT ? "SIGABRT"
                       : signal == SIGBUS  ? "SIGBUS"
                                           : "signal";
  FlightRecorder::instance().dump(reason);
}

extern "C" void crashSignalHandler(int signal) {
  crashDump(signal);
  // SA_RESETHAND restored the default disposition; re-raise so the process
  // dies with the original signal (exit status and core files unchanged).
  ::raise(signal);
}

}  // namespace

void crashDumpForTesting(int signal) noexcept { crashDump(signal); }

void installCrashHandlers() noexcept {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_acq_rel)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crashSignalHandler;
  sigemptyset(&sa.sa_mask);
  // One-shot: the handler runs once, the disposition resets to default, and
  // the re-raise terminates. SA_NODEFER lets the re-raise delivery through.
  sa.sa_flags = SA_RESETHAND | SA_NODEFER;
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS}) {
    struct sigaction old;
    std::memset(&old, 0, sizeof(old));
    if (sigaction(sig, nullptr, &old) == 0 && old.sa_handler == SIG_DFL) {
      sigaction(sig, &sa, nullptr);
    }
    // A non-default handler (sanitizer runtime, gtest death test machinery)
    // keeps precedence — the flight recorder must never mask ASan reports.
  }
}

}  // namespace unveil::support
