#include "unveil/support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace unveil::support {

namespace {
std::atomic<LogLevel> gLevel{LogLevel::Warn};
std::mutex gMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::ErrorLevel: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) noexcept { gLevel.store(level, std::memory_order_relaxed); }

LogLevel logLevel() noexcept { return gLevel.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  const std::lock_guard<std::mutex> lock(gMutex);
  std::fprintf(stderr, "[%s] %.*s\n", levelName(level),
               static_cast<int>(message.size()), message.data());
}

void logDebug(std::string_view message) { log(LogLevel::Debug, message); }
void logInfo(std::string_view message) { log(LogLevel::Info, message); }
void logWarn(std::string_view message) { log(LogLevel::Warn, message); }
void logError(std::string_view message) { log(LogLevel::ErrorLevel, message); }

}  // namespace unveil::support
