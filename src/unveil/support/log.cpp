#include "unveil/support/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

#include "unveil/support/flight_recorder.hpp"

namespace unveil::support {

namespace {
std::atomic<LogLevel> gLevel{LogLevel::Warn};
std::mutex gMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::ErrorLevel: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

/// Monotonic seconds since the first log call (magic-static epoch).
double monotonicSeconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
      .count();
}

/// Dense per-thread id, assigned in first-log order — stable and short,
/// unlike std::thread::id, so fold-worker interleavings stay readable.
std::uint32_t threadId() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

}  // namespace

void setLogLevel(LogLevel level) noexcept { gLevel.store(level, std::memory_order_relaxed); }

LogLevel logLevel() noexcept { return gLevel.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view message) {
  // The flight recorder journals every line regardless of the level gate —
  // a crash dump wants the debug narration the console suppressed.
  if (FlightRecorder::instance().enabled() && level != LogLevel::Off) {
    char prefixed[FlightRecorder::kTextMax];
    std::snprintf(prefixed, sizeof(prefixed), "%s: %.*s", levelName(level),
                  static_cast<int>(message.size()), message.data());
    FlightRecorder::instance().record(FlightKind::Log, prefixed);
  }
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  const double elapsed = monotonicSeconds();
  const std::uint32_t tid = threadId();
  const std::lock_guard<std::mutex> lock(gMutex);
  std::fprintf(stderr, "[%9.3f t%02u %s] %.*s\n", elapsed, tid, levelName(level),
               static_cast<int>(message.size()), message.data());
}

void applyVerbosityArgs(int argc, char** argv, LogLevel fallback) noexcept {
  LogLevel level = fallback;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quiet") level = LogLevel::Off;
    else if (arg == "--verbose") level = LogLevel::Debug;
  }
  setLogLevel(level);
}

void logDebug(std::string_view message) { log(LogLevel::Debug, message); }
void logInfo(std::string_view message) { log(LogLevel::Info, message); }
void logWarn(std::string_view message) { log(LogLevel::Warn, message); }
void logError(std::string_view message) { log(LogLevel::ErrorLevel, message); }

}  // namespace unveil::support
