#pragma once

/// \file telemetry.hpp
/// Self-tracing for the analysis pipeline: a Session collects the span tree
/// (span.hpp) and work metrics (metrics.hpp) of everything that runs while
/// it is active, and exports them as a Chrome `chrome://tracing` JSON, a
/// flat metrics JSON, or a human summary table.
///
/// The paper's point is that aggregate timings hide internal evolution;
/// this layer applies the same lens to the tool itself — every stage of
/// parse → cluster → refine → fold → fit → structure reports where its time
/// and work went instead of one opaque end-to-end number.
///
/// Exactly one Session can be active at a time (a process-global slot).
/// Instrumentation sites are compiled in unconditionally but gated on a
/// null check of that slot, so a run without an active session pays one
/// relaxed atomic load + branch per site — measured < 1% of any
/// instrumented operation by the perf bench's telemetry A-B case.
///
/// Usage:
///   telemetry::Session session;
///   session.activate();
///   auto result = analysis::analyze(trace);     // self-instruments
///   session.deactivate();
///   telemetry::writeChromeTraceFile(session.snapshot(), "trace.json");

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "unveil/support/metrics.hpp"
#include "unveil/support/span.hpp"
#include "unveil/support/table.hpp"

namespace unveil::telemetry {

/// Immutable merged view of a session: completed spans from every thread in
/// one list (sorted by start time, then id) plus all metric values.
struct Snapshot {
  std::vector<SpanRecord> spans;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Summary> histograms;
};

/// Collector for one instrumented run. Not copyable/movable: spans hold a
/// pointer to their session. Destroy only after all threads that recorded
/// into it have finished their spans.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The process-global active session, or nullptr. One relaxed load — the
  /// gate every instrumentation site branches on.
  [[nodiscard]] static Session* active() noexcept;

  /// Installs this session in the global slot (replacing any other).
  void activate() noexcept;
  /// Clears the global slot if this session occupies it.
  void deactivate() noexcept;

  /// The metrics registry; safe to use from any thread.
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Merges all per-thread span buffers with the metric values. Callable
  /// while active, but only spans completed so far are included.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class Span;
  struct ThreadBuffer;

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer& threadBuffer();
  [[nodiscard]] std::int64_t nowNs() const noexcept;
  std::uint64_t nextSpanId() noexcept {
    return spanId_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::int64_t epochNs_ = 0;  ///< steady_clock at construction.
  std::uint64_t generation_ = 0;
  std::atomic<std::uint64_t> spanId_{0};
  MetricsRegistry metrics_;
  mutable std::mutex buffersMutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// Adds \p n to counter \p name of the active session; no-op otherwise.
/// One locked name lookup per call — hot loops accumulate locally and call
/// this once with the total.
void count(std::string_view name, std::uint64_t n = 1);
/// Sets gauge \p name on the active session; no-op otherwise.
void gauge(std::string_view name, double value);
/// Observes \p value in histogram \p name; no-op otherwise.
void observe(std::string_view name, double value);

/// Escapes \p s for embedding in a JSON string literal (quotes, backslashes
/// and control characters, newlines included).
[[nodiscard]] std::string escapeJson(std::string_view s);

/// Writes the span tree as Chrome `chrome://tracing` JSON: an object with a
/// "traceEvents" array of complete ("ph":"X") duration events, timestamps
/// in microseconds, one tid per recording thread, attributes under "args".
void writeChromeTrace(const Snapshot& snapshot, std::ostream& os);
void writeChromeTraceFile(const Snapshot& snapshot, const std::string& path);

/// Writes a flat JSON metrics dump: per-span-name aggregates under "spans"
/// (count, total_ns, mean_ns) and the metric maps under "counters",
/// "gauges", "histograms". Consumed by tools/run_perf_bench.sh.
void writeMetricsJson(const Snapshot& snapshot, std::ostream& os);
void writeMetricsJsonFile(const Snapshot& snapshot, const std::string& path);

/// Human summary: one row per span name (count, total/mean wall ms) sorted
/// by total time descending — the `--verbose` table.
[[nodiscard]] support::Table summaryTable(const Snapshot& snapshot);

/// Per-stage pipeline timing attached to PipelineResult when a session is
/// active during analyze() (empty otherwise).
struct StageStat {
  std::string name;
  std::int64_t wallNs = 0;
  std::uint64_t items = 0;  ///< Stage-specific work count (bursts, jobs, ...).
};

}  // namespace unveil::telemetry
