#pragma once

/// \file telemetry.hpp
/// Self-tracing for the analysis pipeline: a Session collects the span tree
/// (span.hpp) and work metrics (metrics.hpp) of everything that runs while
/// it is active, and exports them as a Chrome `chrome://tracing` JSON, a
/// flat metrics JSON, or a human summary table.
///
/// The paper's point is that aggregate timings hide internal evolution;
/// this layer applies the same lens to the tool itself — every stage of
/// parse → cluster → refine → fold → fit → structure reports where its time
/// and work went instead of one opaque end-to-end number.
///
/// Exactly one Session can be active at a time (a process-global slot).
/// Instrumentation sites are compiled in unconditionally but gated on a
/// null check of that slot, so a run without an active session pays one
/// relaxed atomic load + branch per site — measured < 1% of any
/// instrumented operation by the perf bench's telemetry A-B case.
///
/// Usage:
///   telemetry::Session session;
///   session.activate();
///   auto result = analysis::analyze(trace);     // self-instruments
///   session.deactivate();
///   telemetry::writeChromeTraceFile(session.snapshot(), "trace.json");

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "unveil/support/metrics.hpp"
#include "unveil/support/span.hpp"
#include "unveil/support/table.hpp"

namespace unveil::telemetry {

/// One tick of the background sampler (sampler.hpp): pool health, process
/// memory and live-span census at a session-relative instant. `counters`
/// holds the cumulative values of the tracked counter names (see
/// Snapshot::sampleCounterNames), index-aligned across all samples.
struct SampleRecord {
  std::int64_t tNs = 0;           ///< Session-relative sample time.
  std::uint32_t liveSpanThreads = 0;  ///< Threads with an open span.
  std::uint32_t poolThreads = 0;  ///< Pool concurrency (workers + caller).
  std::uint32_t busyWorkers = 0;
  std::uint64_t queuedTasks = 0;  ///< Sum of per-worker deque depths.
  std::uint64_t injectDepth = 0;
  std::uint64_t steals = 0;       ///< Cumulative cross-worker steals.
  std::uint64_t rssBytes = 0;     ///< VmRSS at sample time.
  std::uint64_t hwmBytes = 0;     ///< VmHWM (peak RSS) at sample time.
  std::vector<std::uint64_t> counters;  ///< Tracked counter values.
};

/// Immutable merged view of a session: completed spans from every thread in
/// one list (sorted by start time, then id), all metric values, and the
/// sampler time-series recorded while the session was active.
struct Snapshot {
  std::vector<SpanRecord> spans;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Summary> histograms;
  std::vector<SampleRecord> samples;
  std::vector<std::string> sampleCounterNames;  ///< Names for SampleRecord::counters.
};

/// Collector for one instrumented run. Not copyable/movable: spans hold a
/// pointer to their session. Destroy only after all threads that recorded
/// into it have finished their spans.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The process-global active session, or nullptr. One relaxed load — the
  /// gate every instrumentation site branches on.
  [[nodiscard]] static Session* active() noexcept;

  /// Installs this session in the global slot (replacing any other).
  void activate() noexcept;
  /// Clears the global slot if this session occupies it.
  void deactivate() noexcept;

  /// The metrics registry; safe to use from any thread.
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Nanoseconds since this session's construction (the span/sample clock).
  [[nodiscard]] std::int64_t nowNs() const noexcept;

  /// Appends one sampler tick to the session's time-series (thread-safe).
  void recordSample(SampleRecord sample);
  /// Names for SampleRecord::counters, set once by the sampler before its
  /// first tick (not thread-safe against concurrent recordSample).
  void setSampleCounterNames(std::vector<std::string> names);

  /// A thread currently inside at least one span: its dense per-session id
  /// and the innermost open span's id.
  struct LiveSpan {
    std::uint32_t threadId = 0;
    std::uint64_t spanId = 0;
  };
  /// Census of threads with an open span right now — what each live thread
  /// is doing at a sampler tick. Span ids refer to spans that may still be
  /// open (i.e. absent from snapshot().spans until they complete).
  [[nodiscard]] std::vector<LiveSpan> liveThreadSpans() const;

  /// Merges all per-thread span buffers with the metric values. Callable
  /// while active, but only spans completed so far are included.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class Span;
  struct ThreadBuffer;

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer& threadBuffer();
  std::uint64_t nextSpanId() noexcept {
    return spanId_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::int64_t epochNs_ = 0;  ///< steady_clock at construction.
  std::uint64_t generation_ = 0;
  std::atomic<std::uint64_t> spanId_{0};
  MetricsRegistry metrics_;
  mutable std::mutex buffersMutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  mutable std::mutex samplesMutex_;
  std::vector<SampleRecord> samples_;
  std::vector<std::string> sampleCounterNames_;
};

/// Adds \p n to counter \p name of the active session; no-op otherwise.
/// One locked name lookup per call — hot loops accumulate locally and call
/// this once with the total.
void count(std::string_view name, std::uint64_t n = 1);
/// Sets gauge \p name on the active session; no-op otherwise.
void gauge(std::string_view name, double value);
/// Observes \p value in histogram \p name; no-op otherwise.
void observe(std::string_view name, double value);

/// Escapes \p s for embedding in a JSON string literal (quotes, backslashes
/// and control characters, newlines included).
[[nodiscard]] std::string escapeJson(std::string_view s);

/// Writes the span tree as Chrome `chrome://tracing` JSON: an object with a
/// "traceEvents" array of complete ("ph":"X") duration events, timestamps
/// in microseconds, one tid per recording thread, attributes under "args".
void writeChromeTrace(const Snapshot& snapshot, std::ostream& os);
void writeChromeTraceFile(const Snapshot& snapshot, const std::string& path);

/// Writes a flat JSON metrics dump: per-span-name aggregates under "spans"
/// (count, total_ns, mean_ns) and the metric maps under "counters",
/// "gauges", "histograms". Consumed by tools/run_perf_bench.sh.
void writeMetricsJson(const Snapshot& snapshot, std::ostream& os);
void writeMetricsJsonFile(const Snapshot& snapshot, const std::string& path);

/// Human summary: one row per span name (count, total/mean wall ms) sorted
/// by total time descending — the `--verbose` table.
[[nodiscard]] support::Table summaryTable(const Snapshot& snapshot);

/// Per-stage pipeline timing attached to PipelineResult when a session is
/// active during analyze() (empty otherwise). Beyond wall time, each stage
/// carries the process-wide CPU time it consumed and the RSS/peak-RSS
/// growth across its boundaries — the per-stage memory accounting the
/// telemetry-diff workflow compares between runs.
struct StageStat {
  std::string name;
  std::int64_t wallNs = 0;
  std::uint64_t items = 0;  ///< Stage-specific work count (bursts, jobs, ...).
  std::int64_t cpuNs = 0;   ///< Process CPU time across the stage (all threads).
  std::int64_t rssDeltaBytes = 0;  ///< VmRSS end - start (can shrink).
  std::int64_t hwmDeltaBytes = 0;  ///< VmHWM growth — the stage's peak-RSS push.
};

}  // namespace unveil::telemetry
