#pragma once

/// \file span.hpp
/// RAII spans for the self-tracing layer (telemetry.hpp).
///
/// A Span marks one timed region of the pipeline. Spans nest: each thread
/// keeps a current-parent cursor, so stack-ordered construction builds a
/// tree (name, wall-clock ns, parent, thread id, key/value attributes).
/// Completed spans land in a per-thread buffer of the active Session —
/// recording takes one uncontended per-thread mutex, never a global lock,
/// so worker threads (the fold/fit pool) can open per-cluster spans without
/// serializing on each other. When no Session is active every operation is
/// a single relaxed atomic load plus a branch.

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace unveil::telemetry {

class Session;

/// One completed span as stored/exported.
struct SpanRecord {
  std::uint64_t id = 0;        ///< Unique per session, 1-based.
  std::uint64_t parentId = 0;  ///< 0 = root.
  std::uint32_t threadId = 0;  ///< Dense per-session thread index.
  std::int64_t startNs = 0;    ///< Offset from the session epoch.
  std::int64_t durationNs = 0;
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// RAII span handle. Construction opens the span under the active session
/// (no-op when none); destruction stamps the duration and commits the
/// record to the calling thread's buffer.
///
/// The Session active at construction must outlive the Span.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when a session was active at construction.
  [[nodiscard]] bool active() const noexcept { return session_ != nullptr; }
  /// Span id (0 when inactive). Parent handle for ScopedParent.
  [[nodiscard]] std::uint64_t id() const noexcept { return rec_.id; }

  /// Attach a key/value attribute (no-op when inactive).
  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, const char* value) {
    attr(key, std::string_view(value));
  }
  void attr(std::string_view key, double value);
  template <typename T>
    requires std::is_integral_v<T>
  void attr(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>)
      attrInt(key, static_cast<std::int64_t>(value));
    else
      attrUint(key, static_cast<std::uint64_t>(value));
  }

 private:
  void attrInt(std::string_view key, std::int64_t value);
  void attrUint(std::string_view key, std::uint64_t value);

  Session* session_ = nullptr;
  std::uint64_t savedParent_ = 0;
  std::uint64_t savedLiveSpan_ = 0;  ///< Thread's prior innermost open span.
  SpanRecord rec_;
};

/// The calling thread's span parent cursor (0 when no span is open). Pass
/// this to ScopedParent on a worker thread to attach the worker's spans to
/// the span that dispatched the work — support::ThreadPool::parallelFor
/// does exactly that automatically.
[[nodiscard]] std::uint64_t currentParent() noexcept;

/// Re-parents spans opened in the current scope *on the current thread*
/// under \p parentId — the bridge that keeps worker-thread spans attached
/// to the stage span that dispatched the jobs (a worker's parent cursor
/// starts at 0, so its spans would otherwise become roots).
class ScopedParent {
 public:
  explicit ScopedParent(std::uint64_t parentId) noexcept;
  ~ScopedParent();
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace unveil::telemetry
