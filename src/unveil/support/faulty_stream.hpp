#pragma once

/// \file faulty_stream.hpp
/// Deterministic I/O fault injection for robustness testing.
///
/// A FaultyStreamBuf decorates another streambuf and injects the failure
/// modes production filesystems actually produce: reads that stop short
/// (killed jobs, truncated copies), writes that fail mid-stream (ENOSPC,
/// quota), and flipped bytes (flaky NFS, bit rot). Faults are positional
/// and deterministic — the same FaultSpec over the same bytes fails the
/// same way every time — so tests and the fuzz driver can assert exact
/// outcomes.
///
/// Two injection paths exist:
///  - tests construct FaultyStreamBuf directly, or call
///    setFaultSpecForTesting() so the trace file helpers wrap their
///    streams;
///  - the UNVEIL_FAULT_SPEC environment variable applies a spec
///    process-wide (e.g. `UNVEIL_FAULT_SPEC=fail-write-after=4096 unveil
///    simulate ...` rehearses a disk-full mid-write).
///
/// Spec syntax: comma-separated `key=value` pairs; keys:
///   fail-read-after=N    reads report EOF after N bytes delivered
///   fail-write-after=N   writes fail (badbit) after N bytes accepted
///   flip-byte-at=N       XOR flip-mask into the byte at read offset N
///   flip-mask=M          mask for flip-byte-at (default 1)
///   short-read-max=N     deliver at most N bytes per refill (exercises
///                        partial-read handling; data is still complete)

#include <cstdint>
#include <optional>
#include <streambuf>
#include <string_view>

namespace unveil::support {

/// Sentinel for "this fault never fires".
inline constexpr std::uint64_t kFaultNever = ~std::uint64_t{0};

struct FaultSpec {
  std::uint64_t failReadAfter = kFaultNever;
  std::uint64_t failWriteAfter = kFaultNever;
  std::uint64_t flipByteAt = kFaultNever;
  std::uint8_t flipMask = 0x01;
  std::uint64_t shortReadMax = 0;  ///< 0 = full-size refills.

  /// True when at least one fault is armed.
  [[nodiscard]] bool any() const noexcept {
    return failReadAfter != kFaultNever || failWriteAfter != kFaultNever ||
           flipByteAt != kFaultNever || shortReadMax != 0;
  }

  /// Parses the comma-separated syntax above; throws ConfigError on
  /// unknown keys or malformed numbers.
  [[nodiscard]] static FaultSpec parse(std::string_view text);
};

/// streambuf decorator applying a FaultSpec to an inner streambuf. Holds no
/// ownership; the inner buf must outlive it. Read and write byte positions
/// are tracked independently.
class FaultyStreamBuf final : public std::streambuf {
 public:
  FaultyStreamBuf(std::streambuf* inner, FaultSpec spec)
      : inner_(inner), spec_(spec) {}

  [[nodiscard]] std::uint64_t bytesRead() const noexcept { return bytesRead_; }
  [[nodiscard]] std::uint64_t bytesWritten() const noexcept { return bytesWritten_; }

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int sync() override;

 private:
  std::streambuf* inner_;
  FaultSpec spec_;
  std::uint64_t bytesRead_ = 0;     ///< Offset of the first byte of the get area.
  std::uint64_t bytesWritten_ = 0;
  char buf_[4096];
};

/// The process-wide fault spec the trace file helpers consult: the testing
/// override when set, else UNVEIL_FAULT_SPEC from the environment (parsed
/// per call so tests may change it), else nullopt.
[[nodiscard]] std::optional<FaultSpec> activeFaultSpec();

/// Installs (or with nullopt clears) a spec that shadows the environment
/// variable. Not thread-safe; call from test setup only.
void setFaultSpecForTesting(std::optional<FaultSpec> spec);

}  // namespace unveil::support
