#include "unveil/support/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace unveil::support {

namespace {

bool cpuHasAvx2() noexcept {
#if defined(UNVEIL_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel detect() noexcept {
  const char* env = std::getenv("UNVEIL_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return SimdLevel::Scalar;
    if (std::strcmp(env, "avx2") == 0)
      return cpuHasAvx2() ? SimdLevel::Avx2 : SimdLevel::Scalar;
    // Unknown value: fall through to auto-detection.
  }
  return cpuHasAvx2() ? SimdLevel::Avx2 : SimdLevel::Scalar;
}

}  // namespace

SimdLevel simdLevel() noexcept {
  static const SimdLevel level = detect();
  return level;
}

const char* simdLevelName(SimdLevel level) noexcept {
  return level == SimdLevel::Avx2 ? "avx2" : "scalar";
}

}  // namespace unveil::support
