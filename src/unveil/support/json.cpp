#include "unveil/support/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "unveil/support/error.hpp"
#include "unveil/support/parse.hpp"

namespace unveil::support::json {

const Value* Value::find(std::string_view key) const {
  if (!isObject()) return nullptr;
  const auto& obj = std::get<Object>(data_);
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

const Value* Value::at(std::initializer_list<std::string_view> path) const {
  const Value* v = this;
  for (const std::string_view key : path) {
    v = v->find(key);
    if (v == nullptr) return nullptr;
  }
  return v;
}

namespace {

/// Recursive-descent parser over a string_view with line/column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue(0);
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw Error("json: " + what + " (line " + std::to_string(line) +
                ", column " + std::to_string(col) + ")");
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parseValue(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skipWhitespace();
    switch (peek()) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return Value(parseString());
      case 't':
        if (consumeLiteral("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return Value();
        fail("invalid literal");
      default: return parseNumber();
    }
  }

  Value parseObject(int depth) {
    expect('{');
    Value::Object obj;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      obj.insert_or_assign(std::move(key), parseValue(depth + 1));
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parseArray(int depth) {
    expect('[');
    Value::Array arr;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parseValue(depth + 1));
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // UTF-8-encode the BMP code point; surrogate pairs (rare in our
          // machine-written files) are passed through as two 3-byte units.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    double v = 0.0;
    if (parseDouble(token, v) != ParseStatus::Ok || !std::isfinite(v)) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parseDocument(); }

Value parseFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw Error("cannot open for reading [file=" + path + "]");
  std::ostringstream ss;
  ss << f.rdbuf();
  if (f.bad()) throw Error("read failed [file=" + path + "]");
  try {
    return parse(ss.str());
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " [file=" + path + "]");
  }
}

}  // namespace unveil::support::json
