#include "unveil/support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "unveil/support/error.hpp"

namespace unveil::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw ConfigError("table requires at least one column");
}

void Table::addRow(std::vector<Cell> row) {
  if (row.size() != headers_.size())
    throw ConfigError("table row has " + std::to_string(row.size()) +
                      " cells, expected " + std::to_string(headers_.size()));
  rows_.push_back(std::move(row));
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  UNVEIL_ASSERT(row < rows_.size(), "table row index out of range");
  UNVEIL_ASSERT(col < headers_.size(), "table column index out of range");
  return rows_[row][col];
}

std::string Table::formatCell(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  const double d = std::get<double>(cell);
  char buf[64];
  if (d != 0.0 && (std::abs(d) >= 1e7 || std::abs(d) < 1e-4)) {
    std::snprintf(buf, sizeof(buf), "%.4g", d);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", d);
  }
  return buf;
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      line.push_back(formatCell(row[c]));
      width[c] = std::max(width[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto writeLine = [&](const std::vector<std::string>& line) {
    for (std::size_t c = 0; c < line.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << line[c];
      for (std::size_t p = line[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  writeLine(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 2);
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& line : cells) writeLine(line);
}

namespace {
std::string csvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::writeCsv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << csvEscape(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << csvEscape(formatCell(row[c]));
    os << '\n';
  }
}

void Table::saveCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("cannot open for writing: " + path);
  writeCsv(f);
}

}  // namespace unveil::support
