#pragma once

/// \file flight_recorder.hpp
/// Crash-time observability: a lock-free ring buffer of the last N notable
/// events (span begin/end, log lines, I/O fault-injection hits, dropped
/// trace shards) that can be dumped as JSON from contexts where nothing
/// else works — a fatal error handler, the shard-degradation path, or a
/// SIGSEGV/SIGABRT signal handler.
///
/// Design constraints, in order:
///  - record() is wait-free for concurrent writers (one fetch_add plus a
///    bounded memcpy into a preallocated slot; no locks, no allocation), so
///    pool workers can journal span events without serializing;
///  - dump paths use only async-signal-safe primitives (open/write/close,
///    no malloc, no stdio buffering, hand-rolled integer formatting), so a
///    dump from a SIGSEGV handler cannot deadlock on a heap lock the
///    crashing thread holds;
///  - torn slots are detected by a per-slot sequence stamp and skipped, so
///    a dump racing live recorders emits only fully committed events.
///
/// The recorder is process-global and disabled by default (the library
/// stays zero-overhead for embedders); the CLI arms it for every command
/// and dumps `unveil-flightrec-<pid>.json` on the three trigger paths.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace unveil::support {

/// Event taxonomy; the dump writes these as lowercase strings.
enum class FlightKind : std::uint8_t {
  Marker = 0,   ///< Free-form annotation (command start, config, ...).
  SpanBegin,    ///< telemetry::Span opened.
  SpanEnd,      ///< telemetry::Span closed (text carries duration).
  Log,          ///< support::log line (any level, regardless of the gate).
  Fault,        ///< FaultyStreamBuf injected a fault (read-fail, bit-flip, ...).
  ShardDrop,    ///< Binary trace reader dropped a corrupt shard.
};

class FlightRecorder {
 public:
  /// Longest text payload a slot stores (including the terminating NUL);
  /// longer messages are truncated — the tail of a span name or log line is
  /// less valuable than a bounded, signal-safe slot.
  static constexpr std::size_t kTextMax = 104;

  /// One committed event. `seq` is index+1 (0 = never written); a reader
  /// that loads seq twice around the payload and sees the same committed
  /// value knows the slot was not torn by a concurrent wrap.
  struct Entry {
    std::atomic<std::uint64_t> seq{0};
    std::int64_t tNs = 0;   ///< steady_clock ns since first enable().
    std::uint32_t tid = 0;  ///< Dense first-record thread index.
    std::uint8_t kind = 0;
    char text[kTextMax] = {};
  };

  /// The process-global recorder.
  [[nodiscard]] static FlightRecorder& instance() noexcept;

  /// Arms the recorder with a ring of \p capacity slots (rounded up to a
  /// power of two, min 8). Reuses the existing ring when the capacity
  /// matches, else reallocates — never call concurrently with record().
  /// Entries survive disable()/enable() cycles of the same capacity.
  void enable(std::size_t capacity = 1024);
  /// Disarms recording; the ring (and its contents) stay readable/dumpable.
  void disable() noexcept { enabled_.store(false, std::memory_order_release); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }
  /// Forgets all recorded events (the ring stays allocated).
  void clear() noexcept;

  /// Directory dump() writes into (bounded copy, default "."). Overlong
  /// paths are rejected (returns false) rather than truncated.
  bool setDumpDirectory(std::string_view dir) noexcept;
  /// When set, the binary trace reader dumps automatically after dropping
  /// corrupt shards (the PR 4 degradation path).
  void setDumpOnDegradation(bool on) noexcept {
    dumpOnDegradation_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool dumpOnDegradation() const noexcept {
    return dumpOnDegradation_.load(std::memory_order_relaxed);
  }

  /// Appends one event (no-op when disabled). Wait-free; safe from any
  /// thread, including pool workers inside parallelFor bodies.
  void record(FlightKind kind, std::string_view text) noexcept;

  /// Total events ever recorded (>= ring capacity means wraparound).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Writes the ring as JSON to \p fd, oldest first. Async-signal-safe.
  /// Returns false when the ring was never enabled or a write failed.
  bool dumpTo(int fd, const char* reason) const noexcept;

  /// Opens `<dumpDir>/unveil-flightrec-<pid>.json` and dumpTo()s it.
  /// Async-signal-safe. Returns false on open/write failure.
  bool dump(const char* reason) const noexcept;

  /// The path dump() would write — for "flight recorder -> ..." UI lines.
  /// NOT signal-safe (allocates).
  [[nodiscard]] std::string dumpPath() const;

 private:
  FlightRecorder() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<bool> dumpOnDegradation_{false};
  std::atomic<std::uint64_t> head_{0};
  std::size_t mask_ = 0;
  std::unique_ptr<Entry[]> ring_;
  std::int64_t epochNs_ = 0;
  char dumpDir_[240] = ".";
};

/// Convenience append to the global recorder; one relaxed load when
/// disabled.
inline void flightRecord(FlightKind kind, std::string_view text) noexcept {
  FlightRecorder& rec = FlightRecorder::instance();
  if (rec.enabled()) rec.record(kind, text);
}

/// Installs SIGSEGV/SIGABRT handlers that dump the flight recorder and
/// re-raise with the default disposition (so exit codes and core dumps are
/// unchanged). Idempotent; call once from main().
void installCrashHandlers() noexcept;

/// The handler body minus the re-raise — dumps with a "SIG..." reason.
/// Exposed so tests can validate the signal dump without dying.
void crashDumpForTesting(int signal) noexcept;

}  // namespace unveil::support
