#pragma once

/// \file thread_pool.hpp
/// The shared work-stealing thread pool every parallel stage runs on.
///
/// One process-wide pool (globalPool()) replaces the ad-hoc `std::jthread`
/// spawns that used to hide inside dbscan/pipeline: DBSCAN neighbor
/// precomputation, estimateEps k-NN sampling, per-cluster fold/fit jobs,
/// per-rank burst extraction and binary-shard decoding all share the same
/// workers, so the process never oversubscribes the machine no matter how
/// the stages nest.
///
/// Scheduling: each worker owns a deque (LIFO for the owner, FIFO for
/// thieves) plus a shared injection queue for external submitters. An idle
/// worker drains its own deque, then the injection queue, then steals from
/// the other workers round-robin. Queues are mutex-protected — contention
/// is negligible because every task in this codebase is coarse (a cluster
/// fold, a rank decode, a k-NN batch), and the simple locking is what keeps
/// the pool trivially TSan-clean.
///
/// Determinism contract: parallelFor() hands each index to exactly one
/// participant and never reorders, splits, or drops indices. Callers get
/// bit-identical results for ANY thread count by writing job j's output to
/// slot j and merging slots in canonical index order afterwards — the rule
/// every migrated stage follows (see DESIGN.md "Threading model").
///
/// Nesting: parallelFor() is safe to call from inside a pool task. The
/// caller always participates in its own loop, so the loop completes even
/// when every worker is busy — helpers enqueued for a loop are pure
/// accelerators whose late arrival is a no-op.
///
/// Telemetry: parallelFor() captures the caller's current span parent and
/// re-parents spans opened by helper workers under it (telemetry
/// ScopedParent), so worker spans stay attached to the stage that
/// dispatched them instead of becoming roots.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>

namespace unveil::support {

class ThreadPool {
 public:
  /// Instantaneous pool health, read by the telemetry sampler (sampler.hpp)
  /// at its tick rate. Queue depths are a consistent-enough snapshot (each
  /// deque is read under its own mutex); the busy/executed counters are
  /// relaxed atomics maintained by the workers.
  struct Health {
    std::size_t threads = 1;        ///< Configured concurrency.
    std::size_t workers = 0;        ///< Spawned worker threads.
    std::size_t busyWorkers = 0;    ///< Workers currently running a task.
    std::size_t injectDepth = 0;    ///< Tasks waiting in the injection queue.
    std::size_t queuedTasks = 0;    ///< Sum of per-worker deque depths.
    std::size_t maxWorkerQueue = 0; ///< Deepest single worker deque.
    std::uint64_t steals = 0;       ///< Cross-worker steals so far.
    std::uint64_t executed = 0;     ///< Tasks completed by workers so far.
  };

  /// A pool of concurrency \p threads (>= 1): threads - 1 worker threads
  /// are spawned; the caller of parallelFor() is the remaining participant.
  /// With threads == 1 nothing is spawned and every operation runs inline
  /// on the calling thread — the sequential reference execution.
  explicit ThreadPool(std::size_t threads);

  /// Drains every queued task, then joins the workers. Pending futures all
  /// complete (shutdown never abandons a task).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured concurrency (workers + the participating caller).
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Runs body(j) exactly once for every j in [0, jobCount) across the
  /// caller and up to threads()-1 helper workers; returns when all jobs
  /// finished. Indices are claimed atomically, so each runs exactly once.
  /// If any body throws, every remaining job still runs and the exception
  /// of the lowest failing index is rethrown (deterministic for any thread
  /// count / interleaving).
  void parallelFor(std::size_t jobCount, const std::function<void(std::size_t)>& body);

  /// Splits [0, total) into contiguous chunks of at least \p minPerJob
  /// indices and runs body(begin, end) once per chunk — the right shape for
  /// loops whose per-index work is too small to dispatch individually.
  /// Chunk boundaries depend only on total, minPerJob and threads(), never
  /// on scheduling, and chunking must not change what an index computes, so
  /// the determinism contract of parallelFor() carries over.
  void parallelForChunks(std::size_t total, std::size_t minPerJob,
                         const std::function<void(std::size_t, std::size_t)>& body);

  /// Schedules \p fn on a worker and returns its future; exceptions thrown
  /// by \p fn surface at future::get(). Submitting from inside a pool task
  /// is safe: the call runs inline and returns a ready future, so a worker
  /// that immediately get()s a nested future can never deadlock waiting for
  /// itself (use parallelFor for nested parallelism). With threads() == 1
  /// every call runs inline.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    if (workerCount() == 0 || onWorkerThread()) {
      (*task)();
      return future;
    }
    push([task] { (*task)(); });
    return future;
  }

  /// True when the calling thread is a worker of this pool.
  [[nodiscard]] bool onWorkerThread() const noexcept;

  /// Snapshots queue depths and worker activity. Cheap enough for a 100 Hz
  /// sampler (brief per-deque locks), safe from any thread.
  [[nodiscard]] Health health() const;

 private:
  struct State;

  [[nodiscard]] std::size_t workerCount() const noexcept;
  void push(std::function<void()> task);

  std::size_t threads_ = 1;
  std::unique_ptr<State> state_;
};

/// The process-wide pool, created on first use with the configured size
/// (setGlobalThreads(), else UNVEIL_THREADS, else hardware_concurrency).
/// Throws ConfigError when UNVEIL_THREADS is not a positive integer.
[[nodiscard]] ThreadPool& globalPool();

/// Concurrency the global pool has (or would be created with).
[[nodiscard]] std::size_t globalThreadCount();

/// Health of the global pool when one exists; a zeroed Health otherwise.
/// Never instantiates the pool — the sampler polls this at 100 Hz and must
/// not force worker threads into a run that never goes parallel.
[[nodiscard]] ThreadPool::Health globalPoolHealth();

/// Sets the global pool's concurrency, replacing an existing pool of a
/// different size. 0 resets to automatic sizing (UNVEIL_THREADS, else
/// hardware_concurrency). Call only while no other thread is using the
/// global pool — CLI startup and test set-up, not mid-pipeline.
void setGlobalThreads(std::size_t threads);

}  // namespace unveil::support
