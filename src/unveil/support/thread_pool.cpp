#include "unveil/support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/span.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::support {

namespace {

/// Worker identity of the current thread: the pool it belongs to (nullptr
/// off-pool) and its worker slot. Lets push() route nested submissions to
/// the submitting worker's own deque.
thread_local const ThreadPool* tWorkerPool = nullptr;
thread_local std::size_t tWorkerIndex = 0;

}  // namespace

struct ThreadPool::State {
  /// One worker's deque: the owner pushes/pops at the back (LIFO keeps
  /// nested work hot), thieves take from the front (FIFO steals the oldest,
  /// largest-granularity task).
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::thread> threads;

  /// signalMutex guards inject, stop and workEpoch. Every push bumps
  /// workEpoch under it, so a worker that saw an empty scan with an
  /// unchanged epoch knows no task can exist anywhere.
  std::mutex signalMutex;
  std::condition_variable signal;
  std::deque<std::function<void()>> inject;
  std::uint64_t workEpoch = 0;
  bool stop = false;

  std::uint64_t steals = 0;  ///< Under signalMutex; exported at shutdown.

  /// Sampler-visible activity counters. Relaxed: the sampler wants a
  /// statistically faithful time-series, not a synchronization point.
  std::atomic<std::size_t> busyWorkers{0};
  std::atomic<std::uint64_t> executed{0};

  bool tryPop(std::size_t self, std::function<void()>& out) {
    {
      Worker& own = *workers[self];
      const std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.tasks.empty()) {
        out = std::move(own.tasks.back());
        own.tasks.pop_back();
        return true;
      }
    }
    {
      const std::lock_guard<std::mutex> lock(signalMutex);
      if (!inject.empty()) {
        out = std::move(inject.front());
        inject.pop_front();
        return true;
      }
    }
    for (std::size_t i = 1; i < workers.size(); ++i) {
      Worker& victim = *workers[(self + i) % workers.size()];
      const std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        out = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        {
          const std::lock_guard<std::mutex> slock(signalMutex);
          ++steals;
        }
        return true;
      }
    }
    return false;
  }

  void workerLoop(const ThreadPool* pool, std::size_t self) {
    tWorkerPool = pool;
    tWorkerIndex = self;
    for (;;) {
      // Snapshot the epoch BEFORE scanning: any push after the snapshot
      // changes it, so an empty scan with an unchanged epoch proves all
      // queues are empty and sleeping (or exiting on stop) is safe.
      std::unique_lock<std::mutex> lock(signalMutex);
      const std::uint64_t seen = workEpoch;
      lock.unlock();
      std::function<void()> task;
      if (tryPop(self, task)) {
        busyWorkers.fetch_add(1, std::memory_order_relaxed);
        task();
        busyWorkers.fetch_sub(1, std::memory_order_relaxed);
        executed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      lock.lock();
      if (workEpoch != seen) continue;
      if (stop) return;
      signal.wait(lock, [&] { return stop || workEpoch != seen; });
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(std::max<std::size_t>(1, threads)), state_(std::make_unique<State>()) {
  const std::size_t workers = threads_ - 1;
  state_->workers.reserve(workers);
  state_->threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    state_->workers.push_back(std::make_unique<State::Worker>());
  for (std::size_t i = 0; i < workers; ++i)
    state_->threads.emplace_back([this, i] { state_->workerLoop(this, i); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(state_->signalMutex);
    state_->stop = true;
  }
  state_->signal.notify_all();
  for (auto& t : state_->threads) t.join();
  telemetry::count("pool.steals", state_->steals);
}

std::size_t ThreadPool::workerCount() const noexcept {
  return state_->workers.size();
}

bool ThreadPool::onWorkerThread() const noexcept { return tWorkerPool == this; }

ThreadPool::Health ThreadPool::health() const {
  Health h;
  h.threads = threads_;
  h.workers = state_->workers.size();
  h.busyWorkers = state_->busyWorkers.load(std::memory_order_relaxed);
  h.executed = state_->executed.load(std::memory_order_relaxed);
  for (const auto& worker : state_->workers) {
    const std::lock_guard<std::mutex> lock(worker->mutex);
    const std::size_t depth = worker->tasks.size();
    h.queuedTasks += depth;
    h.maxWorkerQueue = std::max(h.maxWorkerQueue, depth);
  }
  {
    const std::lock_guard<std::mutex> lock(state_->signalMutex);
    h.injectDepth = state_->inject.size();
    h.steals = state_->steals;
  }
  return h;
}

void ThreadPool::push(std::function<void()> task) {
  if (onWorkerThread()) {
    State::Worker& own = *state_->workers[tWorkerIndex];
    const std::lock_guard<std::mutex> lock(own.mutex);
    own.tasks.push_back(std::move(task));
  } else {
    const std::lock_guard<std::mutex> lock(state_->signalMutex);
    state_->inject.push_back(std::move(task));
  }
  {
    const std::lock_guard<std::mutex> lock(state_->signalMutex);
    ++state_->workEpoch;
  }
  state_->signal.notify_one();
}

void ThreadPool::parallelFor(std::size_t jobCount,
                             const std::function<void(std::size_t)>& body) {
  if (jobCount == 0) return;
  const std::size_t helpers = std::min(workerCount(), jobCount - 1);
  if (helpers == 0) {
    // Inline path — must honor the same contract as the parallel one:
    // every job runs, and the lowest failing index's exception is rethrown
    // (sequential order makes the first caught error the lowest).
    std::exception_ptr firstError;
    for (std::size_t j = 0; j < jobCount; ++j) {
      try {
        body(j);
      } catch (...) {
        if (!firstError) firstError = std::current_exception();
      }
    }
    if (firstError) std::rethrow_exception(firstError);
    return;
  }

  /// Shared by the caller and its helper tasks; kept alive by shared_ptr so
  /// a helper that fires after the loop finished (it immediately sees the
  /// counter exhausted) touches valid memory.
  struct Loop {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t jobCount = 0;
    const std::function<void(std::size_t)>* body = nullptr;  // caller-owned
    std::uint64_t spanParent = 0;
    std::mutex mutex;
    std::condition_variable finished;
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;

    void run() {
      // Helper workers start with an empty span stack; re-parent whatever
      // spans the body opens under the dispatching stage's span.
      const telemetry::ScopedParent parent(spanParent);
      for (;;) {
        const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
        if (j >= jobCount) return;
        try {
          (*body)(j);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(mutex);
          errors.emplace_back(j, std::current_exception());
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == jobCount) {
          // Notify under the mutex so the waiter's predicate check cannot
          // miss the final increment.
          const std::lock_guard<std::mutex> lock(mutex);
          finished.notify_all();
        }
      }
    }
  };

  auto loop = std::make_shared<Loop>();
  loop->jobCount = jobCount;
  loop->body = &body;
  loop->spanParent = telemetry::currentParent();

  // The caller participates, so the loop completes even if every helper
  // task sits unexecuted behind busy workers — nesting cannot deadlock.
  // A helper that only starts after the caller drained the counter exits
  // without touching `body`; only `loop` (shared) outlives this frame.
  for (std::size_t i = 0; i < helpers; ++i) push([loop] { loop->run(); });
  loop->run();

  std::unique_lock<std::mutex> lock(loop->mutex);
  loop->finished.wait(lock, [&] {
    return loop->done.load(std::memory_order_acquire) == jobCount;
  });
  if (!loop->errors.empty()) {
    // All jobs ran (no cancellation), so the set of failed indices is
    // deterministic; rethrow the lowest for a reproducible error.
    auto lowest = std::min_element(
        loop->errors.begin(), loop->errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(lowest->second);
  }
}

void ThreadPool::parallelForChunks(
    std::size_t total, std::size_t minPerJob,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  minPerJob = std::max<std::size_t>(1, minPerJob);
  const std::size_t maxJobs = (total + minPerJob - 1) / minPerJob;
  // A few chunks per participant keeps the tail balanced without shrinking
  // chunks to dispatch-dominated sizes.
  const std::size_t jobs = std::min(maxJobs, threads_ * 4);
  const std::size_t base = total / jobs;
  const std::size_t rem = total % jobs;
  parallelFor(jobs, [&](std::size_t j) {
    const std::size_t begin = j * base + std::min(j, rem);
    const std::size_t end = begin + base + (j < rem ? 1 : 0);
    body(begin, end);
  });
}

// ---------------------------------------------------------------------------
// Global pool
// ---------------------------------------------------------------------------

namespace {

std::mutex gPoolMutex;
std::unique_ptr<ThreadPool> gPool;
std::size_t gConfigured = 0;  ///< 0 = automatic (env, then hardware).

std::size_t autoThreads() {
  if (const char* env = std::getenv("UNVEIL_THREADS")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == nullptr || *end != '\0' || *env == '\0' || v < 1)
      throw ConfigError("UNVEIL_THREADS must be a positive integer, got '" +
                        std::string(env) + "'");
    return static_cast<std::size_t>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool& globalPool() {
  const std::lock_guard<std::mutex> lock(gPoolMutex);
  if (!gPool)
    gPool = std::make_unique<ThreadPool>(gConfigured != 0 ? gConfigured
                                                          : autoThreads());
  return *gPool;
}

ThreadPool::Health globalPoolHealth() {
  // Snapshot the pool pointer under the registry lock, but read health
  // outside it: health() takes per-worker locks and must not extend the
  // critical section other threads need to reach globalPool().
  ThreadPool* pool = nullptr;
  {
    const std::lock_guard<std::mutex> lock(gPoolMutex);
    pool = gPool.get();
  }
  // The pool is only destroyed by setGlobalThreads(), which callers promise
  // not to run mid-pipeline, so the pointer stays valid across the read.
  return pool != nullptr ? pool->health() : ThreadPool::Health{};
}

std::size_t globalThreadCount() {
  const std::lock_guard<std::mutex> lock(gPoolMutex);
  if (gPool) return gPool->threads();
  return gConfigured != 0 ? gConfigured : autoThreads();
}

void setGlobalThreads(std::size_t threads) {
  const std::lock_guard<std::mutex> lock(gPoolMutex);
  gConfigured = threads;
  // Resolving `0` (auto) is deferred to the next globalPool() call: it may
  // consult UNVEIL_THREADS, whose parse error must not escape from here
  // (callers use this in scope-guard destructors).
  if (threads != 0 && gPool && gPool->threads() == threads) return;
  gPool.reset();  // next globalPool() call recreates at the new size
}

}  // namespace unveil::support
