#pragma once

/// \file error_context.hpp
/// Structured context frames for errors that cross layer boundaries.
///
/// A parse error three layers deep ("varint overflow") is useless without
/// knowing *where*: which file, which shard, which rank, which byte offset.
/// An ErrorContext is an ordered chain of key=value frames built as a
/// decoder descends; annotate() renders them as a bracketed suffix, and
/// rethrowTraceErrorWith() re-raises a caught Error with the frames
/// attached while keeping the TraceError type (so catch sites and exit
/// codes are unchanged).
///
/// Frames accumulate outside-in: the innermost thrower adds shard/rank/
/// offset, the file-level caller adds file=..., producing e.g.
///   trace error: binary event kind invalid [shard=3, rank=3, offset=1042, file=run.utb]

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "unveil/support/error.hpp"

namespace unveil::support {

class ErrorContext {
 public:
  ErrorContext() = default;

  ErrorContext& with(std::string_view key, std::string_view value) {
    frames_.emplace_back(std::string(key), std::string(value));
    return *this;
  }
  ErrorContext& with(std::string_view key, std::uint64_t value) {
    return with(key, std::string_view(std::to_string(value)));
  }

  [[nodiscard]] bool empty() const noexcept { return frames_.empty(); }

  /// "\p message [k1=v1, k2=v2, ...]"; \p message unchanged when empty.
  [[nodiscard]] std::string annotate(std::string_view message) const {
    std::string out(message);
    if (frames_.empty()) return out;
    out += " [";
    for (std::size_t i = 0; i < frames_.size(); ++i) {
      if (i) out += ", ";
      out += frames_[i].first;
      out += '=';
      out += frames_[i].second;
    }
    out += ']';
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> frames_;
};

/// \p e's message with the "trace error: " prefix the TraceError
/// constructor adds removed, so re-wrapping at several boundaries does not
/// stack it.
[[nodiscard]] inline std::string strippedMessage(const Error& e) {
  std::string msg = e.what();
  constexpr std::string_view kPrefix = "trace error: ";
  if (msg.rfind(kPrefix, 0) == 0) msg.erase(0, kPrefix.size());
  return msg;
}

/// Rethrows \p e as a TraceError with \p ctx's frames appended to the
/// message.
[[noreturn]] inline void rethrowTraceErrorWith(const Error& e,
                                               const ErrorContext& ctx) {
  throw TraceError(ctx.annotate(strippedMessage(e)));
}

}  // namespace unveil::support
