#include "unveil/support/sampler.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

#if defined(__linux__)
#include <time.h>
#endif

namespace unveil::support {

MemoryStatus readMemoryStatus() noexcept {
  MemoryStatus out;
#if defined(__linux__)
  // /proc/self/status is a tiny synthetic file; fgets-scan the two fields
  // we need. "VmRSS:   12345 kB" — the value is always in kB.
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return out;
  char line[128];
  int remaining = 2;
  while (remaining > 0 && std::fgets(line, sizeof(line), f) != nullptr) {
    std::uint64_t* slot = nullptr;
    const char* value = nullptr;
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      slot = &out.rssBytes;
      value = line + 6;
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      slot = &out.hwmBytes;
      value = line + 6;
    }
    if (slot != nullptr) {
      *slot = std::strtoull(value, nullptr, 10) * 1024;
      --remaining;
    }
  }
  std::fclose(f);
#endif
  return out;
}

std::int64_t processCpuNs() noexcept {
#if defined(__linux__)
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
#else
  return 0;
#endif
}

Sampler::Sampler(telemetry::Session& session, SamplerConfig config)
    : session_(session), config_(std::move(config)) {
  session_.setSampleCounterNames(config_.trackCounters);
  if (config_.intervalMs > 0.0) thread_ = std::thread([this] { run(); });
}

Sampler::~Sampler() { stop(); }

void Sampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Sampler::sampleOnce() {
  telemetry::SampleRecord sample;
  sample.tNs = session_.nowNs();
  sample.liveSpanThreads =
      static_cast<std::uint32_t>(session_.liveThreadSpans().size());
  const ThreadPool::Health health = globalPoolHealth();
  sample.poolThreads = static_cast<std::uint32_t>(health.threads);
  sample.busyWorkers = static_cast<std::uint32_t>(health.busyWorkers);
  sample.queuedTasks = health.queuedTasks;
  sample.injectDepth = health.injectDepth;
  sample.steals = health.steals;
  const MemoryStatus mem = readMemoryStatus();
  sample.rssBytes = mem.rssBytes;
  sample.hwmBytes = mem.hwmBytes;
  if (!config_.trackCounters.empty()) {
    // counterValues() instead of counter(name): a by-name counter() lookup
    // would *create* zero-valued counters for tracked names the run never
    // touched, polluting the metrics dump.
    const auto values = session_.metrics().counterValues();
    sample.counters.reserve(config_.trackCounters.size());
    for (const std::string& name : config_.trackCounters) {
      const auto it = values.find(name);
      sample.counters.push_back(it != values.end() ? it->second : 0);
    }
  }
  session_.recordSample(std::move(sample));
  const std::lock_guard<std::mutex> lock(mutex_);
  ++taken_;
}

std::uint64_t Sampler::samplesTaken() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return taken_;
}

void Sampler::run() {
  const auto interval = std::chrono::duration<double, std::milli>(config_.intervalMs);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (wake_.wait_for(lock, interval, [this] { return stop_; })) break;
    }
    sampleOnce();
  }
  // One final tick so even runs shorter than the interval land at least one
  // sample — the CI smoke asserts a nonzero series on a sub-second analyze.
  sampleOnce();
}

}  // namespace unveil::support
