#pragma once

/// \file aligned.hpp
/// Aligned storage for the columnar (SoA) stores.
///
/// The alignment contract: every column allocated through AlignedVector
/// starts on a kColumnAlignment-byte boundary (one full cache line, and the
/// natural alignment of 256/512-bit vector loads). Kernels may therefore use
/// aligned streaming loads on column *starts*; interior offsets are only
/// guaranteed element-aligned, so ranged kernels (per-burst sample windows)
/// must use unaligned loads — which on every AVX2-era core cost the same as
/// aligned ones when the address happens to be aligned.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace unveil::support {

/// Alignment (bytes) of every column allocation. 64 covers cache lines and
/// AVX-512 vectors; AVX2 needs 32.
inline constexpr std::size_t kColumnAlignment = 64;

/// Minimal aligned allocator over ::operator new(size, align).
template <typename T, std::size_t Alignment = kColumnAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return true;
  }
};

/// A std::vector whose buffer honours the column alignment contract.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace unveil::support
