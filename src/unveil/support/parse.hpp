#pragma once

/// \file parse.hpp
/// Locale-independent numeric parsing. std::strtod honors the process-wide
/// LC_NUMERIC category, so a host locale with a ',' decimal separator (or a
/// library calling setlocale() behind our back) silently changes how CLI
/// flags, campaign annotations and JSON numbers parse. std::from_chars is
/// specified to parse the fixed C-locale format regardless of any locale.

#include <charconv>
#include <string_view>
#include <system_error>

namespace unveil::support {

enum class ParseStatus {
  Ok,          ///< Whole input consumed, value representable.
  Malformed,   ///< Empty input, trailing characters, or not a number.
  OutOfRange,  ///< Valid syntax but the value over/underflows a double.
};

/// Parses the entire \p text as a double in the C-locale format. Unlike
/// strtod, leading whitespace, a leading '+', and hex floats are rejected —
/// none of which any of our inputs legitimately carry.
[[nodiscard]] inline ParseStatus parseDouble(std::string_view text,
                                             double& out) noexcept {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec == std::errc::result_out_of_range && ptr == last)
    return ParseStatus::OutOfRange;
  if (ec != std::errc{} || ptr != last) return ParseStatus::Malformed;
  out = v;
  return ParseStatus::Ok;
}

}  // namespace unveil::support
