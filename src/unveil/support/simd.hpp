#pragma once

/// \file simd.hpp
/// Runtime SIMD dispatch for the columnar kernels.
///
/// Every vectorized kernel in the tree exists in (at least) two
/// implementations: a portable one the compiler vectorizes from plain C++
/// (`#pragma omp simd`, baseline ISA), and an optional explicit AVX2 one
/// compiled into its own translation unit with -mavx2. Which one runs is
/// decided once per process:
///
///   UNVEIL_SIMD=scalar  force the portable path;
///   UNVEIL_SIMD=avx2    request AVX2 (silently falls back when the CPU or
///                       the build lacks it);
///   unset / auto        AVX2 when compiled in and the CPU supports it.
///
/// Neither path is allowed to change results where the determinism gate
/// applies: the fold kernels are elementwise IEEE operations in a fixed
/// order, and no build flag enables FMA contraction, so scalar, compiler-
/// vectorized and explicit-AVX2 runs are bit-identical (see DESIGN.md §16).

namespace unveil::support {

enum class SimdLevel { Scalar, Avx2 };

/// The process-wide dispatch decision (computed once, thread-safe).
[[nodiscard]] SimdLevel simdLevel() noexcept;

/// "scalar" / "avx2".
[[nodiscard]] const char* simdLevelName(SimdLevel level) noexcept;

}  // namespace unveil::support
