#include "unveil/support/faulty_stream.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "unveil/support/error.hpp"
#include "unveil/support/flight_recorder.hpp"

namespace unveil::support {

FaultSpec FaultSpec::parse(std::string_view text) {
  FaultSpec spec;
  auto parseValue = [](std::string_view key, std::string_view v) -> std::uint64_t {
    const std::string s(v);
    char* end = nullptr;
    errno = 0;
    const unsigned long long out = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end == nullptr || *end != '\0' || errno == ERANGE)
      throw ConfigError("fault spec: bad value '" + s + "' for " + std::string(key));
    return out;
  };
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      throw ConfigError("fault spec: expected key=value, got '" + std::string(item) + "'");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "fail-read-after") spec.failReadAfter = parseValue(key, value);
    else if (key == "fail-write-after") spec.failWriteAfter = parseValue(key, value);
    else if (key == "flip-byte-at") spec.flipByteAt = parseValue(key, value);
    else if (key == "flip-mask")
      spec.flipMask = static_cast<std::uint8_t>(parseValue(key, value));
    else if (key == "short-read-max") spec.shortReadMax = parseValue(key, value);
    else throw ConfigError("fault spec: unknown key '" + std::string(key) + "'");
  }
  return spec;
}

std::streambuf::int_type FaultyStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  std::uint64_t want = sizeof(buf_);
  if (spec_.shortReadMax > 0) want = std::min(want, spec_.shortReadMax);
  if (spec_.failReadAfter != kFaultNever) {
    if (bytesRead_ >= spec_.failReadAfter) {
      flightRecord(FlightKind::Fault,
                   "injected read failure after " + std::to_string(bytesRead_) +
                       " bytes");
      return traits_type::eof();
    }
    want = std::min(want, spec_.failReadAfter - bytesRead_);
  }
  const std::streamsize got =
      inner_->sgetn(buf_, static_cast<std::streamsize>(want));
  if (got <= 0) return traits_type::eof();
  if (spec_.flipByteAt != kFaultNever && spec_.flipByteAt >= bytesRead_ &&
      spec_.flipByteAt < bytesRead_ + static_cast<std::uint64_t>(got)) {
    char& b = buf_[spec_.flipByteAt - bytesRead_];
    b = static_cast<char>(static_cast<unsigned char>(b) ^ spec_.flipMask);
    flightRecord(FlightKind::Fault, "injected byte flip at offset " +
                                        std::to_string(spec_.flipByteAt));
  }
  bytesRead_ += static_cast<std::uint64_t>(got);
  setg(buf_, buf_, buf_ + got);
  return traits_type::to_int_type(buf_[0]);
}

std::streamsize FaultyStreamBuf::xsputn(const char* s, std::streamsize n) {
  std::streamsize accept = n;
  if (spec_.failWriteAfter != kFaultNever) {
    if (bytesWritten_ >= spec_.failWriteAfter) {
      flightRecord(FlightKind::Fault,
                   "injected write failure after " +
                       std::to_string(bytesWritten_) + " bytes");
      return 0;
    }
    accept = static_cast<std::streamsize>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(n), spec_.failWriteAfter - bytesWritten_));
  }
  const std::streamsize put = inner_->sputn(s, accept);
  if (put > 0) bytesWritten_ += static_cast<std::uint64_t>(put);
  return put;
}

std::streambuf::int_type FaultyStreamBuf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof()))
    return traits_type::not_eof(ch);
  const char c = traits_type::to_char_type(ch);
  return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
}

int FaultyStreamBuf::sync() { return inner_->pubsync(); }

namespace {
std::optional<FaultSpec> g_testFaultSpec;  // NOLINT: test-only global
}  // namespace

std::optional<FaultSpec> activeFaultSpec() {
  if (g_testFaultSpec) return g_testFaultSpec;
  const char* env = std::getenv("UNVEIL_FAULT_SPEC");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return FaultSpec::parse(env);
}

void setFaultSpecForTesting(std::optional<FaultSpec> spec) {
  g_testFaultSpec = spec;
}

}  // namespace unveil::support
