#include "unveil/support/series.hpp"

#include <fstream>
#include <ostream>

#include "unveil/support/error.hpp"

namespace unveil::support {

SeriesSet::SeriesSet(std::string name, std::string xLabel, std::string yLabel)
    : name_(std::move(name)), xLabel_(std::move(xLabel)), yLabel_(std::move(yLabel)) {}

void SeriesSet::add(Series s) {
  if (s.x.size() != s.y.size())
    throw ConfigError("series '" + s.label + "' has mismatched x/y lengths");
  series_.push_back(std::move(s));
}

void SeriesSet::add(const std::string& label, std::vector<double> x,
                    std::vector<double> y) {
  add(Series{label, std::move(x), std::move(y)});
}

void SeriesSet::write(std::ostream& os) const {
  os << "# figure: " << name_ << '\n';
  os << "# xlabel: " << xLabel_ << '\n';
  os << "# ylabel: " << yLabel_ << '\n';
  for (const auto& s : series_) {
    os << "# series: " << s.label << '\n';
    for (std::size_t i = 0; i < s.x.size(); ++i)
      os << s.x[i] << ' ' << s.y[i] << '\n';
    os << '\n';
  }
}

void SeriesSet::printSummary(std::ostream& os) const {
  os << "figure " << name_ << "  [" << xLabel_ << " vs " << yLabel_ << "]\n";
  for (const auto& s : series_) {
    os << "  series '" << s.label << "': " << s.x.size() << " points";
    if (!s.x.empty()) {
      os << "  x in [" << s.x.front() << ", " << s.x.back() << "]"
         << "  y(first)=" << s.y.front() << " y(last)=" << s.y.back();
    }
    os << '\n';
  }
}

void SeriesSet::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("cannot open for writing: " + path);
  write(f);
}

}  // namespace unveil::support
