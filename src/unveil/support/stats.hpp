#pragma once

/// \file stats.hpp
/// Streaming and batch statistics used across clustering, folding and the
/// benchmark harness: Welford running moments, robust location/scale
/// (median, MAD), percentiles and fixed-width histograms.

#include <cstddef>
#include <span>
#include <vector>

namespace unveil::support {

/// Numerically stable streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel reduction friendly).
  void merge(const RunningStats& other) noexcept;

  /// Number of observations added so far.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  /// Square root of variance().
  [[nodiscard]] double stddev() const noexcept;
  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool any_ = false;
};

/// Returns the \p q quantile (q in [0,1]) of \p values using linear
/// interpolation between order statistics. Copies and sorts internally.
/// Throws AnalysisError when \p values is empty.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Median shorthand for quantile(values, 0.5).
[[nodiscard]] double median(std::span<const double> values);

/// Median absolute deviation scaled by 1.4826 so it estimates the standard
/// deviation under normality. Throws AnalysisError when empty.
[[nodiscard]] double madSigma(std::span<const double> values);

/// Arithmetic mean; throws AnalysisError when empty.
[[nodiscard]] double mean(std::span<const double> values);

/// Fixed-width histogram over [lo, hi) with \p bins bins. Values outside the
/// range are clamped into the first/last bin.
class Histogram {
 public:
  /// Creates a histogram with \p bins equal-width bins spanning [lo, hi).
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation (clamped into range).
  void add(double x) noexcept;

  /// Number of bins.
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  /// Count in bin \p i.
  [[nodiscard]] std::size_t count(std::size_t i) const;
  /// Center of bin \p i.
  [[nodiscard]] double binCenter(std::size_t i) const;
  /// Total observations added.
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace unveil::support
