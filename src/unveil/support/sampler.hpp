#pragma once

/// \file sampler.hpp
/// Background telemetry sampler: a thread that ticks at a configurable
/// interval (default 10 ms) and appends one SampleRecord to the active
/// Session — pool health (thread_pool.hpp), process memory
/// (/proc/self/status), the live-span census, and a small set of tracked
/// counters. Spans show *where* the pipeline spends wall time; the sampler
/// shows what the machine was doing *between* span boundaries: queue
/// pressure, worker utilization, memory growth inside an opaque stage.
///
/// Overhead model: one tick is a handful of mutex-protected deque-size
/// reads, one /proc read, and one vector push — single-digit microseconds.
/// At the 10 ms default that is a < 0.1% duty cycle; bench_perf_micro's
/// samplerOverheadCheck() enforces < 1% the same way the PR 2 telemetry
/// gate does.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace unveil::telemetry {
class Session;
}

namespace unveil::support {

/// VmRSS / VmHWM of the current process, in bytes. Parsed from
/// /proc/self/status; both fields are 0 on platforms without procfs (the
/// sampler still records pool health there).
struct MemoryStatus {
  std::uint64_t rssBytes = 0;
  std::uint64_t hwmBytes = 0;
};
[[nodiscard]] MemoryStatus readMemoryStatus() noexcept;

/// CPU time consumed by the whole process (all threads), in nanoseconds;
/// 0 where CLOCK_PROCESS_CPUTIME_ID is unavailable.
[[nodiscard]] std::int64_t processCpuNs() noexcept;

struct SamplerConfig {
  /// Tick interval; <= 0 disables the background thread entirely (the CLI
  /// maps `--sample-interval 0` here).
  double intervalMs = 10.0;
  /// Cumulative counters copied into every sample, rendered as chrome
  /// counter tracks. Defaults cover the sampled-clustering progress
  /// counters (PR 6) and shard degradation.
  std::vector<std::string> trackCounters = {
      "cluster.classified",
      "cluster.neighbor_queries",
      "trace.shards_dropped",
  };
};

/// Owns the sampling thread for one Session's lifetime. Construct after
/// Session::activate(), destroy (or stop()) before the session's exports —
/// the destructor joins the thread, so every recorded tick is in the
/// snapshot afterwards.
class Sampler {
 public:
  explicit Sampler(telemetry::Session& session, SamplerConfig config = {});
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Joins the background thread after one final tick (so even a run
  /// shorter than the interval gets at least one sample). Idempotent.
  void stop();

  /// Takes one sample synchronously on the calling thread. Public for the
  /// overhead bench (which measures its cost directly) and tests.
  void sampleOnce();

  /// Ticks taken so far (background + explicit).
  [[nodiscard]] std::uint64_t samplesTaken() const noexcept;

 private:
  void run();

  telemetry::Session& session_;
  SamplerConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  std::uint64_t taken_ = 0;  ///< Under mutex_.
  std::thread thread_;
};

}  // namespace unveil::support
