#pragma once

/// \file math.hpp
/// Small numeric helpers shared across modules (header-only).

#include <cmath>
#include <cstddef>
#include <vector>

#include "unveil/support/error.hpp"

namespace unveil::support {

/// \p n evenly spaced points from \p lo to \p hi inclusive. n >= 2.
[[nodiscard]] inline std::vector<double> linspace(double lo, double hi, std::size_t n) {
  UNVEIL_ASSERT(n >= 2, "linspace requires n >= 2");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // avoid drift on the last point
  return out;
}

/// Linear interpolation between a and b at fraction t.
[[nodiscard]] constexpr double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * t;
}

/// True when |a-b| <= absTol + relTol * max(|a|,|b|).
[[nodiscard]] inline bool approxEqual(double a, double b, double relTol = 1e-9,
                                      double absTol = 1e-12) noexcept {
  return std::abs(a - b) <= absTol + relTol * std::max(std::abs(a), std::abs(b));
}

/// Piecewise-linear evaluation of (xs, ys) at \p x. xs must be strictly
/// increasing; x outside the range is clamped to the end values.
[[nodiscard]] inline double interpLinear(const std::vector<double>& xs,
                                         const std::vector<double>& ys, double x) {
  UNVEIL_ASSERT(xs.size() == ys.size(), "interpLinear: size mismatch");
  UNVEIL_ASSERT(!xs.empty(), "interpLinear: empty support");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  std::size_t lo = 0, hi = xs.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (xs[mid] <= x) lo = mid;
    else hi = mid;
  }
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return lerp(ys[lo], ys[hi], t);
}

/// Trapezoidal integral of samples ys over xs (same length, xs increasing).
[[nodiscard]] inline double trapezoid(const std::vector<double>& xs,
                                      const std::vector<double>& ys) {
  UNVEIL_ASSERT(xs.size() == ys.size(), "trapezoid: size mismatch");
  double s = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i)
    s += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  return s;
}

}  // namespace unveil::support
