#pragma once

/// \file table.hpp
/// Tabular output used by the benchmark harness to print the rows a paper
/// table reports, and to emit machine-readable CSV alongside.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace unveil::support {

/// One table cell: string, integer or floating-point.
using Cell = std::variant<std::string, long long, double>;

/// A simple column-oriented table with pretty-printing and CSV export.
///
/// Usage:
///   Table t({"app", "cluster", "mean abs diff (%)"});
///   t.addRow({"wavesim", 1LL, 2.31});
///   t.print(std::cout);        // aligned, human readable
///   t.writeCsv(std::cout);     // machine readable
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void addRow(std::vector<Cell> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  /// Number of columns.
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
  /// Cell accessor (row-major). Asserts on out-of-range indices.
  [[nodiscard]] const Cell& at(std::size_t row, std::size_t col) const;

  /// Pretty-prints with aligned columns; optional \p title line above.
  void print(std::ostream& os, const std::string& title = {}) const;

  /// Writes RFC-4180-ish CSV (quotes only when needed).
  void writeCsv(std::ostream& os) const;

  /// Writes CSV to \p path; throws unveil::Error when the file cannot be
  /// opened.
  void saveCsv(const std::string& path) const;

  /// Formats a single cell using the same rules as print()/writeCsv().
  [[nodiscard]] static std::string formatCell(const Cell& cell);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace unveil::support
