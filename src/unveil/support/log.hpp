#pragma once

/// \file log.hpp
/// Minimal leveled logger. Analysis pipelines narrate their stages through
/// this so examples and benches can show progress without ad-hoc printf.
///
/// Thread-safe: the level gate is an atomic load and each emitted line is
/// serialized under one mutex (the fold stage logs from worker threads).
/// Lines carry a monotonic timestamp (seconds since the first log call) and
/// a dense thread id: "[   12.345 t01 info] message".

#include <string_view>

namespace unveil::support {

/// Severity levels, ordered.
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

/// Sets the global minimum level; messages below it are dropped.
void setLogLevel(LogLevel level) noexcept;

/// Current global minimum level.
[[nodiscard]] LogLevel logLevel() noexcept;

/// Emits one log line to stderr as "[level] message" when enabled.
void log(LogLevel level, std::string_view message);

/// Convenience wrappers.
void logDebug(std::string_view message);
void logInfo(std::string_view message);
void logWarn(std::string_view message);
void logError(std::string_view message);

/// Sets the level from conventional command-line verbosity flags:
/// `--quiet` → Off, `--verbose` → Debug, otherwise \p fallback. Examples and
/// benches route their progress narration through the logger and call this
/// first, so a --quiet run emits results only.
void applyVerbosityArgs(int argc, char** argv,
                        LogLevel fallback = LogLevel::Info) noexcept;

}  // namespace unveil::support
