#pragma once

/// \file metrics.hpp
/// Named work metrics for the self-tracing layer (telemetry.hpp): counters,
/// gauges and summary histograms registered by name in a MetricsRegistry.
///
/// Design constraints, in order:
///  - recording must be safe from worker threads (the fold/fit stages run on
///    a pool) — all mutation is lock-free on std::atomic;
///  - the by-name lookup takes a registry mutex, so hot loops resolve their
///    instrument once (or accumulate locally) and then call the atomic op;
///  - instruments are never invalidated: the registry hands out references
///    into node-stable storage that lives as long as the registry.

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace unveil::telemetry {

/// Monotonically increasing event count (bursts extracted, neighbor queries,
/// folded points, ...). Relaxed atomics: totals only, no ordering needed.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (eps used, threads configured, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming count/sum/min/max summary of an observed distribution (folded
/// points per cluster, stage latencies, ...). Lock-free: count/sum via
/// atomic fetch_add, min/max via CAS loops.
class Histogram {
 public:
  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    [[nodiscard]] double mean() const noexcept {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  void observe(double v) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    updateExtremum(min_, v, /*wantMin=*/true);
    updateExtremum(max_, v, /*wantMin=*/false);
  }

  [[nodiscard]] Summary summary() const noexcept {
    Summary s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    const double lo = min_.load(std::memory_order_relaxed);
    const double hi = max_.load(std::memory_order_relaxed);
    s.min = s.count > 0 ? lo : 0.0;
    s.max = s.count > 0 ? hi : 0.0;
    return s;
  }

 private:
  static void updateExtremum(std::atomic<double>& slot, double v,
                             bool wantMin) noexcept {
    double cur = slot.load(std::memory_order_relaxed);
    while ((wantMin ? v < cur : v > cur) &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// By-name instrument registry. Lookup locks a mutex; the returned reference
/// stays valid for the registry's lifetime (std::map nodes are stable), so
/// callers on hot paths resolve once and keep the reference.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) { return find(counters_, name); }
  Gauge& gauge(std::string_view name) { return find(gauges_, name); }
  Histogram& histogram(std::string_view name) { return find(histograms_, name); }

  /// Snapshot accessors (sorted by name, values read with relaxed loads).
  [[nodiscard]] std::map<std::string, std::uint64_t> counterValues() const;
  [[nodiscard]] std::map<std::string, double> gaugeValues() const;
  [[nodiscard]] std::map<std::string, Histogram::Summary> histogramValues() const;

 private:
  template <typename T>
  T& find(std::map<std::string, T, std::less<>>& map, std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = map.find(name);
    if (it == map.end()) it = map.try_emplace(std::string(name)).first;
    return it->second;
  }

  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace unveil::telemetry
