#pragma once

/// \file summary.hpp
/// The analyst-facing deliverable: one call that runs every analysis this
/// library implements over a trace and renders a single coherent report —
/// detected phases, their internal evolution, load balance, cross-run
/// drift, code-region structure, iteration structure (both detectors) and a
/// suggested representative window for full-detail follow-up.

#include <optional>

#include "unveil/analysis/evolution.hpp"
#include "unveil/analysis/imbalance.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/analysis/representative.hpp"
#include "unveil/analysis/spectral.hpp"
#include "unveil/folding/regions.hpp"

namespace unveil::analysis {

/// What to include in the report.
struct ReportOptions {
  PipelineConfig pipeline;
  bool includeImbalance = true;
  bool includeEvolution = true;
  /// Region folding is attempted per folded cluster and silently skipped
  /// when the trace carries no callstack samples.
  bool includeRegions = true;
  /// Iterations the suggested representative window should cover.
  std::size_t representativeIterations = 10;
};

/// Everything the report contains, in analyzable form.
struct PerformanceReport {
  PipelineResult pipeline;
  std::vector<ClusterImbalance> imbalance;
  std::vector<ClusterEvolution> evolution;
  /// Region profiles keyed by cluster id (only clusters with attributed
  /// samples appear).
  std::map<int, folding::RegionProfile> regions;
  SpectralPeriod spectral;  ///< Signal-based period of rank 0.
  double spmdness = 0.0;
  std::optional<RepresentativeWindow> representative;
};

/// Runs the full analysis battery over \p trace.
[[nodiscard]] PerformanceReport buildReport(const trace::Trace& trace,
                                            const ReportOptions& options = {});

/// Renders the report as human-readable text.
void printReport(const PerformanceReport& report, const trace::Trace& trace,
                 std::ostream& os);

}  // namespace unveil::analysis
