#pragma once

/// \file match.hpp
/// Cross-run cluster matching, shared by diffrun (pairwise) and campaign
/// (N-trace).
///
/// The stable invariant under both optimization and scale is a phase's
/// *position in the iteration structure*: feature-space positions move (that
/// is the point of comparing runs), but a stencil sweep stays the second
/// phase of every iteration whether it runs on 4 ranks or 256. Matching
/// therefore aligns clusters by their modal period position whenever every
/// run detected the same period, and falls back to a greedy feature-space
/// assignment (z-scored duration/MIPS/IPC distance) when the structures
/// disagree. Clusters no assignment can place are reported explicitly —
/// never silently dropped.

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "unveil/analysis/pipeline.hpp"

namespace unveil::analysis {

/// Modal period position per cluster id (noise excluded). Empty when the
/// run has no detected period.
[[nodiscard]] std::map<int, std::size_t> modalPeriodPositions(
    const PipelineResult& r);

/// position -> cluster id; the largest cluster wins a contested position.
[[nodiscard]] std::map<std::size_t, int> positionAssignment(
    const PipelineResult& r, const std::map<int, std::size_t>& positions);

/// One phase matched across N runs.
struct MatchedPhase {
  /// Period position (structure matching) or anchor-run cluster id
  /// (feature-space fallback) — the row's stable identity.
  std::size_t position = 0;
  /// Per-run cluster id, aligned with the runs passed to matchAcross();
  /// -1 when the run has no cluster at this position.
  std::vector<int> clusterIds;
  /// True when the row was aligned by iteration structure, false when it
  /// came from the greedy feature-space fallback.
  bool byStructure = true;
};

/// Outcome of an N-way match.
struct MatchResult {
  /// Matched rows, ordered by position (structure) / anchor id (fallback).
  std::vector<MatchedPhase> phases;
  /// Per-run cluster ids that ended up in no row (contested-position losers
  /// and fallback leftovers). Same length as the run span.
  std::vector<std::vector<int>> unmatched;
  /// True when every run detected the same nonzero period and rows were
  /// aligned by structure.
  bool structureMatched = false;
};

/// Matches clusters across \p runs (>= 1). Structure alignment when all
/// periods agree, greedy feature-space assignment otherwise.
[[nodiscard]] MatchResult matchAcross(
    std::span<const PipelineResult* const> runs);

}  // namespace unveil::analysis
