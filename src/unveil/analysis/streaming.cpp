#include "unveil/analysis/streaming.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "unveil/analysis/stages.hpp"
#include "unveil/folding/folded.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"
#include "unveil/trace/shard_stream.hpp"

namespace unveil::analysis {

namespace {

std::vector<cluster::Burst> extractShard(const trace::Trace& shardTrace,
                                         const PipelineConfig& config) {
  return config.useMpiGaps ? config.extraction.fromMpiGaps(shardTrace)
                           : config.extraction.fromPhaseEvents(shardTrace);
}

}  // namespace

StreamingResult analyzeStreaming(const std::string& path,
                                 const StreamingConfig& config) {
  StreamingResult out;
  PipelineResult& result = out.result;
  telemetry::Span rootSpan("pipeline.analyze_streaming");

  // Pass A: one shard resident at a time; keep only burst metadata. The
  // shard's samples die with the shard — the sample windows are re-derived
  // in pass B.
  std::vector<std::size_t> shardBurstCount;  // per rank, 0 for dropped
  std::vector<char> shardDropped;
  {
    detail::StageScope stage("pipeline.extract", "extract", result.telemetry);
    trace::StreamOptions streamOpts;
    streamOpts.read = config.read;
    streamOpts.fault = config.fault;
    trace::ShardStreamReader reader(path, streamOpts);
    out.appName = reader.header().appName;
    out.numRanks = reader.header().ranks;
    out.durationNs = reader.header().durationNs;
    shardBurstCount.assign(reader.header().ranks, 0);
    shardDropped.assign(reader.header().ranks, 0);
    while (auto shard = reader.next()) {
      if (shard->dropped) {
        shardDropped[shard->rank] = 1;
        continue;
      }
      ++out.shardsProcessed;
      out.largestShardBytes = std::max(
          out.largestShardBytes, shard->trace.stats().estimatedBytes);
      std::vector<cluster::Burst> bursts = extractShard(shard->trace, config.pipeline);
      shardBurstCount[shard->rank] = bursts.size();
      for (cluster::Burst& b : bursts) {
        // Zero the sample window; it indexes the shard trace being dropped
        // right below, and pass B rebuilds it.
        b.sampleFirst = 0;
        b.sampleCount = 0;
        result.bursts.push_back(std::move(b));
      }
    }
    out.report = reader.report();
    stage.items(result.bursts.size());
    stage.span().attr("bursts", result.bursts.size());
    telemetry::count("pipeline.bursts_extracted", result.bursts.size());
  }
  if (result.bursts.empty())
    throw AnalysisError("pipeline: trace yields no computation bursts");
  support::logInfo("pipeline: extracted " + std::to_string(result.bursts.size()) +
                   " bursts");

  // Model phase: stages 2–4, the exact code batch analyze() runs. The
  // burst list is identical to a batch extraction of the surviving ranks
  // (per-rank extraction, concatenated in rank order), so everything from
  // here on is bit-identical to batch by construction.
  detail::runModelStages(config.pipeline, result);

  // Pass B: re-stream the shards and fold each eligible cluster's members
  // incrementally, in exactly the global member order foldClusterMulti()
  // walks. One accumulator per eligible cluster; within a shard the
  // accumulators are independent, so they fill in parallel — each still
  // sees its own members in ascending global order.
  std::vector<detail::ClusterFoldEntries> folds;
  for (std::size_t ci = 0; ci < result.clusters.size(); ++ci) {
    if (result.clusters[ci].instances < config.pipeline.minClusterInstances)
      continue;
    folds.push_back(detail::ClusterFoldEntries{ci, {}});
  }
  {
    support::ThreadPool& pool = support::globalPool();
    detail::StageScope stage("pipeline.fold", "fold", result.telemetry);
    stage.items(folds.size());
    stage.span().attr("threads", std::min(pool.threads(), folds.size()));

    constexpr std::int32_t kNoFold = -1;
    std::vector<std::int32_t> foldSlotOfBurst(result.bursts.size(), kNoFold);
    for (std::size_t f = 0; f < folds.size(); ++f)
      for (std::size_t g : result.clusters[folds[f].clusterIdx].memberIdx)
        foldSlotOfBurst[g] = static_cast<std::int32_t>(f);

    std::vector<folding::MultiFoldAccumulator> accs;
    accs.reserve(folds.size());
    for (std::size_t f = 0; f < folds.size(); ++f)
      accs.emplace_back(config.pipeline.rateCounters,
                        config.pipeline.reconstruct.fold);

    trace::StreamOptions streamOpts;
    streamOpts.read = config.read;
    streamOpts.fault = config.fault;
    // Pass A already warned/recorded every drop; do not double-report.
    streamOpts.quietDrops = true;
    trace::ShardStreamReader reader(path, streamOpts);
    std::size_t globalBase = 0;
    // Per-slot member lists within the current shard (slot-local, ascending).
    std::vector<std::vector<std::size_t>> shardMembers(folds.size());
    // Columnar sample view of the current shard (buffers reused across shards).
    folding::SampleColumns shardColumns;
    while (auto shard = reader.next()) {
      const bool droppedA = shardDropped[shard->rank] != 0;
      if (shard->dropped != droppedA)
        throw AnalysisError(
            "streaming: trace changed between passes (shard " +
            std::to_string(shard->rank) + " degradation differs)");
      if (shard->dropped) continue;
      std::vector<cluster::Burst> bursts =
          extractShard(shard->trace, config.pipeline);
      if (bursts.size() != shardBurstCount[shard->rank])
        throw AnalysisError(
            "streaming: trace changed between passes (shard " +
            std::to_string(shard->rank) + " burst count differs)");
      for (auto& members : shardMembers) members.clear();
      for (std::size_t i = 0; i < bursts.size(); ++i) {
        const std::int32_t f = foldSlotOfBurst[globalBase + i];
        if (f != kNoFold) shardMembers[static_cast<std::size_t>(f)].push_back(i);
      }
      shardColumns.build(shard->trace);
      pool.parallelFor(folds.size(), [&](std::size_t f) {
        for (std::size_t i : shardMembers[f]) accs[f].add(shardColumns, bursts[i]);
      });
      globalBase += bursts.size();
    }
    pool.parallelFor(folds.size(),
                     [&](std::size_t f) { folds[f].entries = accs[f].finish(); });
    telemetry::count("fold.clusters", folds.size());
  }

  detail::runFitStage(std::move(folds), config.pipeline, result);

  rootSpan.attr("bursts", result.bursts.size());
  rootSpan.attr("clusters", result.clustering.numClusters);
  rootSpan.attr("shards", out.shardsProcessed);
  telemetry::count("cluster.clusters_found", result.clustering.numClusters);
  telemetry::count("cluster.noise_points", result.clustering.noiseCount());
  telemetry::count("cluster.merges_applied", result.refinementMerges);
  return out;
}

}  // namespace unveil::analysis
