#include "unveil/analysis/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "unveil/support/error.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::analysis {

void SpectralParams::validate() const {
  if (stepNs <= 0.0) throw ConfigError("spectral stepNs must be positive");
  if (maxLagFraction <= 0.0 || maxLagFraction > 0.5)
    throw ConfigError("spectral maxLagFraction must be in (0, 0.5]");
  if (minCorrelation <= 0.0 || minCorrelation >= 1.0)
    throw ConfigError("spectral minCorrelation must be in (0, 1)");
  if (minProminence <= 0.0 || minProminence >= 2.0)
    throw ConfigError("spectral minProminence must be in (0, 2)");
}

std::vector<double> computeSignal(const trace::Trace& trace, trace::Rank rank,
                                  const SpectralParams& params) {
  params.validate();
  const auto n = static_cast<std::size_t>(
      std::ceil(static_cast<double>(trace.durationNs()) / params.stepNs));
  std::vector<double> signal(n, 0.0);
  bool any = false;
  for (const auto& s : trace.states()) {
    if (s.rank != rank || s.state != trace::State::Compute) continue;
    any = true;
    // Distribute the interval over the bins it overlaps.
    const double b = static_cast<double>(s.begin) / params.stepNs;
    const double e = static_cast<double>(s.end) / params.stepNs;
    const auto first = static_cast<std::size_t>(b);
    const auto last = std::min(static_cast<std::size_t>(e), n - 1);
    for (std::size_t i = first; i <= last && i < n; ++i) {
      const double lo = std::max(b, static_cast<double>(i));
      const double hi = std::min(e, static_cast<double>(i + 1));
      if (hi > lo) signal[i] += hi - lo;
    }
  }
  if (!any)
    throw AnalysisError("computeSignal: no compute state intervals for rank " +
                        std::to_string(rank));
  for (double& v : signal) v = std::min(v, 1.0);
  return signal;
}

std::vector<double> autocorrelation(const std::vector<double>& signal,
                                    std::size_t maxLag) {
  if (signal.size() < 4) throw AnalysisError("autocorrelation: signal too short");
  maxLag = std::min(maxLag, signal.size() - 2);
  double mean = 0.0;
  for (double v : signal) mean += v;
  mean /= static_cast<double>(signal.size());
  double var = 0.0;
  for (double v : signal) var += (v - mean) * (v - mean);
  std::vector<double> out(maxLag, 0.0);
  // Constant signal (variance at rounding-noise level): no structure.
  if (var <= 1e-12 * static_cast<double>(signal.size())) return out;
  for (std::size_t k = 1; k <= maxLag; ++k) {
    double s = 0.0;
    for (std::size_t i = 0; i + k < signal.size(); ++i)
      s += (signal[i] - mean) * (signal[i + k] - mean);
    out[k - 1] = s / var;
  }
  return out;
}

SpectralPeriod detectSpectralPeriod(const trace::Trace& trace, trace::Rank rank,
                                    const SpectralParams& params) {
  params.validate();
  SpectralPeriod result;
  const auto signal = computeSignal(trace, rank, params);
  result.signalLength = signal.size();
  const auto maxLag = static_cast<std::size_t>(
      static_cast<double>(signal.size()) * params.maxLagFraction);
  if (maxLag < 3) return result;
  const auto ac = autocorrelation(signal, maxLag);

  // Skip the initial short-lag decay (any smooth signal self-correlates at
  // tiny lags): start the search where the autocorrelation first drops to 0.
  std::size_t start = 0;
  while (start < ac.size() && ac[start] > 0.0) ++start;
  if (start + 2 >= ac.size()) return result;

  // Accept the window's global maximum if it is both positive enough and
  // prominent over the window's median baseline.
  std::size_t best = start;
  for (std::size_t i = start; i < ac.size(); ++i)
    if (ac[i] > ac[best]) best = i;
  const std::vector<double> window(ac.begin() + static_cast<std::ptrdiff_t>(start),
                                   ac.end());
  const double baseline = support::median(window);
  if (ac[best] >= params.minCorrelation &&
      ac[best] - baseline >= params.minProminence) {
    result.periodNs = static_cast<double>(best + 1) * params.stepNs;
    result.correlation = ac[best];
  }
  return result;
}

}  // namespace unveil::analysis
