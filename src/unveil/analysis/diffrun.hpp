#pragma once

/// \file diffrun.hpp
/// Run-to-run comparison: the before/after-optimization workflow.
///
/// Given the analyses of two runs of the same application (e.g. baseline vs
/// cache-blocked build), clusters are matched across runs by their position
/// in the iteration structure — the stable invariant under optimization;
/// feature-space positions move, that is the point — and each matched pair
/// is compared: duration, MIPS/IPC, and the *internal evolution* distance
/// between the folded rate curves. A flattened profile with unchanged
/// aggregate duration, or a duration win concentrated in one region, is
/// exactly what aggregate-only tools cannot show.

#include <optional>
#include <string>
#include <vector>

#include "unveil/analysis/pipeline.hpp"
#include "unveil/support/table.hpp"

namespace unveil::analysis {

/// One matched cluster pair's deltas (B relative to A, in percent).
struct ClusterDelta {
  int clusterA = -1;
  int clusterB = -1;
  std::size_t periodPosition = 0;  ///< Shared position in the iteration.
  double durationDeltaPercent = 0.0;   ///< Mean instance duration change.
  double mipsDeltaPercent = 0.0;       ///< Average MIPS change.
  double ipcDeltaPercent = 0.0;        ///< Average IPC change.
  /// Mean absolute difference between the two normalized TOT_INS rate
  /// curves (percent of mean level) — how much the *internal shape* moved.
  /// Negative when either side lacks a folded curve.
  double profileDistancePercent = -1.0;
  double timeShareA = 0.0;
  double timeShareB = 0.0;
};

/// Whole-run comparison.
struct RunDiff {
  std::vector<ClusterDelta> clusters;  ///< Ordered by period position.
  /// Clusters of either run with no counterpart at their position.
  std::vector<int> unmatchedA;
  std::vector<int> unmatchedB;
  bool periodsMatch = false;
};

/// Compares two analyzed runs. Matching is by modal period position of each
/// cluster (requires both analyses to have detected the same period);
/// falls back to cluster-id order with periodsMatch = false otherwise.
[[nodiscard]] RunDiff diffRuns(const PipelineResult& a, const PipelineResult& b);

/// Renders the diff as a printable table.
[[nodiscard]] support::Table diffTable(const RunDiff& diff);

}  // namespace unveil::analysis
