#pragma once

/// \file spectral.hpp
/// Signal-based periodicity detection — the discrete-burst period detector's
/// continuous-time sibling, after the group's follow-up "Trace Spectral
/// Analysis toward Dynamic Levels of Detail" (Llort et al., ICPADS 2011).
///
/// A rank's activity is rendered as a binary "useful computation" signal
/// sampled at a fixed Δt from the trace's state intervals; the normalized
/// autocorrelation of that signal peaks at lags that are multiples of the
/// iteration period *in nanoseconds*. Unlike the label-sequence detector it
/// needs no clustering at all — it runs straight off the state records —
/// and the two estimates cross-validate each other.

#include <cstddef>
#include <vector>

#include "unveil/trace/trace.hpp"

namespace unveil::analysis {

/// Parameters of the signal-based detector.
struct SpectralParams {
  /// Signal sampling step (ns). Must resolve the shortest phase; the default
  /// 50 µs is ~3x below the bundled apps' shortest phase.
  double stepNs = 50'000.0;
  /// Search window for the period as a fraction of the signal length.
  double maxLagFraction = 0.25;
  /// Minimum *prominence* of the accepted peak: its autocorrelation minus
  /// the median autocorrelation over the search window. Mostly-computing
  /// applications produce narrow dips, so the absolute correlation at the
  /// iteration lag can be modest (0.1–0.3) while still towering over the
  /// baseline — prominence is the robust criterion.
  double minProminence = 0.15;
  /// Additionally require the peak's absolute autocorrelation to exceed
  /// this floor (rejects "peaks" of an aperiodic decaying signal).
  double minCorrelation = 0.08;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Result of signal-based period detection.
struct SpectralPeriod {
  double periodNs = 0.0;       ///< Detected iteration period; 0 when none.
  double correlation = 0.0;    ///< Autocorrelation at the detected lag.
  std::size_t signalLength = 0;  ///< Samples in the analyzed signal.
};

/// Builds rank \p r's binary compute signal from the trace's state
/// intervals: signal[i] = fraction of [i·Δt, (i+1)·Δt) spent in Compute.
/// Throws AnalysisError when the trace has no state intervals for the rank.
[[nodiscard]] std::vector<double> computeSignal(const trace::Trace& trace,
                                                trace::Rank rank,
                                                const SpectralParams& params = {});

/// Normalized autocorrelation of \p signal at lags 1..maxLag (index 0 of the
/// result corresponds to lag 1).
[[nodiscard]] std::vector<double> autocorrelation(const std::vector<double>& signal,
                                                  std::size_t maxLag);

/// Detects the iteration period of rank \p r via the first prominent
/// autocorrelation peak. Returns periodNs = 0 when no peak qualifies.
[[nodiscard]] SpectralPeriod detectSpectralPeriod(const trace::Trace& trace,
                                                  trace::Rank rank,
                                                  const SpectralParams& params = {});

}  // namespace unveil::analysis
