#pragma once

/// \file streaming.hpp
/// Bounded-memory streaming analysis: the full 7-stage pipeline over a
/// sharded UVTB2 trace without ever materializing the whole trace.
///
/// Batch analyze() needs the entire trace resident (records + samples) for
/// its lifetime — O(trace) peak memory. analyzeStreaming() consumes the
/// trace twice through trace::ShardStreamReader, holding only one decoded
/// shard at a time:
///
///   Pass A (extract):  decode shard -> extract that rank's bursts -> keep
///                      the burst *metadata* (begin/end/counter deltas,
///                      ~150 B each), drop the shard and its samples.
///   Model phase:       features, clustering (exact or stratified-sampled),
///                      structure, aggregates — detail::runModelStages(),
///                      the very code batch runs, on the very same burst
///                      list, since per-rank extraction concatenated in rank
///                      order is bit-identical to whole-trace extraction.
///   Pass B (fold):     re-decode each shard, re-extract its bursts (now
///                      with samples) and feed each eligible cluster's
///                      members, in global member order, into a
///                      folding::MultiFoldAccumulator — the exact code
///                      foldClusterMulti() wraps. Fit as usual.
///
/// Peak RSS is therefore O(largest shard + burst metadata + retained fold
/// points). The fold clouds are the one term that scales with *samples*,
/// not bursts; FoldOptions::maxPointsPerCounter caps them with a
/// deterministic reservoir, and because the cap is seeded and
/// order-identical in batch and streaming, results remain bit-identical
/// between the modes with the cap set in both (or unset in both).
///
/// Results are bit-identical to analyze() on the same file for any thread
/// count, including degraded reads: the same shards drop for the same
/// reasons, producing the same surviving burst list.

#include <cstdint>
#include <optional>
#include <string>

#include "unveil/analysis/pipeline.hpp"
#include "unveil/support/faulty_stream.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::analysis {

/// Configuration for one streaming run.
struct StreamingConfig {
  PipelineConfig pipeline;
  /// Shard degradation policy, as in trace::readBinaryFile.
  trace::ReadOptions read;
  /// Per-request I/O fault injection (see trace::StreamOptions::fault).
  std::optional<support::FaultSpec> fault;
};

/// What a streaming run produced beyond the pipeline result: the trace
/// header facts a batch caller would have taken from the Trace object, plus
/// degradation and memory accounting.
struct StreamingResult {
  PipelineResult result;
  /// Shards dropped in pass A (pass B re-drops the same shards silently).
  trace::ReadReport report;
  std::string appName;
  trace::Rank numRanks = 0;     ///< Total ranks from the header.
  trace::TimeNs durationNs = 0;
  std::size_t shardsProcessed = 0;  ///< Shards decoded OK (== surviving ranks).
  /// Largest single decoded shard's in-memory working set
  /// (Trace::stats().estimatedBytes) — the unit of the memory bound.
  std::size_t largestShardBytes = 0;
};

/// Streams \p path (UVTB2 only — the caller falls back to analyze() for
/// text/V1 traces) through the pipeline. Throws TraceError on structural
/// damage, AnalysisError when no bursts survive, and AnalysisError if the
/// file visibly changes between the two passes.
[[nodiscard]] StreamingResult analyzeStreaming(const std::string& path,
                                               const StreamingConfig& config = {});

}  // namespace unveil::analysis
