#include "unveil/analysis/representative.hpp"

#include <algorithm>

#include "unveil/support/error.hpp"

namespace unveil::analysis {

void RepresentativeParams::validate() const {
  if (iterations == 0) throw ConfigError("representative iterations must be >= 1");
  if (skipFraction < 0.0 || skipFraction >= 1.0)
    throw ConfigError("representative skipFraction must be in [0, 1)");
}

std::optional<RepresentativeWindow> representativeWindow(
    const PipelineResult& result, const RepresentativeParams& params) {
  params.validate();
  const std::size_t period = result.period.period;
  if (period == 0 || result.period.signature.empty()) return std::nullopt;

  const auto sequences = cluster::clusterSequences(result.bursts, result.clustering);
  if (sequences.empty()) return std::nullopt;

  // Anchor on the rank whose own period detection agrees best with the
  // global signature.
  const cluster::RankSequence* anchor = nullptr;
  double bestMatch = -1.0;
  for (const auto& seq : sequences) {
    const auto p = cluster::detectPeriod(seq.labels);
    if (p.period == period && p.matchFraction > bestMatch) {
      bestMatch = p.matchFraction;
      anchor = &seq;
    }
  }
  if (anchor == nullptr) anchor = &sequences.front();

  const auto& labels = anchor->labels;
  const auto& begins = anchor->begins;
  const std::size_t needed = period * params.iterations;
  if (labels.size() < needed) return std::nullopt;

  const auto skip = static_cast<std::size_t>(
      params.skipFraction * static_cast<double>(labels.size()));

  // Align the start to the signature: find the first index >= skip where the
  // next `needed` labels tile the modal signature (noise labels tolerated as
  // wildcards, consistent with detectPeriod).
  const auto& sig = result.period.signature;
  for (std::size_t start = skip; start + needed < labels.size(); ++start) {
    bool ok = true;
    for (std::size_t i = 0; i < needed && ok; ++i) {
      const int expected = sig[i % period];
      const int actual = labels[start + i];
      if (actual != cluster::kNoiseLabel && expected != cluster::kNoiseLabel &&
          actual != expected)
        ok = false;
    }
    if (!ok) continue;
    RepresentativeWindow w;
    w.begin = begins[start];
    // End at the start of the burst after the covered run (the window then
    // contains whole iterations including their trailing communication).
    w.end = begins[start + needed];
    w.iterationsCovered = params.iterations;
    w.anchorRank = anchor->rank;
    return w;
  }
  return std::nullopt;
}

}  // namespace unveil::analysis
