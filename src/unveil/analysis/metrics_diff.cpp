#include "unveil/analysis/metrics_diff.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "unveil/support/json.hpp"

namespace unveil::analysis {

namespace {

namespace json = support::json;

/// Flattens one numeric-valued JSON object ("spans" needs a sub-key) into
/// name -> double.
std::map<std::string, double> numberMap(const json::Value& root,
                                        std::string_view section) {
  std::map<std::string, double> out;
  const json::Value* obj = root.find(section);
  if (obj == nullptr) return out;
  for (const auto& [name, value] : obj->asObject())
    if (value.isNumber()) out.emplace(name, value.asDouble());
  return out;
}

std::map<std::string, double> spanTotals(const json::Value& root) {
  std::map<std::string, double> out;
  const json::Value* spans = root.find("spans");
  if (spans == nullptr) return out;
  for (const auto& [name, span] : spans->asObject()) {
    const json::Value* total = span.find("total_ns");
    if (total != nullptr && total->isNumber()) out.emplace(name, total->asDouble());
  }
  return out;
}

double relativeDeltaPct(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a * 100.0;
}

/// Aligns two name->value maps (union of keys, absent = 0) into deltas; a
/// row regresses when B exceeds A by > thresholdPct and A clears the floor.
std::vector<MetricDelta> align(const std::map<std::string, double>& a,
                               const std::map<std::string, double>& b,
                               double thresholdPct, double floor) {
  std::set<std::string> names;
  for (const auto& [name, v] : a) names.insert(name);
  for (const auto& [name, v] : b) names.insert(name);
  std::vector<MetricDelta> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    MetricDelta d;
    d.name = name;
    const auto ia = a.find(name);
    const auto ib = b.find(name);
    d.a = ia != a.end() ? ia->second : 0.0;
    d.b = ib != b.end() ? ib->second : 0.0;
    d.deltaPct = relativeDeltaPct(d.a, d.b);
    d.regression = thresholdPct >= 0.0 && d.a >= floor && d.deltaPct > thresholdPct;
    out.push_back(std::move(d));
  }
  return out;
}

/// Extracts the gating memory metrics of one dump: the whole-run sampler
/// peak plus each stage's high-water push (gauges, kB -> bytes).
std::map<std::string, double> memoryMetrics(const json::Value& root) {
  std::map<std::string, double> out;
  if (const json::Value* peak = root.at({"sampler", "rss_peak_bytes"});
      peak != nullptr && peak->isNumber() && peak->asDouble() > 0.0)
    out.emplace("sampler.rss_peak_bytes", peak->asDouble());
  for (const auto& [name, value] : numberMap(root, "gauges")) {
    constexpr std::string_view kHwmPrefix = "stage.hwm_delta_kb.";
    if (name.rfind(kHwmPrefix, 0) == 0)
      out.emplace("stage.hwm_delta_bytes." + name.substr(kHwmPrefix.size()),
                  value * 1024.0);
  }
  if (const json::Value* stages = root.find("stage_resources")) {
    for (const auto& [stage, res] : stages->asObject()) {
      const json::Value* peak = res.find("rss_peak_bytes");
      if (peak != nullptr && peak->isNumber() && peak->asDouble() > 0.0)
        out.emplace("stage_rss_peak." + stage, peak->asDouble());
    }
  }
  return out;
}

/// Informational sampler stats: utilization and queue-depth percentiles of
/// the whole run and each stage.
std::map<std::string, double> samplerMetrics(const json::Value& root) {
  std::map<std::string, double> out;
  const auto grab = [&out](const std::string& prefix, const json::Value& agg) {
    if (const json::Value* v = agg.find("utilization_pct"); v && v->isNumber())
      out.emplace(prefix + ".utilization_pct", v->asDouble());
    if (const json::Value* v = agg.at({"queue_depth", "p95"}); v && v->isNumber())
      out.emplace(prefix + ".queue_depth_p95", v->asDouble());
  };
  if (const json::Value* sampler = root.find("sampler")) {
    if (const json::Value* n = sampler->find("samples"); n && n->isNumber())
      out.emplace("sampler.samples", n->asDouble());
    grab("sampler", *sampler);
  }
  if (const json::Value* stages = root.find("stage_resources"))
    for (const auto& [stage, res] : stages->asObject()) grab(stage, res);
  return out;
}

bool isStageCpu(const std::string& name) {
  return name.rfind("stage.cpu_ns.", 0) == 0;
}

}  // namespace

TelemetryDiffReport diffMetricsFiles(const std::string& pathA,
                                     const std::string& pathB,
                                     const TelemetryDiffOptions& options) {
  const json::Value a = json::parseFile(pathA);
  const json::Value b = json::parseFile(pathB);

  TelemetryDiffReport report;
  report.wall = align(spanTotals(a), spanTotals(b), options.thresholdPct,
                      static_cast<double>(options.minWallNs));

  auto countersA = numberMap(a, "counters");
  auto countersB = numberMap(b, "counters");
  std::map<std::string, double> cpuA;
  std::map<std::string, double> cpuB;
  for (auto it = countersA.begin(); it != countersA.end();) {
    if (isStageCpu(it->first)) {
      cpuA.emplace(it->first, it->second);
      it = countersA.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = countersB.begin(); it != countersB.end();) {
    if (isStageCpu(it->first)) {
      cpuB.emplace(it->first, it->second);
      it = countersB.erase(it);
    } else {
      ++it;
    }
  }
  report.cpu = align(cpuA, cpuB, options.thresholdPct,
                     static_cast<double>(options.minWallNs));
  report.memory = align(memoryMetrics(a), memoryMetrics(b),
                        options.memThresholdPct,
                        static_cast<double>(options.minMemBytes));
  // Informational sets: threshold -1 disables the regression flag.
  report.counters = align(countersA, countersB, -1.0, 0.0);
  report.sampler = align(samplerMetrics(a), samplerMetrics(b), -1.0, 0.0);

  for (const auto* set : {&report.wall, &report.cpu, &report.memory})
    for (const MetricDelta& d : *set)
      if (d.regression) ++report.regressions;
  return report;
}

support::Table telemetryDiffTable(const TelemetryDiffReport& report) {
  support::Table table({"category", "metric", "A", "B", "delta (%)", "flag"});
  const auto section = [&table](const char* category,
                                const std::vector<MetricDelta>& set) {
    for (const MetricDelta& d : set) {
      table.addRow({category, d.name, d.a, d.b, d.deltaPct,
                    d.regression ? "REGRESSION" : ""});
    }
  };
  section("wall", report.wall);
  section("cpu", report.cpu);
  section("memory", report.memory);
  section("counter", report.counters);
  section("sampler", report.sampler);
  return table;
}

}  // namespace unveil::analysis
