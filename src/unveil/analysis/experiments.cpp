#include "unveil/analysis/experiments.hpp"

#include <algorithm>

#include "unveil/support/error.hpp"

namespace unveil::analysis {

sim::apps::AppParams standardParams(std::uint64_t seed) {
  sim::apps::AppParams p;
  p.ranks = 16;
  p.iterations = 150;
  p.seed = seed;
  p.scale = 1.0;
  return p;
}

sim::RunResult runMeasured(const std::string& appName,
                           const sim::apps::AppParams& params,
                           const sim::MeasurementConfig& measurement) {
  sim::SimConfig cfg;
  cfg.measurement = measurement;
  cfg.seed = params.seed + 1000;  // sampling stream distinct from app stream
  return sim::run(sim::apps::makeApplication(appName, params), cfg);
}

PipelineConfig calibratedPipelineConfig(const sim::MeasurementConfig& measurement) {
  PipelineConfig config;
  if (measurement.sampling.enabled)
    config.reconstruct.fold.perSampleOverheadNs = measurement.sampling.sampleCostNs;
  if (measurement.instrumentation.enabled)
    config.reconstruct.fold.probeOverheadNs = measurement.instrumentation.probeCostNs;
  return config;
}

folding::EmpiricalRateParams calibratedEmpiricalParams(
    const sim::MeasurementConfig& measurement) {
  folding::EmpiricalRateParams params;
  if (measurement.sampling.enabled)
    params.perSampleOverheadNs = measurement.sampling.sampleCostNs;
  if (measurement.instrumentation.enabled)
    params.probeOverheadNs = measurement.instrumentation.probeCostNs;
  return params;
}

std::vector<ClusterAccuracy> foldingAccuracy(const sim::RunResult& coarse,
                                             const sim::RunResult& fine,
                                             const PipelineResult& coarseAnalysis,
                                             counters::CounterId counter,
                                             const sim::MeasurementConfig& fineMeasurement) {
  UNVEIL_ASSERT(coarse.app != nullptr && fine.app != nullptr,
                "runs must carry their application");
  // Fine-grain reference bursts, grouped by ground-truth phase.
  const cluster::BurstExtraction extraction;
  const auto fineBursts = extraction.fromPhaseEvents(fine.trace);

  std::vector<ClusterAccuracy> out;
  for (const auto& report : coarseAnalysis.clusters) {
    if (!report.folded) continue;
    auto rateIt = report.rates.find(counter);
    if (rateIt == report.rates.end()) continue;
    if (report.modalTruthPhase == cluster::kNoPhase) continue;
    const folding::RateCurve& curve = rateIt->second;

    ClusterAccuracy acc;
    acc.clusterId = report.clusterId;
    acc.truthPhase = report.modalTruthPhase;
    acc.phaseName = coarse.app->phase(report.modalTruthPhase).model.name();
    acc.instances = report.instances;
    acc.foldedPoints = curve.sourcePoints;

    // Exact reference: the phase model's analytic normalized rate.
    const auto& shape =
        coarse.app->phase(report.modalTruthPhase).model.profile(counter).shape;
    const auto truthCurve = folding::truthNormalizedRate(shape, curve.t);
    acc.vsTruthPercent = folding::meanAbsDiffPercent(curve.normRate, truthCurve);

    // Empirical reference: densely sampled instances of the same phase in
    // the fine-grain run.
    std::vector<std::size_t> fineMembers;
    for (std::size_t i = 0; i < fineBursts.size(); ++i)
      if (fineBursts[i].truthPhase == report.modalTruthPhase) fineMembers.push_back(i);
    const auto fineCurve = folding::empiricalNormalizedRate(
        fine.trace, fineBursts, fineMembers, counter, curve.t,
        calibratedEmpiricalParams(fineMeasurement));
    acc.vsFinePercent = folding::meanAbsDiffPercent(curve.normRate, fineCurve);

    out.push_back(std::move(acc));
  }
  std::sort(out.begin(), out.end(), [](const ClusterAccuracy& a, const ClusterAccuracy& b) {
    return a.clusterId < b.clusterId;
  });
  return out;
}

}  // namespace unveil::analysis
