#include "unveil/analysis/report.hpp"

#include <algorithm>
#include <string>

#include "unveil/cluster/structure.hpp"

namespace unveil::analysis {

support::Table clusterSummaryTable(const PipelineResult& result) {
  support::Table t({"cluster", "instances", "mean duration (us)", "time share (%)",
                    "avg IPC", "avg MIPS", "modal truth phase", "folded"});
  for (const auto& c : result.clusters) {
    t.addRow({static_cast<long long>(c.clusterId),
              static_cast<long long>(c.instances), c.meanDurationNs / 1e3,
              c.totalTimeFraction * 100.0, c.avgIpc, c.avgMips,
              c.modalTruthPhase == cluster::kNoPhase
                  ? support::Cell{std::string("-")}
                  : support::Cell{static_cast<long long>(c.modalTruthPhase)},
              std::string(c.folded ? "yes" : "no")});
  }
  t.addRow({std::string("noise"),
            static_cast<long long>(result.clustering.noiseCount()), 0.0, 0.0, 0.0,
            0.0, std::string("-"), std::string("no")});
  return t;
}

support::SeriesSet scatterSeries(const PipelineResult& result, cluster::FeatureId x,
                                 cluster::FeatureId y,
                                 const std::string& figureName) {
  support::SeriesSet set(figureName, std::string(cluster::featureName(x)),
                         std::string(cluster::featureName(y)));
  auto makeSeries = [&](int label, const std::string& name) {
    support::Series s;
    s.label = name;
    for (std::size_t i = 0; i < result.bursts.size(); ++i) {
      if (result.clustering.labels[i] != label) continue;
      s.x.push_back(cluster::burstFeature(result.bursts[i], x));
      s.y.push_back(cluster::burstFeature(result.bursts[i], y));
    }
    if (!s.x.empty()) set.add(std::move(s));
  };
  for (std::size_t c = 0; c < result.clustering.numClusters; ++c)
    makeSeries(static_cast<int>(c), "cluster " + std::to_string(c));
  makeSeries(cluster::kNoiseLabel, "noise");
  return set;
}

support::SeriesSet rateSeries(const PipelineResult& result, counters::CounterId counter,
                              const std::string& figureName) {
  const bool isIns = counter == counters::CounterId::TotIns;
  support::SeriesSet set(figureName, "normalized intra-phase time",
                         isIns ? "instantaneous MIPS"
                               : std::string(counters::counterName(counter)) +
                                     " per microsecond");
  for (const auto& c : result.clusters) {
    auto it = c.rates.find(counter);
    if (it == c.rates.end()) continue;
    support::Series s;
    s.label = "cluster " + std::to_string(c.clusterId);
    s.x = it->second.t;
    s.y = it->second.ratePerMicrosecond();
    set.add(std::move(s));
  }
  return set;
}

support::SeriesSet timelineSeries(const PipelineResult& result,
                                  const std::string& figureName,
                                  std::size_t maxRanks) {
  support::SeriesSet set(figureName, "time (ms)", "cluster id");
  const auto sequences = cluster::clusterSequences(result.bursts, result.clustering);
  std::size_t shown = 0;
  for (const auto& seq : sequences) {
    if (shown++ >= maxRanks) break;
    support::Series s;
    s.label = "rank " + std::to_string(seq.rank);
    for (std::size_t i = 0; i < seq.labels.size(); ++i) {
      s.x.push_back(static_cast<double>(seq.begins[i]) / 1e6);
      s.y.push_back(static_cast<double>(seq.labels[i]));
    }
    set.add(std::move(s));
  }
  return set;
}

}  // namespace unveil::analysis
