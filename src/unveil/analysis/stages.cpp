#include "unveil/analysis/stages.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "unveil/counters/counter.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::analysis::detail {

void runModelStages(const PipelineConfig& config, PipelineResult& result) {
  // 2. Features + normalization + clustering. The placeholder is replaced
  //    inside the stage block (FeatureMatrix forbids dims == 0).
  cluster::FeatureMatrix normalized(0, 1);
  {
    StageScope stage("pipeline.features", "features", result.telemetry);
    const auto raw = cluster::buildFeatures(result.bursts, config.features);
    const auto normalizer = cluster::ZScoreNormalizer::fit(raw);
    normalized = normalizer.apply(raw);
    stage.items(normalized.rows());
  }
  {
    StageScope stage("pipeline.cluster", "cluster", result.telemetry);
    cluster::DbscanParams params = config.dbscan;
    if (config.autoEps) {
      params.eps =
          cluster::estimateEps(normalized, params.minPts, config.epsQuantile);
      support::logInfo("pipeline: estimated eps = " + std::to_string(params.eps));
    }
    result.epsUsed = params.eps;
    const bool sampled =
        config.clusterMode == ClusterMode::Sampled ||
        (config.clusterMode == ClusterMode::Auto &&
         normalized.rows() >= config.sampledClusteringThreshold);
    if (sampled) {
      cluster::SampledDbscanParams sampledParams;
      sampledParams.dbscan = params;
      sampledParams.sample = config.clusterSample;
      auto sampledResult = cluster::dbscanSampled(normalized, sampledParams);
      result.clusterSampleSize = sampledResult.sampleSize;
      result.clusterClassified = sampledResult.classified;
      result.clustering = std::move(sampledResult.clustering);
      support::logInfo("pipeline: sampled clustering (sample " +
                       std::to_string(result.clusterSampleSize) + " of " +
                       std::to_string(normalized.rows()) + " bursts)");
      stage.span().attr("sample_size", result.clusterSampleSize);
      stage.span().attr("classified", result.clusterClassified);
    } else {
      result.clustering = cluster::dbscan(normalized, params);
    }
    stage.items(result.clustering.numClusters);
    stage.span().attr("eps", params.eps);
    stage.span().attr("mode", sampled ? "sampled" : "exact");
    stage.span().attr("clusters", result.clustering.numClusters);
    telemetry::gauge("pipeline.eps", params.eps);
  }
  support::logInfo("pipeline: found " + std::to_string(result.clustering.numClusters) +
                   " clusters (" + std::to_string(result.clustering.noiseCount()) +
                   " noise bursts)");

  // 3. Structure detection, then structural refinement of fragments; a
  //    successful merge changes the sequences, so re-detect afterwards.
  {
    StageScope stage("pipeline.structure", "structure", result.telemetry);
    auto sequences = cluster::clusterSequences(result.bursts, result.clustering);
    result.period = cluster::detectGlobalPeriod(sequences);
    if (config.refineFragments && result.period.period > 0) {
      auto refined = cluster::refineByStructure(result.bursts, result.clustering,
                                                result.period.period, config.refine);
      result.refinementMerges = refined.mergesApplied;
      if (refined.mergesApplied > 0) {
        support::logInfo("pipeline: refinement merged " +
                         std::to_string(refined.mergesApplied) + " fragment pairs");
        result.clustering = std::move(refined.clustering);
        sequences = cluster::clusterSequences(result.bursts, result.clustering);
        result.period = cluster::detectGlobalPeriod(sequences);
      }
    }
    stage.items(result.refinementMerges);
    stage.span().attr("period", result.period.period);
    stage.span().attr("merges", result.refinementMerges);
    telemetry::gauge("pipeline.period", static_cast<double>(result.period.period));
  }

  // 4. Per-cluster aggregate metrics. Clusters are independent; each job
  //    fills its own pre-allocated report slot, so the result vector is
  //    identical to the sequential cluster-id-order walk.
  {
    StageScope aggregateStage("pipeline.aggregate", "aggregate", result.telemetry);
    aggregateStage.items(result.clustering.numClusters);
    double allBurstTime = 0.0;
    for (const auto& b : result.bursts)
      allBurstTime += static_cast<double>(b.durationNs());

    auto memberBuckets = result.clustering.buckets();
    result.clusters.resize(result.clustering.numClusters);
    support::globalPool().parallelFor(
        result.clustering.numClusters, [&](std::size_t c) {
          ClusterReport& report = result.clusters[c];
          report.clusterId = static_cast<int>(c);
          report.memberIdx = std::move(memberBuckets[c]);
          report.instances = report.memberIdx.size();

          double durSum = 0.0;
          double ipcSum = 0.0;
          double mipsSum = 0.0;
          std::map<std::uint32_t, std::size_t> phaseHist;
          for (std::size_t i : report.memberIdx) {
            const auto& b = result.bursts[i];
            const auto delta = b.delta();
            durSum += static_cast<double>(b.durationNs());
            ipcSum += counters::DerivedMetrics::ipc(delta);
            mipsSum += counters::DerivedMetrics::mips(delta, b.durationNs());
            ++phaseHist[b.truthPhase];
          }
          if (report.instances > 0) {
            report.meanDurationNs = durSum / static_cast<double>(report.instances);
            report.avgIpc = ipcSum / static_cast<double>(report.instances);
            report.avgMips = mipsSum / static_cast<double>(report.instances);
            report.totalTimeFraction =
                allBurstTime > 0.0 ? durSum / allBurstTime : 0.0;
            std::size_t best = 0;
            for (const auto& [phase, count] : phaseHist) {
              if (count > best) {
                best = count;
                report.modalTruthPhase = phase;
              }
            }
          }
        });
  }
}

void runFitStage(std::vector<ClusterFoldEntries> folds,
                 const PipelineConfig& config, PipelineResult& result) {
  support::ThreadPool& pool = support::globalPool();

  struct FitJob {
    std::size_t clusterIdx;
    counters::CounterId counter;
    folding::FoldedCounter* folded;  // owned by its ClusterFoldEntries entry
    std::optional<folding::RateCurve> curve;
    std::string error;
  };
  std::vector<bool> anyFailure(result.clusters.size(), false);
  auto warnNotFolded = [&](std::size_t clusterIdx, counters::CounterId counter,
                           const std::string& error) {
    anyFailure[clusterIdx] = true;
    support::logWarn("pipeline: cluster " +
                     std::to_string(result.clusters[clusterIdx].clusterId) +
                     " counter " + std::string(counters::counterName(counter)) +
                     " not folded: " + error);
  };
  std::vector<FitJob> fitJobs;
  for (auto& fold : folds) {
    for (auto& entry : fold.entries) {
      if (entry.folded) {
        fitJobs.push_back(
            FitJob{fold.clusterIdx, entry.counter, &*entry.folded,
                   std::nullopt, {}});
      } else {
        warnNotFolded(fold.clusterIdx, entry.counter, entry.error);
      }
    }
  }
  {
    StageScope stage("pipeline.fit", "fit", result.telemetry);
    stage.items(fitJobs.size());
    pool.parallelFor(fitJobs.size(), [&](std::size_t j) {
      FitJob& job = fitJobs[j];
      telemetry::Span span("fit.reconstruct");
      span.attr("cluster", result.clusters[job.clusterIdx].clusterId);
      span.attr("counter", counters::counterName(job.counter));
      span.attr("points", job.folded->points.size());
      try {
        job.curve = folding::reconstructFoldedRate(std::move(*job.folded),
                                                   config.reconstruct);
      } catch (const AnalysisError& e) {
        job.error = e.what();
      }
    });
    telemetry::count("fit.curves", fitJobs.size());
  }

  for (auto& job : fitJobs) {
    if (job.curve) {
      result.clusters[job.clusterIdx].rates.emplace(job.counter,
                                                    std::move(*job.curve));
    } else {
      warnNotFolded(job.clusterIdx, job.counter, job.error);
    }
  }
  for (std::size_t ci = 0; ci < result.clusters.size(); ++ci) {
    auto& report = result.clusters[ci];
    report.folded = !anyFailure[ci] && !report.rates.empty();
  }
}

}  // namespace unveil::analysis::detail
