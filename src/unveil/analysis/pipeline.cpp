#include "unveil/analysis/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "unveil/counters/counter.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/log.hpp"

namespace unveil::analysis {

PipelineResult analyze(const trace::Trace& trace, const PipelineConfig& config) {
  PipelineResult result;

  // 1. Burst extraction.
  result.bursts = config.useMpiGaps ? config.extraction.fromMpiGaps(trace)
                                    : config.extraction.fromPhaseEvents(trace);
  if (result.bursts.empty())
    throw AnalysisError("pipeline: trace yields no computation bursts");
  support::logInfo("pipeline: extracted " + std::to_string(result.bursts.size()) +
                   " bursts");

  // 2. Features + normalization + clustering.
  const auto raw = cluster::buildFeatures(result.bursts, config.features);
  const auto normalizer = cluster::ZScoreNormalizer::fit(raw);
  const auto normalized = normalizer.apply(raw);
  cluster::DbscanParams params = config.dbscan;
  if (config.autoEps) {
    params.eps =
        cluster::estimateEps(normalized, params.minPts, config.epsQuantile);
    support::logInfo("pipeline: estimated eps = " + std::to_string(params.eps));
  }
  result.epsUsed = params.eps;
  result.clustering = cluster::dbscan(normalized, params);
  support::logInfo("pipeline: found " + std::to_string(result.clustering.numClusters) +
                   " clusters (" + std::to_string(result.clustering.noiseCount()) +
                   " noise bursts)");

  // 3. Structure detection, then structural refinement of fragments; a
  //    successful merge changes the sequences, so re-detect afterwards.
  {
    auto sequences = cluster::clusterSequences(result.bursts, result.clustering);
    result.period = cluster::detectGlobalPeriod(sequences);
    if (config.refineFragments && result.period.period > 0) {
      auto refined = cluster::refineByStructure(result.bursts, result.clustering,
                                                result.period.period, config.refine);
      result.refinementMerges = refined.mergesApplied;
      if (refined.mergesApplied > 0) {
        support::logInfo("pipeline: refinement merged " +
                         std::to_string(refined.mergesApplied) + " fragment pairs");
        result.clustering = std::move(refined.clustering);
        sequences = cluster::clusterSequences(result.bursts, result.clustering);
        result.period = cluster::detectGlobalPeriod(sequences);
      }
    }
  }

  // 4. Per-cluster aggregate metrics and folding.
  double allBurstTime = 0.0;
  for (const auto& b : result.bursts)
    allBurstTime += static_cast<double>(b.durationNs());

  auto memberBuckets = result.clustering.buckets();
  for (std::size_t c = 0; c < result.clustering.numClusters; ++c) {
    ClusterReport report;
    report.clusterId = static_cast<int>(c);
    report.memberIdx = std::move(memberBuckets[c]);
    report.instances = report.memberIdx.size();

    double durSum = 0.0;
    double ipcSum = 0.0;
    double mipsSum = 0.0;
    std::map<std::uint32_t, std::size_t> phaseHist;
    for (std::size_t i : report.memberIdx) {
      const auto& b = result.bursts[i];
      const auto delta = b.delta();
      durSum += static_cast<double>(b.durationNs());
      ipcSum += counters::DerivedMetrics::ipc(delta);
      mipsSum += counters::DerivedMetrics::mips(delta, b.durationNs());
      ++phaseHist[b.truthPhase];
    }
    if (report.instances > 0) {
      report.meanDurationNs = durSum / static_cast<double>(report.instances);
      report.avgIpc = ipcSum / static_cast<double>(report.instances);
      report.avgMips = mipsSum / static_cast<double>(report.instances);
      report.totalTimeFraction = allBurstTime > 0.0 ? durSum / allBurstTime : 0.0;
      std::size_t best = 0;
      for (const auto& [phase, count] : phaseHist) {
        if (count > best) {
          best = count;
          report.modalTruthPhase = phase;
        }
      }
    }

    result.clusters.push_back(std::move(report));
  }

  // 5. Folding — two stages on a worker pool. Stage 1 folds each eligible
  //    cluster ONCE for all requested counters (one walk over the member
  //    samples instead of |counters| walks); stage 2 runs the independent
  //    per-(cluster, counter) prune/fit/reconstruct jobs over the folded
  //    clouds. Results go to pre-allocated slots and are merged in a fixed
  //    order, so the outcome is bit-identical to the sequential
  //    per-(cluster, counter) path.
  {
    const std::size_t hardware = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t configured =
        config.foldThreads == 0 ? hardware : config.foldThreads;
    auto runPool = [&](std::size_t jobCount, auto&& body) {
      const std::size_t threads = std::min(configured, jobCount);
      std::atomic<std::size_t> next{0};
      auto worker = [&] {
        for (std::size_t j = next.fetch_add(1); j < jobCount;
             j = next.fetch_add(1))
          body(j);
      };
      if (threads <= 1) {
        worker();
      } else {
        std::vector<std::jthread> pool;
        pool.reserve(threads);
        for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
      }
    };

    struct FoldJob {
      std::size_t clusterIdx;
      std::vector<folding::MultiFoldEntry> entries;
    };
    std::vector<FoldJob> foldJobs;
    for (std::size_t ci = 0; ci < result.clusters.size(); ++ci) {
      if (result.clusters[ci].instances < config.minClusterInstances) continue;
      foldJobs.push_back(FoldJob{ci, {}});
    }
    runPool(foldJobs.size(), [&](std::size_t j) {
      FoldJob& job = foldJobs[j];
      job.entries = folding::foldClusterMulti(
          trace, result.bursts, result.clusters[job.clusterIdx].memberIdx,
          config.rateCounters, config.reconstruct.fold);
    });

    struct FitJob {
      std::size_t clusterIdx;
      counters::CounterId counter;
      folding::FoldedCounter* folded;  // owned by its FoldJob entry
      std::optional<folding::RateCurve> curve;
      std::string error;
    };
    std::vector<bool> anyFailure(result.clusters.size(), false);
    auto warnNotFolded = [&](std::size_t clusterIdx, counters::CounterId counter,
                             const std::string& error) {
      anyFailure[clusterIdx] = true;
      support::logWarn("pipeline: cluster " +
                       std::to_string(result.clusters[clusterIdx].clusterId) +
                       " counter " + std::string(counters::counterName(counter)) +
                       " not folded: " + error);
    };
    std::vector<FitJob> fitJobs;
    for (auto& fold : foldJobs) {
      for (auto& entry : fold.entries) {
        if (entry.folded) {
          fitJobs.push_back(
              FitJob{fold.clusterIdx, entry.counter, &*entry.folded,
                     std::nullopt, {}});
        } else {
          warnNotFolded(fold.clusterIdx, entry.counter, entry.error);
        }
      }
    }
    runPool(fitJobs.size(), [&](std::size_t j) {
      FitJob& job = fitJobs[j];
      try {
        job.curve =
            folding::reconstructFoldedRate(std::move(*job.folded), config.reconstruct);
      } catch (const AnalysisError& e) {
        job.error = e.what();
      }
    });

    for (auto& job : fitJobs) {
      if (job.curve) {
        result.clusters[job.clusterIdx].rates.emplace(job.counter,
                                                      std::move(*job.curve));
      } else {
        warnNotFolded(job.clusterIdx, job.counter, job.error);
      }
    }
    for (std::size_t ci = 0; ci < result.clusters.size(); ++ci) {
      auto& report = result.clusters[ci];
      report.folded = !anyFailure[ci] && !report.rates.empty();
    }
  }

  return result;
}

}  // namespace unveil::analysis
