#include "unveil/analysis/pipeline.hpp"

#include <string>
#include <utility>
#include <vector>

#include "unveil/analysis/stages.hpp"
#include "unveil/folding/folded.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::analysis {

PipelineResult analyze(const trace::Trace& trace, const PipelineConfig& config) {
  PipelineResult result;
  telemetry::Span rootSpan("pipeline.analyze");

  // 1. Burst extraction.
  {
    detail::StageScope stage("pipeline.extract", "extract", result.telemetry);
    result.bursts = config.useMpiGaps ? config.extraction.fromMpiGaps(trace)
                                      : config.extraction.fromPhaseEvents(trace);
    stage.items(result.bursts.size());
    stage.span().attr("bursts", result.bursts.size());
    telemetry::count("pipeline.bursts_extracted", result.bursts.size());
  }
  if (result.bursts.empty())
    throw AnalysisError("pipeline: trace yields no computation bursts");
  support::logInfo("pipeline: extracted " + std::to_string(result.bursts.size()) +
                   " bursts");

  // 2–4. Features, clustering, structure, aggregates — shared with the
  //      streaming engine (stages.hpp), which is what keeps the two modes
  //      bit-identical downstream of extraction.
  detail::runModelStages(config, result);

  // 5a. Folding — each eligible cluster folded ONCE for all requested
  //     counters (one walk over the member samples instead of |counters|
  //     walks), on the shared pool with pre-allocated slots, so the outcome
  //     is bit-identical to the sequential per-(cluster, counter) path.
  std::vector<detail::ClusterFoldEntries> folds;
  for (std::size_t ci = 0; ci < result.clusters.size(); ++ci) {
    if (result.clusters[ci].instances < config.minClusterInstances) continue;
    folds.push_back(detail::ClusterFoldEntries{ci, {}});
  }
  {
    support::ThreadPool& pool = support::globalPool();
    detail::StageScope stage("pipeline.fold", "fold", result.telemetry);
    stage.items(folds.size());
    stage.span().attr("threads", std::min(pool.threads(), folds.size()));
    // One columnar view of the trace samples, shared read-only by every
    // cluster's fold.
    folding::SampleColumns sampleColumns;
    sampleColumns.build(trace);
    // parallelFor re-parents worker spans under the fold stage span.
    pool.parallelFor(folds.size(), [&](std::size_t j) {
      detail::ClusterFoldEntries& fold = folds[j];
      fold.entries = folding::foldClusterMulti(
          sampleColumns, result.bursts, result.clusters[fold.clusterIdx].memberIdx,
          config.rateCounters, config.reconstruct.fold);
    });
    telemetry::count("fold.clusters", folds.size());
  }

  // 5b. Per-(cluster, counter) prune/fit/reconstruct — shared too.
  detail::runFitStage(std::move(folds), config, result);

  rootSpan.attr("bursts", result.bursts.size());
  rootSpan.attr("clusters", result.clustering.numClusters);
  telemetry::count("cluster.clusters_found", result.clustering.numClusters);
  telemetry::count("cluster.noise_points", result.clustering.noiseCount());
  telemetry::count("cluster.merges_applied", result.refinementMerges);
  return result;
}

}  // namespace unveil::analysis
