#include "unveil/analysis/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <string>

#include "unveil/counters/counter.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/sampler.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::analysis {

namespace {

std::int64_t stageClockNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One pipeline stage: a telemetry span plus a StageStat row for
/// PipelineResult::telemetry. Everything is gated on the span being active
/// (i.e. a Session existing), so the disabled path never reads the clock.
///
/// Beyond wall time, the destructor records the stage's resource boundary
/// deltas: process CPU time (all threads — a stage at 4x wall CPU ran well
/// parallelized), RSS growth, and peak-RSS (VmHWM) growth, which is the
/// stage's contribution to the run's memory high-water mark. The deltas
/// also land in the metrics dump as "stage.*" counters/gauges so
/// telemetry-diff can compare them across runs.
class StageScope {
 public:
  StageScope(const char* spanName, const char* stageName,
             std::vector<telemetry::StageStat>& sink)
      : span_(spanName), stageName_(stageName), sink_(sink) {
    if (!span_.active()) return;
    startNs_ = stageClockNs();
    startCpuNs_ = support::processCpuNs();
    startMem_ = support::readMemoryStatus();
  }
  ~StageScope() {
    if (!span_.active()) return;
    const support::MemoryStatus endMem = support::readMemoryStatus();
    telemetry::StageStat stat;
    stat.name = stageName_;
    stat.wallNs = stageClockNs() - startNs_;
    stat.items = items_;
    stat.cpuNs = support::processCpuNs() - startCpuNs_;
    stat.rssDeltaBytes = static_cast<std::int64_t>(endMem.rssBytes) -
                         static_cast<std::int64_t>(startMem_.rssBytes);
    stat.hwmDeltaBytes = static_cast<std::int64_t>(endMem.hwmBytes) -
                         static_cast<std::int64_t>(startMem_.hwmBytes);
    telemetry::count("stage.cpu_ns." + stat.name,
                     static_cast<std::uint64_t>(std::max<std::int64_t>(0, stat.cpuNs)));
    telemetry::gauge("stage.rss_delta_kb." + stat.name,
                     static_cast<double>(stat.rssDeltaBytes) / 1024.0);
    telemetry::gauge("stage.hwm_delta_kb." + stat.name,
                     static_cast<double>(stat.hwmDeltaBytes) / 1024.0);
    sink_.push_back(std::move(stat));
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  void items(std::uint64_t n) noexcept { items_ = n; }
  telemetry::Span& span() noexcept { return span_; }

 private:
  telemetry::Span span_;
  const char* stageName_;
  std::vector<telemetry::StageStat>& sink_;
  std::int64_t startNs_ = 0;
  std::int64_t startCpuNs_ = 0;
  support::MemoryStatus startMem_;
  std::uint64_t items_ = 0;
};

}  // namespace

PipelineResult analyze(const trace::Trace& trace, const PipelineConfig& config) {
  PipelineResult result;
  telemetry::Span rootSpan("pipeline.analyze");

  // 1. Burst extraction.
  {
    StageScope stage("pipeline.extract", "extract", result.telemetry);
    result.bursts = config.useMpiGaps ? config.extraction.fromMpiGaps(trace)
                                      : config.extraction.fromPhaseEvents(trace);
    stage.items(result.bursts.size());
    stage.span().attr("bursts", result.bursts.size());
    telemetry::count("pipeline.bursts_extracted", result.bursts.size());
  }
  if (result.bursts.empty())
    throw AnalysisError("pipeline: trace yields no computation bursts");
  support::logInfo("pipeline: extracted " + std::to_string(result.bursts.size()) +
                   " bursts");

  // 2. Features + normalization + clustering. The placeholder is replaced
  //    inside the stage block (FeatureMatrix forbids dims == 0).
  cluster::FeatureMatrix normalized(0, 1);
  {
    StageScope stage("pipeline.features", "features", result.telemetry);
    const auto raw = cluster::buildFeatures(result.bursts, config.features);
    const auto normalizer = cluster::ZScoreNormalizer::fit(raw);
    normalized = normalizer.apply(raw);
    stage.items(normalized.rows());
  }
  {
    StageScope stage("pipeline.cluster", "cluster", result.telemetry);
    cluster::DbscanParams params = config.dbscan;
    if (config.autoEps) {
      params.eps =
          cluster::estimateEps(normalized, params.minPts, config.epsQuantile);
      support::logInfo("pipeline: estimated eps = " + std::to_string(params.eps));
    }
    result.epsUsed = params.eps;
    const bool sampled =
        config.clusterMode == ClusterMode::Sampled ||
        (config.clusterMode == ClusterMode::Auto &&
         normalized.rows() >= config.sampledClusteringThreshold);
    if (sampled) {
      cluster::SampledDbscanParams sampledParams;
      sampledParams.dbscan = params;
      sampledParams.sample = config.clusterSample;
      auto sampledResult = cluster::dbscanSampled(normalized, sampledParams);
      result.clusterSampleSize = sampledResult.sampleSize;
      result.clusterClassified = sampledResult.classified;
      result.clustering = std::move(sampledResult.clustering);
      support::logInfo("pipeline: sampled clustering (sample " +
                       std::to_string(result.clusterSampleSize) + " of " +
                       std::to_string(normalized.rows()) + " bursts)");
      stage.span().attr("sample_size", result.clusterSampleSize);
      stage.span().attr("classified", result.clusterClassified);
    } else {
      result.clustering = cluster::dbscan(normalized, params);
    }
    stage.items(result.clustering.numClusters);
    stage.span().attr("eps", params.eps);
    stage.span().attr("mode", sampled ? "sampled" : "exact");
    stage.span().attr("clusters", result.clustering.numClusters);
    telemetry::gauge("pipeline.eps", params.eps);
  }
  support::logInfo("pipeline: found " + std::to_string(result.clustering.numClusters) +
                   " clusters (" + std::to_string(result.clustering.noiseCount()) +
                   " noise bursts)");

  // 3. Structure detection, then structural refinement of fragments; a
  //    successful merge changes the sequences, so re-detect afterwards.
  {
    StageScope stage("pipeline.structure", "structure", result.telemetry);
    auto sequences = cluster::clusterSequences(result.bursts, result.clustering);
    result.period = cluster::detectGlobalPeriod(sequences);
    if (config.refineFragments && result.period.period > 0) {
      auto refined = cluster::refineByStructure(result.bursts, result.clustering,
                                                result.period.period, config.refine);
      result.refinementMerges = refined.mergesApplied;
      if (refined.mergesApplied > 0) {
        support::logInfo("pipeline: refinement merged " +
                         std::to_string(refined.mergesApplied) + " fragment pairs");
        result.clustering = std::move(refined.clustering);
        sequences = cluster::clusterSequences(result.bursts, result.clustering);
        result.period = cluster::detectGlobalPeriod(sequences);
      }
    }
    stage.items(result.refinementMerges);
    stage.span().attr("period", result.period.period);
    stage.span().attr("merges", result.refinementMerges);
    telemetry::gauge("pipeline.period", static_cast<double>(result.period.period));
  }

  // 4. Per-cluster aggregate metrics. Clusters are independent; each job
  //    fills its own pre-allocated report slot, so the result vector is
  //    identical to the sequential cluster-id-order walk.
  {
    StageScope aggregateStage("pipeline.aggregate", "aggregate", result.telemetry);
    aggregateStage.items(result.clustering.numClusters);
    double allBurstTime = 0.0;
    for (const auto& b : result.bursts)
      allBurstTime += static_cast<double>(b.durationNs());

    auto memberBuckets = result.clustering.buckets();
    result.clusters.resize(result.clustering.numClusters);
    support::globalPool().parallelFor(
        result.clustering.numClusters, [&](std::size_t c) {
          ClusterReport& report = result.clusters[c];
          report.clusterId = static_cast<int>(c);
          report.memberIdx = std::move(memberBuckets[c]);
          report.instances = report.memberIdx.size();

          double durSum = 0.0;
          double ipcSum = 0.0;
          double mipsSum = 0.0;
          std::map<std::uint32_t, std::size_t> phaseHist;
          for (std::size_t i : report.memberIdx) {
            const auto& b = result.bursts[i];
            const auto delta = b.delta();
            durSum += static_cast<double>(b.durationNs());
            ipcSum += counters::DerivedMetrics::ipc(delta);
            mipsSum += counters::DerivedMetrics::mips(delta, b.durationNs());
            ++phaseHist[b.truthPhase];
          }
          if (report.instances > 0) {
            report.meanDurationNs = durSum / static_cast<double>(report.instances);
            report.avgIpc = ipcSum / static_cast<double>(report.instances);
            report.avgMips = mipsSum / static_cast<double>(report.instances);
            report.totalTimeFraction =
                allBurstTime > 0.0 ? durSum / allBurstTime : 0.0;
            std::size_t best = 0;
            for (const auto& [phase, count] : phaseHist) {
              if (count > best) {
                best = count;
                report.modalTruthPhase = phase;
              }
            }
          }
        });
  }

  // 5. Folding — two stages on the shared pool. Stage 1 folds each eligible
  //    cluster ONCE for all requested counters (one walk over the member
  //    samples instead of |counters| walks); stage 2 runs the independent
  //    per-(cluster, counter) prune/fit/reconstruct jobs over the folded
  //    clouds. Results go to pre-allocated slots and are merged in a fixed
  //    order, so the outcome is bit-identical to the sequential
  //    per-(cluster, counter) path.
  {
    support::ThreadPool& pool = support::globalPool();

    struct FoldJob {
      std::size_t clusterIdx;
      std::vector<folding::MultiFoldEntry> entries;
    };
    std::vector<FoldJob> foldJobs;
    for (std::size_t ci = 0; ci < result.clusters.size(); ++ci) {
      if (result.clusters[ci].instances < config.minClusterInstances) continue;
      foldJobs.push_back(FoldJob{ci, {}});
    }
    {
      StageScope stage("pipeline.fold", "fold", result.telemetry);
      stage.items(foldJobs.size());
      stage.span().attr("threads", std::min(pool.threads(), foldJobs.size()));
      // parallelFor re-parents worker spans under the fold stage span.
      pool.parallelFor(foldJobs.size(), [&](std::size_t j) {
        FoldJob& job = foldJobs[j];
        job.entries = folding::foldClusterMulti(
            trace, result.bursts, result.clusters[job.clusterIdx].memberIdx,
            config.rateCounters, config.reconstruct.fold);
      });
      telemetry::count("fold.clusters", foldJobs.size());
    }

    struct FitJob {
      std::size_t clusterIdx;
      counters::CounterId counter;
      folding::FoldedCounter* folded;  // owned by its FoldJob entry
      std::optional<folding::RateCurve> curve;
      std::string error;
    };
    std::vector<bool> anyFailure(result.clusters.size(), false);
    auto warnNotFolded = [&](std::size_t clusterIdx, counters::CounterId counter,
                             const std::string& error) {
      anyFailure[clusterIdx] = true;
      support::logWarn("pipeline: cluster " +
                       std::to_string(result.clusters[clusterIdx].clusterId) +
                       " counter " + std::string(counters::counterName(counter)) +
                       " not folded: " + error);
    };
    std::vector<FitJob> fitJobs;
    for (auto& fold : foldJobs) {
      for (auto& entry : fold.entries) {
        if (entry.folded) {
          fitJobs.push_back(
              FitJob{fold.clusterIdx, entry.counter, &*entry.folded,
                     std::nullopt, {}});
        } else {
          warnNotFolded(fold.clusterIdx, entry.counter, entry.error);
        }
      }
    }
    {
      StageScope stage("pipeline.fit", "fit", result.telemetry);
      stage.items(fitJobs.size());
      pool.parallelFor(fitJobs.size(), [&](std::size_t j) {
        FitJob& job = fitJobs[j];
        telemetry::Span span("fit.reconstruct");
        span.attr("cluster", result.clusters[job.clusterIdx].clusterId);
        span.attr("counter", counters::counterName(job.counter));
        span.attr("points", job.folded->points.size());
        try {
          job.curve = folding::reconstructFoldedRate(std::move(*job.folded),
                                                     config.reconstruct);
        } catch (const AnalysisError& e) {
          job.error = e.what();
        }
      });
      telemetry::count("fit.curves", fitJobs.size());
    }

    for (auto& job : fitJobs) {
      if (job.curve) {
        result.clusters[job.clusterIdx].rates.emplace(job.counter,
                                                      std::move(*job.curve));
      } else {
        warnNotFolded(job.clusterIdx, job.counter, job.error);
      }
    }
    for (std::size_t ci = 0; ci < result.clusters.size(); ++ci) {
      auto& report = result.clusters[ci];
      report.folded = !anyFailure[ci] && !report.rates.empty();
    }
  }

  rootSpan.attr("bursts", result.bursts.size());
  rootSpan.attr("clusters", result.clustering.numClusters);
  telemetry::count("cluster.clusters_found", result.clustering.numClusters);
  telemetry::count("cluster.noise_points", result.clustering.noiseCount());
  telemetry::count("cluster.merges_applied", result.refinementMerges);
  return result;
}

}  // namespace unveil::analysis
