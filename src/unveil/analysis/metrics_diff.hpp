#pragma once

/// \file metrics_diff.hpp
/// A/B comparison of two metrics-JSON dumps (`--metrics-out`): aligns the
/// two runs stage-by-stage and computes wall, CPU, peak-RSS, utilization
/// and counter deltas with a configurable noise threshold — the
/// one-command regression loop `unveil telemetry-diff A.json B.json`.
///
/// Regression semantics: a metric flags a regression when run B is worse
/// than run A by more than the category's threshold AND the baseline value
/// is above the category's noise floor (a 3x blowup of a 40 us span is
/// jitter, not a finding). Wall and CPU share one threshold; memory
/// metrics get a separate, looser one (allocator high-water marks are
/// inherently noisier). Work counters are reported but never gate — more
/// neighbor queries is a lead, not a verdict.

#include <cstdint>
#include <string>
#include <vector>

#include "unveil/support/table.hpp"

namespace unveil::analysis {

struct TelemetryDiffOptions {
  /// Relative worsening (percent) above which a wall/CPU delta counts as a
  /// regression.
  double thresholdPct = 10.0;
  /// Separate, looser threshold for memory metrics (peak RSS, per-stage
  /// high-water deltas).
  double memThresholdPct = 25.0;
  /// Spans whose baseline total is below this never flag (wall noise floor).
  std::int64_t minWallNs = 1'000'000;
  /// Memory metrics whose baseline is below this many bytes never flag.
  std::int64_t minMemBytes = 8 << 20;
};

/// One aligned metric: baseline value, candidate value, relative delta.
struct MetricDelta {
  std::string name;
  double a = 0.0;
  double b = 0.0;
  /// (b - a) / a * 100; 0 when a == 0 (delta shown via absolute values).
  double deltaPct = 0.0;
  bool regression = false;
};

struct TelemetryDiffReport {
  std::vector<MetricDelta> wall;      ///< Per-span-name total_ns (gating).
  std::vector<MetricDelta> cpu;       ///< stage.cpu_ns.* counters (gating).
  std::vector<MetricDelta> memory;    ///< Peak-RSS metrics (gating, looser).
  std::vector<MetricDelta> counters;  ///< Work counters (informational).
  std::vector<MetricDelta> sampler;   ///< Utilization/queue stats (informational).
  std::size_t regressions = 0;        ///< Total flagged rows across gating sets.
};

/// Loads two metrics-JSON files and diffs them. Throws support::Error (with
/// the offending path in "[file=...]") on unreadable or malformed input.
[[nodiscard]] TelemetryDiffReport diffMetricsFiles(
    const std::string& pathA, const std::string& pathB,
    const TelemetryDiffOptions& options = {});

/// Renders the report as one table: category, metric, A, B, delta %, flag.
[[nodiscard]] support::Table telemetryDiffTable(const TelemetryDiffReport& report);

}  // namespace unveil::analysis
