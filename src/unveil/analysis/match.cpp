#include "unveil/analysis/match.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "unveil/cluster/structure.hpp"

namespace unveil::analysis {

std::map<int, std::size_t> modalPeriodPositions(const PipelineResult& r) {
  std::map<int, std::map<std::size_t, std::size_t>> hist;
  const auto sequences = cluster::clusterSequences(r.bursts, r.clustering);
  const std::size_t period = r.period.period;
  if (period == 0) return {};
  for (const auto& seq : sequences) {
    for (std::size_t i = 0; i < seq.labels.size(); ++i) {
      if (seq.labels[i] < 0) continue;
      ++hist[seq.labels[i]][i % period];
    }
  }
  std::map<int, std::size_t> out;
  for (const auto& [label, positions] : hist) {
    std::size_t best = 0, bestCount = 0;
    for (const auto& [pos, count] : positions) {
      if (count > bestCount) {
        bestCount = count;
        best = pos;
      }
    }
    out[label] = best;
  }
  return out;
}

std::map<std::size_t, int> positionAssignment(
    const PipelineResult& r, const std::map<int, std::size_t>& positions) {
  std::map<std::size_t, int> byPosition;
  for (const auto& [label, pos] : positions) {
    auto it = byPosition.find(pos);
    if (it == byPosition.end() ||
        r.clusters[static_cast<std::size_t>(label)].instances >
            r.clusters[static_cast<std::size_t>(it->second)].instances) {
      byPosition[pos] = label;
    }
  }
  return byPosition;
}

namespace {

/// Per-cluster feature vector for the fallback matcher, z-scored within one
/// run so scale-dependent absolute levels (a sweep is 10x longer at 64
/// ranks) cancel and only the *relative* phase signature remains.
std::vector<std::array<double, 3>> normalizedSignatures(const PipelineResult& r) {
  const std::size_t n = r.clusters.size();
  std::vector<std::array<double, 3>> raw(n);
  for (std::size_t i = 0; i < n; ++i) {
    raw[i] = {std::log(std::max(1.0, r.clusters[i].meanDurationNs)),
              r.clusters[i].avgIpc, r.clusters[i].avgMips};
  }
  for (std::size_t f = 0; f < 3; ++f) {
    double mean = 0.0;
    for (const auto& v : raw) mean += v[f];
    if (n > 0) mean /= static_cast<double>(n);
    double var = 0.0;
    for (const auto& v : raw) var += (v[f] - mean) * (v[f] - mean);
    const double sd = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
    for (auto& v : raw) v[f] = sd > 0.0 ? (v[f] - mean) / sd : 0.0;
  }
  return raw;
}

double signatureDistance(const std::array<double, 3>& a,
                         const std::array<double, 3>& b) {
  double d = 0.0;
  for (std::size_t f = 0; f < 3; ++f) d += (a[f] - b[f]) * (a[f] - b[f]);
  return d;
}

/// Greedy feature-space fallback: the run with the most clusters anchors the
/// rows; every other run's clusters are assigned to the nearest unused
/// anchor in z-scored (log duration, IPC, MIPS) space, cheapest pairs first.
MatchResult matchByFeatures(std::span<const PipelineResult* const> runs) {
  MatchResult out;
  out.structureMatched = false;
  out.unmatched.resize(runs.size());

  std::size_t anchor = 0;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i]->clusters.size() > runs[anchor]->clusters.size()) anchor = i;
  }
  const auto anchorSig = normalizedSignatures(*runs[anchor]);
  const std::size_t rows = anchorSig.size();
  out.phases.resize(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    out.phases[row].position = row;
    out.phases[row].byStructure = false;
    out.phases[row].clusterIds.assign(runs.size(), -1);
    out.phases[row].clusterIds[anchor] = static_cast<int>(row);
  }

  for (std::size_t ri = 0; ri < runs.size(); ++ri) {
    if (ri == anchor) continue;
    const auto sig = normalizedSignatures(*runs[ri]);
    // All (row, cluster) pairs by ascending distance; ties by row then id so
    // the assignment is deterministic.
    struct Pair {
      double dist;
      std::size_t row;
      std::size_t cluster;
    };
    std::vector<Pair> pairs;
    pairs.reserve(rows * sig.size());
    for (std::size_t row = 0; row < rows; ++row)
      for (std::size_t c = 0; c < sig.size(); ++c)
        pairs.push_back({signatureDistance(anchorSig[row], sig[c]), row, c});
    std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
      if (a.dist != b.dist) return a.dist < b.dist;
      if (a.row != b.row) return a.row < b.row;
      return a.cluster < b.cluster;
    });
    std::vector<bool> rowUsed(rows, false), clusterUsed(sig.size(), false);
    for (const Pair& p : pairs) {
      if (rowUsed[p.row] || clusterUsed[p.cluster]) continue;
      rowUsed[p.row] = true;
      clusterUsed[p.cluster] = true;
      out.phases[p.row].clusterIds[ri] = static_cast<int>(p.cluster);
    }
    for (std::size_t c = 0; c < sig.size(); ++c)
      if (!clusterUsed[c]) out.unmatched[ri].push_back(static_cast<int>(c));
  }
  return out;
}

}  // namespace

MatchResult matchAcross(std::span<const PipelineResult* const> runs) {
  MatchResult out;
  out.unmatched.resize(runs.size());
  if (runs.empty()) return out;

  bool structural = runs[0]->period.period != 0;
  for (const auto* r : runs)
    structural = structural && r->period.period == runs[0]->period.period;
  if (!structural) return matchByFeatures(runs);

  out.structureMatched = true;
  std::vector<std::map<std::size_t, int>> byPosition(runs.size());
  std::set<std::size_t> allPositions;
  for (std::size_t ri = 0; ri < runs.size(); ++ri) {
    byPosition[ri] = positionAssignment(*runs[ri], modalPeriodPositions(*runs[ri]));
    for (const auto& [pos, id] : byPosition[ri]) {
      (void)id;
      allPositions.insert(pos);
    }
  }
  for (const std::size_t pos : allPositions) {
    MatchedPhase row;
    row.position = pos;
    row.byStructure = true;
    row.clusterIds.assign(runs.size(), -1);
    for (std::size_t ri = 0; ri < runs.size(); ++ri) {
      const auto it = byPosition[ri].find(pos);
      if (it != byPosition[ri].end()) row.clusterIds[ri] = it->second;
    }
    out.phases.push_back(std::move(row));
  }
  // Anything not placed in a row — contested-position losers — is reported,
  // never dropped on the floor.
  for (std::size_t ri = 0; ri < runs.size(); ++ri) {
    std::set<int> placed;
    for (const auto& row : out.phases)
      if (row.clusterIds[ri] >= 0) placed.insert(row.clusterIds[ri]);
    for (std::size_t c = 0; c < runs[ri]->clusters.size(); ++c)
      if (!placed.contains(static_cast<int>(c)))
        out.unmatched[ri].push_back(static_cast<int>(c));
  }
  return out;
}

}  // namespace unveil::analysis
