#pragma once

/// \file stages.hpp
/// Shared pipeline stage implementations, used by both analyze() (batch) and
/// analyzeStreaming() (analysis/streaming.hpp).
///
/// The streaming engine's bit-identity-with-batch contract rests on the two
/// entry points literally executing the same stage code on the same inputs:
/// once pass A of a streaming run has reassembled the full burst list (in
/// global rank order, exactly as batch extraction produces it), everything
/// downstream of extraction that needs only burst *metadata* — features,
/// clustering, structure, aggregates — runs through runModelStages() in both
/// modes, and the per-(cluster, counter) fitting runs through runFitStage().
/// Only burst extraction and fold accumulation have mode-specific drivers,
/// and those delegate their arithmetic to code proven order-identical
/// (cluster::BurstExtraction per rank, folding::MultiFoldAccumulator).

#include <chrono>
#include <cstdint>
#include <vector>

#include "unveil/analysis/pipeline.hpp"
#include "unveil/folding/folded.hpp"
#include "unveil/support/sampler.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::analysis::detail {

inline std::int64_t stageClockNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One pipeline stage: a telemetry span plus a StageStat row for
/// PipelineResult::telemetry. Everything is gated on the span being active
/// (i.e. a Session existing), so the disabled path never reads the clock.
///
/// Beyond wall time, the destructor records the stage's resource boundary
/// deltas: process CPU time (all threads — a stage at 4x wall CPU ran well
/// parallelized), RSS growth, and peak-RSS (VmHWM) growth, which is the
/// stage's contribution to the run's memory high-water mark. The deltas
/// also land in the metrics dump as "stage.*" counters/gauges so
/// telemetry-diff can compare them across runs.
class StageScope {
 public:
  StageScope(const char* spanName, const char* stageName,
             std::vector<telemetry::StageStat>& sink)
      : span_(spanName), stageName_(stageName), sink_(sink) {
    if (!span_.active()) return;
    startNs_ = stageClockNs();
    startCpuNs_ = support::processCpuNs();
    startMem_ = support::readMemoryStatus();
  }
  ~StageScope() {
    if (!span_.active()) return;
    const support::MemoryStatus endMem = support::readMemoryStatus();
    telemetry::StageStat stat;
    stat.name = stageName_;
    stat.wallNs = stageClockNs() - startNs_;
    stat.items = items_;
    stat.cpuNs = support::processCpuNs() - startCpuNs_;
    stat.rssDeltaBytes = static_cast<std::int64_t>(endMem.rssBytes) -
                         static_cast<std::int64_t>(startMem_.rssBytes);
    stat.hwmDeltaBytes = static_cast<std::int64_t>(endMem.hwmBytes) -
                         static_cast<std::int64_t>(startMem_.hwmBytes);
    telemetry::count("stage.cpu_ns." + stat.name,
                     static_cast<std::uint64_t>(std::max<std::int64_t>(0, stat.cpuNs)));
    telemetry::gauge("stage.rss_delta_kb." + stat.name,
                     static_cast<double>(stat.rssDeltaBytes) / 1024.0);
    telemetry::gauge("stage.hwm_delta_kb." + stat.name,
                     static_cast<double>(stat.hwmDeltaBytes) / 1024.0);
    sink_.push_back(std::move(stat));
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  void items(std::uint64_t n) noexcept { items_ = n; }
  telemetry::Span& span() noexcept { return span_; }

 private:
  telemetry::Span span_;
  const char* stageName_;
  std::vector<telemetry::StageStat>& sink_;
  std::int64_t startNs_ = 0;
  std::int64_t startCpuNs_ = 0;
  support::MemoryStatus startMem_;
  std::uint64_t items_ = 0;
};

/// Stages 2–4: features + normalization, clustering, structure detection +
/// refinement, per-cluster aggregates. Consumes result.bursts (which must
/// already be populated in canonical global order) and fills clustering,
/// epsUsed, sample stats, period, refinementMerges and clusters (including
/// memberIdx). Needs only burst metadata — never touches trace samples.
void runModelStages(const PipelineConfig& config, PipelineResult& result);

/// The folded clouds of one eligible cluster, ready for fitting.
struct ClusterFoldEntries {
  std::size_t clusterIdx = 0;  ///< Index into result.clusters.
  std::vector<folding::MultiFoldEntry> entries;
};

/// Stage 5b: prune/fit/reconstruct every folded (cluster, counter) cloud in
/// parallel and fill ClusterReport::rates / ::folded, warning per failed
/// counter exactly like the batch pipeline always has.
void runFitStage(std::vector<ClusterFoldEntries> folds,
                 const PipelineConfig& config, PipelineResult& result);

}  // namespace unveil::analysis::detail
