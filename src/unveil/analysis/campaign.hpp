#pragma once

/// \file campaign.hpp
/// N-trace fleet analysis: one scaling campaign (4/16/64/256 ranks, or any
/// other scale parameter) analyzed in a single run, with per-phase scaling
/// models fitted over the parameter.
///
/// The paper's contribution is seeing *inside* a phase of one run; the next
/// question an analyst asks is "which phase will dominate at a scale I have
/// not run yet?". In the spirit of Extra-P's compositional models, every
/// trace of the campaign is pushed through the standard pipeline, clusters
/// are matched across all N traces by iteration-structure position
/// (analysis/match.hpp — the diffrun matcher generalized from 2 to N, with
/// a greedy feature-space fallback and explicit unmatched reporting), and
/// each matched phase gets log-log least-squares models over the parameter
/// for duration, MIPS, IPC and absolute phase time, drawn from the family
///
///     y(p) = c * p^a * log2(p)^b        (b in {0, 1}, a free)
///
/// The best family member is chosen by adjusted R^2 with a leave-one-out
/// cross-validation guard so 3-4 measured points cannot be overfitted.
/// Phase-time models compose into a projected time-share at any unseen p —
/// "phase 2 grows ~p^1.4 and will dominate at p=4096".
///
/// Per-trace analyses run as ThreadPool tasks with per-trace fault
/// isolation: a corrupt member degrades that one series point (mirroring
/// the per-shard degradation policy of trace reads) instead of failing the
/// campaign. Output is byte-identical for any thread count.

#include <iosfwd>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "unveil/analysis/match.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/support/table.hpp"
#include "unveil/trace/binary_io.hpp"

namespace unveil::analysis {

/// One fitted scaling model y(p) = c * p^a * log2(p)^b.
struct ScalingModel {
  double c = 0.0;      ///< Coefficient (always > 0; fits run in log space).
  double a = 0.0;      ///< Power exponent (0 in the constant/log families).
  int b = 0;           ///< log2 exponent: 0 or 1.
  double adjR2 = 0.0;  ///< Adjusted R^2 in log space.
  /// Leave-one-out mean absolute prediction error in log space — the
  /// cross-validation guard's metric.
  double looError = 0.0;
  bool valid = false;

  /// Predicted value at \p p (p >= 1).
  [[nodiscard]] double eval(double p) const;
  /// Human-readable form, e.g. "1.41e+06 * ranks^1.40 * log2(ranks)".
  [[nodiscard]] std::string text(const std::string& paramName) const;
};

/// Fits the model family to (p, y) by log-log least squares. Requires at
/// least 3 points with at least 3 distinct positive p values and strictly
/// positive y values; throws AnalysisError naming \p context and the
/// offending value otherwise (degenerate inputs must fail loudly, never
/// produce NaN models).
[[nodiscard]] ScalingModel fitScalingModel(std::span<const double> p,
                                           std::span<const double> y,
                                           const std::string& context);

/// One campaign input: a trace path, optionally annotated with its scale
/// parameter value (otherwise inferred from the trace's rank count when the
/// campaign parameter is "ranks").
struct CampaignMemberSpec {
  std::string path;
  std::optional<double> param;
};

/// Campaign configuration.
struct CampaignOptions {
  PipelineConfig pipeline;
  trace::ReadOptions read;
  /// Stream UVTB2 members through the bounded-memory engine (non-streamable
  /// formats fall back to the batch reader per member).
  bool stream = false;
  /// Name of the scale parameter ("ranks" enables inference from the trace
  /// header; any other name requires explicit path=value annotations).
  std::string paramName = "ranks";
  /// Parameter values to project per-phase time shares at. When empty, one
  /// projection at 4x the largest measured parameter is added.
  std::vector<double> projectAt;
};

/// Per-trace outcome. A member that failed to analyze stays in the list
/// with ok == false and the error text — degraded, never silently dropped.
struct CampaignMember {
  std::string path;
  double param = 0.0;
  bool ok = false;
  std::string error;
  trace::Rank numRanks = 0;
  std::size_t droppedShards = 0;
  std::size_t totalShards = 0;
  /// Sum of all burst durations — the absolute base of time-share models.
  double totalBurstTimeNs = 0.0;
  PipelineResult result;
};

/// One metric's series and fitted model across the campaign.
struct MetricSeries {
  std::vector<double> params;  ///< p values where the phase was present.
  std::vector<double> values;  ///< Metric at each of those p.
  ScalingModel model;          ///< Invalid when fitError is nonempty.
  std::string fitError;        ///< Why no model could be fitted.
};

/// One matched phase's scaling behavior.
struct PhaseScaling {
  /// Iteration-structure position (or anchor cluster id in fallback mode).
  std::size_t position = 0;
  bool byStructure = true;
  /// Per-ok-member cluster id (-1 where the phase was not found), aligned
  /// with the ok members of CampaignResult::members in param order.
  std::vector<int> clusterIds;
  MetricSeries durationNs;   ///< Mean instance duration.
  MetricSeries mips;         ///< Average MIPS.
  MetricSeries ipc;          ///< Average IPC.
  MetricSeries phaseTimeNs;  ///< Absolute phase time (share x total burst time).
  /// Observed time-share (percent) per present member.
  std::vector<double> sharePercent;
  /// Internal-evolution distance (mean abs diff of the normalized TOT_INS
  /// fold curve, percent) between consecutive present members; -1 when a
  /// side lacks a comparable curve.
  std::vector<double> evolutionDistancePercent;
  /// Projected time-share (percent) at each CampaignResult::projectAt value
  /// (via the phase-time models of all modelled phases); -1 when this
  /// phase has no valid phase-time model.
  std::vector<double> projectedSharePercent;
};

/// Everything a campaign produced.
struct CampaignResult {
  std::string paramName;
  std::vector<CampaignMember> members;  ///< Sorted by (param, path).
  bool structureMatched = false;
  /// Phases ranked by projected share at the last projection point,
  /// descending (unmodelled phases last, by observed share).
  std::vector<PhaseScaling> phases;
  /// Per-ok-member unmatched cluster ids (aligned with ok members).
  std::vector<std::vector<int>> unmatched;
  std::vector<double> projectAt;
  std::vector<std::string> warnings;
};

/// Runs the full campaign: per-trace pipeline (parallel, fault-isolated),
/// N-way matching, model fitting, projection and ranking. Throws
/// ConfigError on fewer than 3 specs or missing required annotations, and
/// AnalysisError when fewer than 3 members survive analysis.
[[nodiscard]] CampaignResult runCampaign(
    const std::vector<CampaignMemberSpec>& specs, const CampaignOptions& options);

/// Matching + fitting + ranking over already-analyzed members (params must
/// be set; ok members need results). Exposed separately so the modeling
/// layer is testable without trace files; runCampaign delegates to it.
[[nodiscard]] CampaignResult buildCampaign(std::vector<CampaignMember> members,
                                           const CampaignOptions& options);

/// The ranked per-phase table of the text report.
[[nodiscard]] support::Table campaignTable(const CampaignResult& campaign);

/// Full human-readable report (warnings, member roster, table, headline
/// projection lines, unmatched clusters).
void printCampaignReport(const CampaignResult& campaign, std::ostream& out);

/// Machine-readable campaign JSON.
void writeCampaignJson(const CampaignResult& campaign, std::ostream& out);

/// Extra-P text interchange format (PARAMETER/POINTS/METRIC/REGION/DATA) so
/// campaign measurements load into external modeling tooling. Phases absent
/// at any measured point are listed as comments (the format has no notion
/// of missing measurements), never silently dropped.
void writeExtrapText(const CampaignResult& campaign, std::ostream& out);

}  // namespace unveil::analysis
