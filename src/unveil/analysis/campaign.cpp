#include "unveil/analysis/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

#include "unveil/analysis/streaming.hpp"
#include "unveil/folding/accuracy.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"
#include "unveil/trace/shard_stream.hpp"

namespace unveil::analysis {

namespace {

/// Shortest round-trippable-enough decimal form, shared by the report, the
/// JSON and the Extra-P writer so every output agrees on the same bytes.
std::string fmtG(double v, int precision = 6) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

}  // namespace

double ScalingModel::eval(double p) const {
  double v = c * std::pow(p, a);
  if (b != 0) v *= std::pow(std::log2(p), b);
  return v;
}

std::string ScalingModel::text(const std::string& paramName) const {
  if (!valid) return "(no model)";
  std::ostringstream os;
  os << fmtG(c, 4);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", a);
  // An exponent that rounds to 0.00 would render as a misleading
  // "p^0.00"/"p^-0.00" factor; the JSON carries the exact value.
  if (std::string_view(buf) != "0.00" && std::string_view(buf) != "-0.00")
    os << " * " << paramName << '^' << buf;
  if (b != 0) os << " * log2(" << paramName << ')';
  return os.str();
}

namespace {

/// One family member's closed-form log-space least-squares fit.
struct Candidate {
  bool aFree = false;
  int b = 0;
  double intercept = 0.0;
  double slope = 0.0;
  double adjR2 = 0.0;
  double loo = 0.0;
  bool feasible = false;
};

/// Fits z ~ intercept (+ slope * u) on the index subset where skip != i.
/// Returns false when the subset cannot identify the parameters.
bool fitSubset(std::span<const double> u, std::span<const double> t, bool aFree,
               std::size_t skip, double& intercept, double& slope) {
  double su = 0.0, st = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i == skip) continue;
    su += u[i];
    st += t[i];
    ++n;
  }
  if (n == 0) return false;
  const double mu = su / static_cast<double>(n);
  const double mt = st / static_cast<double>(n);
  if (!aFree) {
    intercept = mt;
    slope = 0.0;
    return true;
  }
  double suu = 0.0, sut = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i == skip) continue;
    suu += (u[i] - mu) * (u[i] - mu);
    sut += (u[i] - mu) * (t[i] - mt);
  }
  if (suu <= 0.0) return false;
  slope = sut / suu;
  intercept = mt - slope * mu;
  return true;
}

}  // namespace

ScalingModel fitScalingModel(std::span<const double> p, std::span<const double> y,
                             const std::string& context) {
  const std::size_t n = p.size();
  if (y.size() != n)
    throw AnalysisError(context + ": scale and value series have different lengths (" +
                        std::to_string(n) + " vs " + std::to_string(y.size()) + ")");
  if (n < 3)
    throw AnalysisError(context + ": scaling-model fit needs at least 3 scale points, got " +
                        std::to_string(n));
  std::set<double> distinct(p.begin(), p.end());
  if (distinct.size() < 3)
    throw AnalysisError(context + ": scaling-model fit needs at least 3 distinct scale values, got " +
                        std::to_string(distinct.size()) +
                        (distinct.size() == 1 ? " (zero-variance scale series)" : ""));
  for (std::size_t i = 0; i < n; ++i) {
    if (!(p[i] > 0.0) || !std::isfinite(p[i]))
      throw AnalysisError(context + ": non-positive scale value " + fmtG(p[i]) +
                          " at point " + std::to_string(i) +
                          " (log-log fit needs positive scales)");
    if (!(y[i] > 0.0) || !std::isfinite(y[i]))
      throw AnalysisError(context + ": non-positive value " + fmtG(y[i]) +
                          " at scale " + fmtG(p[i]) +
                          " (log-log fit needs a positive series)");
  }

  std::vector<double> u(n), z(n), w(n, 0.0);
  bool logFamilyFeasible = true;
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = std::log(p[i]);
    z[i] = std::log(y[i]);
    if (p[i] > 1.0) w[i] = std::log(std::log2(p[i]));
    else logFamilyFeasible = false;  // log2(p) <= 0: the log family is undefined
  }

  double zMean = 0.0;
  for (const double v : z) zMean += v;
  zMean /= static_cast<double>(n);
  double sst = 0.0;
  for (const double v : z) sst += (v - zMean) * (v - zMean);

  ScalingModel out;
  if (sst < 1e-20) {
    // Zero-variance values: the constant model is exact; nothing to select.
    out.c = std::exp(zMean);
    out.adjR2 = 1.0;
    out.valid = true;
    return out;
  }

  // Family members in increasing complexity: a more complex model must beat
  // the incumbent's adjusted R^2 AND not predict held-out points worse (the
  // leave-one-out guard) — 3-4 measurements are trivially overfitted
  // otherwise.
  const std::array<std::pair<bool, int>, 4> family = {
      {{false, 0}, {false, 1}, {true, 0}, {true, 1}}};
  std::vector<Candidate> fits;
  for (const auto& [aFree, b] : family) {
    if (b != 0 && !logFamilyFeasible) continue;
    Candidate cand;
    cand.aFree = aFree;
    cand.b = b;
    std::vector<double> t(n);
    for (std::size_t i = 0; i < n; ++i)
      t[i] = z[i] - static_cast<double>(b) * w[i];
    if (!fitSubset(u, t, aFree, n /* skip nothing */, cand.intercept, cand.slope))
      continue;
    double sse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double pred = cand.intercept + cand.slope * u[i] +
                          static_cast<double>(b) * w[i];
      sse += (z[i] - pred) * (z[i] - pred);
    }
    const double r2 = 1.0 - sse / sst;
    const std::size_t k = aFree ? 1 : 0;
    if (n < k + 2) continue;  // adjusted R^2 undefined
    cand.adjR2 = 1.0 - (1.0 - r2) * static_cast<double>(n - 1) /
                           static_cast<double>(n - 1 - k);
    double looSum = 0.0;
    bool looOk = true;
    for (std::size_t i = 0; i < n && looOk; ++i) {
      double intercept = 0.0, slope = 0.0;
      if (!fitSubset(u, t, aFree, i, intercept, slope)) {
        looOk = false;
        break;
      }
      const double pred = intercept + slope * u[i] + static_cast<double>(b) * w[i];
      looSum += std::abs(pred - z[i]);
    }
    if (!looOk) continue;
    cand.loo = looSum / static_cast<double>(n);
    cand.feasible = true;
    fits.push_back(cand);
  }
  if (fits.empty() || fits.front().aFree || fits.front().b != 0)
    throw AnalysisError(context + ": scaling-model fit found no feasible model");

  Candidate best = fits.front();
  for (std::size_t i = 1; i < fits.size(); ++i) {
    const Candidate& cand = fits[i];
    if (cand.adjR2 > best.adjR2 + 1e-12 && cand.loo <= best.loo * 1.05 + 1e-12)
      best = cand;
  }
  out.c = std::exp(best.intercept);
  out.a = best.aFree ? best.slope : 0.0;
  out.b = best.b;
  out.adjR2 = best.adjR2;
  out.looError = best.loo;
  out.valid = true;
  return out;
}

namespace {

/// Analyzes one member with per-trace fault isolation: any recoverable
/// error degrades this one series point instead of failing the campaign.
void analyzeMember(const CampaignMemberSpec& spec, const CampaignOptions& options,
                   CampaignMember& member) {
  member.path = spec.path;
  try {
    if (options.stream && trace::isShardStreamable(spec.path)) {
      StreamingConfig streamConfig;
      streamConfig.pipeline = options.pipeline;
      streamConfig.read = options.read;
      auto streamed = analyzeStreaming(spec.path, streamConfig);
      member.numRanks = streamed.numRanks;
      member.droppedShards = streamed.report.droppedShards.size();
      member.totalShards = streamed.report.totalRanks;
      member.result = std::move(streamed.result);
    } else {
      trace::ReadReport report;
      const trace::Trace t = trace::readAutoFile(spec.path, options.read, &report);
      member.numRanks = t.numRanks();
      member.droppedShards = report.droppedShards.size();
      member.totalShards = report.totalRanks;
      member.result = analyze(t, options.pipeline);
    }
    member.ok = true;
  } catch (const Error& e) {
    member.ok = false;
    member.error = e.what();
  } catch (const std::exception& e) {
    member.ok = false;
    member.error = e.what();
  }
}

/// Fits one metric's model, capturing the error text instead of throwing so
/// a degenerate series (too few points, zeros) degrades that one model.
void fitMetric(MetricSeries& series, const std::string& context) {
  if (series.params.empty()) {
    series.fitError = context + ": phase present in no analyzable member";
    return;
  }
  try {
    series.model = fitScalingModel(series.params, series.values, context);
  } catch (const Error& e) {
    series.fitError = e.what();
  }
}

std::string phaseContext(const PhaseScaling& ph, const std::string& metric) {
  return "phase at position " + std::to_string(ph.position) + ", " + metric;
}

}  // namespace

CampaignResult buildCampaign(std::vector<CampaignMember> members,
                             const CampaignOptions& options) {
  std::sort(members.begin(), members.end(),
            [](const CampaignMember& x, const CampaignMember& y) {
              if (x.param != y.param) return x.param < y.param;
              return x.path < y.path;
            });

  CampaignResult out;
  out.paramName = options.paramName;

  std::vector<const CampaignMember*> okMembers;
  for (auto& m : members) {
    if (!m.ok) {
      out.warnings.push_back("member " + m.path + " degraded and excluded: " + m.error);
      continue;
    }
    // Absolute time base of the share models, derived from the member's own
    // burst list so streamed and batch members agree.
    m.totalBurstTimeNs = 0.0;
    for (const auto& b : m.result.bursts)
      m.totalBurstTimeNs += static_cast<double>(b.durationNs());
    if (m.droppedShards > 0) {
      out.warnings.push_back("member " + m.path + " analyzed " +
                             std::to_string(m.totalShards - m.droppedShards) +
                             " of " + std::to_string(m.totalShards) +
                             " shards (corrupt shards dropped)");
    }
    okMembers.push_back(&m);
  }
  if (okMembers.size() < 3) {
    std::string detail;
    for (const auto& w : out.warnings) detail += "\n  " + w;
    throw AnalysisError(
        "campaign needs at least 3 analyzable members to fit scaling models, got " +
        std::to_string(okMembers.size()) + " of " + std::to_string(members.size()) +
        detail);
  }

  double maxParam = 0.0;
  for (const auto* m : okMembers) maxParam = std::max(maxParam, m->param);
  out.projectAt = options.projectAt;
  if (out.projectAt.empty()) out.projectAt.push_back(4.0 * maxParam);

  std::vector<const PipelineResult*> runs;
  runs.reserve(okMembers.size());
  for (const auto* m : okMembers) runs.push_back(&m->result);
  const MatchResult match = matchAcross(runs);
  out.structureMatched = match.structureMatched;
  out.unmatched = match.unmatched;
  if (!match.structureMatched && okMembers.size() > 1) {
    out.warnings.push_back(
        "iteration periods differ across members; clusters matched by "
        "feature-space similarity, not structure");
  }

  for (const MatchedPhase& row : match.phases) {
    PhaseScaling ph;
    ph.position = row.position;
    ph.byStructure = row.byStructure;
    ph.clusterIds = row.clusterIds;
    // Rate curves of the previous present member, for evolution distances.
    const folding::RateCurve* prevCurve = nullptr;
    for (std::size_t mi = 0; mi < okMembers.size(); ++mi) {
      const int id = row.clusterIds[mi];
      if (id < 0) continue;
      const CampaignMember& m = *okMembers[mi];
      const ClusterReport& c = m.result.clusters[static_cast<std::size_t>(id)];
      ph.durationNs.params.push_back(m.param);
      ph.durationNs.values.push_back(c.meanDurationNs);
      ph.mips.params.push_back(m.param);
      ph.mips.values.push_back(c.avgMips);
      ph.ipc.params.push_back(m.param);
      ph.ipc.values.push_back(c.avgIpc);
      ph.phaseTimeNs.params.push_back(m.param);
      ph.phaseTimeNs.values.push_back(c.totalTimeFraction * m.totalBurstTimeNs);
      ph.sharePercent.push_back(c.totalTimeFraction * 100.0);

      const auto rate = c.rates.find(counters::CounterId::TotIns);
      const folding::RateCurve* curve =
          rate != c.rates.end() ? &rate->second : nullptr;
      if (ph.durationNs.params.size() > 1) {
        double dist = -1.0;
        if (prevCurve && curve &&
            prevCurve->normRate.size() == curve->normRate.size() &&
            !curve->normRate.empty()) {
          dist = folding::meanAbsDiffPercent(curve->normRate, prevCurve->normRate);
        }
        ph.evolutionDistancePercent.push_back(dist);
      }
      prevCurve = curve;
    }
    fitMetric(ph.durationNs, phaseContext(ph, "duration_ns"));
    fitMetric(ph.mips, phaseContext(ph, "mips"));
    fitMetric(ph.ipc, phaseContext(ph, "ipc"));
    fitMetric(ph.phaseTimeNs, phaseContext(ph, "phase_time_ns"));
    out.phases.push_back(std::move(ph));
  }

  // Projected shares: the phase-time models composed over all modelled
  // phases — T_i(p) / sum_j T_j(p), the Extra-P-style answer to "who
  // dominates at p you have not run".
  for (const double p : out.projectAt) {
    double total = 0.0;
    for (const auto& ph : out.phases)
      if (ph.phaseTimeNs.model.valid) total += ph.phaseTimeNs.model.eval(p);
    for (auto& ph : out.phases) {
      double share = -1.0;
      if (ph.phaseTimeNs.model.valid && total > 0.0)
        share = ph.phaseTimeNs.model.eval(p) / total * 100.0;
      ph.projectedSharePercent.push_back(share);
    }
  }

  std::sort(out.phases.begin(), out.phases.end(),
            [](const PhaseScaling& x, const PhaseScaling& y) {
              const double px = x.projectedSharePercent.empty()
                                    ? -1.0
                                    : x.projectedSharePercent.back();
              const double py = y.projectedSharePercent.empty()
                                    ? -1.0
                                    : y.projectedSharePercent.back();
              if (px != py) return px > py;
              const double sx = x.sharePercent.empty() ? -1.0 : x.sharePercent.back();
              const double sy = y.sharePercent.empty() ? -1.0 : y.sharePercent.back();
              if (sx != sy) return sx > sy;
              return x.position < y.position;
            });

  out.members = std::move(members);
  telemetry::count("campaign.phases", out.phases.size());
  return out;
}

CampaignResult runCampaign(const std::vector<CampaignMemberSpec>& specs,
                           const CampaignOptions& options) {
  if (specs.size() < 3)
    throw ConfigError("campaign requires at least 3 traces, got " +
                      std::to_string(specs.size()));
  if (options.paramName != "ranks") {
    for (const auto& spec : specs) {
      if (!spec.param) {
        throw ConfigError("member '" + spec.path + "' needs a '" + spec.path +
                          "=VALUE' annotation: parameter '" + options.paramName +
                          "' cannot be inferred from the trace header");
      }
    }
  }

  telemetry::Span span("campaign.analyze");
  std::vector<CampaignMember> members(specs.size());
  auto& pool = support::globalPool();
  std::vector<std::future<void>> pending;
  pending.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    pending.push_back(pool.submit(
        [&specs, &options, &members, i] { analyzeMember(specs[i], options, members[i]); }));
  }
  for (auto& f : pending) f.get();

  std::size_t failed = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    members[i].param = specs[i].param
                           ? *specs[i].param
                           : static_cast<double>(members[i].numRanks);
    if (!members[i].ok) ++failed;
  }
  telemetry::count("campaign.members", specs.size());
  if (failed > 0) telemetry::count("campaign.members_failed", failed);

  return buildCampaign(std::move(members), options);
}

namespace {

std::string joinClusterIds(const std::vector<int>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += '/';
    out += ids[i] >= 0 ? std::to_string(ids[i]) : std::string("-");
  }
  return out;
}

std::string modelCell(const MetricSeries& series, const std::string& paramName) {
  return series.model.valid ? series.model.text(paramName) : "(no model)";
}

}  // namespace

support::Table campaignTable(const CampaignResult& campaign) {
  const double pMax =
      campaign.projectAt.empty() ? 0.0 : campaign.projectAt.back();
  support::Table t({"phase", "clusters", "share (%)",
                    "duration model", "adj R^2",
                    "MIPS model", "IPC model",
                    "proj share @ " + campaign.paramName + "=" + fmtG(pMax) + " (%)"});
  for (const auto& ph : campaign.phases) {
    const double share = ph.sharePercent.empty() ? -1.0 : ph.sharePercent.back();
    const double proj =
        ph.projectedSharePercent.empty() ? -1.0 : ph.projectedSharePercent.back();
    t.addRow({(ph.byStructure ? "pos " : "grp ") + std::to_string(ph.position),
              joinClusterIds(ph.clusterIds), share,
              modelCell(ph.durationNs, campaign.paramName),
              ph.durationNs.model.valid ? ph.durationNs.model.adjR2 : -1.0,
              modelCell(ph.mips, campaign.paramName),
              modelCell(ph.ipc, campaign.paramName), proj});
  }
  return t;
}

void printCampaignReport(const CampaignResult& campaign, std::ostream& out) {
  for (const auto& w : campaign.warnings) out << "warning: " << w << '\n';

  out << "campaign over " << campaign.paramName << ": " << campaign.members.size()
      << " member" << (campaign.members.size() == 1 ? "" : "s") << '\n';
  for (const auto& m : campaign.members) {
    out << "  " << campaign.paramName << '=' << fmtG(m.param) << "  " << m.path;
    if (!m.ok) {
      out << "  DEGRADED: " << m.error;
    } else {
      out << " (" << m.numRanks << " rank" << (m.numRanks == 1 ? "" : "s");
      if (m.droppedShards > 0)
        out << ", " << m.droppedShards << " shard"
            << (m.droppedShards == 1 ? "" : "s") << " dropped";
      out << ')';
    }
    out << '\n';
  }

  campaignTable(campaign).print(
      out, "per-phase scaling models (ranked by projected share at " +
               campaign.paramName + "=" +
               fmtG(campaign.projectAt.empty() ? 0.0 : campaign.projectAt.back()) +
               ")");

  // Headline lines: what each phase's duration does with scale, and where
  // the time goes at the projection point.
  for (const auto& ph : campaign.phases) {
    out << "phase " << (ph.byStructure ? "pos " : "grp ") << ph.position << ": ";
    if (ph.durationNs.model.valid) {
      const ScalingModel& m = ph.durationNs.model;
      out << "duration ~ " << m.text(campaign.paramName) << " (adj R^2 "
          << fmtG(m.adjR2, 4) << ")";
    } else {
      out << "duration model unavailable (" << ph.durationNs.fitError << ")";
    }
    if (!ph.projectedSharePercent.empty() && ph.projectedSharePercent.back() >= 0.0) {
      out << "; projected share " << fmtG(ph.projectedSharePercent.back(), 4)
          << "% at " << campaign.paramName << '=' << fmtG(campaign.projectAt.back());
      if (!ph.sharePercent.empty())
        out << " (" << fmtG(ph.sharePercent.back(), 4) << "% at "
            << campaign.paramName << '=' << fmtG(ph.durationNs.params.back()) << ")";
    }
    double maxEvol = -1.0;
    for (const double d : ph.evolutionDistancePercent) maxEvol = std::max(maxEvol, d);
    if (maxEvol >= 0.0)
      out << "; max internal-evolution distance " << fmtG(maxEvol, 4) << "%";
    out << '\n';
  }

  // Unmatched clusters: reported per member, never silently dropped.
  std::size_t okIdx = 0;
  for (const auto& m : campaign.members) {
    if (!m.ok) continue;
    if (okIdx < campaign.unmatched.size() && !campaign.unmatched[okIdx].empty()) {
      out << "unmatched in " << m.path << " (" << campaign.paramName << '='
          << fmtG(m.param) << "):";
      for (const int id : campaign.unmatched[okIdx]) out << " cluster " << id;
      out << '\n';
    }
    ++okIdx;
  }
}

namespace {

void writeModelJson(const MetricSeries& series, std::ostream& out,
                    const std::string& paramName) {
  out << "{\"params\": [";
  for (std::size_t i = 0; i < series.params.size(); ++i)
    out << (i ? ", " : "") << fmtG(series.params[i], 9);
  out << "], \"values\": [";
  for (std::size_t i = 0; i < series.values.size(); ++i)
    out << (i ? ", " : "") << fmtG(series.values[i], 9);
  out << "]";
  if (series.model.valid) {
    const ScalingModel& m = series.model;
    out << ", \"model\": {\"c\": " << fmtG(m.c, 9) << ", \"a\": " << fmtG(m.a, 9)
        << ", \"b\": " << m.b << ", \"adj_r2\": " << fmtG(m.adjR2, 9)
        << ", \"loo_error\": " << fmtG(m.looError, 9) << ", \"text\": \""
        << telemetry::escapeJson(m.text(paramName)) << "\"}";
  } else {
    out << ", \"error\": \"" << telemetry::escapeJson(series.fitError) << "\"";
  }
  out << "}";
}

}  // namespace

void writeCampaignJson(const CampaignResult& campaign, std::ostream& out) {
  out << "{\n  \"param\": \"" << telemetry::escapeJson(campaign.paramName)
      << "\",\n  \"structure_matched\": "
      << (campaign.structureMatched ? "true" : "false") << ",\n  \"traces\": "
      << campaign.members.size() << ",\n  \"project_at\": [";
  for (std::size_t i = 0; i < campaign.projectAt.size(); ++i)
    out << (i ? ", " : "") << fmtG(campaign.projectAt[i], 9);
  out << "],\n  \"members\": [";
  for (std::size_t i = 0; i < campaign.members.size(); ++i) {
    const CampaignMember& m = campaign.members[i];
    out << (i ? "," : "") << "\n    {\"path\": \"" << telemetry::escapeJson(m.path)
        << "\", \"param\": " << fmtG(m.param, 9) << ", \"ok\": "
        << (m.ok ? "true" : "false") << ", \"ranks\": " << m.numRanks
        << ", \"dropped_shards\": " << m.droppedShards;
    if (!m.ok)
      out << ", \"error\": \"" << telemetry::escapeJson(m.error) << "\"";
    out << "}";
  }
  out << "\n  ],\n  \"phases\": [";
  for (std::size_t i = 0; i < campaign.phases.size(); ++i) {
    const PhaseScaling& ph = campaign.phases[i];
    out << (i ? "," : "") << "\n    {\"rank\": " << i << ", \"position\": "
        << ph.position << ", \"by_structure\": "
        << (ph.byStructure ? "true" : "false") << ", \"clusters\": [";
    for (std::size_t j = 0; j < ph.clusterIds.size(); ++j)
      out << (j ? ", " : "") << ph.clusterIds[j];
    out << "], \"share_percent\": [";
    for (std::size_t j = 0; j < ph.sharePercent.size(); ++j)
      out << (j ? ", " : "") << fmtG(ph.sharePercent[j], 9);
    out << "], \"projected_share_percent\": [";
    for (std::size_t j = 0; j < ph.projectedSharePercent.size(); ++j)
      out << (j ? ", " : "") << fmtG(ph.projectedSharePercent[j], 9);
    out << "], \"evolution_distance_percent\": [";
    for (std::size_t j = 0; j < ph.evolutionDistancePercent.size(); ++j)
      out << (j ? ", " : "") << fmtG(ph.evolutionDistancePercent[j], 9);
    out << "],\n     \"duration_ns\": ";
    writeModelJson(ph.durationNs, out, campaign.paramName);
    out << ",\n     \"mips\": ";
    writeModelJson(ph.mips, out, campaign.paramName);
    out << ",\n     \"ipc\": ";
    writeModelJson(ph.ipc, out, campaign.paramName);
    out << ",\n     \"phase_time_ns\": ";
    writeModelJson(ph.phaseTimeNs, out, campaign.paramName);
    out << "}";
  }
  out << "\n  ],\n  \"unmatched\": [";
  for (std::size_t i = 0; i < campaign.unmatched.size(); ++i) {
    out << (i ? ", " : "") << "[";
    for (std::size_t j = 0; j < campaign.unmatched[i].size(); ++j)
      out << (j ? ", " : "") << campaign.unmatched[i][j];
    out << "]";
  }
  out << "],\n  \"warnings\": [";
  for (std::size_t i = 0; i < campaign.warnings.size(); ++i)
    out << (i ? ", " : "") << "\"" << telemetry::escapeJson(campaign.warnings[i])
        << "\"";
  out << "]\n}\n";
}

void writeExtrapText(const CampaignResult& campaign, std::ostream& out) {
  // The classic Extra-P text input: one PARAMETER, the measured POINTS, and
  // per METRIC/REGION one DATA line per point. The format cannot express a
  // missing measurement, so phases absent at any point are declared in
  // comments instead of being silently dropped.
  std::vector<const CampaignMember*> ok;
  for (const auto& m : campaign.members)
    if (m.ok) ok.push_back(&m);

  out << "# Extra-P text interchange written by `unveil campaign`\n";
  out << "PARAMETER " << campaign.paramName << "\n\n";
  out << "POINTS";
  for (const auto* m : ok) out << ' ' << fmtG(m->param, 9);
  out << "\n";

  const std::array<std::pair<const char*, const MetricSeries PhaseScaling::*>, 4>
      metrics = {{{"duration_ns", &PhaseScaling::durationNs},
                  {"mips", &PhaseScaling::mips},
                  {"ipc", &PhaseScaling::ipc},
                  {"phase_time_ns", &PhaseScaling::phaseTimeNs}}};
  for (const auto& [name, member] : metrics) {
    out << "\nMETRIC " << name << "\n";
    for (const auto& ph : campaign.phases) {
      const MetricSeries& series = ph.*member;
      const std::string region =
          std::string(ph.byStructure ? "phase_pos" : "phase_grp") +
          std::to_string(ph.position);
      if (series.params.size() != ok.size()) {
        out << "# REGION " << region << " omitted: present at "
            << series.params.size() << " of " << ok.size() << " points\n";
        continue;
      }
      out << "REGION " << region << "\n";
      for (const double v : series.values) out << "DATA " << fmtG(v, 9) << "\n";
    }
  }
}

}  // namespace unveil::analysis
