#include "unveil/analysis/summary.hpp"

#include <ostream>

#include "unveil/analysis/report.hpp"
#include "unveil/cluster/structure.hpp"
#include "unveil/support/error.hpp"

namespace unveil::analysis {

PerformanceReport buildReport(const trace::Trace& trace, const ReportOptions& options) {
  PerformanceReport report;
  report.pipeline = analyze(trace, options.pipeline);

  if (options.includeImbalance)
    report.imbalance = imbalanceAnalysis(report.pipeline, trace.numRanks());
  if (options.includeEvolution)
    report.evolution = durationEvolution(report.pipeline);
  if (options.includeRegions) {
    for (const auto& c : report.pipeline.clusters) {
      if (!c.folded) continue;
      folding::RegionParams params;
      params.fold = options.pipeline.reconstruct.fold;
      try {
        report.regions.emplace(
            c.clusterId, folding::regionProfile(trace, report.pipeline.bursts,
                                                c.memberIdx, params));
      } catch (const AnalysisError&) {
        // No callstack samples in this cluster; nothing to report.
      }
    }
  }
  try {
    report.spectral = detectSpectralPeriod(trace, 0);
  } catch (const AnalysisError&) {
    // No state intervals (instrumentation without states): leave zero.
  }
  report.spmdness = cluster::spmdScore(report.pipeline.bursts,
                                       report.pipeline.clustering, trace.numRanks());
  RepresentativeParams rp;
  rp.iterations = options.representativeIterations;
  report.representative = representativeWindow(report.pipeline, rp);
  return report;
}

void printReport(const PerformanceReport& report, const trace::Trace& trace,
                 std::ostream& os) {
  os << "================ unveil performance report ================\n";
  os << "application: " << trace.appName() << ", " << trace.numRanks()
     << " ranks, " << static_cast<double>(trace.durationNs()) / 1e9 << " s\n\n";

  clusterSummaryTable(report.pipeline).print(os, "computation phases");

  os << "\nstructure: " << report.pipeline.period.period
     << " bursts/iteration (self-similarity "
     << report.pipeline.period.matchFraction * 100.0 << "%)";
  if (report.spectral.periodNs > 0.0)
    os << ", iteration time " << report.spectral.periodNs / 1e6
       << " ms (spectral, r=" << report.spectral.correlation << ")";
  os << "\nSPMD-ness: " << report.spmdness << '\n';

  if (!report.imbalance.empty()) {
    os << '\n';
    imbalanceTable(report.imbalance).print(os, "load balance");
  }
  if (!report.evolution.empty()) {
    os << '\n';
    evolutionTable(report.evolution).print(os, "cross-run evolution");
  }
  if (!report.regions.empty()) {
    os << "\n== code-region structure (folded callstacks) ==\n";
    for (const auto& [clusterId, profile] : report.regions) {
      os << "cluster " << clusterId << ": ";
      for (std::size_t i = 0; i < profile.segments.size(); ++i) {
        const auto& seg = profile.segments[i];
        os << (i ? " -> " : "") << "region#" << seg.regionId << " [" << seg.begin
           << ", " << seg.end << ")";
      }
      os << '\n';
    }
  }
  if (report.representative) {
    os << "\nrepresentative window: ["
       << static_cast<double>(report.representative->begin) / 1e6 << " ms, "
       << static_cast<double>(report.representative->end) / 1e6 << " ms] ("
       << report.representative->iterationsCovered
       << " iterations, anchor rank " << report.representative->anchorRank
       << ")\n";
  }
  os << "===========================================================\n";
}

}  // namespace unveil::analysis
