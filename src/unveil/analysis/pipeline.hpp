#pragma once

/// \file pipeline.hpp
/// The end-to-end analysis pipeline — the paper's automated methodology as
/// one call: trace → burst extraction → clustering → per-cluster folding →
/// instantaneous-rate reconstruction → structure detection.
///
/// This is the primary public API of the library. Examples and benches are
/// thin wrappers around analyze().
///
/// Parallelism: every parallel stage (extraction, features, clustering
/// precompute, aggregation, fold, fit) runs on support::globalPool(); size
/// it with support::setGlobalThreads() / the CLI --threads flag / the
/// UNVEIL_THREADS env var. Results are bit-identical for any thread count
/// (per-slot outputs merged in canonical index order — see DESIGN.md
/// "Threading model").

#include <map>
#include <vector>

#include "unveil/cluster/burst.hpp"
#include "unveil/cluster/dbscan.hpp"
#include "unveil/cluster/features.hpp"
#include "unveil/cluster/refine.hpp"
#include "unveil/cluster/sample.hpp"
#include "unveil/cluster/structure.hpp"
#include "unveil/folding/rate.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::analysis {

/// How the clustering stage runs.
enum class ClusterMode {
  /// Exact below sampledClusteringThreshold bursts, sampled at or above it.
  Auto,
  /// Always exact grid DBSCAN over every burst.
  Exact,
  /// Always stratified-sampled DBSCAN (exact on the sample, eps-neighborhood
  /// classification for the rest) — see cluster/sample.hpp.
  Sampled,
};

/// Pipeline configuration with sensible defaults for the bundled apps.
struct PipelineConfig {
  /// Burst extraction settings.
  cluster::BurstExtraction extraction;
  /// Use MPI-gap extraction (paper-faithful, no phase probes needed) instead
  /// of phase-event extraction.
  bool useMpiGaps = false;
  /// Clustering feature space.
  std::vector<cluster::FeatureId> features = cluster::defaultFeatures();
  /// DBSCAN parameters; eps is replaced by estimateEps() when autoEps.
  cluster::DbscanParams dbscan{};
  bool autoEps = true;
  /// Quantile fed to estimateEps when autoEps.
  double epsQuantile = 0.94;
  /// Clustering-stage strategy (see ClusterMode).
  ClusterMode clusterMode = ClusterMode::Auto;
  /// Sample selection for sampled clustering.
  cluster::StratifiedSampleParams clusterSample{};
  /// Burst count at which ClusterMode::Auto switches to sampled clustering.
  std::size_t sampledClusteringThreshold = 100000;
  /// Folding/fitting options.
  folding::ReconstructOptions reconstruct;
  /// Counters to reconstruct per cluster.
  std::vector<counters::CounterId> rateCounters = {counters::CounterId::TotIns,
                                                   counters::CounterId::L2Dcm};
  /// Clusters with fewer instances than this are reported but not folded.
  std::size_t minClusterInstances = 30;
  /// Merge DBSCAN fragments that are structurally one phase (same iteration
  /// position, never co-occurring) — see cluster::refineByStructure.
  bool refineFragments = true;
  cluster::RefineParams refine{};
};

/// Per-cluster findings.
struct ClusterReport {
  int clusterId = 0;
  std::vector<std::size_t> memberIdx;  ///< Indices into PipelineResult::bursts.
  std::size_t instances = 0;
  double meanDurationNs = 0.0;
  double totalTimeFraction = 0.0;  ///< Share of all-burst time in this cluster.
  double avgIpc = 0.0;
  double avgMips = 0.0;
  /// Modal ground-truth phase (evaluation only; kNoPhase when unknown).
  std::uint32_t modalTruthPhase = cluster::kNoPhase;
  /// Reconstructed instantaneous rates per requested counter; empty when
  /// the cluster was too small to fold.
  std::map<counters::CounterId, folding::RateCurve> rates;
  bool folded = false;
};

/// Everything the pipeline produced.
struct PipelineResult {
  std::vector<cluster::Burst> bursts;
  cluster::Clustering clustering;
  double epsUsed = 0.0;
  /// Sampled-clustering telemetry: bursts clustered exactly (the stratified
  /// sample) and bursts labeled by classification. Both 0 in exact mode.
  std::size_t clusterSampleSize = 0;
  std::size_t clusterClassified = 0;
  std::vector<ClusterReport> clusters;  ///< Ordered by cluster id.
  /// Structure detected by majority vote over rank sequences.
  cluster::PeriodResult period;
  /// Fragment merges applied by structural refinement (0 when disabled).
  std::size_t refinementMerges = 0;
  /// Per-stage wall time and work counts, populated when a
  /// telemetry::Session is active during analyze(); empty otherwise (the
  /// disabled path must stay zero-overhead). Stage names: extract,
  /// features, cluster, structure, aggregate, fold, fit.
  std::vector<telemetry::StageStat> telemetry;
};

/// Runs the full methodology on a finalized trace.
/// Throws AnalysisError when the trace contains no usable bursts.
[[nodiscard]] PipelineResult analyze(const trace::Trace& trace,
                                     const PipelineConfig& config = {});

}  // namespace unveil::analysis
