#pragma once

/// \file experiments.hpp
/// Shared drivers for the benchmark harness: standard application
/// parameters, measured-run helpers and the accuracy computation used by
/// T1/F4/F5 so every bench reports numbers computed the same way.

#include <string>
#include <vector>

#include "unveil/analysis/pipeline.hpp"
#include "unveil/folding/accuracy.hpp"
#include "unveil/sim/apps/apps.hpp"
#include "unveil/sim/engine.hpp"

namespace unveil::analysis {

/// Standard experiment scale (chosen so every bench finishes in seconds
/// while keeping thousands of burst instances per application).
[[nodiscard]] sim::apps::AppParams standardParams(std::uint64_t seed = 1);

/// Runs \p appName at \p params under \p measurement with the default
/// network model.
[[nodiscard]] sim::RunResult runMeasured(const std::string& appName,
                                         const sim::apps::AppParams& params,
                                         const sim::MeasurementConfig& measurement);

/// Pipeline configuration whose folding compensates the measurement's own
/// calibrated intrusion (probe and per-sample costs), the way production
/// tools subtract their known overheads.
[[nodiscard]] PipelineConfig calibratedPipelineConfig(
    const sim::MeasurementConfig& measurement);

/// Empirical-reference parameters with the same intrusion compensation.
[[nodiscard]] folding::EmpiricalRateParams calibratedEmpiricalParams(
    const sim::MeasurementConfig& measurement);

/// Accuracy of one cluster's folding reconstruction for one counter.
struct ClusterAccuracy {
  int clusterId = 0;
  std::uint32_t truthPhase = cluster::kNoPhase;
  std::string phaseName;             ///< Ground-truth phase label.
  double vsTruthPercent = 0.0;       ///< Mean abs diff vs analytic truth.
  double vsFinePercent = 0.0;        ///< Mean abs diff vs fine-grain reference.
  std::size_t instances = 0;
  std::size_t foldedPoints = 0;
};

/// Computes folding accuracy for every folded cluster of \p coarse (the
/// folding run) using \p fine (the fine-grain-sampled run of the *same*
/// application and seed) for the empirical reference, and the application's
/// phase models for the exact reference. Clusters whose modal truth phase
/// cannot be determined are skipped. \p fineMeasurement describes the fine
/// run's measurement setup so its intrusion can be compensated.
[[nodiscard]] std::vector<ClusterAccuracy> foldingAccuracy(
    const sim::RunResult& coarse, const sim::RunResult& fine,
    const PipelineResult& coarseAnalysis, counters::CounterId counter,
    const sim::MeasurementConfig& fineMeasurement = sim::MeasurementConfig::fineGrain());

}  // namespace unveil::analysis
