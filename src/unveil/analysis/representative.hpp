#pragma once

/// \file representative.hpp
/// Representative-region selection — the workflow of the group's ICPADS 2011
/// follow-up ("Trace Spectral Analysis toward Dynamic Levels of Detail"):
/// once the iteration structure is known, full-detail analysis only needs a
/// few *representative* iterations; the rest of the trace can be kept at
/// coarse detail or dropped.
///
/// The selector picks, on the structurally cleanest rank, a run of
/// consecutive iterations (after a warm-up skip) whose cluster-label
/// signature matches the application's modal signature exactly, and returns
/// its time window — ready to feed trace::sliceTime.

#include <optional>

#include "unveil/analysis/pipeline.hpp"

namespace unveil::analysis {

/// Selection parameters.
struct RepresentativeParams {
  /// Iterations the window should cover.
  std::size_t iterations = 10;
  /// Fraction of each rank's burst sequence skipped as warm-up.
  double skipFraction = 0.1;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// A selected representative region.
struct RepresentativeWindow {
  trace::TimeNs begin = 0;
  trace::TimeNs end = 0;
  std::size_t iterationsCovered = 0;
  trace::Rank anchorRank = 0;  ///< Rank whose sequence anchored the choice.
};

/// Selects a representative window from an analyzed trace. Returns
/// std::nullopt when no period was detected or no matching run of
/// iterations exists (highly irregular execution).
[[nodiscard]] std::optional<RepresentativeWindow> representativeWindow(
    const PipelineResult& result, const RepresentativeParams& params = {});

}  // namespace unveil::analysis
