#pragma once

/// \file evolution.hpp
/// Cross-run evolution of cluster metrics — the complement of folding.
///
/// Folding answers "what happens *inside* one instance of a phase";
/// this module answers "how does the phase change *across* the run": is the
/// duration drifting (slowly growing working set, fragmentation), is the
/// IPC degrading, did a step change occur? For each cluster it builds the
/// per-instance metric series ordered by time and fits a robust linear
/// trend; the relative slope over the run plus the fit quality classify the
/// cluster as stable, drifting, or irregular.

#include <span>
#include <string_view>
#include <vector>

#include "unveil/analysis/pipeline.hpp"
#include "unveil/support/table.hpp"

namespace unveil::analysis {

/// Trend classification of a cluster metric across the run.
enum class TrendKind : std::uint8_t {
  Stable = 0,   ///< No significant change across the run.
  Drifting,     ///< Significant monotone linear trend.
  Irregular,    ///< Significant variation not explained by a line.
};

/// Name of a TrendKind ("stable"/"drifting"/"irregular").
[[nodiscard]] std::string_view trendKindName(TrendKind k) noexcept;

/// Per-cluster evolution findings for one metric.
struct ClusterEvolution {
  int clusterId = 0;
  std::uint32_t modalTruthPhase = cluster::kNoPhase;
  std::size_t instances = 0;
  /// Relative change of the metric across the run implied by the linear
  /// trend: (end − start) / start. +0.08 = grew 8 %.
  double relativeDrift = 0.0;
  /// Coefficient of determination of the linear fit, in [0, 1].
  double r2 = 0.0;
  /// Slope t statistic (signed).
  double tScore = 0.0;
  /// Residual coefficient of variation (spread not explained by the trend).
  double residualCov = 0.0;
  TrendKind kind = TrendKind::Stable;
};

/// Evolution-analysis parameters.
struct EvolutionParams {
  /// |relativeDrift| below this counts as stable.
  double driftThreshold = 0.03;
  /// Minimum |t statistic| of the slope for a drift to count. R² is the
  /// wrong gate here: with strong static rank imbalance the cross-rank
  /// variance dwarfs the trend (low R²) while thousands of instances make
  /// even a small slope statistically unambiguous (huge t).
  double minTScore = 3.5;
  /// Residual CV above this marks the cluster irregular even without trend.
  double irregularCov = 0.15;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Analyzes the evolution of per-instance mean duration for every cluster.
[[nodiscard]] std::vector<ClusterEvolution> durationEvolution(
    const PipelineResult& result, const EvolutionParams& params = {});

/// Renders the analysis as a printable table.
[[nodiscard]] support::Table evolutionTable(const std::vector<ClusterEvolution>& rows);

/// Robust linear fit y = a + b·x via least squares; returns {a, b, r2}.
/// Exposed for testing. Throws AnalysisError for fewer than 3 points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
  double slopeStdError = 0.0;  ///< 0 when degenerate.

  /// Slope t statistic; 0 when the standard error is degenerate.
  [[nodiscard]] double tScore() const noexcept {
    return slopeStdError > 0.0 ? slope / slopeStdError : 0.0;
  }
};
[[nodiscard]] LinearFit fitLine(std::span<const double> x, std::span<const double> y);

}  // namespace unveil::analysis
