#pragma once

/// \file report.hpp
/// Turns pipeline results into the tables and figure series the paper
/// reports (and the bench binaries print).

#include "unveil/analysis/pipeline.hpp"
#include "unveil/support/series.hpp"
#include "unveil/support/table.hpp"

namespace unveil::analysis {

/// Cluster summary: one row per cluster (id, instances, mean duration, time
/// share, IPC, MIPS, modal ground-truth phase).
[[nodiscard]] support::Table clusterSummaryTable(const PipelineResult& result);

/// Burst scatter in a 2-feature space, one series per cluster plus noise —
/// the canonical clustering figure (F1).
[[nodiscard]] support::SeriesSet scatterSeries(const PipelineResult& result,
                                               cluster::FeatureId x,
                                               cluster::FeatureId y,
                                               const std::string& figureName);

/// Reconstructed instantaneous-rate curves of one counter for every folded
/// cluster (F3/F6). Rates in physical units per microsecond (MIPS for
/// TOT_INS).
[[nodiscard]] support::SeriesSet rateSeries(const PipelineResult& result,
                                            counters::CounterId counter,
                                            const std::string& figureName);

/// Per-rank cluster timeline as series: x = burst start (ms), y = cluster id
/// (F2). Limited to \p maxRanks ranks to keep figures readable.
[[nodiscard]] support::SeriesSet timelineSeries(const PipelineResult& result,
                                                const std::string& figureName,
                                                std::size_t maxRanks = 4);

}  // namespace unveil::analysis
