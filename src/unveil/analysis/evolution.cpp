#include "unveil/analysis/evolution.hpp"

#include <algorithm>
#include <cmath>

#include "unveil/support/error.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::analysis {

std::string_view trendKindName(TrendKind k) noexcept {
  switch (k) {
    case TrendKind::Stable: return "stable";
    case TrendKind::Drifting: return "drifting";
    case TrendKind::Irregular: return "irregular";
  }
  return "?";
}

void EvolutionParams::validate() const {
  if (driftThreshold < 0.0) throw ConfigError("evolution driftThreshold must be >= 0");
  if (minTScore <= 0.0) throw ConfigError("evolution minTScore must be > 0");
  if (irregularCov <= 0.0) throw ConfigError("evolution irregularCov must be > 0");
}

LinearFit fitLine(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 3)
    throw AnalysisError("fitLine requires >= 3 paired points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;  // vertical stack of x: flat line, r2 = 0
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double meanY = sy / n;
  const double meanX = sx / n;
  double ssTot = 0.0, ssRes = 0.0, sxxCentered = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ssTot += (y[i] - meanY) * (y[i] - meanY);
    ssRes += (y[i] - pred) * (y[i] - pred);
    sxxCentered += (x[i] - meanX) * (x[i] - meanX);
  }
  fit.r2 = ssTot > 0.0 ? std::max(0.0, 1.0 - ssRes / ssTot) : 0.0;
  if (x.size() > 2 && sxxCentered > 0.0 && ssRes > 0.0) {
    fit.slopeStdError =
        std::sqrt(ssRes / (n - 2.0) / sxxCentered);
  }
  return fit;
}

std::vector<ClusterEvolution> durationEvolution(const PipelineResult& result,
                                                const EvolutionParams& params) {
  params.validate();
  std::vector<ClusterEvolution> out;
  for (const auto& report : result.clusters) {
    ClusterEvolution row;
    row.clusterId = report.clusterId;
    row.modalTruthPhase = report.modalTruthPhase;
    row.instances = report.instances;
    if (report.instances < 3) {
      out.push_back(row);
      continue;
    }

    // Per-instance duration over normalized run position.
    std::vector<std::pair<trace::TimeNs, double>> points;
    points.reserve(report.memberIdx.size());
    for (std::size_t i : report.memberIdx) {
      const auto& b = result.bursts[i];
      points.emplace_back(b.begin, static_cast<double>(b.durationNs()));
    }
    std::sort(points.begin(), points.end());
    const double t0 = static_cast<double>(points.front().first);
    const double t1 = static_cast<double>(points.back().first);
    const double span = std::max(t1 - t0, 1.0);
    std::vector<double> xs, ys;
    xs.reserve(points.size());
    ys.reserve(points.size());
    for (const auto& [t, d] : points) {
      xs.push_back((static_cast<double>(t) - t0) / span);
      ys.push_back(d);
    }

    const LinearFit fit = fitLine(xs, ys);
    const double start = fit.intercept;
    const double end = fit.intercept + fit.slope;
    row.relativeDrift = start != 0.0 ? (end - start) / start : 0.0;
    row.r2 = fit.r2;
    row.tScore = fit.tScore();

    support::RunningStats residuals;
    for (std::size_t i = 0; i < xs.size(); ++i)
      residuals.add(ys[i] - (fit.intercept + fit.slope * xs[i]));
    const double meanDuration = support::mean(ys);
    row.residualCov =
        meanDuration > 0.0 ? residuals.stddev() / meanDuration : 0.0;

    if (std::abs(row.relativeDrift) >= params.driftThreshold &&
        std::abs(row.tScore) >= params.minTScore) {
      row.kind = TrendKind::Drifting;
    } else if (row.residualCov >= params.irregularCov) {
      row.kind = TrendKind::Irregular;
    } else {
      row.kind = TrendKind::Stable;
    }
    out.push_back(row);
  }
  return out;
}

support::Table evolutionTable(const std::vector<ClusterEvolution>& rows) {
  support::Table t({"cluster", "phase", "instances", "drift over run (%)",
                    "t score", "residual CV", "trend"});
  for (const auto& r : rows) {
    t.addRow({static_cast<long long>(r.clusterId),
              r.modalTruthPhase == cluster::kNoPhase
                  ? support::Cell{std::string("-")}
                  : support::Cell{static_cast<long long>(r.modalTruthPhase)},
              static_cast<long long>(r.instances), r.relativeDrift * 100.0,
              r.tScore, r.residualCov, std::string(trendKindName(r.kind))});
  }
  return t;
}

}  // namespace unveil::analysis
