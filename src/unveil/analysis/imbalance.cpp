#include "unveil/analysis/imbalance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "unveil/support/stats.hpp"

namespace unveil::analysis {

std::vector<ClusterImbalance> imbalanceAnalysis(const PipelineResult& result,
                                                trace::Rank numRanks) {
  std::vector<ClusterImbalance> out;
  for (const auto& report : result.clusters) {
    ClusterImbalance row;
    row.clusterId = report.clusterId;
    row.modalTruthPhase = report.modalTruthPhase;
    row.timeShare = report.totalTimeFraction;

    // Group instance durations by rank, in time order (extraction order).
    std::map<trace::Rank, std::vector<double>> byRank;
    for (std::size_t i : report.memberIdx) {
      const auto& b = result.bursts[i];
      byRank[b.rank].push_back(static_cast<double>(b.durationNs()));
    }
    if (byRank.size() < 2) {
      out.push_back(row);
      continue;
    }

    // Persistent imbalance: CV of per-rank means.
    support::RunningStats rankMeans;
    std::size_t minInstances = std::numeric_limits<std::size_t>::max();
    for (const auto& [rank, durations] : byRank) {
      (void)rank;
      support::RunningStats s;
      for (double d : durations) s.add(d);
      rankMeans.add(s.mean());
      minInstances = std::min(minInstances, durations.size());
    }
    row.durationCovAcrossRanks =
        rankMeans.mean() > 0.0 ? rankMeans.stddev() / rankMeans.mean() : 0.0;

    // Per-iteration imbalance factor: k-th instance across ranks.
    row.iterationsMeasured = minInstances;
    if (minInstances > 0 && byRank.size() == numRanks) {
      support::RunningStats factor;
      for (std::size_t k = 0; k < minInstances; ++k) {
        double maxD = 0.0, sum = 0.0;
        for (const auto& [rank, durations] : byRank) {
          (void)rank;
          maxD = std::max(maxD, durations[k]);
          sum += durations[k];
        }
        const double mean = sum / static_cast<double>(byRank.size());
        if (mean > 0.0) factor.add(maxD / mean);
      }
      row.imbalanceFactor = factor.count() > 0 ? factor.mean() : 1.0;
    } else {
      // Not every rank runs this cluster: fall back to the persistent metric
      // view (the factor over per-rank means).
      double maxMean = 0.0;
      support::RunningStats means;
      for (const auto& [rank, durations] : byRank) {
        (void)rank;
        support::RunningStats s;
        for (double d : durations) s.add(d);
        maxMean = std::max(maxMean, s.mean());
        means.add(s.mean());
      }
      row.imbalanceFactor = means.mean() > 0.0 ? maxMean / means.mean() : 1.0;
    }
    row.transferPotential =
        std::max(row.imbalanceFactor - 1.0, 0.0) / row.imbalanceFactor *
        row.timeShare;
    out.push_back(row);
  }
  return out;
}

support::Table imbalanceTable(const std::vector<ClusterImbalance>& rows) {
  support::Table t({"cluster", "phase", "iterations", "imbalance factor",
                    "persistent CV", "time share (%)", "transfer potential (%)"});
  for (const auto& r : rows) {
    t.addRow({static_cast<long long>(r.clusterId),
              r.modalTruthPhase == cluster::kNoPhase
                  ? support::Cell{std::string("-")}
                  : support::Cell{static_cast<long long>(r.modalTruthPhase)},
              static_cast<long long>(r.iterationsMeasured), r.imbalanceFactor,
              r.durationCovAcrossRanks, r.timeShare * 100.0,
              r.transferPotential * 100.0});
  }
  return t;
}

}  // namespace unveil::analysis
