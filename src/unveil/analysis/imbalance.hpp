#pragma once

/// \file imbalance.hpp
/// Load-balance characterization of clustered bursts — the companion
/// analysis of the same group's "Detailed Load Balance Analysis of Large
/// Scale Parallel Applications" (Huck & Labarta, ICPP 2010). Once bursts are
/// clustered, imbalance is a per-cluster property: how unevenly the
/// instances of one phase are distributed across ranks in time.
///
/// Metrics per cluster:
///  - imbalanceFactor: mean over iterations of max/mean rank duration — the
///    classic LB metric; 1.0 is perfect balance, the excess is the fraction
///    of parallel time wasted waiting for the slowest rank.
///  - durationCovAcrossRanks: coefficient of variation of per-rank mean
///    durations — separates *persistent* imbalance (decomposition inequity)
///    from per-iteration jitter.
///  - transferPotential: runtime fraction the application would save if this
///    cluster were perfectly balanced (excess × cluster time share).

#include <vector>

#include "unveil/analysis/pipeline.hpp"
#include "unveil/support/table.hpp"

namespace unveil::analysis {

/// Per-cluster imbalance findings.
struct ClusterImbalance {
  int clusterId = 0;
  std::uint32_t modalTruthPhase = cluster::kNoPhase;
  double imbalanceFactor = 1.0;        ///< mean_iter(max_rank / mean_rank).
  double durationCovAcrossRanks = 0.0; ///< CV of per-rank mean durations.
  double timeShare = 0.0;              ///< Cluster share of all burst time.
  double transferPotential = 0.0;      ///< Achievable runtime saving fraction.
  std::size_t iterationsMeasured = 0;
};

/// Computes imbalance per cluster of \p result. Iterations are identified by
/// each rank's k-th instance of the cluster (valid for SPMD codes, which is
/// what clustering-based LB analysis assumes). Clusters whose instance
/// counts differ wildly across ranks are reported with iterationsMeasured =
/// min instances per rank.
[[nodiscard]] std::vector<ClusterImbalance> imbalanceAnalysis(
    const PipelineResult& result, trace::Rank numRanks);

/// Renders the analysis as a printable table.
[[nodiscard]] support::Table imbalanceTable(const std::vector<ClusterImbalance>& rows);

}  // namespace unveil::analysis
