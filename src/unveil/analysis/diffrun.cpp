#include "unveil/analysis/diffrun.hpp"

#include <algorithm>
#include <map>

#include "unveil/analysis/match.hpp"
#include "unveil/folding/accuracy.hpp"
#include "unveil/support/error.hpp"

namespace unveil::analysis {

namespace {

double percentDelta(double a, double b) {
  return a != 0.0 ? (b - a) / a * 100.0 : 0.0;
}

}  // namespace

RunDiff diffRuns(const PipelineResult& a, const PipelineResult& b) {
  RunDiff diff;
  diff.periodsMatch =
      a.period.period != 0 && a.period.period == b.period.period;

  std::map<std::size_t, int> posA, posB;
  if (diff.periodsMatch) {
    // Shared with the N-trace campaign matcher (analysis/match.hpp).
    posA = positionAssignment(a, modalPeriodPositions(a));
    posB = positionAssignment(b, modalPeriodPositions(b));
  } else {
    // Fallback: pair by cluster id.
    for (std::size_t c = 0; c < a.clustering.numClusters; ++c)
      posA[c] = static_cast<int>(c);
    for (std::size_t c = 0; c < b.clustering.numClusters; ++c)
      posB[c] = static_cast<int>(c);
  }

  std::map<int, bool> usedB;
  for (const auto& [pos, idA] : posA) {
    const auto itB = posB.find(pos);
    if (itB == posB.end()) {
      diff.unmatchedA.push_back(idA);
      continue;
    }
    const auto& ca = a.clusters[static_cast<std::size_t>(idA)];
    const auto& cb = b.clusters[static_cast<std::size_t>(itB->second)];
    usedB[itB->second] = true;

    ClusterDelta row;
    row.clusterA = idA;
    row.clusterB = itB->second;
    row.periodPosition = pos;
    row.durationDeltaPercent = percentDelta(ca.meanDurationNs, cb.meanDurationNs);
    row.mipsDeltaPercent = percentDelta(ca.avgMips, cb.avgMips);
    row.ipcDeltaPercent = percentDelta(ca.avgIpc, cb.avgIpc);
    row.timeShareA = ca.totalTimeFraction;
    row.timeShareB = cb.totalTimeFraction;
    const auto ra = ca.rates.find(counters::CounterId::TotIns);
    const auto rb = cb.rates.find(counters::CounterId::TotIns);
    if (ra != ca.rates.end() && rb != cb.rates.end() &&
        ra->second.normRate.size() == rb->second.normRate.size()) {
      row.profileDistancePercent =
          folding::meanAbsDiffPercent(rb->second.normRate, ra->second.normRate);
    }
    diff.clusters.push_back(row);
  }
  for (const auto& [pos, idB] : posB) {
    (void)pos;
    if (!usedB.contains(idB)) diff.unmatchedB.push_back(idB);
  }
  std::sort(diff.clusters.begin(), diff.clusters.end(),
            [](const ClusterDelta& x, const ClusterDelta& y) {
              return x.periodPosition < y.periodPosition;
            });
  return diff;
}

support::Table diffTable(const RunDiff& diff) {
  support::Table t({"position", "cluster A", "cluster B", "duration delta (%)",
                    "MIPS delta (%)", "IPC delta (%)", "profile distance (%)",
                    "time share A->B (%)"});
  for (const auto& row : diff.clusters) {
    char share[48];
    std::snprintf(share, sizeof(share), "%.1f -> %.1f", row.timeShareA * 100.0,
                  row.timeShareB * 100.0);
    t.addRow({static_cast<long long>(row.periodPosition),
              static_cast<long long>(row.clusterA),
              static_cast<long long>(row.clusterB), row.durationDeltaPercent,
              row.mipsDeltaPercent, row.ipcDeltaPercent,
              row.profileDistancePercent, std::string(share)});
  }
  return t;
}

}  // namespace unveil::analysis
