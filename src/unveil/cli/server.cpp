#include "unveil/cli/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "unveil/cli/commands.hpp"
#include "unveil/cli/sockio.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/faulty_stream.hpp"
#include "unveil/support/flight_recorder.hpp"
#include "unveil/support/json.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"
#include "unveil/trace/shard_stream.hpp"

namespace unveil::cli {

namespace {

/// A request line (and a response) may not exceed this; analyze outputs are
/// tables in the KBs, so 8 MiB is generous while still bounding a hostile
/// or broken peer.
constexpr std::size_t kMaxLineBytes = 8u << 20;

/// Socket I/O timeout for one request/response exchange on the server side.
/// A peer that connects and never sends a full line must not pin a pool
/// task forever and stall shutdown drain.
constexpr int kServerIoTimeoutSec = 30;

std::string errnoString() { return std::strerror(errno); }

/// RAII fd.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

sockaddr_un socketAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw ConfigError("socket path too long (" + std::to_string(path.size()) +
                      " bytes, max " + std::to_string(sizeof(addr.sun_path) - 1) +
                      ") [socket=" + path + "]");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Shared mutable state of one serve run. Handlers run on pool workers; the
/// accept loop runs on the caller thread; counters are atomics and the
/// drain handshake goes through the mutex+cv.
struct ServerState {
  std::atomic<std::uint64_t> requestsTotal{0};
  std::atomic<std::uint64_t> requestsFailed{0};
  std::atomic<std::uint64_t> requestsActive{0};
  std::atomic<bool> draining{false};
  int wakeFd = -1;  ///< Write end of the self-pipe; also used by "shutdown".

  std::mutex mutex;
  std::condition_variable drained;
  std::size_t pending = 0;  ///< Connections accepted but not yet finished.

  void beginConnection() {
    std::lock_guard<std::mutex> lock(mutex);
    ++pending;
  }
  void endConnection() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      --pending;
    }
    drained.notify_all();
  }
  void wake() const {
    const char b = 1;
    (void)!::write(wakeFd, &b, 1);
  }
};

/// Self-pipe write end for the signal handler (async-signal-safe: write()
/// only). Only one serve loop runs per process at a time; tests that start
/// a second one do so after the first returned and restored this.
std::atomic<int> gSignalWakeFd{-1};

void onServeSignal(int) {
  const int fd = gSignalWakeFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 1;
    (void)!::write(fd, &b, 1);
  }
}

std::string responseLine(const std::string& id, int exitCode,
                         const std::string& output) {
  return "{\"id\":\"" + telemetry::escapeJson(id) + "\",\"status\":\"" +
         (exitCode == 0 ? "ok" : "error") +
         "\",\"exit\":" + std::to_string(exitCode) + ",\"output\":\"" +
         telemetry::escapeJson(output) + "\"}\n";
}

std::string healthJson(const ServerState& state) {
  const auto pool = support::globalPoolHealth();
  const auto& recorder = support::FlightRecorder::instance();
  std::ostringstream os;
  os << "{\"requests_total\":" << state.requestsTotal.load()
     << ",\"requests_active\":" << state.requestsActive.load()
     << ",\"requests_failed\":" << state.requestsFailed.load()
     << ",\"pool_threads\":" << pool.threads
     << ",\"pool_busy\":" << pool.busyWorkers
     << ",\"pool_executed\":" << pool.executed
     << ",\"flightrec_events\":" << recorder.recorded()
     << ",\"telemetry\":" << (telemetry::Session::active() ? "true" : "false")
     << "}\n";
  return os.str();
}

/// Runs one analyze request. The flag vector is re-parsed through the very
/// Args/runAnalyze path the CLI uses, so output bytes match a batch
/// `unveil analyze` invocation exactly — including error text. UVTB2 traces
/// are streamed (bounded memory, per-request fault scoping); text/V1 traces
/// fall back to the batch reader inside runAnalyze.
std::string handleAnalyze(const std::string& id, const support::json::Value& req,
                          ServerState& state) {
  const support::json::Value* traceVal = req.find("trace");
  if (!traceVal || !traceVal->isString())
    return responseLine(id, 2, "error: analyze request requires a \"trace\" string\n");
  const std::string tracePath = traceVal->asString();

  std::vector<std::string> rest;
  rest.push_back("--trace");
  rest.push_back(tracePath);
  bool wantFocus = false;
  bool wantStream = false;
  if (const support::json::Value* flags = req.find("flags")) {
    if (!flags->isArray())
      return responseLine(id, 2, "error: analyze \"flags\" must be an array of strings\n");
    for (const auto& f : flags->asArray()) {
      if (!f.isString())
        return responseLine(id, 2, "error: analyze \"flags\" must be an array of strings\n");
      const std::string flag = f.asString();
      if (flag.rfind("--focus", 0) == 0) wantFocus = true;
      if (flag == "--stream") wantStream = true;
      rest.push_back(flag);
    }
  }
  // Stream whenever the trace format allows it: bounded memory is the whole
  // point of the daemon. --focus needs the materialized trace (it re-slices
  // it), so such requests take the batch path like the plain CLI would.
  if (!wantFocus && !wantStream && trace::isShardStreamable(tracePath))
    rest.push_back("--stream");

  std::optional<support::FaultSpec> fault;
  if (const support::json::Value* spec = req.find("fault_spec")) {
    if (!spec->isString())
      return responseLine(id, 2, "error: \"fault_spec\" must be a string\n");
    fault = support::FaultSpec::parse(spec->asString());
  }

  std::ostringstream oss;
  int rc = 0;
  try {
    const Args reqArgs = Args::parse(rest);
    (void)reqArgs.has("strict");  // consumed lazily, as in runCli
    rc = runAnalyze(reqArgs, oss, fault);
  } catch (const Error& e) {
    // Mirror runCli's terminal error rendering so a degraded or misflagged
    // request reads exactly like the batch CLI's stdout.
    oss << "error: " << e.what() << '\n';
    rc = 1;
  }
  if (rc != 0) state.requestsFailed.fetch_add(1);
  return responseLine(id, rc, oss.str());
}

std::string handleRequest(const std::string& line, ServerState& state) {
  state.requestsTotal.fetch_add(1);
  state.requestsActive.fetch_add(1);
  struct ActiveGuard {
    ServerState& s;
    ~ActiveGuard() { s.requestsActive.fetch_sub(1); }
  } guard{state};

  std::string id;
  try {
    const support::json::Value req = support::json::parse(line);
    if (const support::json::Value* v = req.find("id")) id = v->asString();
    std::string command;
    if (const support::json::Value* v = req.find("command"))
      command = v->asString();

    telemetry::Span span("serve.request");
    span.attr("command", command);
    if (!id.empty()) span.attr("id", id);

    if (command == "ping") return responseLine(id, 0, "pong\n");
    if (command == "health") return responseLine(id, 0, healthJson(state));
    if (command == "shutdown") {
      state.draining.store(true);
      state.wake();
      return responseLine(id, 0, "shutting down\n");
    }
    if (command == "analyze") return handleAnalyze(id, req, state);
    state.requestsFailed.fetch_add(1);
    return responseLine(id, 2, "error: unknown command '" + command + "'\n");
  } catch (const Error& e) {
    state.requestsFailed.fetch_add(1);
    return responseLine(id, 1, std::string("error: ") + e.what() + '\n');
  }
}

void handleConnection(int rawFd, ServerState& state) {
  const Fd conn(rawFd);
  sockio::setIoTimeout(conn.get(), kServerIoTimeoutSec);
  const std::optional<std::string> line =
      sockio::recvLine(conn.get(), kMaxLineBytes);
  if (!line) {
    // Dead, silent, or over-chatty peer; nothing sensible to answer.
    return;
  }
  const std::string response = handleRequest(*line, state);
  if (!sockio::sendAll(conn.get(), response))
    support::logWarn("serve: failed to send response: " + errnoString());
}

}  // namespace

int cmdServe(const Args& args, std::ostream& out) {
  const std::string socketPath = args.get("socket");
  if (socketPath.empty()) {
    out << "error: serve requires --socket PATH\n";
    return 2;
  }
  if (const int rc = failOnUnused(args, out)) return rc;
  const sockaddr_un addr = socketAddress(socketPath);

  Fd listenFd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!listenFd.valid())
    throw Error("cannot create socket: " + errnoString());

  // A stale socket file from a crashed daemon must not wedge restarts, but
  // stealing a live daemon's socket must fail loudly: probe with a connect.
  if (::access(socketPath.c_str(), F_OK) == 0) {
    Fd probe(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (probe.valid() &&
        ::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      throw ConfigError("another daemon is already listening [socket=" +
                        socketPath + "]");
    ::unlink(socketPath.c_str());
  }
  if (::bind(listenFd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw Error("cannot bind [socket=" + socketPath + "]: " + errnoString());
  if (::listen(listenFd.get(), 64) != 0) {
    const std::string reason = errnoString();
    ::unlink(socketPath.c_str());
    throw Error("cannot listen [socket=" + socketPath + "]: " + reason);
  }

  int pipeFds[2] = {-1, -1};
  if (::pipe(pipeFds) != 0) {
    ::unlink(socketPath.c_str());
    throw Error("cannot create self-pipe: " + errnoString());
  }
  Fd wakeRd(pipeFds[0]);
  Fd wakeWr(pipeFds[1]);
  ::fcntl(wakeRd.get(), F_SETFL, O_NONBLOCK);
  ::fcntl(wakeWr.get(), F_SETFL, O_NONBLOCK);

  ServerState state;
  state.wakeFd = wakeWr.get();
  gSignalWakeFd.store(wakeWr.get());

  struct sigaction sa{};
  sa.sa_handler = onServeSignal;
  ::sigemptyset(&sa.sa_mask);
  struct sigaction oldTerm{};
  struct sigaction oldInt{};
  ::sigaction(SIGTERM, &sa, &oldTerm);
  ::sigaction(SIGINT, &sa, &oldInt);

  support::ThreadPool& pool = support::globalPool();
  out << "unveil serve: listening on " << socketPath << " (" << pool.threads()
      << " threads)\n";
  out.flush();
  support::logInfo("serve: listening on " + socketPath);

  for (;;) {
    pollfd fds[2] = {{listenFd.get(), POLLIN, 0}, {wakeRd.get(), POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      support::logWarn("serve: poll failed: " + errnoString());
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || state.draining.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listenFd.get(), nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      support::logWarn("serve: accept failed: " + errnoString());
      break;
    }
    state.beginConnection();
    pool.submit([conn, &state] {
      handleConnection(conn, state);
      state.endConnection();
    });
  }

  // Drain: stop accepting (close + unlink first so new clients get refused
  // instead of queueing), then wait for in-flight requests to finish.
  listenFd.reset();
  ::unlink(socketPath.c_str());
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.drained.wait(lock, [&] { return state.pending == 0; });
  }

  ::sigaction(SIGTERM, &oldTerm, nullptr);
  ::sigaction(SIGINT, &oldInt, nullptr);
  gSignalWakeFd.store(-1);

  out << "unveil serve: drained after " << state.requestsTotal.load()
      << " request(s) (" << state.requestsFailed.load() << " failed)\n";
  return 0;
}

std::string serverRoundTrip(const std::string& socketPath,
                            const std::string& requestLine,
                            double timeoutSeconds) {
  const sockaddr_un addr = socketAddress(socketPath);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw Error("cannot create socket: " + errnoString());
  sockio::setIoTimeout(fd.get(), timeoutSeconds);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw Error("cannot connect to daemon [socket=" + socketPath +
                "]: " + errnoString());
  std::string request = requestLine;
  if (request.empty() || request.back() != '\n') request.push_back('\n');
  if (!sockio::sendAll(fd.get(), request))
    throw Error("request send failed [socket=" + socketPath +
                "]: " + errnoString());
  ::shutdown(fd.get(), SHUT_WR);
  const std::optional<std::string> line =
      sockio::recvLine(fd.get(), kMaxLineBytes);
  if (!line)
    throw Error("no response from daemon (timeout, hangup, or over-long "
                "reply) [socket=" + socketPath + "]");
  return *line;
}

int cmdClient(const Args& args, std::ostream& out) {
  const std::string socketPath = args.get("socket");
  if (socketPath.empty()) {
    out << "error: client requires --socket PATH\n";
    return 2;
  }
  const double timeoutSeconds = args.getDouble("timeout", 30.0, 0.1, 3600.0);
  const bool ping = args.has("ping");
  const bool health = args.has("health");
  const bool wantShutdown = args.has("shutdown");
  if (static_cast<int>(ping) + static_cast<int>(health) +
          static_cast<int>(wantShutdown) > 1)
    throw ConfigError("--ping, --health and --shutdown are mutually exclusive");

  const std::string command =
      ping ? "ping" : health ? "health" : wantShutdown ? "shutdown" : "analyze";
  const std::string tracePath = args.get("trace");
  std::vector<std::string> flags;
  if (command == "analyze") {
    if (tracePath.empty()) {
      out << "error: client requires --trace (or one of --ping, --health, "
             "--shutdown)\n";
      return 2;
    }
    // Forward every flag the client itself did not consume. --strict is
    // special: runCli already touched it as a global flag, so re-add it
    // explicitly — the server honors it per request.
    if (args.has("strict")) flags.push_back("--strict");
    for (const auto& name : args.unusedFlags()) {
      flags.push_back("--" + name);
      const std::string value = args.get(name);
      if (!value.empty()) flags.push_back(value);
    }
  }
  if (const int rc = failOnUnused(args, out)) return rc;

  std::string request = "{\"id\":\"" + std::to_string(::getpid()) +
                        "\",\"command\":\"" + command + "\"";
  if (command == "analyze") {
    request += ",\"trace\":\"" + telemetry::escapeJson(tracePath) + "\"";
    request += ",\"flags\":[";
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (i > 0) request += ',';
      request += "\"" + telemetry::escapeJson(flags[i]) + "\"";
    }
    request += "]";
    // The whole point of per-request fault scoping: the client's injected
    // fault travels with the request instead of poisoning the daemon's
    // process-wide environment.
    if (const char* spec = std::getenv("UNVEIL_FAULT_SPEC")) {
      if (*spec != '\0')
        request += ",\"fault_spec\":\"" + telemetry::escapeJson(spec) + "\"";
    }
  }
  request += "}";

  const std::string responseText =
      serverRoundTrip(socketPath, request, timeoutSeconds);
  const support::json::Value response = support::json::parse(responseText);
  const support::json::Value* output = response.find("output");
  const support::json::Value* exitCode = response.find("exit");
  if (!output || !output->isString() || !exitCode || !exitCode->isNumber())
    throw Error("malformed daemon response: " + responseText);
  out << output->asString();
  return static_cast<int>(exitCode->asDouble());
}

}  // namespace unveil::cli
