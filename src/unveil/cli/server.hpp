#pragma once

/// \file server.hpp
/// `unveil serve` — a long-running analysis daemon on a local Unix socket —
/// and `unveil client`, its command-line counterpart.
///
/// Protocol: newline-delimited JSON, one request and one response per
/// connection. A request is a single-line object:
///
///   {"id": "42", "command": "analyze", "trace": "/path/a.utb",
///    "flags": ["--mpi-gaps"], "fault_spec": "flip-byte-at=900"}
///
/// Commands: "analyze" (run the pipeline on a trace file readable by the
/// server), "ping" (liveness), "health" (JSON snapshot of request counters,
/// pool health and flight-recorder depth), "shutdown" (graceful drain +
/// exit 0). The response mirrors the id and carries the would-be CLI exit
/// code plus the exact bytes `unveil analyze` would have printed:
///
///   {"id": "42", "status": "ok", "exit": 0, "output": "..."}
///
/// Concurrency: each connection is handled as a task on the shared
/// support::globalPool(); the analysis stages inside nest their parallelFor
/// loops on the same pool, so the daemon never oversubscribes the machine.
/// Each request runs under its own telemetry span, and "fault_spec" scopes
/// I/O fault injection to that one request's trace stream (the client
/// forwards its UNVEIL_FAULT_SPEC this way) — a corrupt-shard request
/// degrades alone while concurrent requests on healthy traces are
/// unaffected.
///
/// Shutdown: SIGTERM/SIGINT (self-pipe, poll-based — no async-signal-unsafe
/// work in the handler) or a "shutdown" request stop the accept loop, drain
/// in-flight requests, unlink the socket and return 0.

#include <iosfwd>
#include <string>

#include "unveil/cli/args.hpp"

namespace unveil::cli {

/// `unveil serve --socket PATH`: binds, serves until SIGTERM/SIGINT or a
/// shutdown request, then drains and returns 0. Returns 2 on bad usage.
int cmdServe(const Args& args, std::ostream& out);

/// `unveil client --socket PATH (--trace T [flags] | --ping | --health |
/// --shutdown)`: sends one request, prints the response "output" bytes
/// verbatim, and exits with the server-reported exit code.
int cmdClient(const Args& args, std::ostream& out);

/// One protocol round trip: connects to \p socketPath, sends \p requestLine
/// (a newline is appended when missing) and returns the raw response line
/// without its trailing newline. Throws support::Error on connect/IO
/// failure or timeout. Exposed for in-process tests.
[[nodiscard]] std::string serverRoundTrip(const std::string& socketPath,
                                          const std::string& requestLine,
                                          double timeoutSeconds = 30.0);

}  // namespace unveil::cli
