#include "unveil/cli/sockio.hpp"

#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>

namespace unveil::cli::sockio {

namespace {

ssize_t realSend(int fd, const void* buf, std::size_t len, int flags) {
  return ::send(fd, buf, len, flags);
}

ssize_t realRecv(int fd, void* buf, std::size_t len, int flags) {
  return ::recv(fd, buf, len, flags);
}

}  // namespace

Hooks& hooks() {
  static Hooks active{realSend, realRecv};
  return active;
}

ScopedHooks::ScopedHooks(const Hooks& replacement) : saved_(hooks()) {
  hooks() = replacement;
}

ScopedHooks::~ScopedHooks() { hooks() = saved_; }

void setIoTimeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool sendAll(int fd, std::string_view data) {
  std::size_t off = 0;
  int interrupts = 0;
  while (off < data.size()) {
    const ssize_t n =
        hooks().send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR && ++interrupts <= kMaxEintrRetries) continue;
      return false;
    }
    if (n == 0) {
      // A stream send never legitimately accepts zero bytes; looping on it
      // would spin forever against a broken stack (or fault shim).
      errno = EIO;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> recvLine(int fd, std::size_t maxLineBytes) {
  std::string line;
  char buf[4096];
  int interrupts = 0;
  for (;;) {
    const ssize_t n = hooks().recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR && ++interrupts <= kMaxEintrRetries) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // EOF before the newline
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') return line;
      line.push_back(buf[i]);
      if (line.size() > maxLineBytes) return std::nullopt;
    }
  }
}

}  // namespace unveil::cli::sockio
