/// \file main.cpp
/// Entry point of the `unveil` command-line tool. All logic lives in
/// unveil::cli so it can be unit-tested; this file only adapts argv.

#include <iostream>
#include <string>
#include <vector>

#include "unveil/cli/commands.hpp"
#include "unveil/support/flight_recorder.hpp"

int main(int argc, char** argv) {
  // Dump the telemetry flight recorder on SIGSEGV/SIGABRT before dying —
  // installed here (not in the library) so embedders keep their own signal
  // policy.
  unveil::support::installCrashHandlers();
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return unveil::cli::runCli(args, std::cout);
}
