#pragma once

/// \file commands.hpp
/// Subcommand implementations of the `unveil` tool, as library functions so
/// they are unit-testable. Each returns a process exit code and writes
/// human-readable output to \p out.
///
/// Commands:
///   simulate        run a bundled application model under a measurement
///                   setup and write the trace (unveil text format).
///   info            print record counts and metadata of a trace file.
///   analyze         run the clustering+folding pipeline on a trace file and
///                   print the paper-style report; optionally save figures.
///   accuracy        the T1 experiment for one application (coarse vs fine).
///   imbalance       per-cluster load-balance characterization of a trace.
///   evolution       per-cluster cross-run drift detection of a trace.
///   export-paraver  convert a trace file to a Paraver .prv/.pcf/.row triple.
///   telemetry-diff  A/B-compare two --metrics-out dumps stage by stage;
///                   exits 3 when run B regresses past the noise threshold.
///   campaign        N-trace scaling campaign: per-phase scaling models
///                   (Extra-P-style c*p^a*log2(p)^b) over a series of traces
///                   at different scales, with projected time shares at
///                   unseen scales.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "unveil/analysis/campaign.hpp"
#include "unveil/cli/args.hpp"
#include "unveil/support/faulty_stream.hpp"

namespace unveil::cli {

/// Dispatches `unveil <command> [--flags]`. Returns the exit code; prints
/// usage to \p out when the command is missing or unknown.
int runCli(const std::vector<std::string>& argv, std::ostream& out);

/// Individual commands (argv excludes the command word).
int cmdSimulate(const Args& args, std::ostream& out);
int cmdInfo(const Args& args, std::ostream& out);
int cmdAnalyze(const Args& args, std::ostream& out);
int cmdAccuracy(const Args& args, std::ostream& out);
int cmdReport(const Args& args, std::ostream& out);
int cmdImbalance(const Args& args, std::ostream& out);
int cmdEvolution(const Args& args, std::ostream& out);
int cmdExportParaver(const Args& args, std::ostream& out);
/// \p paths are the two positional metrics-JSON files (baseline, candidate).
int cmdTelemetryDiff(const std::vector<std::string>& paths, const Args& args,
                     std::ostream& out);
/// Trace paths come in as positionals, optionally annotated TRACE=PARAM.
int cmdCampaign(const Args& args, std::ostream& out);

/// Splits one positional campaign token into path and optional =PARAM
/// annotation. The suffix after the LAST '=' counts as an annotation only
/// when it parses as a number; otherwise the whole token is a path (so
/// run=3/trace.uvtb names a file). Exposed for tests.
analysis::CampaignMemberSpec parseCampaignMember(const std::string& tok);

/// cmdAnalyze's implementation, shared with the serve daemon (server.hpp):
/// \p fault optionally injects I/O faults into this one invocation's
/// streaming trace reads — daemon requests carry their client's
/// UNVEIL_FAULT_SPEC this way so a fault stays scoped to a single request.
/// Batch (non --stream) reads still honor only the process-wide spec.
int runAnalyze(const Args& args, std::ostream& out,
               const std::optional<support::FaultSpec>& fault);

/// Unknown-flag rejection every command ends its flag parsing with:
/// prints the offending names and returns 2, or returns 0 when all flags
/// were consumed.
int failOnUnused(const Args& args, std::ostream& out);

/// Usage text for all commands.
[[nodiscard]] std::string usage();

}  // namespace unveil::cli
