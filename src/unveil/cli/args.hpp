#pragma once

/// \file args.hpp
/// Minimal command-line option parser for the unveil tool. Flags are
/// `--name value`, `--name=value`, or boolean `--name`. Positional
/// arguments are rejected by default to keep invocations explicit;
/// commands that take a variable-length trace list (campaign,
/// telemetry-diff) opt in via parse(..., allowPositionals).

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace unveil::cli {

/// Parsed options: name → value ("" for boolean flags).
class Args {
 public:
  /// Parses `--key [value]` / `--key=value` pairs from \p argv. Throws
  /// ConfigError on malformed input (positional args unless
  /// \p allowPositionals, missing flag names). With \p allowPositionals,
  /// tokens not starting with "--" that are not consumed as flag values
  /// are collected in order into positionals(). Note the pre-existing
  /// binding rule: `--boolflag token` binds token as the flag's value —
  /// list positionals first or use --flag=value forms to avoid ambiguity.
  static Args parse(const std::vector<std::string>& argv,
                    bool allowPositionals = false);

  /// True when the flag was given (with or without value).
  [[nodiscard]] bool has(const std::string& name) const;
  /// String value; \p fallback when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;
  /// Integer value; throws ConfigError on non-numeric input, on overflow,
  /// or when the value falls outside [min, max].
  [[nodiscard]] long long getInt(
      const std::string& name, long long fallback,
      long long min = std::numeric_limits<long long>::min(),
      long long max = std::numeric_limits<long long>::max()) const;
  /// Floating-point value; throws ConfigError on non-numeric input, on
  /// overflow, or when the value falls outside [min, max].
  [[nodiscard]] double getDouble(
      const std::string& name, double fallback,
      double min = std::numeric_limits<double>::lowest(),
      double max = std::numeric_limits<double>::max()) const;

  /// Names that were parsed but never queried — used to reject typos.
  [[nodiscard]] std::vector<std::string> unusedFlags() const;

  /// Positional arguments in command-line order (empty unless parse was
  /// called with allowPositionals).
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace unveil::cli
