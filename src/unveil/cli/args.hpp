#pragma once

/// \file args.hpp
/// Minimal command-line option parser for the unveil tool. Flags are
/// `--name value`, `--name=value`, or boolean `--name`; positional
/// arguments are rejected to keep invocations explicit.

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace unveil::cli {

/// Parsed options: name → value ("" for boolean flags).
class Args {
 public:
  /// Parses `--key [value]` / `--key=value` pairs from \p argv. Throws
  /// ConfigError on malformed input (positional args, missing flag names).
  static Args parse(const std::vector<std::string>& argv);

  /// True when the flag was given (with or without value).
  [[nodiscard]] bool has(const std::string& name) const;
  /// String value; \p fallback when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;
  /// Integer value; throws ConfigError on non-numeric input, on overflow,
  /// or when the value falls outside [min, max].
  [[nodiscard]] long long getInt(
      const std::string& name, long long fallback,
      long long min = std::numeric_limits<long long>::min(),
      long long max = std::numeric_limits<long long>::max()) const;
  /// Floating-point value; throws ConfigError on non-numeric input, on
  /// overflow, or when the value falls outside [min, max].
  [[nodiscard]] double getDouble(
      const std::string& name, double fallback,
      double min = std::numeric_limits<double>::lowest(),
      double max = std::numeric_limits<double>::max()) const;

  /// Names that were parsed but never queried — used to reject typos.
  [[nodiscard]] std::vector<std::string> unusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace unveil::cli
