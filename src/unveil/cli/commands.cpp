#include "unveil/cli/commands.hpp"

#include <ostream>

#include <algorithm>
#include <fstream>
#include <memory>

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "unveil/analysis/campaign.hpp"
#include "unveil/analysis/diffrun.hpp"
#include "unveil/analysis/evolution.hpp"
#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/imbalance.hpp"
#include "unveil/analysis/metrics_diff.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/analysis/report.hpp"
#include "unveil/analysis/representative.hpp"
#include "unveil/analysis/streaming.hpp"
#include "unveil/analysis/summary.hpp"
#include "unveil/cli/server.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/flight_recorder.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/parse.hpp"
#include "unveil/support/sampler.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"
#include "unveil/trace/filter.hpp"
#include "unveil/trace/binary_io.hpp"
#include "unveil/trace/io.hpp"
#include "unveil/trace/paraver.hpp"

namespace unveil::cli {

namespace {

sim::MeasurementConfig measurementFromArgs(const Args& args) {
  const std::string mode = args.get("mode", "folding");
  sim::MeasurementConfig mc;
  if (mode == "none") mc = sim::MeasurementConfig::none();
  else if (mode == "instr") mc = sim::MeasurementConfig::instrumentationOnly();
  else if (mode == "folding") mc = sim::MeasurementConfig::folding();
  else if (mode == "fine") mc = sim::MeasurementConfig::fineGrain();
  else throw ConfigError("unknown --mode '" + mode + "' (none|instr|folding|fine)");
  if (args.has("period-us"))
    mc.sampling.periodNs = args.getDouble("period-us", 1000.0, 1e-3, 1e9) * 1e3;
  return mc;
}

sim::apps::AppParams paramsFromArgs(const Args& args) {
  sim::apps::AppParams p;
  p.ranks = static_cast<trace::Rank>(args.getInt("ranks", 16, 1, 1 << 20));
  p.iterations =
      static_cast<std::uint32_t>(args.getInt("iterations", 150, 1, 1 << 30));
  p.seed = static_cast<std::uint64_t>(args.getInt("seed", 1, 0));
  p.scale = args.getDouble("scale", 1.0, 1e-6, 1e6);
  return p;
}

/// Trace-reading policy for this invocation: fail fast under --strict,
/// otherwise salvage what per-shard degradation can (the right default for
/// unattended analysis over large, possibly damaged trace collections).
trace::ReadOptions readOptionsFromArgs(const Args& args) {
  trace::ReadOptions options;
  options.strict = args.has("strict");
  return options;
}

/// The dropped-shard warning block trace-consuming commands print before
/// their own output. Batch reads emit it from loadTrace, the streaming
/// analyze path from its pass-A report — shared so both modes produce
/// byte-identical warnings for the same damaged file.
void printShardDropWarnings(const trace::ReadReport& report,
                            const std::string& path, std::ostream& out) {
  if (report.droppedShards.empty()) return;
  out << "warning: dropped " << report.droppedShards.size() << " of "
      << report.totalRanks << " shards in " << path
      << " (rerun with --strict to fail instead):\n";
  for (const auto& d : report.droppedShards)
    out << "  rank " << d.rank << " at byte " << d.offset << ": " << d.reason
        << '\n';
}

/// Reads a trace honoring --strict and surfaces any dropped shards to the
/// user; the report is also returned for command summaries.
trace::Trace loadTrace(const Args& args, const std::string& path,
                       std::ostream& out, trace::ReadReport* reportOut = nullptr) {
  trace::ReadReport report;
  trace::Trace t = trace::readAutoFile(path, readOptionsFromArgs(args), &report);
  printShardDropWarnings(report, path, out);
  if (reportOut) *reportOut = std::move(report);
  return t;
}

/// Telemetry/verbosity lifecycle for one CLI invocation. Every command gets
/// a live Session unless --no-telemetry, plus the background sampler (at
/// --sample-interval ms; 0 disables) and an armed flight recorder (unless
/// --no-flightrec); finish() exports whatever --trace-out/--metrics-out/
/// --verbose asked for. Export sinks are opened in the constructor so a bad
/// path fails before hours of analysis, not after. The destructor only
/// deactivates and restores the log level, so a command that throws does not
/// leave half a run's exports behind.
class TelemetryScope {
 public:
  TelemetryScope(const Args& args, std::ostream& out)
      : out_(out),
        savedLevel_(support::logLevel()),
        traceOut_(args.get("trace-out", "")),
        metricsOut_(args.get("metrics-out", "")),
        verbose_(args.has("verbose")) {
    if (args.has("quiet")) support::setLogLevel(support::LogLevel::Off);
    else if (verbose_) support::setLogLevel(support::LogLevel::Info);

    // Validate/open export sinks up front (the PR 4 fail-early contract):
    // a typo'd directory must surface now, not at pipeline end.
    const auto openSink = [](const std::string& path) {
      auto sink = std::make_unique<std::ofstream>(path);
      if (!*sink)
        throw ConfigError("cannot open for writing [file=" + path + "]");
      return sink;
    };
    if (!traceOut_.empty()) traceSink_ = openSink(traceOut_);
    if (!metricsOut_.empty()) metricsSink_ = openSink(metricsOut_);

    const std::string flightrecDir = args.get("flightrec-dir", ".");
    if (!args.has("no-flightrec")) {
      auto& recorder = support::FlightRecorder::instance();
      recorder.enable();
      recorder.clear();
      if (!recorder.setDumpDirectory(flightrecDir))
        throw ConfigError("flight recorder directory path too long [file=" +
                          flightrecDir + "]");
      recorder.setDumpOnDegradation(true);
      flightrec_ = true;
    }

    // Consumed up front (not only inside the branch) so the flags never
    // trip unused-flag checking on --no-telemetry runs. The interval is
    // range-validated like --threads: 0 and negative values used to slip
    // through as a silent "disabled", masking typos — disabling is now the
    // explicit --no-sampler.
    const double sampleIntervalMs =
        static_cast<double>(args.getInt("sample-interval", 10, 1, 60000));
    const bool noSampler = args.has("no-sampler");
    if (!args.has("no-telemetry")) {
      session_ = std::make_unique<telemetry::Session>();
      session_->activate();
      if (!noSampler) {
        support::SamplerConfig samplerConfig;
        samplerConfig.intervalMs = sampleIntervalMs;
        sampler_ = std::make_unique<support::Sampler>(*session_, samplerConfig);
      }
    }
  }
  ~TelemetryScope() {
    sampler_.reset();  // joins the sampling thread before the session dies
    if (session_) session_->deactivate();
    if (flightrec_) {
      auto& recorder = support::FlightRecorder::instance();
      recorder.setDumpOnDegradation(false);
      recorder.disable();
    }
    support::setLogLevel(savedLevel_);
  }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  void finish() {
    if (!session_) return;
    sampler_.reset();
    session_->deactivate();
    const auto snap = session_->snapshot();
    session_.reset();
    if (traceSink_) {
      telemetry::writeChromeTrace(snap, *traceSink_);
      if (!*traceSink_) throw Error("write failed [file=" + traceOut_ + "]");
      out_ << "chrome trace -> " << traceOut_ << '\n';
    }
    if (metricsSink_) {
      telemetry::writeMetricsJson(snap, *metricsSink_);
      if (!*metricsSink_) throw Error("write failed [file=" + metricsOut_ + "]");
      out_ << "metrics -> " << metricsOut_ << '\n';
    }
    if (verbose_ && !snap.spans.empty())
      telemetry::summaryTable(snap).print(out_, "telemetry summary");
  }

 private:
  std::ostream& out_;
  support::LogLevel savedLevel_;
  std::string traceOut_;
  std::string metricsOut_;
  bool verbose_;
  bool flightrec_ = false;
  std::unique_ptr<std::ofstream> traceSink_;
  std::unique_ptr<std::ofstream> metricsSink_;
  std::unique_ptr<telemetry::Session> session_;
  std::unique_ptr<support::Sampler> sampler_;
};

/// Applies --threads to the shared pool for the duration of one CLI
/// invocation, restoring automatic sizing afterwards so embedding callers
/// (tests drive runCli repeatedly in-process) are not left with a stale
/// explicit size.
class ThreadsScope {
 public:
  explicit ThreadsScope(const Args& args) {
    if (args.has("threads")) {
      configured_ = true;
      support::setGlobalThreads(
          static_cast<std::size_t>(args.getInt("threads", 0, 1, 1 << 16)));
    }
  }
  ~ThreadsScope() {
    if (configured_) support::setGlobalThreads(0);
  }
  ThreadsScope(const ThreadsScope&) = delete;
  ThreadsScope& operator=(const ThreadsScope&) = delete;

 private:
  bool configured_ = false;
};

}  // namespace

int failOnUnused(const Args& args, std::ostream& out) {
  const auto unused = args.unusedFlags();
  if (unused.empty()) return 0;
  out << "error: unknown flag(s):";
  for (const auto& f : unused) out << " --" << f;
  out << '\n';
  return 2;
}

std::string usage() {
  return "usage: unveil <command> [--flags]\n"
         "commands:\n"
         "  simulate --app NAME [--ranks N] [--iterations N] [--seed N]\n"
         "           [--scale X] [--mode none|instr|folding|fine]\n"
         "           [--period-us X] --out TRACE [--binary] [--paraver BASE]\n"
         "  info --trace TRACE\n"
         "  analyze --trace TRACE [--mpi-gaps] [--eps X] [--min-instances N]\n"
         "          [--sample-cost-ns X] [--probe-cost-ns X] [--figures DIR]\n"
         "          [--focus N]   analyze N representative iterations only\n"
         "          [--stream]    bounded-memory streaming over UVTB2 shards\n"
         "                        (one shard resident at a time; output is\n"
         "                        bit-identical to the batch path)\n"
         "          [--fold-max-points N]  cap each fold cloud at N points\n"
         "                        (deterministic reservoir; 0 = keep all)\n"
         "          [--cluster-exact]   exact DBSCAN regardless of trace size\n"
         "          [--cluster-sample]  stratified-sampled clustering (the\n"
         "                              default at >= 100k bursts)\n"
         "          [--cluster-sample-fraction X]  sample rate in (0,1],\n"
         "                              implies --cluster-sample\n"
         "  serve --socket PATH   analysis daemon on a local Unix socket;\n"
         "                        newline-delimited JSON requests, graceful\n"
         "                        drain + exit 0 on SIGTERM or shutdown\n"
         "  client --socket PATH (--trace TRACE [analyze flags] |\n"
         "          --ping | --health | --shutdown) [--timeout SEC]\n"
         "                        one request against a running daemon;\n"
         "                        prints the response and exits with the\n"
         "                        server-reported code\n"
         "  accuracy --app NAME [--ranks N] [--iterations N] [--seed N]\n"
         "  report --trace TRACE [--sample-cost-ns X] [--probe-cost-ns X]\n"
         "                               full report: phases, rates, balance,\n"
         "                               drift, regions, structure\n"
         "  diff --trace A --trace-b B   per-phase before/after comparison\n"
         "  imbalance --trace TRACE      per-cluster load-balance table\n"
         "  evolution --trace TRACE      per-cluster drift detection\n"
         "  export-paraver --trace TRACE --out BASE\n"
         "  telemetry-diff A.json B.json   compare two --metrics-out dumps\n"
         "          [--threshold PCT]      wall/CPU noise threshold (default 10)\n"
         "          [--mem-threshold PCT]  peak-RSS threshold (default 25)\n"
         "          [--min-wall-ms X]      ignore spans below X ms (default 1)\n"
         "          exit 0 = no regressions, 3 = regressions found\n"
         "  campaign TRACE[=PARAM] TRACE[=PARAM] TRACE[=PARAM] ...\n"
         "          per-phase scaling models over >= 3 traces at different\n"
         "          scales; list traces before any flags\n"
         "          [--param NAME]   scale parameter name (default ranks,\n"
         "                           inferred from each trace's rank count;\n"
         "                           other names need TRACE=VALUE annotations)\n"
         "          [--project LIST] comma-separated parameter values to\n"
         "                           project time shares at (default: 4x the\n"
         "                           largest measured value)\n"
         "          [--json-out FILE]   machine-readable campaign JSON\n"
         "          [--extrap-out FILE] Extra-P text interchange file\n"
         "          [--stream]       stream UVTB2 members (bounded memory)\n"
         "          plus the analyze pipeline flags (--eps, --mpi-gaps, ...)\n"
         "global flags (any command):\n"
         "  --threads N         worker threads for parallel stages (default:\n"
         "                      $UNVEIL_THREADS, then hardware concurrency);\n"
         "                      results are identical for any thread count\n"
         "  --trace-out FILE    chrome://tracing span JSON for this run\n"
         "  --metrics-out FILE  flat JSON dump of work counters and timings\n"
         "  --sample-interval MS  background telemetry sampler tick, an\n"
         "                      integer in [1, 60000] ms (default 10)\n"
         "  --no-sampler        disable the background sampler (pool/memory\n"
         "                      time-series)\n"
         "  --no-flightrec      disable the crash flight recorder\n"
         "  --flightrec-dir DIR where crash/degradation dumps are written\n"
         "                      (unveil-flightrec-<pid>.json, default .)\n"
         "  --strict            fail on the first corrupt trace shard instead\n"
         "                      of dropping it and analyzing surviving ranks\n"
         "  --no-telemetry      disable self-tracing entirely\n"
         "  --verbose           info-level logs + telemetry summary table\n"
         "  --quiet             suppress log output\n";
}

int cmdSimulate(const Args& args, std::ostream& out) {
  const std::string app = args.get("app");
  const std::string outPath = args.get("out");
  if (app.empty() || outPath.empty()) {
    out << "error: simulate requires --app and --out\n" << usage();
    return 2;
  }
  const auto params = paramsFromArgs(args);
  const auto mc = measurementFromArgs(args);
  const std::string paraverBase = args.get("paraver", "");
  const bool binary = args.has("binary");
  if (const int rc = failOnUnused(args, out)) return rc;

  const auto run = analysis::runMeasured(app, params, mc);
  if (binary) trace::writeBinaryFile(run.trace, outPath);
  else trace::writeFile(run.trace, outPath);
  out << "simulated " << app << ": " << run.trace.numRanks() << " ranks, runtime "
      << static_cast<double>(run.totalRuntimeNs) / 1e9 << " s, "
      << run.trace.stats().totalRecords << " records -> " << outPath << '\n';
  if (!paraverBase.empty()) {
    trace::exportParaver(run.trace, paraverBase);
    out << "paraver triple -> " << paraverBase << ".{prv,pcf,row}\n";
  }
  return 0;
}

int cmdInfo(const Args& args, std::ostream& out) {
  const std::string path = args.get("trace");
  if (path.empty()) {
    out << "error: info requires --trace\n";
    return 2;
  }
  if (const int rc = failOnUnused(args, out)) return rc;
  trace::ReadReport report;
  const auto t = loadTrace(args, path, out, &report);
  const auto stats = t.stats();
  out << "app:      " << t.appName() << '\n';
  out << "ranks:    " << t.numRanks() << '\n';
  out << "duration: " << static_cast<double>(t.durationNs()) / 1e9 << " s\n";
  out << "events:   " << stats.events << '\n';
  out << "samples:  " << stats.samples << '\n';
  out << "states:   " << stats.states << '\n';
  out << "footprint " << static_cast<double>(stats.estimatedBytes) / (1024.0 * 1024.0)
      << " MiB\n";
  return 0;
}

namespace {

/// The analyze pipeline knobs, shared by the batch and streaming paths (and
/// therefore by daemon requests, which re-enter runAnalyze).
analysis::PipelineConfig analyzeConfigFromArgs(const Args& args) {
  analysis::PipelineConfig config;
  config.useMpiGaps = args.has("mpi-gaps");
  if (args.has("eps")) {
    config.autoEps = false;
    config.dbscan.eps = args.getDouble("eps", 0.1, 1e-12, 1e12);
  }
  config.minClusterInstances =
      static_cast<std::size_t>(args.getInt("min-instances", 30, 1, 1 << 30));
  const bool wantExact = args.has("cluster-exact");
  bool wantSampled = args.has("cluster-sample");
  if (args.has("cluster-sample-fraction")) {
    // Range-validated; anything outside (0, 1] is a config error, and the
    // knob implies sampled mode.
    config.clusterSample.fraction =
        args.getDouble("cluster-sample-fraction", 0.05, 1e-6, 1.0);
    wantSampled = true;
  }
  if (wantExact && wantSampled)
    throw ConfigError("--cluster-exact and --cluster-sample are mutually exclusive");
  if (wantExact) config.clusterMode = analysis::ClusterMode::Exact;
  else if (wantSampled) config.clusterMode = analysis::ClusterMode::Sampled;
  config.reconstruct.fold.perSampleOverheadNs =
      args.getDouble("sample-cost-ns", 0.0, 0.0, 1e12);
  config.reconstruct.fold.probeOverheadNs =
      args.getDouble("probe-cost-ns", 0.0, 0.0, 1e12);
  // Bounded-memory fold clouds (deterministic reservoir); 0 = keep all
  // points. Must match between runs being compared bit-for-bit.
  config.reconstruct.fold.maxPointsPerCounter = static_cast<std::size_t>(
      args.getInt("fold-max-points", 0, 0, 1 << 30));
  return config;
}

/// The analyze report block, after any warnings/focus lines. Batch and
/// streaming runs funnel through this one renderer so their output bytes
/// can be compared directly (the server-smoke CI job does exactly that).
void renderAnalysis(const analysis::PipelineResult& result,
                    const trace::ReadReport& report, trace::Rank numRanks,
                    std::ostream& out) {
  analysis::clusterSummaryTable(result).print(out, "detected computation phases");
  out << "\neps used: " << result.epsUsed << '\n';
  if (result.clusterSampleSize > 0) {
    out << "sampled clustering: " << result.clusterSampleSize
        << " bursts clustered exactly, " << result.clusterClassified
        << " classified\n";
  }
  if (!report.droppedShards.empty()) {
    out << "ranks analyzed: " << (report.totalRanks - report.droppedShards.size())
        << " of " << report.totalRanks << " (" << report.droppedShards.size()
        << " corrupt shard" << (report.droppedShards.size() == 1 ? "" : "s")
        << " dropped)\n";
  }
  out << "iteration period: " << result.period.period << " (self-similarity "
      << result.period.matchFraction * 100.0 << "%)\n";
  out << "SPMD-ness: "
      << cluster::spmdScore(result.bursts, result.clustering, numRanks) << '\n';
}

void saveAnalysisFigures(const analysis::PipelineResult& result,
                         const std::string& figDir, std::ostream& out) {
  if (figDir.empty()) return;
  analysis::scatterSeries(result, cluster::FeatureId::LogDurationNs,
                          cluster::FeatureId::Ipc, "scatter")
      .save(figDir + "/scatter.dat");
  analysis::rateSeries(result, counters::CounterId::TotIns, "mips")
      .save(figDir + "/mips.dat");
  analysis::rateSeries(result, counters::CounterId::L2Dcm, "l2")
      .save(figDir + "/l2.dat");
  out << "figure data -> " << figDir << "/{scatter,mips,l2}.dat\n";
}

}  // namespace

int runAnalyze(const Args& args, std::ostream& out,
               const std::optional<support::FaultSpec>& fault) {
  const std::string path = args.get("trace");
  if (path.empty()) {
    out << "error: analyze requires --trace\n";
    return 2;
  }
  analysis::PipelineConfig config = analyzeConfigFromArgs(args);
  const bool stream = args.has("stream");
  const std::string figDir = args.get("figures", "");
  const auto focusIterations =
      static_cast<std::size_t>(args.getInt("focus", 0, 0, 1 << 30));
  if (stream && focusIterations > 0)
    throw ConfigError(
        "--stream and --focus are mutually exclusive (focus re-slices the "
        "materialized trace)");
  if (const int rc = failOnUnused(args, out)) return rc;

  if (stream) {
    // Bounded-memory path: shards are decoded one at a time, twice. Output
    // is bit-identical to the batch path below on the same file.
    analysis::StreamingConfig streamConfig;
    streamConfig.pipeline = config;
    streamConfig.read = readOptionsFromArgs(args);
    streamConfig.fault = fault;
    const auto streamed = analysis::analyzeStreaming(path, streamConfig);
    printShardDropWarnings(streamed.report, path, out);
    renderAnalysis(streamed.result, streamed.report, streamed.numRanks, out);
    saveAnalysisFigures(streamed.result, figDir, out);
    return 0;
  }

  trace::ReadReport report;
  const auto t = loadTrace(args, path, out, &report);
  auto result = analysis::analyze(t, config);

  if (focusIterations > 0) {
    analysis::RepresentativeParams rp;
    rp.iterations = focusIterations;
    const auto window = analysis::representativeWindow(result, rp);
    if (!window) {
      out << "no representative window of " << focusIterations
          << " iterations found; analyzing the full trace\n";
    } else {
      out << "focusing on " << window->iterationsCovered
          << " representative iterations: ["
          << static_cast<double>(window->begin) / 1e6 << " ms, "
          << static_cast<double>(window->end) / 1e6 << " ms] (anchor rank "
          << window->anchorRank << ")\n";
      const auto cut = trace::sliceTime(t, window->begin, window->end);
      // The slice holds far fewer bursts; scale density knobs down.
      config.dbscan.minPts = std::max<std::size_t>(3, config.dbscan.minPts / 3);
      config.minClusterInstances =
          std::max<std::size_t>(4, config.minClusterInstances / 6);
      result = analysis::analyze(cut, config);
    }
  }
  renderAnalysis(result, report, t.numRanks(), out);
  saveAnalysisFigures(result, figDir, out);
  return 0;
}

int cmdAnalyze(const Args& args, std::ostream& out) {
  return runAnalyze(args, out, std::nullopt);
}

int cmdAccuracy(const Args& args, std::ostream& out) {
  const std::string app = args.get("app");
  if (app.empty()) {
    out << "error: accuracy requires --app\n";
    return 2;
  }
  const auto params = paramsFromArgs(args);
  if (const int rc = failOnUnused(args, out)) return rc;

  const auto coarseMc = sim::MeasurementConfig::folding();
  const auto coarse = analysis::runMeasured(app, params, coarseMc);
  const auto fine =
      analysis::runMeasured(app, params, sim::MeasurementConfig::fineGrain());
  const auto result =
      analysis::analyze(coarse.trace, analysis::calibratedPipelineConfig(coarseMc));
  support::Table table({"cluster", "phase", "instances", "vs fine-grain (%)",
                        "vs exact truth (%)"});
  for (const auto& a : analysis::foldingAccuracy(coarse, fine, result,
                                                 counters::CounterId::TotIns)) {
    table.addRow({static_cast<long long>(a.clusterId), a.phaseName,
                  static_cast<long long>(a.instances), a.vsFinePercent,
                  a.vsTruthPercent});
  }
  table.print(out, "folding accuracy on " + app);
  return 0;
}

int cmdDiff(const Args& args, std::ostream& out) {
  const std::string pathA = args.get("trace");
  const std::string pathB = args.get("trace-b");
  if (pathA.empty() || pathB.empty()) {
    out << "error: diff requires --trace and --trace-b\n";
    return 2;
  }
  analysis::PipelineConfig config;
  config.reconstruct.fold.perSampleOverheadNs =
      args.getDouble("sample-cost-ns", 0.0, 0.0, 1e12);
  config.reconstruct.fold.probeOverheadNs =
      args.getDouble("probe-cost-ns", 0.0, 0.0, 1e12);
  if (const int rc = failOnUnused(args, out)) return rc;
  const auto ta = loadTrace(args, pathA, out);
  const auto tb = loadTrace(args, pathB, out);
  const auto ra = analysis::analyze(ta, config);
  const auto rb = analysis::analyze(tb, config);
  const auto diff = analysis::diffRuns(ra, rb);
  analysis::diffTable(diff).print(out, "run comparison (B relative to A)");
  if (!diff.periodsMatch)
    out << "warning: iteration periods differ; clusters paired by id only\n";
  for (int id : diff.unmatchedA) out << "only in A: cluster " << id << '\n';
  for (int id : diff.unmatchedB) out << "only in B: cluster " << id << '\n';
  out << "total runtime: " << static_cast<double>(ta.durationNs()) / 1e9 << " s -> "
      << static_cast<double>(tb.durationNs()) / 1e9 << " s ("
      << (static_cast<double>(tb.durationNs()) /
              static_cast<double>(ta.durationNs()) -
          1.0) *
             100.0
      << "%)\n";
  return 0;
}

int cmdReport(const Args& args, std::ostream& out) {
  const std::string path = args.get("trace");
  if (path.empty()) {
    out << "error: report requires --trace\n";
    return 2;
  }
  analysis::ReportOptions options;
  options.pipeline.reconstruct.fold.perSampleOverheadNs =
      args.getDouble("sample-cost-ns", 0.0, 0.0, 1e12);
  options.pipeline.reconstruct.fold.probeOverheadNs =
      args.getDouble("probe-cost-ns", 0.0, 0.0, 1e12);
  if (const int rc = failOnUnused(args, out)) return rc;
  const auto t = loadTrace(args, path, out);
  analysis::printReport(analysis::buildReport(t, options), t, out);
  return 0;
}

int cmdImbalance(const Args& args, std::ostream& out) {
  const std::string path = args.get("trace");
  if (path.empty()) {
    out << "error: imbalance requires --trace\n";
    return 2;
  }
  if (const int rc = failOnUnused(args, out)) return rc;
  const auto t = loadTrace(args, path, out);
  const auto result = analysis::analyze(t);
  analysis::imbalanceTable(analysis::imbalanceAnalysis(result, t.numRanks()))
      .print(out, "load-balance characterization");
  return 0;
}

int cmdEvolution(const Args& args, std::ostream& out) {
  const std::string path = args.get("trace");
  if (path.empty()) {
    out << "error: evolution requires --trace\n";
    return 2;
  }
  if (const int rc = failOnUnused(args, out)) return rc;
  const auto t = loadTrace(args, path, out);
  const auto result = analysis::analyze(t);
  analysis::evolutionTable(analysis::durationEvolution(result))
      .print(out, "cross-run evolution (per-cluster duration trends)");
  return 0;
}

int cmdExportParaver(const Args& args, std::ostream& out) {
  const std::string path = args.get("trace");
  const std::string base = args.get("out");
  if (path.empty() || base.empty()) {
    out << "error: export-paraver requires --trace and --out\n";
    return 2;
  }
  if (const int rc = failOnUnused(args, out)) return rc;
  const auto t = loadTrace(args, path, out);
  trace::exportParaver(t, base);
  out << "paraver triple -> " << base << ".{prv,pcf,row}\n";
  return 0;
}

int cmdTelemetryDiff(const std::vector<std::string>& paths, const Args& args,
                     std::ostream& out) {
  if (paths.size() != 2) {
    out << "error: telemetry-diff requires exactly two metrics JSON files\n"
        << "usage: unveil telemetry-diff A.json B.json [--threshold PCT]\n";
    return 2;
  }
  analysis::TelemetryDiffOptions options;
  options.thresholdPct = args.getDouble("threshold", 10.0, 0.0, 1e6);
  options.memThresholdPct = args.getDouble("mem-threshold", 25.0, 0.0, 1e6);
  options.minWallNs = static_cast<std::int64_t>(
      args.getDouble("min-wall-ms", 1.0, 0.0, 1e9) * 1e6);
  if (const int rc = failOnUnused(args, out)) return rc;

  const auto report = analysis::diffMetricsFiles(paths[0], paths[1], options);
  analysis::telemetryDiffTable(report).print(out, "telemetry diff (B vs A)");
  if (report.regressions > 0) {
    out << report.regressions << " regression"
        << (report.regressions == 1 ? "" : "s") << " above threshold (wall/cpu "
        << options.thresholdPct << "%, memory " << options.memThresholdPct
        << "%)\n";
    return 3;
  }
  out << "no regressions above threshold (wall/cpu " << options.thresholdPct
      << "%, memory " << options.memThresholdPct << "%)\n";
  return 0;
}

/// Only the suffix after the LAST '=' is considered, and only when it
/// parses as a number: a token like run=3/trace.uvtb is a plain path whose
/// name contains '=' (campaigns without annotations derive the parameter
/// from trace metadata). A numeric suffix that falls outside the
/// admissible range is a genuine annotation and errors with full context.
analysis::CampaignMemberSpec parseCampaignMember(const std::string& tok) {
  analysis::CampaignMemberSpec spec;
  const auto eq = tok.rfind('=');
  if (eq == std::string::npos) {
    spec.path = tok;
    return spec;
  }
  const std::string valueText = tok.substr(eq + 1);
  double v = 0.0;
  const support::ParseStatus st = support::parseDouble(valueText, v);
  if (st == support::ParseStatus::Malformed) {
    spec.path = tok;
    return spec;
  }
  const std::string path = tok.substr(0, eq);
  if (path.empty())
    throw ConfigError("malformed trace annotation '" + tok +
                      "': empty trace path before '=' (expected TRACE=VALUE)");
  if (st == support::ParseStatus::OutOfRange || !std::isfinite(v) ||
      v < 1e-6 || v > 1e12)
    throw ConfigError("trace annotation '" + tok +
                      "' must carry a value in [1e-06, 1e+12], got " + valueText);
  spec.path = path;
  spec.param = v;
  return spec;
}

int cmdCampaign(const Args& args, std::ostream& out) {
  std::vector<analysis::CampaignMemberSpec> specs;
  specs.reserve(args.positionals().size());
  for (const auto& tok : args.positionals())
    specs.push_back(parseCampaignMember(tok));
  if (specs.size() < 3) {
    out << "error: campaign requires at least 3 trace arguments, got "
        << specs.size() << "\n"
        << "usage: unveil campaign TRACE[=PARAM] TRACE[=PARAM] TRACE[=PARAM] "
           "... [--param NAME] [--project LIST] [--json-out FILE] "
           "[--extrap-out FILE]\n";
    return 2;
  }

  analysis::CampaignOptions options;
  options.pipeline = analyzeConfigFromArgs(args);
  options.read = readOptionsFromArgs(args);
  options.stream = args.has("stream");
  options.paramName = args.get("param", "ranks");
  if (options.paramName.empty())
    throw ConfigError("flag --param expects a nonempty parameter name");
  if (args.has("project")) {
    const std::string list = args.get("project");
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t comma = list.find(',', start);
      const std::string item = list.substr(
          start, comma == std::string::npos ? std::string::npos : comma - start);
      double v = 0.0;
      if (support::parseDouble(item, v) != support::ParseStatus::Ok ||
          !std::isfinite(v) || v < 1e-6 || v > 1e12)
        throw ConfigError("flag --project expects comma-separated values in "
                          "[1e-06, 1e+12], got '" + item + "' in '" + list + "'");
      options.projectAt.push_back(v);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  const std::string jsonPath = args.get("json-out", "");
  const std::string extrapPath = args.get("extrap-out", "");
  if (const int rc = failOnUnused(args, out)) return rc;

  // Output sinks open before the (potentially long) analysis so a bad path
  // fails in seconds, not hours.
  std::ofstream jsonOut, extrapOut;
  if (!jsonPath.empty()) {
    jsonOut.open(jsonPath);
    if (!jsonOut)
      throw ConfigError("cannot open --json-out path '" + jsonPath + "'");
  }
  if (!extrapPath.empty()) {
    extrapOut.open(extrapPath);
    if (!extrapOut)
      throw ConfigError("cannot open --extrap-out path '" + extrapPath + "'");
  }

  const auto campaign = analysis::runCampaign(specs, options);
  analysis::printCampaignReport(campaign, out);
  if (jsonOut.is_open()) {
    analysis::writeCampaignJson(campaign, jsonOut);
    out << "campaign JSON -> " << jsonPath << '\n';
  }
  if (extrapOut.is_open()) {
    analysis::writeExtrapText(campaign, extrapOut);
    out << "Extra-P text -> " << extrapPath << '\n';
  }
  return 0;
}

int runCli(const std::vector<std::string>& argv, std::ostream& out) {
  if (argv.empty()) {
    out << usage();
    return 2;
  }
  const std::string command = argv.front();
  const std::vector<std::string> rest(argv.begin() + 1, argv.end());
  // telemetry-diff and campaign take variable-length input lists
  // positionally (unveil campaign a.uvtb b.uvtb c.uvtb --param ranks); every
  // other command keeps the strict flags-only grammar.
  const bool wantsPositionals = command == "telemetry-diff" || command == "campaign";
  bool flightrec = false;
  try {
    const Args args = Args::parse(rest, wantsPositionals);
    // --strict is consumed lazily (by loadTrace, after unused-flag
    // checking); touch it here so it registers as a known global flag.
    (void)args.has("strict");
    const ThreadsScope threads(args);
    TelemetryScope telemetry(args, out);
    flightrec = !args.has("no-flightrec");
    support::flightRecord(support::FlightKind::Marker, "command: " + command);
    const auto dispatch = [&]() -> int {
      if (command == "simulate") return cmdSimulate(args, out);
      if (command == "info") return cmdInfo(args, out);
      if (command == "analyze") return cmdAnalyze(args, out);
      if (command == "accuracy") return cmdAccuracy(args, out);
      if (command == "report") return cmdReport(args, out);
      if (command == "diff") return cmdDiff(args, out);
      if (command == "imbalance") return cmdImbalance(args, out);
      if (command == "evolution") return cmdEvolution(args, out);
      if (command == "export-paraver") return cmdExportParaver(args, out);
      if (command == "serve") return cmdServe(args, out);
      if (command == "client") return cmdClient(args, out);
      if (command == "telemetry-diff")
        return cmdTelemetryDiff(args.positionals(), args, out);
      if (command == "campaign") return cmdCampaign(args, out);
      out << "error: unknown command '" << command << "'\n" << usage();
      return 2;
    };
    const int rc = dispatch();
    telemetry.finish();
    return rc;
  } catch (const ConfigError& e) {
    // Bad flags/spec: a user mistake, not a crash worth a flight dump.
    out << "error: " << e.what() << '\n';
    return 1;
  } catch (const Error& e) {
    out << "error: " << e.what() << '\n';
    // TelemetryScope's destructor already disarmed recording during
    // unwinding, but the ring still holds the run's last events — exactly
    // what a fatal-error postmortem needs.
    auto& recorder = support::FlightRecorder::instance();
    if (flightrec && recorder.recorded() > 0 && recorder.dump("fatal-error"))
      out << "flight recorder -> " << recorder.dumpPath() << '\n';
    return 1;
  }
}

}  // namespace unveil::cli
