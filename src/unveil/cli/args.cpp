#include "unveil/cli/args.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "unveil/support/error.hpp"
#include "unveil/support/parse.hpp"

namespace unveil::cli {

namespace {

/// "in [min, max]" with open ends elided to ">= min" / "<= max".
template <typename T>
std::string boundsText(T min, T max, bool openMin, bool openMax) {
  std::ostringstream os;
  if (!openMin && !openMax)
    os << "in [" << min << ", " << max << "]";
  else if (!openMin)
    os << ">= " << min;
  else
    os << "<= " << max;
  return os.str();
}

}  // namespace

Args Args::parse(const std::vector<std::string>& argv, bool allowPositionals) {
  Args args;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& tok = argv[i];
    if (tok.rfind("--", 0) != 0 || tok.size() <= 2) {
      if (allowPositionals && tok.rfind("--", 0) != 0) {
        args.positionals_.push_back(tok);
        continue;
      }
      throw ConfigError("unexpected argument '" + tok + "' (flags are --name [value])");
    }
    std::string name = tok.substr(2);
    std::string value;
    // --name=value and --name value are equivalent; '=' wins so values that
    // themselves start with "--" stay representable.
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name.resize(eq);
      if (name.empty())
        throw ConfigError("unexpected argument '" + tok + "' (flags are --name[=value])");
    } else if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
      value = argv[i + 1];
      ++i;
    }
    args.values_[name] = value;
    args.used_[name] = false;
  }
  return args;
}

bool Args::has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  used_[name] = true;
  return true;
}

std::string Args::get(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  return it->second;
}

long long Args::getInt(const std::string& name, long long fallback,
                       long long min, long long max) const {
  const std::string v = get(name, "");
  if (v.empty() && values_.find(name) == values_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end == nullptr || *end != '\0')
    throw ConfigError("flag --" + name + " expects an integer, got '" + v + "'");
  if (errno == ERANGE)
    throw ConfigError("flag --" + name + " value '" + v + "' overflows");
  if (out < min || out > max) {
    const bool openMin = min == std::numeric_limits<long long>::min();
    const bool openMax = max == std::numeric_limits<long long>::max();
    throw ConfigError("flag --" + name + " must be " +
                      boundsText(min, max, openMin, openMax) + ", got " + v);
  }
  return out;
}

double Args::getDouble(const std::string& name, double fallback, double min,
                       double max) const {
  const std::string v = get(name, "");
  if (v.empty() && values_.find(name) == values_.end()) return fallback;
  double out = 0.0;
  const support::ParseStatus st = support::parseDouble(v, out);
  if (st == support::ParseStatus::Malformed)
    throw ConfigError("flag --" + name + " expects a number, got '" + v + "'");
  if (st == support::ParseStatus::OutOfRange || !std::isfinite(out))
    throw ConfigError("flag --" + name + " value '" + v + "' overflows");
  if (out < min || out > max) {
    const bool openMin = min == std::numeric_limits<double>::lowest();
    const bool openMax = max == std::numeric_limits<double>::max();
    throw ConfigError("flag --" + name + " must be " +
                      boundsText(min, max, openMin, openMax) + ", got " + v);
  }
  return out;
}

std::vector<std::string> Args::unusedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    auto it = used_.find(name);
    if (it == used_.end() || !it->second) out.push_back(name);
  }
  return out;
}

}  // namespace unveil::cli
