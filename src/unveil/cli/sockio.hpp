#pragma once

/// \file sockio.hpp
/// Socket I/O primitives for the serve daemon and its client, extracted so
/// the short-write / EINTR / timeout handling is testable without a live
/// daemon. The syscall layer is injectable: tests swap the hooks for fault
/// shims (partial writes, EINTR storms, mid-line hangups) and restore them.
///
/// Semantics under SO_SNDTIMEO/SO_RCVTIMEO:
///  - a timeout surfaces as -1 with EAGAIN/EWOULDBLOCK and is a hard
///    failure (the peer gets no partial protocol line it could act on);
///  - EINTR restarts the call, but each restart also restarts the kernel
///    timeout, so retries are bounded — a steady signal stream must not be
///    able to pin a pool worker past its I/O deadline forever.

#include <sys/types.h>

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace unveil::cli::sockio {

/// Syscall-shaped hooks; defaults call ::send / ::recv. Tests install fault
/// shims via ScopedHooks. Not thread-safe to swap while connections are in
/// flight — tests run their faulty exchanges single-threaded.
struct Hooks {
  ssize_t (*send)(int fd, const void* buf, std::size_t len, int flags);
  ssize_t (*recv)(int fd, void* buf, std::size_t len, int flags);
};

/// The active hooks (process-wide).
[[nodiscard]] Hooks& hooks();

/// RAII swap of the active hooks; restores the previous set on destruction.
class ScopedHooks {
 public:
  explicit ScopedHooks(const Hooks& replacement);
  ~ScopedHooks();
  ScopedHooks(const ScopedHooks&) = delete;
  ScopedHooks& operator=(const ScopedHooks&) = delete;

 private:
  Hooks saved_;
};

/// Upper bound on EINTR restarts per call. Each EINTR restarts the kernel's
/// SO_*TIMEO clock, so without a cap a signal every few ms extends a
/// "30-second" I/O deadline indefinitely.
inline constexpr int kMaxEintrRetries = 256;

/// Arms SO_RCVTIMEO and SO_SNDTIMEO on \p fd.
void setIoTimeout(int fd, double seconds);

/// Sends the whole buffer, riding out short writes and (bounded) EINTR.
/// MSG_NOSIGNAL so a peer that hung up cannot SIGPIPE the process. Returns
/// false on error, timeout, or EINTR-retry exhaustion, with errno telling
/// why; a zero-length send result is treated as an error, not progress.
[[nodiscard]] bool sendAll(int fd, std::string_view data);

/// Reads up to (and including) the first '\n'; returns the line without the
/// newline. nullopt on EOF-before-newline, error, timeout, EINTR-retry
/// exhaustion, or a line longer than \p maxLineBytes.
[[nodiscard]] std::optional<std::string> recvLine(int fd,
                                                  std::size_t maxLineBytes);

}  // namespace unveil::cli::sockio
