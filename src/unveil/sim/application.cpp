#include "unveil/sim/application.hpp"

#include <cmath>
#include <string>

#include "unveil/support/error.hpp"

namespace unveil::sim {

void DurationSpec::validate() const {
  if (nominalNs <= 0.0) throw ConfigError("phase nominal duration must be positive");
  if (rankImbalanceSigma < 0.0 || instanceSigma < 0.0)
    throw ConfigError("duration sigmas must be non-negative");
  if (drift < -0.9) throw ConfigError("duration drift must be > -0.9");
}

IterativeApplication::IterativeApplication(std::string name, trace::Rank numRanks,
                                           std::uint32_t iterations, std::uint64_t seed)
    : name_(std::move(name)), numRanks_(numRanks), iterations_(iterations), seed_(seed) {
  if (numRanks == 0) throw ConfigError("application requires numRanks > 0");
  if (iterations == 0) throw ConfigError("application requires iterations > 0");
}

const PhaseSpec& IterativeApplication::phase(std::uint32_t id) const {
  UNVEIL_ASSERT(id < phases_.size(), "phase id out of range");
  return phases_[id];
}

std::uint32_t IterativeApplication::addPhase(PhaseSpec spec) {
  spec.duration.validate();
  spec.noise.validate();
  phases_.push_back(std::move(spec));
  return static_cast<std::uint32_t>(phases_.size() - 1);
}

double IterativeApplication::rankFactor(std::uint32_t phaseId, trace::Rank r) const {
  const auto& spec = phases_[phaseId].duration;
  if (spec.rankImbalanceSigma == 0.0) return 1.0;
  support::Rng rng(seed_, name_ + "/imbalance/p" + std::to_string(phaseId) + "/r" +
                              std::to_string(r));
  return rng.lognormalMedian(1.0, spec.rankImbalanceSigma);
}

Program IterativeApplication::buildProgram(trace::Rank r) const {
  if (r >= numRanks_) throw ConfigError("buildProgram rank out of range");
  Program prog;
  support::Rng rng(seed_, name_ + "/program/r" + std::to_string(r));
  for (std::uint32_t iter = 0; iter < iterations_; ++iter) {
    IterationBuilder builder(*this, r, iter, rng, prog);
    buildIteration(r, iter, builder);
  }
  return prog;
}

IterativeApplication::IterationBuilder::IterationBuilder(const IterativeApplication& app,
                                                         trace::Rank rank,
                                                         std::uint32_t iter,
                                                         support::Rng& rng, Program& out)
    : app_(app), rank_(rank), iter_(iter), rng_(rng), out_(out) {}

void IterativeApplication::IterationBuilder::compute(std::uint32_t phaseId) {
  UNVEIL_ASSERT(phaseId < app_.phases_.size(), "compute phase id out of range");
  const PhaseSpec& spec = app_.phases_[phaseId];
  const double driftFactor =
      app_.iterations_ > 1
          ? 1.0 + spec.duration.drift * static_cast<double>(iter_) /
                      static_cast<double>(app_.iterations_ - 1)
          : 1.0;
  const double instanceFactor = rng_.lognormalMedian(1.0, spec.duration.instanceSigma);
  const double ns = spec.duration.nominalNs * app_.rankFactor(phaseId, rank_) *
                    instanceFactor * driftFactor;
  ComputeAction a;
  a.phaseId = phaseId;
  a.iteration = iter_;
  a.workNs = static_cast<trace::TimeNs>(std::llround(std::max(ns, 1.0)));
  a.noiseFactors = spec.noise.realize(rng_);
  a.warp = spec.noise.realizeWarp(rng_);
  // Counter totals scale with the duration factors: a longer instance did
  // proportionally more work. This keeps IPC/MIPS stable per phase (the
  // clustering feature space) while durations vary.
  const double workScale = ns / spec.duration.nominalNs;
  for (double& f : a.noiseFactors) f *= workScale;
  out_.emplace_back(a);
}

void IterativeApplication::IterationBuilder::send(trace::Rank peer, std::uint32_t tag,
                                                  std::uint64_t bytes) {
  UNVEIL_ASSERT(peer < app_.numRanks_, "send peer out of range");
  out_.emplace_back(SendAction{peer, tag, bytes});
}

void IterativeApplication::IterationBuilder::recv(trace::Rank peer, std::uint32_t tag) {
  UNVEIL_ASSERT(peer < app_.numRanks_, "recv peer out of range");
  out_.emplace_back(RecvAction{peer, tag});
}

void IterativeApplication::IterationBuilder::collective(trace::MpiOp op,
                                                        std::uint64_t bytes) {
  out_.emplace_back(CollectiveAction{op, bytes});
}

}  // namespace unveil::sim
