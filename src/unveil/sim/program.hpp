#pragma once

/// \file program.hpp
/// Per-rank action sequences executed by the engine.
///
/// An application model compiles, per rank, a deterministic sequence of
/// actions: computation bursts (with pre-realized durations and counter-noise
/// factors so runs are reproducible) and communication operations. The
/// engine replays these sequences under the network model and the
/// measurement configuration.

#include <array>
#include <cstdint>
#include <variant>
#include <vector>

#include "unveil/counters/counter.hpp"
#include "unveil/trace/record.hpp"

namespace unveil::sim {

/// A computation burst of one phase instance.
struct ComputeAction {
  std::uint32_t phaseId = 0;   ///< Index into the application's phase table.
  std::uint32_t iteration = 0; ///< Outer iteration this instance belongs to.
  trace::TimeNs workNs = 0;    ///< Pure work duration (before measurement overhead).
  /// Per-counter multiplicative noise factors realized at program-build time.
  std::array<double, counters::kNumCounters> noiseFactors{};
  /// Per-instance time-warp exponent (see NoiseModel::warpSigma).
  double warp = 1.0;
};

/// Point-to-point send (non-blocking sender-side cost, eager protocol).
struct SendAction {
  trace::Rank peer = 0;
  std::uint32_t tag = 0;
  std::uint64_t bytes = 0;
};

/// Point-to-point receive; blocks until the matching message arrives.
struct RecvAction {
  trace::Rank peer = 0;
  std::uint32_t tag = 0;
};

/// A collective operation (Barrier, Allreduce, Alltoall).
struct CollectiveAction {
  trace::MpiOp op = trace::MpiOp::Barrier;
  std::uint64_t bytes = 0;  ///< Per-rank payload.
};

/// One program step.
using Action = std::variant<ComputeAction, SendAction, RecvAction, CollectiveAction>;

/// A rank's full action sequence.
using Program = std::vector<Action>;

}  // namespace unveil::sim
