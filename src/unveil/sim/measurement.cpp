#include "unveil/sim/measurement.hpp"

#include "unveil/support/error.hpp"

namespace unveil::sim {

void InstrumentationConfig::validate() const {
  if (probeCostNs < 0.0) throw ConfigError("probe cost must be non-negative");
}

void SamplingConfig::validate() const {
  if (enabled && periodNs <= 0.0) throw ConfigError("sampling period must be positive");
  if (jitterFrac < 0.0 || jitterFrac >= 1.0)
    throw ConfigError("sampling jitter fraction must be in [0, 1)");
  if (sampleCostNs < 0.0) throw ConfigError("sample cost must be non-negative");
  if (multiplexGroups == 0) throw ConfigError("multiplexGroups must be >= 1");
}

trace::CounterMask multiplexMask(std::size_t groups,
                                 std::size_t sampleIndex) noexcept {
  if (groups <= 1) return trace::kAllCountersMask;
  // Fixed counters: TOT_INS (bit 0) and TOT_CYC (bit 1).
  trace::CounterMask mask = 0b11;
  const std::size_t active = sampleIndex % groups;
  for (std::size_t i = 2; i < counters::kNumCounters; ++i) {
    if ((i - 2) % groups == active)
      mask = static_cast<trace::CounterMask>(mask | (1u << i));
  }
  return mask;
}

void MeasurementConfig::validate() const {
  instrumentation.validate();
  sampling.validate();
}

MeasurementConfig MeasurementConfig::none() {
  MeasurementConfig c;
  c.instrumentation.enabled = false;
  c.sampling.enabled = false;
  return c;
}

MeasurementConfig MeasurementConfig::instrumentationOnly() {
  MeasurementConfig c;
  c.instrumentation.enabled = true;
  c.sampling.enabled = false;
  return c;
}

MeasurementConfig MeasurementConfig::folding(double periodNs) {
  MeasurementConfig c;
  c.instrumentation.enabled = true;
  c.sampling.enabled = true;
  c.sampling.periodNs = periodNs;
  return c;
}

MeasurementConfig MeasurementConfig::fineGrain(double periodNs) {
  MeasurementConfig c;
  c.instrumentation.enabled = true;
  c.sampling.enabled = true;
  c.sampling.periodNs = periodNs;
  return c;
}

}  // namespace unveil::sim
