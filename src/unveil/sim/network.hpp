#pragma once

/// \file network.hpp
/// Interconnect cost model (latency–bandwidth, log-tree collectives).
///
/// The paper's applications ran on real clusters; here message and
/// collective costs come from the classic postal model: a point-to-point
/// message of b bytes costs latency + b / bandwidth, and a collective over P
/// ranks costs ceil(log2 P) such steps. This is the same family of models
/// Dimemas uses to replay Paraver traces, which keeps communication shapes
/// (who waits for whom, how imbalance surfaces at collectives) realistic
/// without simulating a full network.

#include <cstdint>

#include "unveil/trace/record.hpp"

namespace unveil::sim {

/// Postal-model interconnect parameters and cost queries.
struct NetworkModel {
  /// One-way wire latency (ns). Default ~1 µs (commodity cluster MPI).
  double latencyNs = 1000.0;
  /// Link bandwidth in bytes per ns (default 10 GB/s = 10 B/ns).
  double bandwidthBytesPerNs = 10.0;
  /// Sender-side CPU overhead per message (ns).
  double sendOverheadNs = 300.0;
  /// Receiver-side CPU overhead per message (ns).
  double recvOverheadNs = 300.0;

  /// Validates parameter ranges; throws ConfigError on non-positive values.
  void validate() const;

  /// Time from send start until the payload is available at the receiver.
  [[nodiscard]] double transferNs(std::uint64_t bytes) const noexcept;

  /// CPU time the sender is busy issuing the message.
  [[nodiscard]] double sendCostNs(std::uint64_t bytes) const noexcept;

  /// Cost of a collective over \p ranks ranks moving \p bytes per rank,
  /// measured from the instant the last rank arrives.
  [[nodiscard]] double collectiveCostNs(trace::MpiOp op, std::uint64_t bytes,
                                        trace::Rank ranks) const noexcept;
};

}  // namespace unveil::sim
