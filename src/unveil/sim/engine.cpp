#include "unveil/sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::sim {

namespace {

using counters::CounterId;
using counters::CounterSet;
using counters::kNumCounters;
using trace::Rank;
using trace::TimeNs;

/// Counter accumulation rates (per ns) while inside MPI: a busy-waiting MPI
/// library retires instructions at a modest rate with few FP ops and few
/// cache misses. Indexed like CounterSet.
constexpr std::array<double, kNumCounters> kMpiRates = {
    0.8,     // TOT_INS
    2.6,     // TOT_CYC
    0.002,   // L1_DCM
    0.0004,  // L2_DCM
    0.0005,  // FP_OPS
    0.004,   // BR_MSP
};

/// Per-rank execution state.
struct RankRun {
  Program program;
  std::size_t pc = 0;
  double now = 0.0;  ///< Clock (ns, fractional internally).
  std::array<double, kNumCounters> counters{};  ///< Cumulative counts.
  double nextSampleTick = 0.0;
  std::size_t sampleSeq = 0;  ///< Samples emitted so far (multiplex rotation).
  support::Rng sampleRng{0};
  std::size_t collectiveIdx = 0;   ///< Next collective instance to join.
  bool arrivedAtCurrent = false;   ///< Arrival recorded for collectiveIdx.
};

/// One in-flight collective instance.
struct CollectiveInstance {
  trace::MpiOp op = trace::MpiOp::Barrier;
  std::uint64_t bytes = 0;
  std::size_t arrivals = 0;
  double maxArrival = 0.0;
  std::vector<double> arrivalTime;  ///< Per rank; NaN until arrived.
  bool resolved = false;
  double finish = 0.0;
};

class Engine {
 public:
  Engine(std::shared_ptr<const Application> app, const SimConfig& cfg)
      : app_(std::move(app)), cfg_(cfg), trace_(app_->name(), app_->numRanks()) {}

  RunResult run();

 private:
  enum class Step { Executed, Blocked, Done };

  Step advance(Rank r);
  void execCompute(Rank r, const ComputeAction& a);
  void execSend(Rank r, const SendAction& a);
  Step execRecv(Rank r, const RecvAction& a);
  Step execCollective(Rank r, const CollectiveAction& a);

  /// Advances counters linearly at MPI rates over [t0, t1], draining sample
  /// ticks inside the window, and emits the MPI begin/end events.
  void mpiInterval(Rank r, trace::MpiOp op, double t0, double t1);

  /// Emits any pending sample ticks strictly before \p t using the current
  /// (frozen) counter values — covers probe gaps between regions.
  void drainStaleTicks(Rank r, double t);

  void advanceSampleTick(Rank r);

  CounterSet snapshot(Rank r) const;
  void emitEvent(Rank r, double t, trace::EventKind kind, std::uint32_t value);
  void emitSample(Rank r, double t, const CounterSet& c,
                  std::uint32_t regionId = trace::kNoRegion);
  void emitState(Rank r, double t0, double t1, trace::State s);

  std::shared_ptr<const Application> app_;
  SimConfig cfg_;
  trace::Trace trace_;
  GroundTruth truth_;
  std::vector<RankRun> ranks_;
  std::map<std::tuple<Rank, Rank, std::uint32_t>, std::deque<double>> channels_;
  std::vector<CollectiveInstance> collectives_;
};

CounterSet Engine::snapshot(Rank r) const {
  CounterSet out;
  for (std::size_t i = 0; i < kNumCounters; ++i)
    out.values[i] = static_cast<std::uint64_t>(std::llround(ranks_[r].counters[i]));
  return out;
}

void Engine::emitEvent(Rank r, double t, trace::EventKind kind, std::uint32_t value) {
  if (!cfg_.measurement.instrumentation.enabled) return;
  trace::Event e;
  e.rank = r;
  e.time = static_cast<TimeNs>(std::llround(t));
  e.kind = kind;
  e.value = value;
  e.counters = snapshot(r);
  trace_.addEvent(e);
}

void Engine::emitSample(Rank r, double t, const CounterSet& c,
                        std::uint32_t regionId) {
  trace::Sample s;
  s.rank = r;
  s.time = static_cast<TimeNs>(std::llround(t));
  s.validMask = multiplexMask(cfg_.measurement.sampling.multiplexGroups,
                              ranks_[r].sampleSeq++);
  if (cfg_.measurement.sampling.sampleCallstacks) s.regionId = regionId;
  s.counters = c;
  // Counters outside the multiplex group were not read: zero them so no
  // consumer can accidentally use fabricated values.
  for (std::size_t i = 0; i < kNumCounters; ++i)
    if (!trace::maskHas(s.validMask, static_cast<CounterId>(i)))
      s.counters.values[i] = 0;
  trace_.addSample(s);
}

void Engine::emitState(Rank r, double t0, double t1, trace::State s) {
  if (!cfg_.measurement.instrumentation.enabled ||
      !cfg_.measurement.instrumentation.emitStates)
    return;
  trace::StateInterval iv;
  iv.rank = r;
  iv.begin = static_cast<TimeNs>(std::llround(t0));
  iv.end = static_cast<TimeNs>(std::llround(t1));
  iv.state = s;
  trace_.addState(iv);
}

void Engine::advanceSampleTick(Rank r) {
  auto& rr = ranks_[r];
  const auto& sc = cfg_.measurement.sampling;
  const double jitter = sc.jitterFrac > 0.0 ? rr.sampleRng.uniform(-sc.jitterFrac,
                                                                   sc.jitterFrac)
                                            : 0.0;
  rr.nextSampleTick += sc.periodNs * (1.0 + jitter);
}

void Engine::drainStaleTicks(Rank r, double t) {
  if (!cfg_.measurement.sampling.enabled) return;
  auto& rr = ranks_[r];
  while (rr.nextSampleTick < t) {
    emitSample(r, rr.nextSampleTick, snapshot(r));
    advanceSampleTick(r);
  }
}

void Engine::execCompute(Rank r, const ComputeAction& a) {
  auto& rr = ranks_[r];
  const auto& instr = cfg_.measurement.instrumentation;
  const auto& samp = cfg_.measurement.sampling;
  const PhaseSpec& spec = app_->phase(a.phaseId);
  const counters::RealizedBurst burst(spec.model, a.noiseFactors);

  const double t0 = rr.now;
  drainStaleTicks(r, t0);
  emitEvent(r, t0, trace::EventKind::PhaseBegin, a.phaseId);
  const double probe = instr.enabled ? instr.probeCostNs : 0.0;
  const double workStart = t0 + probe;
  const double workNs = static_cast<double>(a.workNs);

  // Work runs from workStart; every sample serviced inside the burst pauses
  // the work for sampleCostNs, pushing the end out. Samples observe the
  // fraction of *work* completed at their tick.
  double end = workStart + workNs;
  std::size_t samplesTaken = 0;
  const std::array<double, kNumCounters> base = rr.counters;
  if (samp.enabled) {
    while (rr.nextSampleTick < end) {
      const double tick = rr.nextSampleTick;
      const double workElapsed =
          tick - workStart - static_cast<double>(samplesTaken) * samp.sampleCostNs;
      // The per-instance time warp shifts this instance's internal regime
      // boundaries; pow is monotone with 0->0 and 1->1, preserving counter
      // monotonicity and endpoint totals.
      const double frac =
          std::pow(std::clamp(workElapsed / workNs, 0.0, 1.0), a.warp);
      CounterSet c;
      for (std::size_t i = 0; i < kNumCounters; ++i) {
        // Round the sum, not the parts: rounding base and in-burst counts
        // separately can regress by 1 against the end-probe snapshot.
        const double v =
            base[i] + burst.cumulativeAtExact(static_cast<CounterId>(i), frac);
        c.values[i] = static_cast<std::uint64_t>(std::llround(v));
      }
      // The sampled callstack attributes this instant to a code region
      // (1-based; 0 = none).
      emitSample(r, tick, c, spec.model.regionAt(frac) + 1);
      ++samplesTaken;
      end += samp.sampleCostNs;
      advanceSampleTick(r);
    }
  }

  // Commit realized totals to the cumulative counters.
  for (std::size_t i = 0; i < kNumCounters; ++i)
    rr.counters[i] += burst.total(static_cast<CounterId>(i));

  emitEvent(r, end, trace::EventKind::PhaseEnd, a.phaseId);
  emitState(r, t0, end, trace::State::Compute);

  BurstTruth bt;
  bt.rank = r;
  bt.phaseId = a.phaseId;
  bt.iteration = a.iteration;
  bt.begin = static_cast<TimeNs>(std::llround(t0));
  bt.end = static_cast<TimeNs>(std::llround(end));
  bt.workNs = a.workNs;
  bt.warp = a.warp;
  for (std::size_t i = 0; i < kNumCounters; ++i)
    bt.totals[i] = burst.total(static_cast<CounterId>(i));
  truth_.bursts.push_back(bt);

  rr.now = end + probe;  // end probe cost delays the next region.
}

void Engine::mpiInterval(Rank r, trace::MpiOp op, double t0, double t1) {
  auto& rr = ranks_[r];
  drainStaleTicks(r, t0);
  emitEvent(r, t0, trace::EventKind::MpiBegin, static_cast<std::uint32_t>(op));
  if (cfg_.measurement.sampling.enabled) {
    const std::array<double, kNumCounters> base = rr.counters;
    while (rr.nextSampleTick < t1) {
      const double tick = rr.nextSampleTick;
      const double dt = std::max(tick - t0, 0.0);
      CounterSet c;
      for (std::size_t i = 0; i < kNumCounters; ++i)
        c.values[i] =
            static_cast<std::uint64_t>(std::llround(base[i] + kMpiRates[i] * dt));
      emitSample(r, tick, c);
      advanceSampleTick(r);
    }
  }
  for (std::size_t i = 0; i < kNumCounters; ++i)
    rr.counters[i] += kMpiRates[i] * (t1 - t0);
  emitEvent(r, t1, trace::EventKind::MpiEnd, static_cast<std::uint32_t>(op));
  emitState(r, t0, t1, trace::State::Mpi);
  rr.now = t1;
}

void Engine::execSend(Rank r, const SendAction& a) {
  auto& rr = ranks_[r];
  const double probe2 =
      cfg_.measurement.instrumentation.enabled
          ? 2.0 * cfg_.measurement.instrumentation.probeCostNs
          : 0.0;
  const double t0 = rr.now;
  const double busy = cfg_.network.sendCostNs(a.bytes) + probe2;
  const double avail = t0 + cfg_.network.transferNs(a.bytes);
  channels_[{r, a.peer, a.tag}].push_back(avail);
  mpiInterval(r, trace::MpiOp::Send, t0, t0 + busy);
}

Engine::Step Engine::execRecv(Rank r, const RecvAction& a) {
  auto& rr = ranks_[r];
  auto it = channels_.find({a.peer, r, a.tag});
  if (it == channels_.end() || it->second.empty()) return Step::Blocked;
  const double avail = it->second.front();
  it->second.pop_front();
  const double probe2 =
      cfg_.measurement.instrumentation.enabled
          ? 2.0 * cfg_.measurement.instrumentation.probeCostNs
          : 0.0;
  const double t0 = rr.now;
  const double finish = std::max(t0, avail) + cfg_.network.recvOverheadNs + probe2;
  mpiInterval(r, trace::MpiOp::Recv, t0, finish);
  return Step::Executed;
}

Engine::Step Engine::execCollective(Rank r, const CollectiveAction& a) {
  auto& rr = ranks_[r];
  const std::size_t idx = rr.collectiveIdx;
  if (collectives_.size() <= idx) collectives_.resize(idx + 1);
  CollectiveInstance& inst = collectives_[idx];
  if (inst.arrivalTime.empty())
    inst.arrivalTime.assign(app_->numRanks(),
                            std::numeric_limits<double>::quiet_NaN());

  if (!rr.arrivedAtCurrent) {
    if (inst.arrivals == 0) {
      inst.op = a.op;
      inst.bytes = a.bytes;
    } else if (inst.op != a.op || inst.bytes != a.bytes) {
      throw Error("mismatched collective at instance " + std::to_string(idx) +
                  " on rank " + std::to_string(r));
    }
    inst.arrivalTime[r] = rr.now;
    inst.maxArrival = std::max(inst.maxArrival, rr.now);
    ++inst.arrivals;
    rr.arrivedAtCurrent = true;
    if (inst.arrivals == app_->numRanks()) {
      inst.finish = inst.maxArrival +
                    cfg_.network.collectiveCostNs(inst.op, inst.bytes, app_->numRanks());
      inst.resolved = true;
    }
  }
  if (!inst.resolved) return Step::Blocked;

  const double probe2 =
      cfg_.measurement.instrumentation.enabled
          ? 2.0 * cfg_.measurement.instrumentation.probeCostNs
          : 0.0;
  mpiInterval(r, inst.op, inst.arrivalTime[r], inst.finish + probe2);
  ++rr.collectiveIdx;
  rr.arrivedAtCurrent = false;
  return Step::Executed;
}

Engine::Step Engine::advance(Rank r) {
  auto& rr = ranks_[r];
  if (rr.pc >= rr.program.size()) return Step::Done;
  const Action& action = rr.program[rr.pc];
  Step result = Step::Executed;
  if (const auto* c = std::get_if<ComputeAction>(&action)) {
    execCompute(r, *c);
  } else if (const auto* s = std::get_if<SendAction>(&action)) {
    execSend(r, *s);
  } else if (const auto* v = std::get_if<RecvAction>(&action)) {
    result = execRecv(r, *v);
  } else {
    result = execCollective(r, std::get<CollectiveAction>(action));
  }
  if (result == Step::Executed) ++rr.pc;
  return result;
}

RunResult Engine::run() {
  cfg_.validate();
  const Rank nRanks = app_->numRanks();
  ranks_.resize(nRanks);
  for (Rank r = 0; r < nRanks; ++r) {
    ranks_[r].program = app_->buildProgram(r);
    ranks_[r].sampleRng = support::Rng(cfg_.seed, "sampling/r" + std::to_string(r));
    // Uncorrelated initial offsets are essential: they decorrelate sample
    // positions from phase positions across ranks and iterations.
    ranks_[r].nextSampleTick =
        cfg_.measurement.sampling.randomOffsets
            ? ranks_[r].sampleRng.uniform(0.0, cfg_.measurement.sampling.periodNs)
            : cfg_.measurement.sampling.periodNs;
  }

  bool allDone = false;
  while (!allDone) {
    bool progress = false;
    allDone = true;
    for (Rank r = 0; r < nRanks; ++r) {
      Step s;
      while ((s = advance(r)) == Step::Executed) progress = true;
      if (s != Step::Done) allDone = false;
      if (s == Step::Blocked && ranks_[r].arrivedAtCurrent) {
        // Arrival at a collective counts as progress exactly once; the flag
        // transition is detected by execCollective having just set it. To
        // avoid double counting we treat any sweep that records an arrival
        // as progressing via the Executed path of other ranks; a sweep where
        // *only* arrivals happen still resolves the collective on the last
        // arriving rank, which then Executes. Nothing to do here.
      }
    }
    if (!allDone && !progress) {
      // One more possibility of legitimate progress: a collective resolved
      // during this sweep by the final arrival, but every rank was visited
      // before resolution. Detect by checking for any resolved-but-pending
      // collective; if none, it is a deadlock.
      bool pendingResolved = false;
      for (Rank r = 0; r < nRanks; ++r) {
        auto& rr = ranks_[r];
        if (rr.pc < rr.program.size() && rr.arrivedAtCurrent &&
            rr.collectiveIdx < collectives_.size() &&
            collectives_[rr.collectiveIdx].resolved)
          pendingResolved = true;
      }
      if (!pendingResolved) throw Error("communication deadlock in application program");
    }
  }

  double totalRuntime = 0.0;
  for (const auto& rr : ranks_) totalRuntime = std::max(totalRuntime, rr.now);

  RunResult result;
  trace_.setDurationNs(static_cast<TimeNs>(std::llround(totalRuntime)) + 1);
  trace_.finalize();
  result.trace = std::move(trace_);
  result.truth = std::move(truth_);
  result.totalRuntimeNs = static_cast<TimeNs>(std::llround(totalRuntime));
  result.app = app_;
  return result;
}

}  // namespace

void SimConfig::validate() const {
  network.validate();
  measurement.validate();
}

RunResult run(std::shared_ptr<const Application> app, const SimConfig& config) {
  if (!app) throw ConfigError("run() requires a non-null application");
  telemetry::Span span("sim.run");
  span.attr("app", app->name());
  span.attr("ranks", app->numRanks());
  Engine engine(app, config);
  RunResult result = engine.run();
  span.attr("events", result.trace.events().size());
  telemetry::count("sim.events", result.trace.events().size());
  telemetry::count("sim.samples", result.trace.samples().size());
  telemetry::count("sim.states", result.trace.states().size());
  return result;
}

}  // namespace unveil::sim
