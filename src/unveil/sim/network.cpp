#include "unveil/sim/network.hpp"

#include <bit>
#include <cmath>

#include "unveil/support/error.hpp"

namespace unveil::sim {

void NetworkModel::validate() const {
  if (latencyNs < 0.0 || sendOverheadNs < 0.0 || recvOverheadNs < 0.0)
    throw ConfigError("network latencies/overheads must be non-negative");
  if (bandwidthBytesPerNs <= 0.0)
    throw ConfigError("network bandwidth must be positive");
}

double NetworkModel::transferNs(std::uint64_t bytes) const noexcept {
  return latencyNs + static_cast<double>(bytes) / bandwidthBytesPerNs;
}

double NetworkModel::sendCostNs(std::uint64_t bytes) const noexcept {
  return sendOverheadNs + static_cast<double>(bytes) / bandwidthBytesPerNs;
}

double NetworkModel::collectiveCostNs(trace::MpiOp op, std::uint64_t bytes,
                                      trace::Rank ranks) const noexcept {
  const double steps =
      ranks <= 1 ? 1.0 : std::ceil(std::log2(static_cast<double>(ranks)));
  const double step = latencyNs + static_cast<double>(bytes) / bandwidthBytesPerNs;
  switch (op) {
    case trace::MpiOp::Barrier:
      return steps * latencyNs;
    case trace::MpiOp::Allreduce:
      // reduce + broadcast along the tree.
      return 2.0 * steps * step;
    case trace::MpiOp::Alltoall:
      // P-1 pairwise exchanges, pipelined; dominated by volume.
      return static_cast<double>(ranks > 0 ? ranks - 1 : 0) *
                 (static_cast<double>(bytes) / bandwidthBytesPerNs) +
             steps * latencyNs;
    default:
      return steps * step;
  }
}

}  // namespace unveil::sim
