#include "unveil/sim/apps/apps.hpp"
#include "unveil/sim/apps/calibrate.hpp"

namespace unveil::sim::apps {

namespace {

using counters::RateShape;

/// Particle/tree code with strong load imbalance. One step: build the local
/// tree (branchy, MIPS bump as the tree's hot levels fit in cache), a global
/// barrier, the force evaluation — long, with a per-rank lognormal duration
/// spread that persists across steps — whose compute-bound head gives way to
/// a memory-bound tail as far-field interactions stream remote particle
/// data, an alltoall particle exchange, and a short pack phase.
class Particlemesh final : public IterativeApplication {
 public:
  explicit Particlemesh(const AppParams& p)
      : IterativeApplication("particlemesh", p.ranks, p.iterations, p.seed) {
    // Phase 0: tree build.
    {
      PhaseCalibration cal;
      cal.avgMips = 1700.0;
      cal.ipc = 0.85;
      cal.fpFrac = 0.1;
      cal.l1PerKIns = 10.0;
      cal.l2PerKIns = 1.2;
      cal.brMspPerKIns = 9.0;
      cal.insShape = RateShape::bump(1.0, 1.3, 0.35, 0.18);
      cal.memShape = RateShape::ramp(0.7, 1.3);
      PhaseSpec spec{calibratePhase("tree_build", 900e3 * p.scale, cal),
                     DurationSpec{900e3 * p.scale, 0.05, 0.04, 0.0},
                     counters::NoiseModel{0.025, 0.012}};
      treeBuild_ = addPhase(std::move(spec));
    }
    // Phase 1: force evaluation — the imbalanced long phase.
    {
      PhaseCalibration cal;
      cal.avgMips = 2400.0;
      cal.ipc = 1.3;
      cal.fpFrac = 0.55;
      cal.l1PerKIns = 7.0;
      cal.l2PerKIns = 1.0;
      cal.insShape = RateShape::plateau(/*head=*/2.9, /*body=*/2.6, /*tail=*/1.1,
                                        /*headFrac=*/0.25, /*tailFrac=*/0.20);
      cal.memShape = RateShape::plateau(/*head=*/0.25, /*body=*/0.45, /*tail=*/2.4,
                                        /*headFrac=*/0.25, /*tailFrac=*/0.20);
      auto model = calibratePhase("force_eval", 3.0e6 * p.scale, cal);
      model.setRegions({{"near_field", 0.25}, {"mid_field", 0.55},
                        {"far_field_stream", 0.20}});
      PhaseSpec spec{std::move(model),
                     DurationSpec{3.0e6 * p.scale, /*rankImbalanceSigma=*/0.12,
                                  /*instanceSigma=*/0.07, /*drift=*/0.05},
                     counters::NoiseModel{0.03, 0.015}};
      forceEval_ = addPhase(std::move(spec));
    }
    // Phase 2: exchange pack.
    {
      PhaseCalibration cal;
      cal.avgMips = 1500.0;
      cal.ipc = 1.0;
      cal.fpFrac = 0.05;
      cal.l1PerKIns = 16.0;
      cal.l2PerKIns = 2.0;
      cal.insShape = RateShape::constant();
      cal.memShape = RateShape::constant();
      PhaseSpec spec{calibratePhase("exchange_pack", 300e3 * p.scale, cal),
                     DurationSpec{300e3 * p.scale, 0.03, 0.05, 0.0},
                     counters::NoiseModel{0.025, 0.012}};
      pack_ = addPhase(std::move(spec));
    }
  }

 private:
  void buildIteration(trace::Rank /*r*/, std::uint32_t /*iter*/,
                      IterationBuilder& out) const override {
    out.compute(treeBuild_);
    out.collective(trace::MpiOp::Barrier, 0);
    out.compute(forceEval_);
    out.collective(trace::MpiOp::Alltoall, 4096);
    out.compute(pack_);
  }

  std::uint32_t treeBuild_ = 0;
  std::uint32_t forceEval_ = 0;
  std::uint32_t pack_ = 0;
};

}  // namespace

std::shared_ptr<const Application> makeParticlemesh(const AppParams& p) {
  p.validate();
  return std::make_shared<Particlemesh>(p);
}

}  // namespace unveil::sim::apps
