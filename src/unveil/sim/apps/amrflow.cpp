#include "unveil/sim/apps/apps.hpp"
#include "unveil/sim/apps/calibrate.hpp"

namespace unveil::sim::apps {

namespace {

using counters::RateShape;

/// Non-stationary AMR-style flow solver (extension beyond the paper's three
/// applications, used by the robustness study A5). One iteration: advection
/// sweep → flux exchange → projection → allreduce. At the refinement event
/// (half-way through the run) the mesh is refined: the advection sweep's
/// work grows ~1.8x and its internal profile changes from compute-bound to
/// memory-pressured. Source-wise it is the same loop nest; performance-wise
/// it is a different phase — and that is exactly what burst clustering
/// should report (two clusters whose time shares split at the refinement
/// point). Implemented as two phase models the program switches between.
class Amrflow final : public IterativeApplication {
 public:
  explicit Amrflow(const AppParams& p)
      : IterativeApplication("amrflow", p.ranks, p.iterations, p.seed) {
    // Phase 0: advection on the coarse mesh.
    {
      PhaseCalibration cal;
      cal.avgMips = 2500.0;
      cal.ipc = 1.4;
      cal.fpFrac = 0.5;
      cal.l1PerKIns = 6.0;
      cal.l2PerKIns = 0.8;
      cal.insShape = RateShape::ramp(1.1, 0.9);
      cal.memShape = RateShape::constant();
      PhaseSpec spec{calibratePhase("advect_coarse", 1.2e6 * p.scale, cal),
                     DurationSpec{1.2e6 * p.scale, 0.03, 0.03, 0.0},
                     counters::NoiseModel{0.02, 0.01}};
      advectCoarse_ = addPhase(std::move(spec));
    }
    // Phase 1: advection on the refined mesh — more work, cache-pressured.
    {
      PhaseCalibration cal;
      cal.avgMips = 1900.0;
      cal.ipc = 0.95;
      cal.fpFrac = 0.5;
      cal.l1PerKIns = 13.0;
      cal.l2PerKIns = 2.6;
      cal.insShape = RateShape::plateau(2.4, 2.0, 1.2, 0.2, 0.25);
      cal.memShape = RateShape::ramp(0.6, 1.6);
      PhaseSpec spec{calibratePhase("advect_fine", 2.2e6 * p.scale, cal),
                     DurationSpec{2.2e6 * p.scale, 0.04, 0.035, 0.03},
                     counters::NoiseModel{0.022, 0.012}};
      advectFine_ = addPhase(std::move(spec));
    }
    // Phase 2: projection solve (same before/after refinement).
    {
      PhaseCalibration cal;
      cal.avgMips = 2200.0;
      cal.ipc = 1.2;
      cal.fpFrac = 0.45;
      cal.l1PerKIns = 8.0;
      cal.l2PerKIns = 1.2;
      cal.insShape = RateShape::bump(1.6, 0.9, 0.5, 0.25);
      cal.memShape = RateShape::constant();
      PhaseSpec spec{calibratePhase("projection", 800e3 * p.scale, cal),
                     DurationSpec{800e3 * p.scale, 0.025, 0.03, 0.0},
                     counters::NoiseModel{0.02, 0.01}};
      projection_ = addPhase(std::move(spec));
    }
  }

  /// Iteration index at which the mesh refines.
  [[nodiscard]] std::uint32_t refinementIteration() const noexcept {
    return iterations() / 2;
  }

 private:
  void buildIteration(trace::Rank r, std::uint32_t iter,
                      IterationBuilder& out) const override {
    const trace::Rank n = numRanks();
    const bool refined = iter >= refinementIteration();
    out.compute(refined ? advectFine_ : advectCoarse_);
    if (n > 1) {
      const trace::Rank right = (r + 1) % n;
      const trace::Rank left = (r + n - 1) % n;
      out.send(right, /*tag=*/5, 32 * 1024);
      out.recv(left, /*tag=*/5);
    }
    out.compute(projection_);
    out.collective(trace::MpiOp::Allreduce, 8);
  }

  std::uint32_t advectCoarse_ = 0;
  std::uint32_t advectFine_ = 0;
  std::uint32_t projection_ = 0;
};

}  // namespace

std::shared_ptr<const Application> makeAmrflow(const AppParams& p) {
  p.validate();
  return std::make_shared<Amrflow>(p);
}

}  // namespace unveil::sim::apps
