#pragma once

/// \file calibrate.hpp
/// Internal helper to build PhaseModels from human-readable performance
/// characteristics (average MIPS, IPC, misses per kilo-instruction) instead
/// of raw counter totals. Used by the bundled application models.

#include <string>

#include "unveil/counters/phase_model.hpp"
#include "unveil/counters/shape.hpp"

namespace unveil::sim::apps {

/// Aggregate performance character of a phase; shapes describe how the
/// instruction stream and the memory pressure evolve inside one instance.
struct PhaseCalibration {
  double avgMips = 2000.0;    ///< Average MIPS over the burst.
  double ipc = 1.0;           ///< Average instructions per cycle.
  double fpFrac = 0.3;        ///< FP operations per instruction.
  double l1PerKIns = 8.0;     ///< L1D misses per kilo-instruction.
  double l2PerKIns = 1.0;     ///< L2 misses per kilo-instruction.
  double brMspPerKIns = 2.0;  ///< Branch mispredictions per kilo-instruction.
  counters::RateShape insShape = counters::RateShape::constant();
  counters::RateShape memShape = counters::RateShape::constant();
};

/// Builds the ground-truth PhaseModel for a phase of nominal duration
/// \p nominalNs with character \p cal.
///
/// Counter totals follow from the calibration:
///   TOT_INS = avgMips/1e3 × nominalNs      (MIPS = ins/ns × 1e3)
///   TOT_CYC = TOT_INS / ipc (flat in time — fixed clock frequency)
///   L1_DCM/L2_DCM/BR_MSP per kilo-instruction; FP_OPS per instruction.
/// The instruction stream follows insShape; cache misses follow memShape;
/// FP ops track the instruction stream.
[[nodiscard]] inline counters::PhaseModel calibratePhase(const std::string& name,
                                                         double nominalNs,
                                                         const PhaseCalibration& cal) {
  using counters::CounterId;
  counters::PhaseModel m(name);
  const double ins = cal.avgMips / 1e3 * nominalNs;
  m.setCounter(CounterId::TotIns, ins, cal.insShape);
  m.setCounter(CounterId::TotCyc, ins / cal.ipc, counters::RateShape::constant());
  m.setCounter(CounterId::L1Dcm, cal.l1PerKIns * ins / 1e3, cal.memShape);
  m.setCounter(CounterId::L2Dcm, cal.l2PerKIns * ins / 1e3, cal.memShape);
  m.setCounter(CounterId::FpOps, cal.fpFrac * ins, cal.insShape);
  m.setCounter(CounterId::BrMsp, cal.brMspPerKIns * ins / 1e3,
               counters::RateShape::constant());
  return m;
}

}  // namespace unveil::sim::apps
