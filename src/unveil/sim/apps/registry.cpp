#include "unveil/sim/apps/apps.hpp"
#include "unveil/support/error.hpp"

namespace unveil::sim::apps {

void AppParams::validate() const {
  if (ranks == 0) throw ConfigError("AppParams.ranks must be > 0");
  if (iterations == 0) throw ConfigError("AppParams.iterations must be > 0");
  if (scale <= 0.0) throw ConfigError("AppParams.scale must be positive");
}

const std::vector<std::string>& applicationNames() {
  static const std::vector<std::string> names = {"wavesim", "nbsolver",
                                                 "particlemesh"};
  return names;
}

std::shared_ptr<const Application> makeApplication(const std::string& name,
                                                   const AppParams& p) {
  if (name == "wavesim") return makeWavesim(p);
  if (name == "nbsolver") return makeNbsolver(p);
  if (name == "particlemesh") return makeParticlemesh(p);
  if (name == "wavesim-blocked") return makeWavesimBlocked(p);
  if (name == "amrflow") return makeAmrflow(p);
  throw ConfigError("unknown application: " + name);
}

}  // namespace unveil::sim::apps
