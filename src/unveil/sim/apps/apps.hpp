#pragma once

/// \file apps.hpp
/// The three bundled "production application" models and their factory.
///
/// Each mimics the structure and internal counter evolution of a class of
/// real HPC codes (see DESIGN.md §5): `wavesim` a stencil/PDE code whose
/// sweep overflows the cache mid-burst, `nbsolver` a Krylov solver with a
/// block-structured SpMV, and `particlemesh` a load-imbalanced particle/tree
/// code. They are the substitution for the paper's three production
/// applications.

#include <memory>
#include <string>
#include <vector>

#include "unveil/sim/application.hpp"

namespace unveil::sim::apps {

/// Parameters shared by all bundled applications.
struct AppParams {
  trace::Rank ranks = 32;        ///< MPI ranks to simulate.
  std::uint32_t iterations = 200;  ///< Outer iterations.
  std::uint64_t seed = 1;        ///< Root seed for all variability.
  double scale = 1.0;            ///< Multiplies nominal phase durations.

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Iterative stencil/PDE code (halo exchange → sweep → update → allreduce).
[[nodiscard]] std::shared_ptr<const Application> makeWavesim(const AppParams& p);

/// Krylov solver (SpMV → dot/allreduce → two AXPYs → allreduce).
[[nodiscard]] std::shared_ptr<const Application> makeNbsolver(const AppParams& p);

/// Particle/tree code (tree build → barrier → imbalanced force evaluation →
/// alltoall → pack).
[[nodiscard]] std::shared_ptr<const Application> makeParticlemesh(const AppParams& p);

/// Cache-blocked wavesim variant ("wavesim-blocked") — the "after
/// optimization" build used by the run-diff workflow. Not in
/// applicationNames().
[[nodiscard]] std::shared_ptr<const Application> makeWavesimBlocked(const AppParams& p);

/// Non-stationary AMR-style solver whose advection phase changes regime at
/// the mid-run refinement event. Extension beyond the paper's three
/// applications; exercised by the A5 robustness study. Not part of
/// applicationNames() so the canonical three-app experiments stay faithful.
[[nodiscard]] std::shared_ptr<const Application> makeAmrflow(const AppParams& p);

/// Names accepted by makeApplication, in canonical order.
[[nodiscard]] const std::vector<std::string>& applicationNames();

/// Factory by name; throws ConfigError for unknown names.
[[nodiscard]] std::shared_ptr<const Application> makeApplication(const std::string& name,
                                                                 const AppParams& p);

}  // namespace unveil::sim::apps
