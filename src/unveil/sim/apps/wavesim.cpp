#include "unveil/sim/apps/apps.hpp"
#include "unveil/sim/apps/calibrate.hpp"

namespace unveil::sim::apps {

namespace {

using counters::RateShape;

/// Stencil/PDE code. One iteration: pack halos, ring-exchange with both
/// neighbours, sweep the stencil (the long phase whose working set overflows
/// L2 mid-burst — MIPS decays while the miss rate climbs), then a flat
/// high-IPC pointwise update, then a residual allreduce.
class Wavesim final : public IterativeApplication {
 public:
  /// \param blockedSweep cache-blocked sweep variant ("wavesim-blocked"):
  /// the sweep is tiled so the working set stays cache-resident — ~22%
  /// shorter, with a flat internal MIPS profile instead of the overflow
  /// collapse. Exists so run-to-run diffing has a true "after optimization"
  /// build to compare against.
  Wavesim(const AppParams& p, bool blockedSweep)
      : IterativeApplication(blockedSweep ? "wavesim-blocked" : "wavesim",
                             p.ranks, p.iterations, p.seed) {
    // Phase 0: halo pack — short, slightly front-loaded copies.
    {
      PhaseCalibration cal;
      cal.avgMips = 1800.0;
      cal.ipc = 1.2;
      cal.fpFrac = 0.05;
      cal.l1PerKIns = 12.0;
      cal.l2PerKIns = 1.5;
      cal.insShape = RateShape::ramp(1.2, 0.8);
      cal.memShape = RateShape::constant();
      PhaseSpec spec{calibratePhase("halo_pack", 150e3 * p.scale, cal),
                     DurationSpec{150e3 * p.scale, 0.02, 0.03, 0.0},
                     counters::NoiseModel{0.02, 0.01}};
      haloPack_ = addPhase(std::move(spec));
    }
    // Phase 1: stencil sweep — the headline internal-evolution phase.
    {
      PhaseCalibration cal;
      cal.avgMips = 2100.0;
      cal.ipc = 1.1;
      cal.fpFrac = 0.45;
      cal.l1PerKIns = 9.0;
      cal.l2PerKIns = 1.8;
      double sweepNs = 2.0e6 * p.scale;
      if (blockedSweep) {
        // Tiling keeps the working set in cache: uniform high MIPS, flat low
        // miss rate, ~22% less wall time for the same work.
        sweepNs *= 0.78;
        cal.avgMips = 2650.0;
        cal.ipc = 1.35;
        cal.l2PerKIns = 0.5;
        cal.insShape = RateShape::ramp(1.05, 0.95);
        cal.memShape = RateShape::constant();
      } else {
        cal.insShape = RateShape::piecewiseLinear(
            {{0.0, 3.0}, {0.40, 2.75}, {0.60, 1.55}, {1.0, 1.20}});
        cal.memShape = RateShape::piecewiseLinear(
            {{0.0, 0.25}, {0.45, 0.60}, {0.70, 1.80}, {1.0, 2.30}});
      }
      auto model = calibratePhase("stencil_sweep", sweepNs, cal);
      // Code regions the sampled callstacks attribute sweep time to; the
      // overflow region coincides with the MIPS/miss-rate regime change.
      if (blockedSweep) {
        model.setRegions({{"stream_in", 0.40}, {"transition", 0.20},
                          {"blocked_tail", 0.40}});
      } else {
        model.setRegions({{"stream_in", 0.40}, {"transition", 0.20},
                          {"overflow_tail", 0.40}});
      }
      PhaseSpec spec{std::move(model),
                     DurationSpec{sweepNs, 0.04, 0.03, 0.08},
                     counters::NoiseModel{0.02, 0.012}};
      sweep_ = addPhase(std::move(spec));
    }
    // Phase 2: pointwise update — flat, compute bound.
    {
      PhaseCalibration cal;
      cal.avgMips = 2600.0;
      cal.ipc = 1.7;
      cal.fpFrac = 0.6;
      cal.l1PerKIns = 4.0;
      cal.l2PerKIns = 0.3;
      cal.insShape = RateShape::constant();
      cal.memShape = RateShape::constant();
      PhaseSpec spec{calibratePhase("pointwise_update", 600e3 * p.scale, cal),
                     DurationSpec{600e3 * p.scale, 0.02, 0.025, 0.0},
                     counters::NoiseModel{0.02, 0.01}};
      update_ = addPhase(std::move(spec));
    }
  }

 private:
  void buildIteration(trace::Rank r, std::uint32_t /*iter*/,
                      IterationBuilder& out) const override {
    const trace::Rank n = numRanks();
    const trace::Rank left = (r + n - 1) % n;
    const trace::Rank right = (r + 1) % n;
    constexpr std::uint64_t kHaloBytes = 64 * 1024;

    out.compute(haloPack_);
    if (n > 1) {
      // Sends first (eager protocol, sender does not block) so the ring
      // exchange cannot deadlock.
      out.send(right, /*tag=*/0, kHaloBytes);
      out.send(left, /*tag=*/1, kHaloBytes);
      out.recv(left, /*tag=*/0);
      out.recv(right, /*tag=*/1);
    }
    out.compute(sweep_);
    out.compute(update_);
    out.collective(trace::MpiOp::Allreduce, 8);
  }

  std::uint32_t haloPack_ = 0;
  std::uint32_t sweep_ = 0;
  std::uint32_t update_ = 0;
};

}  // namespace

std::shared_ptr<const Application> makeWavesim(const AppParams& p) {
  p.validate();
  return std::make_shared<Wavesim>(p, /*blockedSweep=*/false);
}

std::shared_ptr<const Application> makeWavesimBlocked(const AppParams& p) {
  p.validate();
  return std::make_shared<Wavesim>(p, /*blockedSweep=*/true);
}

}  // namespace unveil::sim::apps
