#include <cmath>

#include "unveil/sim/apps/apps.hpp"
#include "unveil/sim/apps/calibrate.hpp"

namespace unveil::sim::apps {

namespace {

using counters::RateShape;

/// Krylov-style iterative solver. One iteration: a block-structured SpMV
/// whose MIPS follows a sawtooth (each row block streams a band then stalls
/// on indirection), a dot product reduced with an allreduce, then two AXPY
/// sweeps and a convergence-check allreduce. The SpMV's miss rate is the
/// sawtooth's complement: misses peak exactly where the instruction rate
/// dips.
class Nbsolver final : public IterativeApplication {
 public:
  explicit Nbsolver(const AppParams& p)
      : IterativeApplication("nbsolver", p.ranks, p.iterations, p.seed) {
    constexpr int kTeeth = 4;
    // Phase 0: SpMV.
    {
      PhaseCalibration cal;
      cal.avgMips = 2100.0;
      cal.ipc = 0.9;
      cal.fpFrac = 0.35;
      cal.l1PerKIns = 14.0;
      cal.l2PerKIns = 2.4;
      cal.insShape = RateShape::sawtooth(kTeeth, 1.4, 2.8);
      cal.memShape = RateShape::fromFunction("invSawtooth", [](double t) {
        const double phase = t * kTeeth;
        const double frac = phase - std::floor(phase);
        // Complement of the instruction sawtooth: 0.5 at tooth start,
        // climbing to 2.2 at tooth end.
        return 0.5 + 1.7 * frac;
      });
      auto model = calibratePhase("spmv", 1.4e6 * p.scale, cal);
      model.setRegions({{"row_block_0", 1.0}, {"row_block_1", 1.0},
                        {"row_block_2", 1.0}, {"row_block_3", 1.0}});
      PhaseSpec spec{std::move(model),
                     DurationSpec{1.4e6 * p.scale, 0.03, 0.03, 0.02},
                     counters::NoiseModel{0.02, 0.012}};
      spmv_ = addPhase(std::move(spec));
    }
    // Phase 1: local dot product.
    {
      PhaseCalibration cal;
      cal.avgMips = 2300.0;
      cal.ipc = 1.5;
      cal.fpFrac = 0.5;
      cal.l1PerKIns = 6.0;
      cal.l2PerKIns = 0.8;
      cal.insShape = RateShape::constant();
      cal.memShape = RateShape::constant();
      PhaseSpec spec{calibratePhase("dot", 250e3 * p.scale, cal),
                     DurationSpec{250e3 * p.scale, 0.02, 0.03, 0.0},
                     counters::NoiseModel{0.02, 0.01}};
      dot_ = addPhase(std::move(spec));
    }
    // Phase 2: AXPY — streaming, bandwidth bound, nearly flat.
    {
      PhaseCalibration cal;
      cal.avgMips = 1600.0;
      cal.ipc = 0.8;
      cal.fpFrac = 0.4;
      cal.l1PerKIns = 20.0;
      cal.l2PerKIns = 3.5;
      cal.insShape = RateShape::ramp(1.08, 0.92);
      cal.memShape = RateShape::constant();
      PhaseSpec spec{calibratePhase("axpy", 420e3 * p.scale, cal),
                     DurationSpec{420e3 * p.scale, 0.02, 0.03, 0.0},
                     counters::NoiseModel{0.02, 0.01}};
      axpy_ = addPhase(std::move(spec));
    }
  }

 private:
  void buildIteration(trace::Rank /*r*/, std::uint32_t /*iter*/,
                      IterationBuilder& out) const override {
    out.compute(spmv_);
    out.compute(dot_);
    out.collective(trace::MpiOp::Allreduce, 16);
    out.compute(axpy_);
    out.compute(axpy_);
    out.collective(trace::MpiOp::Allreduce, 16);
  }

  std::uint32_t spmv_ = 0;
  std::uint32_t dot_ = 0;
  std::uint32_t axpy_ = 0;
};

}  // namespace

std::shared_ptr<const Application> makeNbsolver(const AppParams& p) {
  p.validate();
  return std::make_shared<Nbsolver>(p);
}

}  // namespace unveil::sim::apps
