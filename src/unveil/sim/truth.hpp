#pragma once

/// \file truth.hpp
/// Ground truth the simulator records alongside the trace.
///
/// For every burst instance the engine executed, the truth records which
/// phase produced it, its exact time window and its realized counter totals.
/// Accuracy experiments compare folding's reconstructions against the phase
/// model's analytic rate shapes; clustering experiments compare labels
/// against the phaseId recorded here.

#include <array>
#include <cstdint>
#include <vector>

#include "unveil/counters/counter.hpp"
#include "unveil/trace/record.hpp"

namespace unveil::sim {

/// One executed burst instance.
struct BurstTruth {
  trace::Rank rank = 0;
  std::uint32_t phaseId = 0;
  std::uint32_t iteration = 0;
  trace::TimeNs begin = 0;  ///< Burst start (at the begin probe).
  trace::TimeNs end = 0;    ///< Burst end (at the end probe).
  trace::TimeNs workNs = 0; ///< Pure work time (excludes measurement overhead).
  double warp = 1.0;        ///< Per-instance time-warp exponent.
  /// Realized per-counter totals for this instance.
  std::array<double, counters::kNumCounters> totals{};
};

/// All burst instances of a run, in execution order per rank.
struct GroundTruth {
  std::vector<BurstTruth> bursts;

  /// Number of burst instances of phase \p phaseId.
  [[nodiscard]] std::size_t countForPhase(std::uint32_t phaseId) const noexcept {
    std::size_t n = 0;
    for (const auto& b : bursts) n += (b.phaseId == phaseId) ? 1 : 0;
    return n;
  }
};

}  // namespace unveil::sim
