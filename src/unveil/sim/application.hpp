#pragma once

/// \file application.hpp
/// Application models: the simulated "production applications".
///
/// An Application owns a table of PhaseModels (ground-truth counter
/// behaviour per phase) and compiles a deterministic per-rank Program. The
/// IterativeApplication base captures the SPMD-iterative skeleton all three
/// bundled applications share: a fixed iteration body repeated N times, with
/// per-phase duration variability (static rank imbalance, per-instance
/// noise, slow drift across iterations).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "unveil/counters/noise.hpp"
#include "unveil/counters/phase_model.hpp"
#include "unveil/sim/program.hpp"
#include "unveil/support/rng.hpp"

namespace unveil::sim {

/// Duration variability of one phase.
struct DurationSpec {
  /// Nominal pure-work duration of one instance (ns).
  double nominalNs = 1'000'000.0;
  /// Lognormal sigma of the *static* per-rank factor (load imbalance that
  /// persists across iterations, e.g. domain decomposition inequity).
  double rankImbalanceSigma = 0.0;
  /// Lognormal sigma of the per-instance factor (OS noise, data dependence).
  double instanceSigma = 0.02;
  /// Multiplicative drift across the run: the last iteration's nominal
  /// duration is (1 + drift) × the first's. Models slowly evolving work.
  double drift = 0.0;

  /// Throws ConfigError on invalid ranges.
  void validate() const;
};

/// One phase: ground-truth counters + duration variability + counter noise.
struct PhaseSpec {
  counters::PhaseModel model;
  DurationSpec duration;
  counters::NoiseModel noise;
};

/// Abstract application model.
class Application {
 public:
  virtual ~Application() = default;

  /// Application label used in traces and reports.
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;
  /// Number of ranks.
  [[nodiscard]] virtual trace::Rank numRanks() const noexcept = 0;
  /// Number of phases in the phase table.
  [[nodiscard]] virtual std::size_t numPhases() const noexcept = 0;
  /// Phase ground truth by id.
  [[nodiscard]] virtual const PhaseSpec& phase(std::uint32_t id) const = 0;
  /// Compiles rank \p r's deterministic action sequence.
  [[nodiscard]] virtual Program buildProgram(trace::Rank r) const = 0;
};

/// SPMD-iterative base: subclasses define one iteration body.
class IterativeApplication : public Application {
 public:
  /// \param name       application label.
  /// \param numRanks   ranks (> 0).
  /// \param iterations outer iterations (> 0).
  /// \param seed       root seed; all variability derives from it.
  IterativeApplication(std::string name, trace::Rank numRanks,
                       std::uint32_t iterations, std::uint64_t seed);

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] trace::Rank numRanks() const noexcept override { return numRanks_; }
  [[nodiscard]] std::size_t numPhases() const noexcept override { return phases_.size(); }
  [[nodiscard]] const PhaseSpec& phase(std::uint32_t id) const override;
  [[nodiscard]] Program buildProgram(trace::Rank r) const override;

  /// Outer iteration count.
  [[nodiscard]] std::uint32_t iterations() const noexcept { return iterations_; }
  /// Root seed.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 protected:
  /// Registers a phase; returns its id. Call from subclass constructors.
  std::uint32_t addPhase(PhaseSpec spec);

  /// Subclass hook: append one iteration's actions for rank \p r to \p out
  /// using \p ctx to mint ComputeActions.
  class IterationBuilder;
  virtual void buildIteration(trace::Rank r, std::uint32_t iter,
                              IterationBuilder& out) const = 0;

  /// Helper handed to buildIteration for minting actions.
  class IterationBuilder {
   public:
    /// Appends a ComputeAction for \p phaseId with duration and noise drawn
    /// from the phase's specs.
    void compute(std::uint32_t phaseId);
    /// Appends a point-to-point send.
    void send(trace::Rank peer, std::uint32_t tag, std::uint64_t bytes);
    /// Appends a point-to-point receive.
    void recv(trace::Rank peer, std::uint32_t tag);
    /// Appends a collective.
    void collective(trace::MpiOp op, std::uint64_t bytes);

   private:
    friend class IterativeApplication;
    IterationBuilder(const IterativeApplication& app, trace::Rank rank,
                     std::uint32_t iter, support::Rng& rng, Program& out);
    const IterativeApplication& app_;
    trace::Rank rank_;
    std::uint32_t iter_;
    support::Rng& rng_;
    Program& out_;
  };

 private:
  /// Static per-rank imbalance factor for (phase, rank).
  [[nodiscard]] double rankFactor(std::uint32_t phaseId, trace::Rank r) const;

  std::string name_;
  trace::Rank numRanks_;
  std::uint32_t iterations_;
  std::uint64_t seed_;
  std::vector<PhaseSpec> phases_;
};

}  // namespace unveil::sim
