#pragma once

/// \file measurement.hpp
/// Measurement configuration: instrumentation probes and sampling.
///
/// Both mechanisms perturb the application — every probe and every sampling
/// interrupt steals CPU time from the burst it lands in. The engine applies
/// these costs to the simulated execution, which is what makes the overhead
/// experiment (T2) and the period-sensitivity experiment (F5) meaningful:
/// fine-grain sampling really does dilate the run it measures.

#include <cstdint>

#include "unveil/trace/record.hpp"

namespace unveil::sim {

/// Instrumentation-probe configuration (Extrae-style wrappers).
struct InstrumentationConfig {
  bool enabled = true;        ///< Emit phase/MPI events at region boundaries.
  double probeCostNs = 100.0; ///< CPU cost of one probe (counter read + buffer write).
  bool emitStates = true;     ///< Also record compute/MPI state intervals.

  /// Throws ConfigError on negative costs.
  void validate() const;
};

/// Asynchronous sampling configuration (signal/interrupt-style).
struct SamplingConfig {
  bool enabled = true;
  /// Nominal sampling period (ns). The paper's folding input is *coarse*:
  /// defaults to 1 ms (≈1000 samples/s/rank).
  double periodNs = 1'000'000.0;
  /// Uniform jitter applied to every inter-sample gap as a fraction of the
  /// period (0.2 means each gap is uniform in [0.8, 1.2] × period). Jitter
  /// plus phase-uncorrelated offsets are what make folding's coverage of
  /// [0,1] dense across instances.
  double jitterFrac = 0.2;
  /// CPU cost of servicing one sampling interrupt (ns).
  double sampleCostNs = 2000.0;
  /// PMU multiplex groups rotated across consecutive samples. 1 (default)
  /// reads every counter at every sample. With g > 1, TOT_INS and TOT_CYC
  /// are always read (fixed counters) while the remaining counters are
  /// partitioned round-robin over the g groups — the standard PAPI
  /// multiplexing compromise when events outnumber hardware counters.
  /// Sample k of a rank carries group k mod g; its other counters are
  /// absent (validMask).
  std::size_t multiplexGroups = 1;
  /// Capture the sampled callstack's code region (Sample::regionId). Real
  /// samplers unwind the stack at each interrupt; here the region comes from
  /// the phase model's ground-truth region table.
  bool sampleCallstacks = true;
  /// Randomize each rank's first tick within one period (default). Disabling
  /// this aligns every rank's sampling clock — together with jitterFrac = 0
  /// it reproduces the aliasing failure mode the jitter ablation (A3)
  /// demonstrates: samples lock onto fixed phase positions and folding's
  /// coverage of [0,1] collapses.
  bool randomOffsets = true;

  /// Throws ConfigError on invalid ranges.
  void validate() const;
};

/// The counter mask sample number \p sampleIndex carries under \p groups
/// multiplex groups (see SamplingConfig::multiplexGroups).
[[nodiscard]] trace::CounterMask multiplexMask(std::size_t groups,
                                               std::size_t sampleIndex) noexcept;

/// Full measurement setup for one run.
struct MeasurementConfig {
  InstrumentationConfig instrumentation;
  SamplingConfig sampling;

  /// Validates both sub-configs.
  void validate() const;

  /// A configuration with everything off (overhead baseline).
  [[nodiscard]] static MeasurementConfig none();
  /// Instrumentation only (no sampling).
  [[nodiscard]] static MeasurementConfig instrumentationOnly();
  /// Instrumentation + coarse sampling — the folding setup.
  [[nodiscard]] static MeasurementConfig folding(double periodNs = 1'000'000.0);
  /// Instrumentation + fine-grain sampling — the expensive reference.
  [[nodiscard]] static MeasurementConfig fineGrain(double periodNs = 20'000.0);
};

}  // namespace unveil::sim
