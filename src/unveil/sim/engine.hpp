#pragma once

/// \file engine.hpp
/// Discrete-event execution of application programs under a network model
/// and a measurement configuration.
///
/// The engine replays each rank's Program, advancing a per-rank clock and
/// cumulative hardware counters. Point-to-point receives block until the
/// matching message was produced; collectives synchronize all ranks (finish
/// = last arrival + postal-model cost). Instrumentation probes and sampling
/// interrupts are injected according to the MeasurementConfig, *including
/// their CPU cost*, so measured runs are genuinely perturbed — the basis of
/// the overhead experiment (T2).
///
/// The result bundles the measured trace (what a real tool would see) with
/// the ground truth (what actually happened), enabling exact accuracy
/// accounting impossible on real hardware.

#include <memory>

#include "unveil/sim/application.hpp"
#include "unveil/sim/measurement.hpp"
#include "unveil/sim/network.hpp"
#include "unveil/sim/truth.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::sim {

/// Full simulation configuration.
struct SimConfig {
  NetworkModel network;
  MeasurementConfig measurement;
  /// Root seed for sampling jitter/offsets (application variability derives
  /// from the application's own seed).
  std::uint64_t seed = 42;

  /// Validates all sub-configs.
  void validate() const;
};

/// Everything a simulated run produced.
struct RunResult {
  trace::Trace trace;        ///< What the measurement tools observed.
  GroundTruth truth;         ///< What actually happened.
  trace::TimeNs totalRuntimeNs = 0;  ///< Wall-clock of the slowest rank.
  std::shared_ptr<const Application> app;  ///< Keeps phase models alive.
};

/// Executes \p app under \p config and returns trace + ground truth.
/// Throws unveil::Error on malformed programs (e.g. communication deadlock,
/// mismatched collectives).
[[nodiscard]] RunResult run(std::shared_ptr<const Application> app,
                            const SimConfig& config);

}  // namespace unveil::sim
