#include "unveil/folding/fit.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/math.hpp"
#include "unveil/support/stats.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::folding {

std::string_view fitMethodName(FitMethod m) noexcept {
  switch (m) {
    case FitMethod::Pchip: return "pchip";
    case FitMethod::Kernel: return "kernel";
    case FitMethod::BinnedLinear: return "binned-linear";
  }
  return "?";
}

void FitParams::validate() const {
  if (bins == 1) throw ConfigError("fit bins must be 0 (auto) or >= 2");
  if (kernelBandwidth <= 0.0) throw ConfigError("kernel bandwidth must be positive");
}

namespace {
/// Resolves bins == 0 to an adaptive knot count.
std::size_t effectiveBins(const FitParams& params, std::size_t points) {
  if (params.bins != 0) return params.bins;
  return std::clamp<std::size_t>(points / 100, 8, 24);
}
}  // namespace

namespace {

/// Robust knots from binned medians, with (0,0) and (1,1) anchors.
/// Returns parallel xs/ys with strictly increasing xs.
///
/// The cloud arrives in canonical order (sorted by t — every producer sorts
/// before fitting), so each bin is one contiguous subrange of the t column:
/// bin boundaries fall out of a partition_point per edge on the *exact* bin
/// function, after which the statistics stream straight over column spans —
/// no per-point scatter into per-bin vectors.
void binnedKnots(const FoldedCounter& folded, std::size_t bins, bool useMedian,
                 std::vector<double>& xs, std::vector<double>& ys) {
  const std::span<const double> ts = folded.points.ts();
  const std::span<const double> ysCol = folded.points.ys();
  const std::size_t n = ts.size();
  // Bin of one point; NaN t (impossible for fold output, deterministic for
  // hand-built clouds) lands in bin 0, matching its NaN-first sort position
  // so the subranges stay contiguous.
  const auto binOf = [bins](double raw) noexcept -> std::size_t {
    const double t = std::clamp(raw, 0.0, 1.0);
    if (t != t) return 0;
    const auto b = static_cast<std::size_t>(t * static_cast<double>(bins));
    return std::min(b, bins - 1);
  };
  xs.clear();
  ys.clear();
  xs.push_back(0.0);
  ys.push_back(0.0);
  std::vector<double> binT, binY;
  std::size_t begin = 0;
  for (std::size_t b = 0; b < bins && begin < n; ++b) {
    const std::size_t end = static_cast<std::size_t>(
        std::partition_point(ts.begin() + static_cast<std::ptrdiff_t>(begin),
                             ts.end(),
                             [&](double t) { return binOf(t) <= b; }) -
        ts.begin());
    if (end == begin) continue;
    binT.resize(end - begin);
    binY.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      binT[i - begin] = std::clamp(ts[i], 0.0, 1.0);
      binY[i - begin] = ysCol[i];
    }
    begin = end;
    // Pair matching statistics: the median of y equals the curve at the
    // median of t for any monotone profile (medians commute with monotone
    // maps), so median/median knots lie exactly on noise-free data. Mixing
    // mean(t) with median(y) would bias knots off the curve.
    const double x = useMedian ? support::median(binT) : support::mean(binT);
    const double y = useMedian ? support::median(binY) : support::mean(binY);
    if (x <= xs.back() + 1e-9) continue;
    if (x >= 1.0 - 1e-9) continue;
    xs.push_back(x);
    ys.push_back(std::clamp(y, 0.0, 1.0));
  }
  xs.push_back(1.0);
  ys.push_back(1.0);
}

/// Pool-adjacent-violators: least-squares monotone non-decreasing fit.
void isotonic(std::vector<double>& y) {
  const std::size_t n = y.size();
  std::vector<double> level(n);
  std::vector<double> weight(n);
  std::vector<std::size_t> size(n);
  std::size_t blocks = 0;
  for (std::size_t i = 0; i < n; ++i) {
    level[blocks] = y[i];
    weight[blocks] = 1.0;
    size[blocks] = 1;
    ++blocks;
    while (blocks > 1 && level[blocks - 2] > level[blocks - 1]) {
      const double w = weight[blocks - 2] + weight[blocks - 1];
      level[blocks - 2] =
          (level[blocks - 2] * weight[blocks - 2] + level[blocks - 1] * weight[blocks - 1]) / w;
      weight[blocks - 2] = w;
      size[blocks - 2] += size[blocks - 1];
      --blocks;
    }
  }
  std::size_t idx = 0;
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t k = 0; k < size[b]; ++k) y[idx++] = level[b];
}

/// Monotone cubic Hermite interpolation (Fritsch–Carlson slopes).
class PchipFit final : public CumulativeFit {
 public:
  PchipFit(std::vector<double> xs, std::vector<double> ys)
      : xs_(std::move(xs)), ys_(std::move(ys)) {
    const std::size_t n = xs_.size();
    UNVEIL_ASSERT(n >= 2, "pchip needs >= 2 knots");
    slopes_.assign(n, 0.0);
    std::vector<double> delta(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i)
      delta[i] = (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);
    // Endpoint slopes: one-sided; interior: harmonic-mean style FC formula.
    slopes_[0] = delta[0];
    slopes_[n - 1] = delta[n - 2];
    for (std::size_t i = 1; i + 1 < n; ++i) {
      if (delta[i - 1] * delta[i] <= 0.0) {
        slopes_[i] = 0.0;
      } else {
        const double w1 = 2.0 * (xs_[i + 1] - xs_[i]) + (xs_[i] - xs_[i - 1]);
        const double w2 = (xs_[i + 1] - xs_[i]) + 2.0 * (xs_[i] - xs_[i - 1]);
        slopes_[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
      }
    }
    // FC monotonicity clamp on the endpoints.
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (delta[i] == 0.0) {
        slopes_[i] = 0.0;
        slopes_[i + 1] = 0.0;
      } else {
        const double a = slopes_[i] / delta[i];
        const double b = slopes_[i + 1] / delta[i];
        const double s = a * a + b * b;
        if (s > 9.0) {
          const double tau = 3.0 / std::sqrt(s);
          slopes_[i] = tau * a * delta[i];
          slopes_[i + 1] = tau * b * delta[i];
        }
      }
    }
  }

  [[nodiscard]] double value(double t) const override {
    t = std::clamp(t, 0.0, 1.0);
    const std::size_t i = segment(t);
    const double h = xs_[i + 1] - xs_[i];
    const double s = (t - xs_[i]) / h;
    const double h00 = (1.0 + 2.0 * s) * (1.0 - s) * (1.0 - s);
    const double h10 = s * (1.0 - s) * (1.0 - s);
    const double h01 = s * s * (3.0 - 2.0 * s);
    const double h11 = s * s * (s - 1.0);
    return h00 * ys_[i] + h10 * h * slopes_[i] + h01 * ys_[i + 1] +
           h11 * h * slopes_[i + 1];
  }

  [[nodiscard]] double derivative(double t) const override {
    t = std::clamp(t, 0.0, 1.0);
    const std::size_t i = segment(t);
    const double h = xs_[i + 1] - xs_[i];
    const double s = (t - xs_[i]) / h;
    const double dh00 = 6.0 * s * s - 6.0 * s;
    const double dh10 = 3.0 * s * s - 4.0 * s + 1.0;
    const double dh01 = -6.0 * s * s + 6.0 * s;
    const double dh11 = 3.0 * s * s - 2.0 * s;
    return (dh00 * ys_[i] + dh01 * ys_[i + 1]) / h + dh10 * slopes_[i] +
           dh11 * slopes_[i + 1];
  }

  [[nodiscard]] std::string_view name() const noexcept override { return "pchip"; }

 private:
  [[nodiscard]] std::size_t segment(double t) const {
    std::size_t lo = 0, hi = xs_.size() - 1;
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (xs_[mid] <= t) lo = mid;
      else hi = mid;
    }
    return lo;
  }

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> slopes_;
};

/// Truncation radius of the windowed kernel evaluation, in bandwidths. At
/// 8σ a point's kernel weight is exp(-32) ≈ 1.3e-14, so even ~1e5 excluded
/// points perturb a populated window by far less than the 1e-9 relative
/// tolerance the equivalence test enforces. (A 4σ cutoff would admit ~1e-5:
/// each just-excluded point still weighs exp(-8) ≈ 3.4e-4.)
constexpr double kKernelCutoffSigmas = 8.0;

/// Nadaraya–Watson Gaussian-kernel regression over the raw folded points
/// plus endpoint anchors. Folded clouds arrive sorted by t (and the anchors
/// extend that order), so the windowed evaluation can binary-search the
/// ±8σ window instead of summing every point.
class KernelFit final : public CumulativeFit {
 public:
  KernelFit(const FoldedCounter& folded, double bandwidth, bool windowed)
      : h_(bandwidth), windowed_(windowed) {
    ts_.reserve(folded.points.size() + 2);
    ys_.reserve(folded.points.size() + 2);
    ws_.reserve(folded.points.size() + 2);
    // Anchors carry extra weight so the fit respects the known endpoints.
    const double anchorWeight =
        std::max(5.0, static_cast<double>(folded.points.size()) / 20.0);
    ts_.push_back(0.0);
    ys_.push_back(0.0);
    ws_.push_back(anchorWeight);
    const std::span<const double> ts = folded.points.ts();
    const std::span<const double> ys = folded.points.ys();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      ts_.push_back(std::clamp(ts[i], 0.0, 1.0));
      ys_.push_back(ys[i]);
      ws_.push_back(1.0);
    }
    ts_.push_back(1.0);
    ys_.push_back(1.0);
    ws_.push_back(anchorWeight);
  }

  [[nodiscard]] double value(double t) const override {
    t = std::clamp(t, 0.0, 1.0);
    if (!windowed_) return sumRange(t, 0, ts_.size());
    const double radius = kKernelCutoffSigmas * h_;
    const auto first = std::lower_bound(ts_.begin(), ts_.end(), t - radius);
    const auto last = std::upper_bound(first, ts_.end(), t + radius);
    const auto lo = static_cast<std::size_t>(first - ts_.begin());
    const auto hi = static_cast<std::size_t>(last - ts_.begin());
    if (lo >= hi) return sumRange(t, 0, ts_.size());  // empty window: exact sum
    return sumRange(t, lo, hi);
  }

  [[nodiscard]] double derivative(double t) const override {
    constexpr double dt = 1e-3;
    const double lo = std::max(0.0, t - dt);
    const double hi = std::min(1.0, t + dt);
    return (value(hi) - value(lo)) / (hi - lo);
  }

  [[nodiscard]] std::string_view name() const noexcept override { return "kernel"; }

 private:
  [[nodiscard]] double sumRange(double t, std::size_t lo, std::size_t hi) const {
    // Chunked so the kernel-argument loop vectorizes while the accumulation
    // stays in the original index order (order-dependent FP sums) — the
    // result is bit-identical to the historical fused loop: same z and
    // -0.5·z·z expressions, same scalar libm exp, same num/den sequence.
    double num = 0.0, den = 0.0;
    constexpr std::size_t kChunk = 128;
    double arg[kChunk];
    for (std::size_t base = lo; base < hi; base += kChunk) {
      const std::size_t m = std::min(kChunk, hi - base);
      const double* ts = ts_.data() + base;
      const auto mi = static_cast<std::ptrdiff_t>(m);
#pragma omp simd
      for (std::ptrdiff_t i = 0; i < mi; ++i) {
        const double z = (t - ts[i]) / h_;
        arg[i] = -0.5 * z * z;
      }
      for (std::size_t i = 0; i < m; ++i) {
        const double k = ws_[base + i] * std::exp(arg[i]);
        num += k * ys_[base + i];
        den += k;
      }
    }
    return den > 0.0 ? num / den : 0.0;
  }

  double h_;
  bool windowed_;
  std::vector<double> ts_;
  std::vector<double> ys_;
  std::vector<double> ws_;
};

/// Per-bin means joined linearly.
class BinnedLinearFit final : public CumulativeFit {
 public:
  BinnedLinearFit(std::vector<double> xs, std::vector<double> ys)
      : xs_(std::move(xs)), ys_(std::move(ys)) {}

  [[nodiscard]] double value(double t) const override {
    return support::interpLinear(xs_, ys_, std::clamp(t, 0.0, 1.0));
  }

  [[nodiscard]] double derivative(double t) const override {
    t = std::clamp(t, 0.0, 1.0);
    std::size_t lo = 0, hi = xs_.size() - 1;
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (xs_[mid] <= t) lo = mid;
      else hi = mid;
    }
    return (ys_[lo + 1] - ys_[lo]) / (xs_[lo + 1] - xs_[lo]);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "binned-linear";
  }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace

std::unique_ptr<CumulativeFit> fitCumulative(const FoldedCounter& folded,
                                             const FitParams& params) {
  params.validate();
  if (folded.points.empty())
    throw AnalysisError("fitCumulative: folded cloud is empty");
  telemetry::Span span("fold.fit");
  span.attr("method", fitMethodName(params.method));
  span.attr("points", folded.points.size());
  telemetry::count("fit.calls", 1);

  switch (params.method) {
    case FitMethod::Pchip: {
      std::vector<double> xs, ys;
      binnedKnots(folded, effectiveBins(params, folded.points.size()),
                  /*useMedian=*/true, xs, ys);
      isotonic(ys);
      for (double& y : ys) y = std::clamp(y, 0.0, 1.0);
      return std::make_unique<PchipFit>(std::move(xs), std::move(ys));
    }
    case FitMethod::Kernel:
      return std::make_unique<KernelFit>(folded, params.kernelBandwidth,
                                         params.kernelWindowed);
    case FitMethod::BinnedLinear: {
      std::vector<double> xs, ys;
      binnedKnots(folded, effectiveBins(params, folded.points.size()),
                  /*useMedian=*/false, xs, ys);
      return std::make_unique<BinnedLinearFit>(std::move(xs), std::move(ys));
    }
  }
  throw ConfigError("unknown fit method");
}

}  // namespace unveil::folding
