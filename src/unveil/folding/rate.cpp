#include "unveil/folding/rate.hpp"

#include <algorithm>

#include "unveil/folding/prune.hpp"
#include "unveil/support/math.hpp"

namespace unveil::folding {

std::vector<double> RateCurve::ratePerMicrosecond() const {
  std::vector<double> out(physRate.size());
  for (std::size_t i = 0; i < physRate.size(); ++i) out[i] = physRate[i] * 1e3;
  return out;
}

RateCurve reconstructRate(const FoldedCounter& folded, const CumulativeFit& fit,
                          std::size_t gridPoints) {
  RateCurve curve;
  curve.counter = folded.counter;
  curve.meanDurationNs = folded.meanDurationNs;
  curve.meanTotal = folded.meanTotal;
  curve.sourcePoints = folded.points.size();
  curve.sourceInstances = folded.instances;
  curve.t = support::linspace(0.0, 1.0, gridPoints);
  curve.normRate.resize(gridPoints);
  curve.physRate.resize(gridPoints);
  const double meanRate = folded.meanRatePerNs();
  for (std::size_t i = 0; i < gridPoints; ++i) {
    const double d = fit.derivative(curve.t[i]);
    curve.normRate[i] = d;
    curve.physRate[i] = std::max(d, 0.0) * meanRate;
  }
  return curve;
}

void movingAverage(std::vector<double>& values, std::size_t window) {
  if (window < 3 || values.size() < 3) return;
  if (window % 2 == 0) --window;
  const std::size_t half = window / 2;
  const std::vector<double> src = values;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half, src.size() - 1);
    double s = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) s += src[j];
    values[i] = s / static_cast<double>(hi - lo + 1);
  }
}

RateCurve reconstructClusterRate(const trace::Trace& trace,
                                 std::span<const cluster::Burst> bursts,
                                 std::span<const std::size_t> memberIdx,
                                 counters::CounterId counter,
                                 const ReconstructOptions& options) {
  FoldedCounter folded = foldCluster(trace, bursts, memberIdx, counter, options.fold);
  if (options.prune) {
    folded = pruneOutliers(folded).pruned;
  }
  const auto fit = fitCumulative(folded, options.fit);
  RateCurve curve = reconstructRate(folded, *fit, options.gridPoints);
  if (options.smoothWindow >= 3) {
    movingAverage(curve.normRate, options.smoothWindow);
    movingAverage(curve.physRate, options.smoothWindow);
  }
  return curve;
}

}  // namespace unveil::folding
