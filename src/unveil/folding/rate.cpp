#include "unveil/folding/rate.hpp"

#include <algorithm>

#include "unveil/folding/prune.hpp"
#include "unveil/support/math.hpp"

namespace unveil::folding {

std::vector<double> RateCurve::ratePerMicrosecond() const {
  std::vector<double> out(physRate.size());
  for (std::size_t i = 0; i < physRate.size(); ++i) out[i] = physRate[i] * 1e3;
  return out;
}

RateCurve reconstructRate(const FoldedCounter& folded, const CumulativeFit& fit,
                          std::size_t gridPoints) {
  RateCurve curve;
  curve.counter = folded.counter;
  curve.meanDurationNs = folded.meanDurationNs;
  curve.meanTotal = folded.meanTotal;
  curve.sourcePoints = folded.points.size();
  curve.sourceInstances = folded.instances;
  curve.t = support::linspace(0.0, 1.0, gridPoints);
  curve.normRate.resize(gridPoints);
  curve.physRate.resize(gridPoints);
  const double meanRate = folded.meanRatePerNs();
  for (std::size_t i = 0; i < gridPoints; ++i) {
    const double d = fit.derivative(curve.t[i]);
    curve.normRate[i] = d;
    curve.physRate[i] = std::max(d, 0.0) * meanRate;
  }
  return curve;
}

void movingAverage(std::vector<double>& values, std::size_t window) {
  if (window < 3 || values.size() < 3) return;
  if (window % 2 == 0) --window;
  const std::size_t half = window / 2;
  const std::size_t n = values.size();
  // Window sums as prefix-sum differences: O(n) total instead of O(n·window).
  // Smoothed rate grids are short, well-scaled and non-negative-ish, so the
  // cancellation error of the difference is negligible (≪ 1e-12 relative).
  std::vector<double> prefix(n + 1);
  prefix[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + values[i];
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half, n - 1);
    values[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
}

RateCurve reconstructFoldedRate(FoldedCounter folded,
                                const ReconstructOptions& options) {
  if (options.prune) {
    folded = pruneOutliers(folded).pruned;
  }
  const auto fit = fitCumulative(folded, options.fit);
  RateCurve curve = reconstructRate(folded, *fit, options.gridPoints);
  if (options.smoothWindow >= 3) {
    movingAverage(curve.normRate, options.smoothWindow);
    movingAverage(curve.physRate, options.smoothWindow);
  }
  return curve;
}

RateCurve reconstructClusterRate(const trace::Trace& trace,
                                 std::span<const cluster::Burst> bursts,
                                 std::span<const std::size_t> memberIdx,
                                 counters::CounterId counter,
                                 const ReconstructOptions& options) {
  return reconstructFoldedRate(
      foldCluster(trace, bursts, memberIdx, counter, options.fold), options);
}

}  // namespace unveil::folding
