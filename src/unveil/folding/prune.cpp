#include "unveil/folding/prune.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::folding {

void PruneParams::validate() const {
  if (bins == 0) throw ConfigError("prune bins must be >= 1");
  if (madK <= 0.0) throw ConfigError("prune madK must be positive");
  if (minSigma < 0.0) throw ConfigError("prune minSigma must be non-negative");
}

PruneResult pruneOutliers(const FoldedCounter& folded, const PruneParams& params) {
  params.validate();
  PruneResult result;
  result.pruned = folded;
  if (folded.points.empty()) return result;

  // Bin membership by t.
  std::vector<std::vector<std::size_t>> binPoints(params.bins);
  for (std::size_t i = 0; i < folded.points.size(); ++i) {
    const double t = std::clamp(folded.points[i].t, 0.0, 1.0);
    auto bin = static_cast<std::size_t>(t * static_cast<double>(params.bins));
    bin = std::min(bin, params.bins - 1);
    binPoints[bin].push_back(i);
  }

  std::vector<bool> keep(folded.points.size(), true);
  std::vector<double> ys;
  for (const auto& members : binPoints) {
    if (members.size() < 4) continue;
    ys.clear();
    for (std::size_t i : members) ys.push_back(folded.points[i].y);
    const double med = support::median(ys);
    const double sigma = std::max(support::madSigma(ys), params.minSigma);
    for (std::size_t i : members) {
      if (std::abs(folded.points[i].y - med) > params.madK * sigma) keep[i] = false;
    }
  }

  std::vector<FoldedPoint> kept;
  kept.reserve(folded.points.size());
  for (std::size_t i = 0; i < folded.points.size(); ++i) {
    if (keep[i]) kept.push_back(folded.points[i]);
    else ++result.removed;
  }
  result.pruned.points = std::move(kept);
  return result;
}

}  // namespace unveil::folding
