#include "unveil/folding/prune.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::folding {

void PruneParams::validate() const {
  if (bins == 0) throw ConfigError("prune bins must be >= 1");
  if (madK <= 0.0) throw ConfigError("prune madK must be positive");
  if (minSigma < 0.0) throw ConfigError("prune minSigma must be non-negative");
}

PruneResult pruneOutliers(const FoldedCounter& folded, const PruneParams& params) {
  params.validate();
  PruneResult result;
  result.pruned = folded;
  if (folded.points.empty()) return result;

  const std::span<const double> ts = folded.points.ts();
  const std::span<const double> ysCol = folded.points.ys();
  const std::size_t n = ts.size();

  // Bin membership by t. A NaN t (impossible for fold output) routes
  // deterministically to bin 0 instead of an out-of-range index.
  std::vector<std::vector<std::size_t>> binPoints(params.bins);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = std::clamp(ts[i], 0.0, 1.0);
    std::size_t bin = 0;
    if (t == t)
      bin = std::min(static_cast<std::size_t>(t * static_cast<double>(params.bins)),
                     params.bins - 1);
    binPoints[bin].push_back(i);
  }

  std::vector<bool> keep(n, true);
  std::vector<double> ys;
  for (const auto& members : binPoints) {
    if (members.size() < 4) continue;
    ys.clear();
    for (std::size_t i : members) ys.push_back(ysCol[i]);
    const double med = support::median(ys);
    const double sigma = std::max(support::madSigma(ys), params.minSigma);
    for (std::size_t i : members) {
      if (std::abs(ysCol[i] - med) > params.madK * sigma) keep[i] = false;
    }
  }

  PointColumns kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) kept.push_back(folded.points[i]);
    else ++result.removed;
  }
  result.pruned.points = std::move(kept);
  return result;
}

}  // namespace unveil::folding
