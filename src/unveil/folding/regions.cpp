#include "unveil/folding/regions.hpp"

#include <algorithm>

#include "unveil/support/error.hpp"

namespace unveil::folding {

void RegionParams::validate() const {
  if (cells < 2) throw ConfigError("region profile needs >= 2 cells");
}

RegionProfile regionProfile(const trace::Trace& trace,
                            std::span<const cluster::Burst> bursts,
                            std::span<const std::size_t> memberIdx,
                            const RegionParams& params) {
  params.validate();
  RegionProfile out;
  const auto& samples = trace.samples();

  // Per-cell histograms of region ids.
  std::vector<std::map<std::uint32_t, std::size_t>> cellHist(params.cells);
  std::map<std::uint32_t, std::size_t> regionCounts;

  for (std::size_t mi : memberIdx) {
    UNVEIL_ASSERT(mi < bursts.size(), "region member index out of range");
    const cluster::Burst& b = bursts[mi];
    const double duration = static_cast<double>(b.durationNs());
    if (duration <= 0.0) continue;
    const double overhead =
        params.fold.probeOverheadNs +
        params.fold.perSampleOverheadNs * static_cast<double>(b.sampleCount);
    const double workNs = std::max(duration - overhead, 1.0);
    std::size_t samplesBefore = 0;
    const std::size_t sEnd = b.sampleFirst + b.sampleCount;
    for (std::size_t si = b.sampleFirst; si < sEnd; ++si) {
      const trace::Sample& s = samples[si];
      ++out.totalSamples;
      const double elapsed =
          static_cast<double>(s.time - b.begin) - params.fold.probeOverheadNs -
          params.fold.perSampleOverheadNs * static_cast<double>(samplesBefore);
      ++samplesBefore;
      if (s.regionId == trace::kNoRegion) continue;
      ++out.attributedSamples;
      const double t = std::clamp(elapsed / workNs, 0.0, 1.0);
      auto cell = static_cast<std::size_t>(t * static_cast<double>(params.cells));
      cell = std::min(cell, params.cells - 1);
      ++cellHist[cell][s.regionId];
      ++regionCounts[s.regionId];
    }
  }
  if (out.attributedSamples == 0)
    throw AnalysisError("regionProfile: no sample carries a region id "
                        "(callstack sampling disabled?)");

  for (const auto& [region, count] : regionCounts)
    out.timeShare[region] = static_cast<double>(count) /
                            static_cast<double>(out.attributedSamples);

  // Modal region per cell, merged into segments.
  const double cellWidth = 1.0 / static_cast<double>(params.cells);
  for (std::size_t cell = 0; cell < params.cells; ++cell) {
    const auto& hist = cellHist[cell];
    if (hist.empty()) continue;  // uncovered cell: previous segment stands
    std::uint32_t modal = trace::kNoRegion;
    std::size_t modalCount = 0;
    std::size_t total = 0;
    for (const auto& [region, count] : hist) {
      total += count;
      if (count > modalCount) {
        modalCount = count;
        modal = region;
      }
    }
    const double cellConfidence =
        static_cast<double>(modalCount) / static_cast<double>(total);
    const double begin = static_cast<double>(cell) * cellWidth;
    const double end = begin + cellWidth;
    if (!out.segments.empty() && out.segments.back().regionId == modal) {
      auto& seg = out.segments.back();
      // Confidence: sample-weighted mean over the segment's cells.
      seg.confidence = (seg.confidence * static_cast<double>(seg.samples) +
                        cellConfidence * static_cast<double>(total)) /
                       static_cast<double>(seg.samples + total);
      seg.samples += total;
      seg.end = end;
    } else {
      out.segments.push_back(
          RegionSegment{modal, begin, end, cellConfidence, total});
    }
  }
  return out;
}

}  // namespace unveil::folding
