#pragma once

/// \file derived.hpp
/// Derived instantaneous metrics from pairs of folded counters.
///
/// The paper's figures show not only raw rates (MIPS) but intra-phase
/// *ratio* metrics: instantaneous IPC and cache misses per kilo-instruction.
/// A ratio of two independently fitted cumulative curves is the right
/// estimator: IPC(t) = (dIns/dt) / (dCyc/dt), with both derivatives coming
/// from the same folding machinery, evaluated on a common grid.

#include "unveil/folding/rate.hpp"

namespace unveil::folding {

/// A derived intra-phase metric curve.
struct DerivedCurve {
  std::vector<double> t;      ///< Common grid over [0,1].
  std::vector<double> value;  ///< Metric value at each grid point.
};

/// Instantaneous IPC inside the phase: ratio of instruction and cycle rates.
/// Points where the cycle rate is ~0 are clamped to 0. Grids must match.
[[nodiscard]] DerivedCurve instantaneousIpc(const RateCurve& instructions,
                                            const RateCurve& cycles);

/// Instantaneous misses per kilo-instruction: miss rate / instruction rate
/// × 1000. Points with ~0 instruction rate are clamped to 0.
[[nodiscard]] DerivedCurve instantaneousPerKiloIns(const RateCurve& misses,
                                                   const RateCurve& instructions);

}  // namespace unveil::folding
