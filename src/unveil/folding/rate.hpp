#pragma once

/// \file rate.hpp
/// Instantaneous-rate reconstruction from a fitted cumulative profile — the
/// "unveiled" internal evolution the paper's figures show.

#include <memory>
#include <vector>

#include "unveil/folding/fit.hpp"
#include "unveil/folding/folded.hpp"

namespace unveil::folding {

/// A reconstructed instantaneous-rate curve on a uniform grid over [0,1].
struct RateCurve {
  counters::CounterId counter = counters::CounterId::TotIns;
  std::vector<double> t;         ///< Uniform grid over [0,1].
  std::vector<double> normRate;  ///< Normalized rate dy/dt (integral ≈ 1).
  std::vector<double> physRate;  ///< Physical rate in counts per ns.
  double meanDurationNs = 0.0;   ///< Prototype instance duration.
  double meanTotal = 0.0;        ///< Prototype instance counter total.
  std::size_t sourcePoints = 0;  ///< Folded points the fit consumed.
  std::size_t sourceInstances = 0;  ///< Instances that contributed.

  /// Physical rate expressed as MIPS when counter == TotIns
  /// (counts/ns × 1e3); for other counters this is events per microsecond.
  [[nodiscard]] std::vector<double> ratePerMicrosecond() const;
};

/// Samples \p fit's derivative on \p gridPoints uniform points and scales by
/// the folded statistics to physical units. Negative derivatives (possible
/// with the kernel fitter) are clamped to zero in physRate but preserved in
/// normRate so ablations can observe them.
[[nodiscard]] RateCurve reconstructRate(const FoldedCounter& folded,
                                        const CumulativeFit& fit,
                                        std::size_t gridPoints = 201);

/// Convenience: fold → prune → fit → reconstruct in one call with default
/// parameters (the pipeline the examples use).
struct ReconstructOptions {
  FoldOptions fold;
  FitParams fit;
  bool prune = true;
  std::size_t gridPoints = 201;
  /// Moving-average window (grid points, odd) applied to the derivative —
  /// damps knot-scale wiggle that differentiation amplifies while leaving
  /// features wider than a knot intact. 0 disables smoothing.
  std::size_t smoothWindow = 9;
};

/// In-place centered moving average with shrinking windows at the edges.
/// \p window is clamped to odd; no-op when window < 3. O(n) via prefix
/// sums regardless of window size.
void movingAverage(std::vector<double>& values, std::size_t window);

/// The tail of reconstructClusterRate(): prune → fit → reconstruct → smooth
/// over an already-folded cloud. Callers that fold many counters in one
/// sample walk (foldClusterMulti) use this to share the fold stage while
/// keeping the per-counter processing identical.
[[nodiscard]] RateCurve reconstructFoldedRate(FoldedCounter folded,
                                              const ReconstructOptions& options = {});

/// End-to-end reconstruction for one (cluster, counter) pair.
[[nodiscard]] RateCurve reconstructClusterRate(const trace::Trace& trace,
                                               std::span<const cluster::Burst> bursts,
                                               std::span<const std::size_t> memberIdx,
                                               counters::CounterId counter,
                                               const ReconstructOptions& options = {});

}  // namespace unveil::folding
