#include "unveil/folding/columnar.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "unveil/support/error.hpp"
#include "unveil/support/simd.hpp"

namespace unveil::folding {

// ---------------------------------------------------------------------------
// PointColumns

void PointColumns::reserve(std::size_t n) {
  t_.reserve(n);
  y_.reserve(n);
  burst_.reserve(n);
  rank_.reserve(n);
}

void PointColumns::clear() noexcept {
  t_.clear();
  y_.clear();
  burst_.clear();
  rank_.clear();
}

void PointColumns::shrink_to_fit() {
  t_.shrink_to_fit();
  y_.shrink_to_fit();
  burst_.shrink_to_fit();
  rank_.shrink_to_fit();
}

void PointColumns::push_back(const FoldedPoint& p) {
  t_.push_back(p.t);
  y_.push_back(p.y);
  burst_.push_back(static_cast<std::uint32_t>(p.burstIdx));
  rank_.push_back(p.rank);
}

void PointColumns::set(std::size_t i, const FoldedPoint& p) noexcept {
  t_[i] = p.t;
  y_[i] = p.y;
  burst_[i] = static_cast<std::uint32_t>(p.burstIdx);
  rank_[i] = p.rank;
}

std::size_t PointColumns::grow(std::size_t extra) {
  const std::size_t first = t_.size();
  t_.resize(first + extra);
  y_.resize(first + extra);
  burst_.resize(first + extra);
  rank_.resize(first + extra);
  return first;
}

namespace {

/// Below this size a plain comparison sort beats the bucketing overhead.
constexpr std::size_t kMinBucketSortPoints = 2048;

/// Total order on doubles with NaN sorting before every number. For the
/// fold-produced clouds (never NaN) this is plain operator<, so the sorted
/// sequence matches the historical comparator byte-for-byte; hand-built
/// clouds with non-finite values get a deterministic order instead of the
/// undefined behaviour a NaN comparator hands std::sort.
inline bool ltTotal(double a, double b) noexcept {
  const bool na = a != a;
  const bool nb = b != b;
  if (na || nb) return na && !nb;
  return a < b;
}

}  // namespace

void PointColumns::sortCanonical() {
  SortScratch scratch;
  sortCanonical(scratch);
}

void PointColumns::sortCanonical(SortScratch& scratch) {
  (void)sortCanonicalRetainPerm(scratch);
}

void PointColumns::applyPermutation(std::span<const std::uint32_t> perm,
                                    SortScratch& scratch) {
  const std::size_t n = size();
  UNVEIL_ASSERT(perm.size() == n, "permutation size mismatch");
  auto& tmpT = scratch.tmpT;
  auto& tmpY = scratch.tmpY;
  auto& tmpB = scratch.tmpB;
  auto& tmpR = scratch.tmpR;
  tmpT.resize(n);
  tmpY.resize(n);
  tmpB.resize(n);
  tmpR.resize(n);
  // One fused pass: the four random gathers issue together, so their miss
  // latencies overlap instead of serializing across four loops.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t p = perm[i];
    tmpT[i] = t_[p];
    tmpY[i] = y_[p];
    tmpB[i] = burst_[p];
    tmpR[i] = rank_[p];
  }
  t_.swap(tmpT);
  y_.swap(tmpY);
  burst_.swap(tmpB);
  rank_.swap(tmpR);
}

bool PointColumns::sortCanonicalRetainPerm(SortScratch& scratch) {
  const std::size_t n = size();
  if (n < 2) {
    scratch.perm.resize(n);
    if (n == 1) scratch.perm[0] = 0;
    return true;
  }
  UNVEIL_ASSERT(n <= std::numeric_limits<std::uint32_t>::max(),
                "point cloud exceeds 2^32 rows");
  const double* t = t_.data();
  const double* y = y_.data();
  const std::uint32_t* bi = burst_.data();
  // Canonical order: (t, burstIdx, y); equal points are identical.
  const auto less = [t, y, bi](std::uint32_t a, std::uint32_t b) noexcept {
    if (ltTotal(t[a], t[b])) return true;
    if (ltTotal(t[b], t[a])) return false;
    if (bi[a] != bi[b]) return bi[a] < bi[b];
    return ltTotal(y[a], y[b]);
  };

  auto& perm = scratch.perm;
  perm.resize(n);
  if (n < kMinBucketSortPoints) {
    std::iota(perm.begin(), perm.end(), std::uint32_t{0});
    std::sort(perm.begin(), perm.end(), less);
  } else {
    // O(n) distribution on t ∈ [0, 1]: about one point per bucket, so the
    // per-bucket finishing sorts all but vanish while the cursor working
    // set stays in cache. Out-of-contract values route deterministically:
    // anything not > 0 (including NaN) to bucket 0, anything >= 1 to the
    // last bucket — consistent with the NaN-first comparator that finishes
    // each bucket.
    const std::size_t nb =
        std::min<std::size_t>(std::size_t{1} << 17, std::bit_ceil(n));
    const auto bucketOf = [nb](double x) noexcept -> std::uint32_t {
      if (!(x > 0.0)) return 0;
      if (x >= 1.0) return static_cast<std::uint32_t>(nb - 1);
      return static_cast<std::uint32_t>(x * static_cast<double>(nb));
    };
    auto& offset = scratch.offset;
    auto& bucket = scratch.bucket;
    offset.assign(nb, 0);
    bucket.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      bucket[i] = bucketOf(t[i]);
      ++offset[bucket[i]];
    }
    std::uint32_t sum = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      const std::uint32_t count = offset[b];
      offset[b] = sum;  // exclusive prefix: bucket start position
      sum += count;
    }
    for (std::size_t i = 0; i < n; ++i)
      perm[offset[bucket[i]]++] = static_cast<std::uint32_t>(i);
    // Finish each bucket. Buckets are tiny on the designed-for
    // distribution, so an inline insertion sort beats std::sort's
    // call-and-setup overhead; big piles (e.g. clamp-produced t == 0 runs)
    // still take the introsort path. The canonical order is total with
    // "equal implies identical", so either finisher yields the same bytes.
    constexpr std::uint32_t kInsertionMax = 24;
    std::uint32_t begin = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      const std::uint32_t end = offset[b];  // scatter left it at bucket end
      const std::uint32_t count = end - begin;
      if (count > 1) {
        if (count <= kInsertionMax) {
          for (std::uint32_t i = begin + 1; i < end; ++i) {
            const std::uint32_t v = perm[i];
            std::uint32_t j = i;
            while (j > begin && less(v, perm[j - 1])) {
              perm[j] = perm[j - 1];
              --j;
            }
            perm[j] = v;
          }
        } else {
          std::sort(perm.begin() + begin, perm.begin() + end, less);
        }
      }
      begin = end;
    }
  }

  applyPermutation(perm, scratch);

  // Tie scan for permutation reuse: adjacent sorted points equal on
  // (t, burstIdx) mean the order consulted y, so the permutation is not
  // transferable to a sibling cloud with different y values.
  const double* ts = t_.data();
  const std::uint32_t* bs = burst_.data();
  for (std::size_t i = 1; i < n; ++i) {
    const bool tEqual = !ltTotal(ts[i - 1], ts[i]) && !ltTotal(ts[i], ts[i - 1]);
    if (tEqual && bs[i - 1] == bs[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// SampleColumns

void SampleColumns::build(const trace::Trace& trace) {
  const auto& samples = trace.samples();
  const std::size_t n = samples.size();
  time_.resize(n);
  mask_.resize(n);
  rank_.resize(n);
  for (auto& column : value_) column.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const trace::Sample& s = samples[i];
    time_[i] = s.time;
    mask_[i] = s.validMask;
    rank_[i] = s.rank;
    for (std::size_t k = 0; k < counters::kNumCounters; ++k)
      value_[k][i] = s.counters.values[k];
  }
}

trace::CounterMask SampleColumns::maskAnd(std::size_t first,
                                          std::size_t count) const noexcept {
  trace::CounterMask m = trace::kAllCountersMask;
  const std::size_t end = first + count;
  for (std::size_t i = first; i < end; ++i)
    m = static_cast<trace::CounterMask>(m & mask_[i]);
  return m;
}

// ---------------------------------------------------------------------------
// Kernels

namespace kernels {

#if defined(UNVEIL_HAVE_AVX2)
// Explicit AVX2 implementations, compiled with -mavx2 in columnar_avx2.cpp.
void normalizedTimesAvx2(const std::uint64_t* time, std::size_t n,
                         std::uint64_t begin, double probeNs, double perSampleNs,
                         double workNs, double* out);
void counterDeltasAvx2(const std::uint64_t* value, std::size_t n,
                       std::uint64_t c0, double increment, double* out);
#endif

namespace {

inline bool useAvx2() noexcept {
  return support::simdLevel() == support::SimdLevel::Avx2;
}

void normalizedTimesPortable(const std::uint64_t* time, std::size_t n,
                             std::uint64_t begin, double probeNs,
                             double perSampleNs, double workNs, double* out) {
  // Phase 1: ticks since burst begin. The u64 → f64 convert has no baseline
  // vector form, so it gets its own tight loop; everything after it is
  // elementwise double arithmetic the compiler vectorizes.
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<double>(time[i] - begin);
  const auto ni = static_cast<std::ptrdiff_t>(n);
  if (perSampleNs == 0.0 && !std::signbit(perSampleNs)) {
    // With a zero per-sample overhead the index term is exactly +0.0 for
    // every i, and x − probe − 0.0 ≡ x − probe bit-for-bit — which frees
    // the loop from the (unvectorizable) index-to-double convert.
#pragma omp simd
    for (std::ptrdiff_t i = 0; i < ni; ++i)
      out[i] = std::clamp((out[i] - probeNs) / workNs, 0.0, 1.0);
    return;
  }
  for (std::ptrdiff_t i = 0; i < ni; ++i) {
    const double elapsed =
        out[i] - probeNs - perSampleNs * static_cast<double>(i);
    out[i] = std::clamp(elapsed / workNs, 0.0, 1.0);
  }
}

void counterDeltasPortable(const std::uint64_t* value, std::size_t n,
                           std::uint64_t c0, double increment, double* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<double>(value[i] - c0);
  const auto ni = static_cast<std::ptrdiff_t>(n);
#pragma omp simd
  for (std::ptrdiff_t i = 0; i < ni; ++i) out[i] = out[i] / increment;
}

}  // namespace

void normalizedTimes(const std::uint64_t* time, std::size_t n,
                     std::uint64_t begin, double probeNs, double perSampleNs,
                     double workNs, double* out) {
#if defined(UNVEIL_HAVE_AVX2)
  if (useAvx2()) {
    normalizedTimesAvx2(time, n, begin, probeNs, perSampleNs, workNs, out);
    return;
  }
#endif
  normalizedTimesPortable(time, n, begin, probeNs, perSampleNs, workNs, out);
}

void counterDeltas(const std::uint64_t* value, std::size_t n, std::uint64_t c0,
                   double increment, double* out) {
#if defined(UNVEIL_HAVE_AVX2)
  if (useAvx2()) {
    counterDeltasAvx2(value, n, c0, increment, out);
    return;
  }
#endif
  counterDeltasPortable(value, n, c0, increment, out);
}

}  // namespace kernels

}  // namespace unveil::folding
