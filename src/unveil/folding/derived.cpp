#include "unveil/folding/derived.hpp"

#include "unveil/support/error.hpp"

namespace unveil::folding {

namespace {

void checkGrids(const RateCurve& a, const RateCurve& b) {
  if (a.t.size() != b.t.size() || a.t.empty())
    throw ConfigError("derived metrics require matching non-empty grids");
  // Grids come from the same linspace; spot-check the endpoints.
  if (a.t.front() != b.t.front() || a.t.back() != b.t.back())
    throw ConfigError("derived metrics require identical grids");
}

DerivedCurve ratio(const RateCurve& num, const RateCurve& den, double scale,
                   double denFloor) {
  DerivedCurve out;
  out.t = num.t;
  out.value.resize(num.t.size());
  for (std::size_t i = 0; i < num.t.size(); ++i) {
    const double d = den.physRate[i];
    out.value[i] = d > denFloor ? scale * num.physRate[i] / d : 0.0;
  }
  return out;
}

}  // namespace

DerivedCurve instantaneousIpc(const RateCurve& instructions, const RateCurve& cycles) {
  checkGrids(instructions, cycles);
  // Floor: 1e-6 cycles/ns is far below any real execution; treat as stall.
  return ratio(instructions, cycles, 1.0, 1e-6);
}

DerivedCurve instantaneousPerKiloIns(const RateCurve& misses,
                                     const RateCurve& instructions) {
  checkGrids(misses, instructions);
  return ratio(misses, instructions, 1e3, 1e-9);
}

}  // namespace unveil::folding
