#include "unveil/folding/accuracy.hpp"

#include <algorithm>
#include <cmath>

#include "unveil/support/error.hpp"
#include "unveil/support/math.hpp"

namespace unveil::folding {

double meanAbsDiffPercent(std::span<const double> candidate,
                          std::span<const double> reference) {
  if (candidate.size() != reference.size() || candidate.empty())
    throw ConfigError("meanAbsDiffPercent: grids must match and be non-empty");
  double diff = 0.0;
  double level = 0.0;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    diff += std::abs(candidate[i] - reference[i]);
    level += std::abs(reference[i]);
  }
  if (level == 0.0) throw AnalysisError("meanAbsDiffPercent: zero reference level");
  return 100.0 * diff / level;
}

std::vector<double> truthNormalizedRate(const counters::RateShape& shape,
                                        std::span<const double> grid) {
  std::vector<double> out(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    out[i] = shape.normalizedRate(grid[i]);
  return out;
}

std::vector<double> empiricalNormalizedRate(const trace::Trace& trace,
                                            std::span<const cluster::Burst> bursts,
                                            std::span<const std::size_t> memberIdx,
                                            counters::CounterId counter,
                                            std::span<const double> grid,
                                            const EmpiricalRateParams& params) {
  if (params.bins < 2) throw ConfigError("empirical reference needs >= 2 bins");
  const auto& samples = trace.samples();
  std::vector<double> binSum(params.bins, 0.0);
  std::vector<std::size_t> binCount(params.bins, 0);
  std::size_t denseInstances = 0;

  for (std::size_t mi : memberIdx) {
    UNVEIL_ASSERT(mi < bursts.size(), "empirical member index out of range");
    const cluster::Burst& b = bursts[mi];
    if (b.sampleCount < params.minSamplesPerInstance) continue;
    const double overhead =
        params.probeOverheadNs +
        params.perSampleOverheadNs * static_cast<double>(b.sampleCount);
    const double duration =
        std::max(static_cast<double>(b.durationNs()) - overhead, 1.0);
    const double total = static_cast<double>(b.endCounters[counter]) -
                         static_cast<double>(b.beginCounters[counter]);
    if (duration <= 0.0 || total <= 0.0) continue;
    ++denseInstances;
    // Finite differences between consecutive samples, anchored at the burst
    // begin/end probes so the full [0,1] range contributes.
    double prevT = 0.0;
    double prevY = 0.0;
    auto addSegment = [&](double t0, double y0, double t1, double y1) {
      if (t1 <= t0) return;
      const double rate = (y1 - y0) / (t1 - t0);
      const double mid = 0.5 * (t0 + t1);
      auto bin = static_cast<std::size_t>(mid * static_cast<double>(params.bins));
      bin = std::min(bin, params.bins - 1);
      binSum[bin] += rate;
      ++binCount[bin];
    };
    std::size_t samplesBefore = 0;
    const std::size_t sEnd = b.sampleFirst + b.sampleCount;
    for (std::size_t si = b.sampleFirst; si < sEnd; ++si) {
      const trace::Sample& s = samples[si];
      if (!trace::maskHas(s.validMask, counter)) {
        ++samplesBefore;
        continue;
      }
      const double elapsed =
          static_cast<double>(s.time - b.begin) - params.probeOverheadNs -
          params.perSampleOverheadNs * static_cast<double>(samplesBefore);
      const double t = std::clamp(elapsed / duration, 0.0, 1.0);
      const double y = (static_cast<double>(s.counters[counter]) -
                        static_cast<double>(b.beginCounters[counter])) /
                       total;
      addSegment(prevT, prevY, t, y);
      prevT = t;
      prevY = y;
      ++samplesBefore;
    }
    addSegment(prevT, prevY, 1.0, 1.0);
  }

  if (denseInstances == 0)
    throw AnalysisError("empiricalNormalizedRate: no instance has enough samples (need " +
                        std::to_string(params.minSamplesPerInstance) + "+)");

  std::vector<double> xs, ys;
  xs.reserve(params.bins);
  ys.reserve(params.bins);
  for (std::size_t bIdx = 0; bIdx < params.bins; ++bIdx) {
    if (binCount[bIdx] == 0) continue;
    xs.push_back((static_cast<double>(bIdx) + 0.5) / static_cast<double>(params.bins));
    ys.push_back(binSum[bIdx] / static_cast<double>(binCount[bIdx]));
  }
  if (xs.size() < 2)
    throw AnalysisError("empiricalNormalizedRate: insufficient bin coverage");

  std::vector<double> out(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    out[i] = support::interpLinear(xs, ys, grid[i]);
  return out;
}

}  // namespace unveil::folding
