#include "unveil/folding/folded.hpp"

#include <algorithm>

#include "unveil/support/error.hpp"

namespace unveil::folding {

FoldedCounter foldCluster(const trace::Trace& trace,
                          std::span<const cluster::Burst> bursts,
                          std::span<const std::size_t> memberIdx,
                          counters::CounterId counter, const FoldOptions& options) {
  FoldedCounter out;
  out.counter = counter;
  const auto& samples = trace.samples();

  double durationSum = 0.0;
  double totalSum = 0.0;
  for (std::size_t bi = 0; bi < memberIdx.size(); ++bi) {
    UNVEIL_ASSERT(memberIdx[bi] < bursts.size(), "fold member index out of range");
    const cluster::Burst& b = bursts[memberIdx[bi]];
    const auto duration = b.durationNs();
    if (duration < options.minDurationNs) continue;
    const std::uint64_t c0 = b.beginCounters[counter];
    const std::uint64_t c1 = b.endCounters[counter];
    const double increment = static_cast<double>(c1 - c0);
    if (increment < options.minCounterIncrement) continue;

    // Work duration after removing the measurement's own intrusion.
    const double overhead =
        options.probeOverheadNs +
        options.perSampleOverheadNs * static_cast<double>(b.sampleIdx.size());
    const double workNs =
        std::max(static_cast<double>(duration) - overhead, 1.0);

    ++out.instances;
    durationSum += workNs;
    totalSum += increment;

    bool any = false;
    std::size_t samplesBefore = 0;
    for (std::size_t si : b.sampleIdx) {
      const trace::Sample& s = samples[si];
      UNVEIL_ASSERT(s.rank == b.rank, "sample attached to wrong rank");
      UNVEIL_ASSERT(s.time >= b.begin && s.time < b.end,
                    "sample outside its burst window");
      // Multiplexed samples that did not read this counter still dilate the
      // burst (they count toward samplesBefore below) but contribute no
      // folded point.
      if (!trace::maskHas(s.validMask, counter)) {
        ++samplesBefore;
        continue;
      }
      FoldedPoint p;
      const double elapsed =
          static_cast<double>(s.time - b.begin) - options.probeOverheadNs -
          options.perSampleOverheadNs * static_cast<double>(samplesBefore);
      p.t = std::clamp(elapsed / workNs, 0.0, 1.0);
      // Counter monotonicity guarantees c0 <= sample <= c1, so y in [0,1].
      p.y = static_cast<double>(s.counters[counter] - c0) / increment;
      p.burstIdx = bi;
      p.rank = b.rank;
      out.points.push_back(p);
      any = true;
      ++samplesBefore;
    }
    if (any) ++out.instancesWithSamples;
  }

  if (out.instances == 0)
    throw AnalysisError("foldCluster: no instance qualifies for counter " +
                        std::string(counters::counterName(counter)));

  out.meanDurationNs = durationSum / static_cast<double>(out.instances);
  out.meanTotal = totalSum / static_cast<double>(out.instances);
  std::sort(out.points.begin(), out.points.end(),
            [](const FoldedPoint& a, const FoldedPoint& b) { return a.t < b.t; });
  return out;
}

}  // namespace unveil::folding
