#include "unveil/folding/folded.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::folding {

namespace {

/// Root seed of the per-counter reservoir substreams. The stream depends
/// only on the counter name, so every fold path (single, multi, batch,
/// streaming) draws the same replacement sequence for the same cloud.
constexpr std::uint64_t kReservoirRoot = 0x666f6c64;  // "fold"

/// Algorithm R reservoir step: retain the first `cap` points, then replace
/// a uniformly chosen survivor with decreasing probability. cap == 0 keeps
/// everything.
void offerPoint(PointColumns& pts, const FoldedPoint& p, std::size_t cap,
                std::uint64_t& seen, support::Rng& rng) {
  ++seen;
  if (cap == 0 || pts.size() < cap) {
    pts.push_back(p);
    return;
  }
  const auto j = static_cast<std::uint64_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(seen) - 1));
  if (j < cap) pts.set(static_cast<std::size_t>(j), p);
}

}  // namespace

FoldedCounter foldCluster(const trace::Trace& trace,
                          std::span<const cluster::Burst> bursts,
                          std::span<const std::size_t> memberIdx,
                          counters::CounterId counter, const FoldOptions& options) {
  telemetry::Span span("fold.cluster");
  span.attr("counter", counters::counterName(counter));
  span.attr("members", memberIdx.size());
  FoldedCounter out;
  out.counter = counter;
  const auto& samples = trace.samples();

  double durationSum = 0.0;
  double totalSum = 0.0;
  std::uint64_t seenPoints = 0;
  support::Rng reservoirRng(kReservoirRoot, counters::counterName(counter));
  for (std::size_t bi = 0; bi < memberIdx.size(); ++bi) {
    UNVEIL_ASSERT(memberIdx[bi] < bursts.size(), "fold member index out of range");
    const cluster::Burst& b = bursts[memberIdx[bi]];
    const auto duration = b.durationNs();
    if (duration < options.minDurationNs) continue;
    const std::uint64_t c0 = b.beginCounters[counter];
    const std::uint64_t c1 = b.endCounters[counter];
    const double increment = static_cast<double>(c1 - c0);
    if (increment < options.minCounterIncrement) continue;

    // Work duration after removing the measurement's own intrusion.
    const double overhead =
        options.probeOverheadNs +
        options.perSampleOverheadNs * static_cast<double>(b.sampleCount);
    const double workNs =
        std::max(static_cast<double>(duration) - overhead, 1.0);

    ++out.instances;
    durationSum += workNs;
    totalSum += increment;

    bool any = false;
    std::size_t samplesBefore = 0;
    const std::size_t sEnd = b.sampleFirst + b.sampleCount;
    for (std::size_t si = b.sampleFirst; si < sEnd; ++si) {
      const trace::Sample& s = samples[si];
      UNVEIL_ASSERT(s.rank == b.rank, "sample attached to wrong rank");
      UNVEIL_ASSERT(s.time >= b.begin && s.time < b.end,
                    "sample outside its burst window");
      // Multiplexed samples that did not read this counter still dilate the
      // burst (they count toward samplesBefore below) but contribute no
      // folded point.
      if (!trace::maskHas(s.validMask, counter)) {
        ++samplesBefore;
        continue;
      }
      FoldedPoint p;
      const double elapsed =
          static_cast<double>(s.time - b.begin) - options.probeOverheadNs -
          options.perSampleOverheadNs * static_cast<double>(samplesBefore);
      p.t = std::clamp(elapsed / workNs, 0.0, 1.0);
      // Counter monotonicity guarantees c0 <= sample <= c1, so y in [0,1].
      p.y = static_cast<double>(s.counters[counter] - c0) / increment;
      p.burstIdx = bi;
      p.rank = b.rank;
      offerPoint(out.points, p, options.maxPointsPerCounter, seenPoints,
                 reservoirRng);
      any = true;
      ++samplesBefore;
    }
    if (any) ++out.instancesWithSamples;
  }

  if (out.instances == 0)
    throw AnalysisError("foldCluster: no instance qualifies for counter " +
                        std::string(counters::counterName(counter)));

  out.meanDurationNs = durationSum / static_cast<double>(out.instances);
  out.meanTotal = totalSum / static_cast<double>(out.instances);
  // Reference implementation: the scalar per-sample walk above, finished by
  // the canonical sort. foldClusterMulti() reaches the same bytes through
  // the vectorized kernels — the canonical total order makes the sorted
  // sequence unique, so the sort algorithm cannot matter.
  out.points.sortCanonical();
  span.attr("points", out.points.size());
  telemetry::count("fold.points", out.points.size());
  telemetry::count("fold.instances", out.instances);
  telemetry::observe("fold.points_per_cluster",
                     static_cast<double>(out.points.size()));
  return out;
}

/// Per-counter accumulation state. Defined here (not in the header) so the
/// header stays free of Rng/implementation details; the out-of-line special
/// members below exist because std::vector<Accum> needs the complete type.
struct MultiFoldAccumulator::Accum {
  FoldedCounter folded;
  double durationSum = 0.0;
  double totalSum = 0.0;
  std::uint64_t seenPoints = 0;  ///< Points generated (retained or not).
  support::Rng reservoirRng{0};
};

MultiFoldAccumulator::MultiFoldAccumulator(
    std::vector<counters::CounterId> counterSet, FoldOptions options)
    : counterSet_(std::move(counterSet)), options_(options) {
  const std::size_t nc = counterSet_.size();
  acc_.resize(nc);
  for (std::size_t k = 0; k < nc; ++k) {
    acc_[k].folded.counter = counterSet_[k];
    acc_[k].reservoirRng =
        support::Rng(kReservoirRoot, counters::counterName(counterSet_[k]));
  }
  c0_.resize(nc);
  increment_.resize(nc);
  qualifies_.resize(nc);
  any_.resize(nc);
}

MultiFoldAccumulator::~MultiFoldAccumulator() = default;
MultiFoldAccumulator::MultiFoldAccumulator(MultiFoldAccumulator&&) noexcept =
    default;
MultiFoldAccumulator& MultiFoldAccumulator::operator=(
    MultiFoldAccumulator&&) noexcept = default;

void MultiFoldAccumulator::reservePoints(std::size_t maxPoints) {
  const std::size_t cap = options_.maxPointsPerCounter;
  if (cap > 0) maxPoints = std::min(maxPoints, cap);
  for (Accum& a : acc_) a.folded.points.reserve(maxPoints);
}

std::size_t MultiFoldAccumulator::pointsHeld() const noexcept {
  std::size_t n = 0;
  for (const Accum& a : acc_) n += a.folded.points.size();
  return n;
}

void MultiFoldAccumulator::add(const SampleColumns& samples,
                               const cluster::Burst& b) {
  const std::size_t nc = counterSet_.size();
  // The member index baked into every emitted point counts *all* members,
  // including the ones the duration/increment filters skip below — exactly
  // like the `bi` loop variable of the batch walk.
  const std::size_t bi = members_++;
  if (nc == 0) return;

  const auto duration = b.durationNs();
  if (duration < options_.minDurationNs) return;

  bool anyQualifies = false;
  for (std::size_t k = 0; k < nc; ++k) {
    c0_[k] = b.beginCounters[counterSet_[k]];
    increment_[k] = static_cast<double>(b.endCounters[counterSet_[k]] - c0_[k]);
    qualifies_[k] = increment_[k] >= options_.minCounterIncrement ? 1 : 0;
    anyQualifies |= qualifies_[k] != 0;
    any_[k] = 0;
  }
  if (!anyQualifies) return;

  const std::size_t first = b.sampleFirst;
  const std::size_t count = b.sampleCount;
  UNVEIL_ASSERT(first + count <= samples.size(),
                "burst sample window out of range");
  if (count > 0) {
    // Samples are (rank, time)-sorted and the window is contiguous, so
    // checking the endpoints covers every row in between — O(1) where the
    // per-sample walk paid the invariant check n times.
    const trace::Rank* ranks = samples.rankData();
    const std::uint64_t* times = samples.timeData();
    UNVEIL_ASSERT(ranks[first] == b.rank && ranks[first + count - 1] == b.rank,
                  "sample attached to wrong rank");
    UNVEIL_ASSERT(times[first] >= b.begin && times[first + count - 1] < b.end,
                  "sample outside its burst window");
  }

  // Work duration after removing the measurement's own intrusion
  // (counter-independent, computed once for the burst).
  const double overhead =
      options_.probeOverheadNs +
      options_.perSampleOverheadNs * static_cast<double>(count);
  const double workNs = std::max(static_cast<double>(duration) - overhead, 1.0);

  for (std::size_t k = 0; k < nc; ++k) {
    if (!qualifies_[k]) continue;
    ++acc_[k].folded.instances;
    acc_[k].durationSum += workNs;
    acc_[k].totalSum += increment_[k];
  }
  if (count == 0) return;

  // The normalized time depends only on the sample's position inside the
  // burst (every sample dilates it, valid or not) — project the whole
  // window once, reuse for every counter.
  t_.resize(count);
  kernels::normalizedTimes(samples.timeData() + first, count, b.begin,
                           options_.probeOverheadNs,
                           options_.perSampleOverheadNs, workNs, t_.data());

  const std::size_t cap = options_.maxPointsPerCounter;
  // A set bit means every sample in the window read that counter, unlocking
  // the branch-free bulk append for it.
  const trace::CounterMask windowMask = samples.maskAnd(first, count);

  for (std::size_t k = 0; k < nc; ++k) {
    if (!qualifies_[k]) continue;
    const counters::CounterId counter = counterSet_[k];
    Accum& a = acc_[k];
    if (cap == 0 && trace::maskHas(windowMask, counter)) {
      // Bulk path: grow the columns by the whole window and fill them with
      // the vectorized kernels. Same values in the same per-counter order
      // as the scalar walk — the t column is shared, the y kernel computes
      // the identical (double)(v − c0) / increment expression.
      PointColumns& pts = a.folded.points;
      const std::size_t dst = pts.grow(count);
      std::memcpy(pts.tData() + dst, t_.data(), count * sizeof(double));
      kernels::counterDeltas(samples.valueData(counter) + first, count, c0_[k],
                             increment_[k], pts.yData() + dst);
      std::fill_n(pts.burstData() + dst, count, static_cast<std::uint32_t>(bi));
      std::fill_n(pts.rankData() + dst, count, b.rank);
      a.seenPoints += count;
      any_[k] = 1;
    } else {
      // Scalar path: multiplexed windows (some samples missed the counter)
      // or an active reservoir, whose replacement draws must replay the
      // per-point offer sequence exactly.
      const std::uint64_t* value = samples.valueData(counter);
      const trace::CounterMask* mask = samples.maskData();
      for (std::size_t i = 0; i < count; ++i) {
        if (!trace::maskHas(mask[first + i], counter)) continue;
        FoldedPoint p;
        p.t = t_[i];
        // Counter monotonicity guarantees c0 <= sample <= c1, so y in [0,1].
        p.y = static_cast<double>(value[first + i] - c0_[k]) / increment_[k];
        p.burstIdx = bi;
        p.rank = b.rank;
        offerPoint(a.folded.points, p, cap, a.seenPoints, a.reservoirRng);
        any_[k] = 1;
      }
    }
  }
  for (std::size_t k = 0; k < nc; ++k)
    if (any_[k]) ++acc_[k].folded.instancesWithSamples;
}

std::vector<MultiFoldEntry> MultiFoldAccumulator::finish() {
  const std::size_t nc = counterSet_.size();
  std::vector<MultiFoldEntry> out(nc);
  for (std::size_t k = 0; k < nc; ++k) out[k].counter = counterSet_[k];

  // Finalize each counter. The canonical order makes the sorted sequence
  // unique, so the O(n) distribution sort inside sortCanonical yields
  // exactly the bytes a comparison sort would.
  //
  // The clouds of one multi-fold share a single sample walk, so on the
  // common path (no multiplexing, no reservoir) every counter's (t, burst)
  // columns are bitwise identical and only y differs. Sorting is the
  // dominant cost here, and the canonical order consults y only to break
  // (t, burst) ties — so when the first cloud sorts tie-free, its
  // permutation is reused verbatim on every sibling whose pre-sort
  // (t, burst) columns match, replacing a full sort with one gather pass.
  PointColumns::SortScratch scratch;
  std::size_t ref = nc;  // index of the permutation-donor cloud
  std::vector<char> reuse(nc, 0);
  for (std::size_t k = 0; k < nc; ++k) {
    Accum& a = acc_[k];
    if (a.folded.instances == 0) continue;
    if (ref == nc) {
      ref = k;
      continue;
    }
    const PointColumns& r = acc_[ref].folded.points;
    const PointColumns& p = a.folded.points;
    const std::size_t n = r.size();
    reuse[k] = p.size() == n &&
               std::memcmp(p.ts().data(), r.ts().data(), n * sizeof(double)) == 0 &&
               std::memcmp(p.burstIdxs().data(), r.burstIdxs().data(),
                           n * sizeof(std::uint32_t)) == 0;
  }
  bool permValid = false;
  if (ref != nc)
    permValid = acc_[ref].folded.points.sortCanonicalRetainPerm(scratch);

  for (std::size_t k = 0; k < nc; ++k) {
    Accum& a = acc_[k];
    if (a.folded.instances == 0) {
      out[k].error = "foldCluster: no instance qualifies for counter " +
                     std::string(counters::counterName(counterSet_[k]));
      continue;
    }
    a.folded.meanDurationNs =
        a.durationSum / static_cast<double>(a.folded.instances);
    a.folded.meanTotal = a.totalSum / static_cast<double>(a.folded.instances);
    if (k != ref) {
      if (permValid && reuse[k])
        a.folded.points.applyPermutation(scratch.perm, scratch);
      else
        a.folded.points.sortCanonical(scratch);
    }
    a.folded.points.shrink_to_fit();
    out[k].folded = std::move(a.folded);
  }
  return out;
}

std::vector<MultiFoldEntry> foldClusterMulti(
    const SampleColumns& samples, std::span<const cluster::Burst> bursts,
    std::span<const std::size_t> memberIdx,
    std::span<const counters::CounterId> counterSet, const FoldOptions& options) {
  telemetry::Span span("fold.cluster");
  span.attr("members", memberIdx.size());
  span.attr("counters", counterSet.size());
  if (counterSet.empty()) return {};

  MultiFoldAccumulator acc(
      std::vector<counters::CounterId>(counterSet.begin(), counterSet.end()),
      options);
  // Upper bound on the points any one counter can emit: every sample of
  // every duration-qualified member. Reserving it up front removes the
  // reallocation-and-copy churn from the hot walk.
  std::size_t maxPoints = 0;
  for (std::size_t mi : memberIdx) {
    UNVEIL_ASSERT(mi < bursts.size(), "fold member index out of range");
    const cluster::Burst& b = bursts[mi];
    if (b.durationNs() >= options.minDurationNs) maxPoints += b.sampleCount;
  }
  acc.reservePoints(maxPoints);
  for (std::size_t mi : memberIdx) acc.add(samples, bursts[mi]);
  std::vector<MultiFoldEntry> out = acc.finish();

  if (span.active()) {
    std::uint64_t totalPoints = 0;
    std::uint64_t totalInstances = 0;
    for (const auto& entry : out) {
      if (!entry.folded) continue;
      totalPoints += entry.folded->points.size();
      totalInstances += entry.folded->instances;
      telemetry::observe("fold.points_per_cluster",
                         static_cast<double>(entry.folded->points.size()));
    }
    span.attr("points", totalPoints);
    telemetry::count("fold.points", totalPoints);
    telemetry::count("fold.instances", totalInstances);
  }
  return out;
}

std::vector<MultiFoldEntry> foldClusterMulti(
    const trace::Trace& trace, std::span<const cluster::Burst> bursts,
    std::span<const std::size_t> memberIdx,
    std::span<const counters::CounterId> counterSet, const FoldOptions& options) {
  SampleColumns samples;
  samples.build(trace);
  return foldClusterMulti(samples, bursts, memberIdx, counterSet, options);
}

}  // namespace unveil::folding
