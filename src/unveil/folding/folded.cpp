#include "unveil/folding/folded.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::folding {

namespace {

/// Canonical total order on folded points. Sorting primarily by t, ties are
/// broken by source burst and then by y; two points equal under this order
/// are bit-identical (rank is determined by the burst), so *any* correct
/// sorting algorithm produces the same byte sequence. This is what lets
/// foldClusterMulti() use a distribution sort while staying bit-identical
/// to the std::sort in foldCluster().
bool pointLess(const FoldedPoint& a, const FoldedPoint& b) noexcept {
  if (a.t != b.t) return a.t < b.t;
  if (a.burstIdx != b.burstIdx) return a.burstIdx < b.burstIdx;
  return a.y < b.y;
}

/// Below this size a plain std::sort beats the bucketing overhead.
constexpr std::size_t kMinBucketSortPoints = 2048;

/// Reusable buffers for sortPointsCanonical(); callers sorting several
/// clouds back to back (foldClusterMulti) pay the allocations only once.
struct SortScratch {
  std::vector<std::uint32_t> offset;
  std::vector<FoldedPoint> tmp;
};

/// Sorts \p pts into the canonical order. Exploits t ∈ [0, 1] (guaranteed by
/// the clamp in the fold loop) with a single-pass bucket distribution on t
/// followed by tiny per-bucket sorts: O(n) for the uniform-ish clouds folding
/// produces, against std::sort's O(n log n) comparison floor.
void sortPointsCanonical(std::vector<FoldedPoint>& pts, SortScratch& scratch) {
  const std::size_t n = pts.size();
  if (n < kMinBucketSortPoints) {
    std::sort(pts.begin(), pts.end(), pointLess);
    return;
  }
  // About one point per bucket: the per-bucket sorts all but vanish and the
  // scatter's working set (a few hundred KB of cursors) still sits in cache.
  const std::size_t nb =
      std::min<std::size_t>(std::size_t{1} << 17, std::bit_ceil(n));
  const auto bucketOf = [nb](double t) noexcept {
    const auto i = static_cast<std::size_t>(t * static_cast<double>(nb));
    return i < nb ? i : nb - 1;
  };
  scratch.offset.assign(nb, 0);
  auto& offset = scratch.offset;
  for (const FoldedPoint& p : pts) ++offset[bucketOf(p.t)];
  std::uint32_t sum = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::uint32_t count = offset[b];
    offset[b] = sum;  // exclusive prefix: bucket start position
    sum += count;
  }
  scratch.tmp.resize(n);
  auto& tmp = scratch.tmp;
  for (const FoldedPoint& p : pts) tmp[offset[bucketOf(p.t)]++] = p;
  // The scatter advanced each offset to its bucket's end position.
  std::uint32_t begin = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::uint32_t end = offset[b];
    if (end - begin > 1)
      std::sort(tmp.begin() + begin, tmp.begin() + end, pointLess);
    begin = end;
  }
  pts.swap(tmp);
}

/// Root seed of the per-counter reservoir substreams. The stream depends
/// only on the counter name, so every fold path (single, multi, batch,
/// streaming) draws the same replacement sequence for the same cloud.
constexpr std::uint64_t kReservoirRoot = 0x666f6c64;  // "fold"

/// Algorithm R reservoir step: retain the first `cap` points, then replace
/// a uniformly chosen survivor with decreasing probability. cap == 0 keeps
/// everything.
void offerPoint(std::vector<FoldedPoint>& pts, const FoldedPoint& p,
                std::size_t cap, std::uint64_t& seen, support::Rng& rng) {
  ++seen;
  if (cap == 0 || pts.size() < cap) {
    pts.push_back(p);
    return;
  }
  const auto j = static_cast<std::uint64_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(seen) - 1));
  if (j < cap) pts[static_cast<std::size_t>(j)] = p;
}

}  // namespace

FoldedCounter foldCluster(const trace::Trace& trace,
                          std::span<const cluster::Burst> bursts,
                          std::span<const std::size_t> memberIdx,
                          counters::CounterId counter, const FoldOptions& options) {
  telemetry::Span span("fold.cluster");
  span.attr("counter", counters::counterName(counter));
  span.attr("members", memberIdx.size());
  FoldedCounter out;
  out.counter = counter;
  const auto& samples = trace.samples();

  double durationSum = 0.0;
  double totalSum = 0.0;
  std::uint64_t seenPoints = 0;
  support::Rng reservoirRng(kReservoirRoot, counters::counterName(counter));
  for (std::size_t bi = 0; bi < memberIdx.size(); ++bi) {
    UNVEIL_ASSERT(memberIdx[bi] < bursts.size(), "fold member index out of range");
    const cluster::Burst& b = bursts[memberIdx[bi]];
    const auto duration = b.durationNs();
    if (duration < options.minDurationNs) continue;
    const std::uint64_t c0 = b.beginCounters[counter];
    const std::uint64_t c1 = b.endCounters[counter];
    const double increment = static_cast<double>(c1 - c0);
    if (increment < options.minCounterIncrement) continue;

    // Work duration after removing the measurement's own intrusion.
    const double overhead =
        options.probeOverheadNs +
        options.perSampleOverheadNs * static_cast<double>(b.sampleIdx.size());
    const double workNs =
        std::max(static_cast<double>(duration) - overhead, 1.0);

    ++out.instances;
    durationSum += workNs;
    totalSum += increment;

    bool any = false;
    std::size_t samplesBefore = 0;
    for (std::size_t si : b.sampleIdx) {
      const trace::Sample& s = samples[si];
      UNVEIL_ASSERT(s.rank == b.rank, "sample attached to wrong rank");
      UNVEIL_ASSERT(s.time >= b.begin && s.time < b.end,
                    "sample outside its burst window");
      // Multiplexed samples that did not read this counter still dilate the
      // burst (they count toward samplesBefore below) but contribute no
      // folded point.
      if (!trace::maskHas(s.validMask, counter)) {
        ++samplesBefore;
        continue;
      }
      FoldedPoint p;
      const double elapsed =
          static_cast<double>(s.time - b.begin) - options.probeOverheadNs -
          options.perSampleOverheadNs * static_cast<double>(samplesBefore);
      p.t = std::clamp(elapsed / workNs, 0.0, 1.0);
      // Counter monotonicity guarantees c0 <= sample <= c1, so y in [0,1].
      p.y = static_cast<double>(s.counters[counter] - c0) / increment;
      p.burstIdx = bi;
      p.rank = b.rank;
      offerPoint(out.points, p, options.maxPointsPerCounter, seenPoints,
                 reservoirRng);
      any = true;
      ++samplesBefore;
    }
    if (any) ++out.instancesWithSamples;
  }

  if (out.instances == 0)
    throw AnalysisError("foldCluster: no instance qualifies for counter " +
                        std::string(counters::counterName(counter)));

  out.meanDurationNs = durationSum / static_cast<double>(out.instances);
  out.meanTotal = totalSum / static_cast<double>(out.instances);
  // Reference implementation: a plain comparison sort into the canonical
  // order. foldClusterMulti() reaches the same bytes via distribution sort.
  std::sort(out.points.begin(), out.points.end(), pointLess);
  span.attr("points", out.points.size());
  telemetry::count("fold.points", out.points.size());
  telemetry::count("fold.instances", out.instances);
  telemetry::observe("fold.points_per_cluster",
                     static_cast<double>(out.points.size()));
  return out;
}

/// Per-counter accumulation state. Defined here (not in the header) so the
/// header stays free of Rng/implementation details; the out-of-line special
/// members below exist because std::vector<Accum> needs the complete type.
struct MultiFoldAccumulator::Accum {
  FoldedCounter folded;
  double durationSum = 0.0;
  double totalSum = 0.0;
  std::uint64_t seenPoints = 0;  ///< Points generated (retained or not).
  support::Rng reservoirRng{0};
};

MultiFoldAccumulator::MultiFoldAccumulator(
    std::vector<counters::CounterId> counterSet, FoldOptions options)
    : counterSet_(std::move(counterSet)), options_(options) {
  const std::size_t nc = counterSet_.size();
  acc_.resize(nc);
  for (std::size_t k = 0; k < nc; ++k) {
    acc_[k].folded.counter = counterSet_[k];
    acc_[k].reservoirRng =
        support::Rng(kReservoirRoot, counters::counterName(counterSet_[k]));
  }
  c0_.resize(nc);
  increment_.resize(nc);
  qualifies_.resize(nc);
  any_.resize(nc);
}

MultiFoldAccumulator::~MultiFoldAccumulator() = default;
MultiFoldAccumulator::MultiFoldAccumulator(MultiFoldAccumulator&&) noexcept =
    default;
MultiFoldAccumulator& MultiFoldAccumulator::operator=(
    MultiFoldAccumulator&&) noexcept = default;

void MultiFoldAccumulator::reservePoints(std::size_t maxPoints) {
  const std::size_t cap = options_.maxPointsPerCounter;
  if (cap > 0) maxPoints = std::min(maxPoints, cap);
  for (Accum& a : acc_) a.folded.points.reserve(maxPoints);
}

std::size_t MultiFoldAccumulator::pointsHeld() const noexcept {
  std::size_t n = 0;
  for (const Accum& a : acc_) n += a.folded.points.size();
  return n;
}

void MultiFoldAccumulator::add(const trace::Trace& trace,
                               const cluster::Burst& b) {
  const std::size_t nc = counterSet_.size();
  // The member index baked into every emitted point counts *all* members,
  // including the ones the duration/increment filters skip below — exactly
  // like the `bi` loop variable of the batch walk.
  const std::size_t bi = members_++;
  if (nc == 0) return;
  const auto& samples = trace.samples();

  const auto duration = b.durationNs();
  if (duration < options_.minDurationNs) return;

  bool anyQualifies = false;
  for (std::size_t k = 0; k < nc; ++k) {
    c0_[k] = b.beginCounters[counterSet_[k]];
    increment_[k] = static_cast<double>(b.endCounters[counterSet_[k]] - c0_[k]);
    qualifies_[k] = increment_[k] >= options_.minCounterIncrement ? 1 : 0;
    anyQualifies |= qualifies_[k] != 0;
    any_[k] = 0;
  }
  if (!anyQualifies) return;

  // Work duration after removing the measurement's own intrusion
  // (counter-independent, computed once for the burst).
  const double overhead =
      options_.probeOverheadNs +
      options_.perSampleOverheadNs * static_cast<double>(b.sampleIdx.size());
  const double workNs = std::max(static_cast<double>(duration) - overhead, 1.0);

  for (std::size_t k = 0; k < nc; ++k) {
    if (!qualifies_[k]) continue;
    ++acc_[k].folded.instances;
    acc_[k].durationSum += workNs;
    acc_[k].totalSum += increment_[k];
  }

  std::size_t samplesBefore = 0;
  for (std::size_t si : b.sampleIdx) {
    const trace::Sample& s = samples[si];
    UNVEIL_ASSERT(s.rank == b.rank, "sample attached to wrong rank");
    UNVEIL_ASSERT(s.time >= b.begin && s.time < b.end,
                  "sample outside its burst window");
    // The normalized time depends only on the sample's position inside the
    // burst, never on the counter — project once, reuse for every counter.
    const double elapsed =
        static_cast<double>(s.time - b.begin) - options_.probeOverheadNs -
        options_.perSampleOverheadNs * static_cast<double>(samplesBefore);
    const double t = std::clamp(elapsed / workNs, 0.0, 1.0);
    for (std::size_t k = 0; k < nc; ++k) {
      // Multiplexed samples that did not read this counter still dilate
      // the burst (samplesBefore advances below) but emit no point.
      if (!qualifies_[k] || !trace::maskHas(s.validMask, counterSet_[k]))
        continue;
      FoldedPoint p;
      p.t = t;
      // Counter monotonicity guarantees c0 <= sample <= c1, so y in [0,1].
      p.y = static_cast<double>(s.counters[counterSet_[k]] - c0_[k]) /
            increment_[k];
      p.burstIdx = bi;
      p.rank = b.rank;
      Accum& a = acc_[k];
      offerPoint(a.folded.points, p, options_.maxPointsPerCounter,
                 a.seenPoints, a.reservoirRng);
      any_[k] = 1;
    }
    ++samplesBefore;
  }
  for (std::size_t k = 0; k < nc; ++k)
    if (any_[k]) ++acc_[k].folded.instancesWithSamples;
}

std::vector<MultiFoldEntry> MultiFoldAccumulator::finish() {
  const std::size_t nc = counterSet_.size();
  std::vector<MultiFoldEntry> out(nc);
  for (std::size_t k = 0; k < nc; ++k) out[k].counter = counterSet_[k];

  // Finalize each counter. The canonical order makes the sorted sequence
  // unique, so the O(n) distribution sort here yields exactly the bytes the
  // std::sort in foldCluster() would — without its comparison floor, which
  // is what dominates the per-counter path on dense clouds.
  SortScratch scratch;
  for (std::size_t k = 0; k < nc; ++k) {
    Accum& a = acc_[k];
    if (a.folded.instances == 0) {
      out[k].error = "foldCluster: no instance qualifies for counter " +
                     std::string(counters::counterName(counterSet_[k]));
      continue;
    }
    a.folded.meanDurationNs =
        a.durationSum / static_cast<double>(a.folded.instances);
    a.folded.meanTotal = a.totalSum / static_cast<double>(a.folded.instances);
    sortPointsCanonical(a.folded.points, scratch);
    a.folded.points.shrink_to_fit();
    out[k].folded = std::move(a.folded);
  }
  return out;
}

std::vector<MultiFoldEntry> foldClusterMulti(
    const trace::Trace& trace, std::span<const cluster::Burst> bursts,
    std::span<const std::size_t> memberIdx,
    std::span<const counters::CounterId> counterSet, const FoldOptions& options) {
  telemetry::Span span("fold.cluster");
  span.attr("members", memberIdx.size());
  span.attr("counters", counterSet.size());
  if (counterSet.empty()) return {};

  MultiFoldAccumulator acc(
      std::vector<counters::CounterId>(counterSet.begin(), counterSet.end()),
      options);
  // Upper bound on the points any one counter can emit: every sample of
  // every duration-qualified member. Reserving it up front removes the
  // reallocation-and-copy churn from the hot walk.
  std::size_t maxPoints = 0;
  for (std::size_t mi : memberIdx) {
    UNVEIL_ASSERT(mi < bursts.size(), "fold member index out of range");
    const cluster::Burst& b = bursts[mi];
    if (b.durationNs() >= options.minDurationNs) maxPoints += b.sampleIdx.size();
  }
  acc.reservePoints(maxPoints);
  for (std::size_t mi : memberIdx) acc.add(trace, bursts[mi]);
  std::vector<MultiFoldEntry> out = acc.finish();

  if (span.active()) {
    std::uint64_t totalPoints = 0;
    std::uint64_t totalInstances = 0;
    for (const auto& entry : out) {
      if (!entry.folded) continue;
      totalPoints += entry.folded->points.size();
      totalInstances += entry.folded->instances;
      telemetry::observe("fold.points_per_cluster",
                         static_cast<double>(entry.folded->points.size()));
    }
    span.attr("points", totalPoints);
    telemetry::count("fold.points", totalPoints);
    telemetry::count("fold.instances", totalInstances);
  }
  return out;
}

}  // namespace unveil::folding
