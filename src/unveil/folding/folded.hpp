#pragma once

/// \file folded.hpp
/// Folding: projecting samples from many burst instances into one synthetic
/// instance — the paper's core mechanism.
///
/// Given a cluster of bursts (instances of the same computation phase) and
/// the coarse samples that happened to land inside them, each sample is
/// mapped to a point (t, y):
///   t = (sampleTime − burstBegin) / burstDuration        ∈ [0, 1)
///   y = (sampleCounter − beginCounter) / (endCounter − beginCounter) ∈ [0, 1]
/// t is the fraction of the instance elapsed; y is the fraction of the
/// instance's total counter increment already accumulated. Because sampling
/// is uncorrelated with phase position, hundreds of instances scatter their
/// few samples all over [0,1], yielding a dense picture of the cumulative
/// counter profile of the *prototype* instance — from which the fitted
/// derivative recovers the instantaneous rate inside the phase.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "unveil/cluster/burst.hpp"
#include "unveil/counters/counter.hpp"
#include "unveil/folding/columnar.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::folding {

/// All folded samples of one (cluster, counter) pair plus the statistics
/// needed to convert normalized rates back to physical units.
/// FoldedPoint and the columnar PointColumns store live in columnar.hpp.
struct FoldedCounter {
  counters::CounterId counter = counters::CounterId::TotIns;
  PointColumns points;  ///< Sorted canonically after foldCluster().
  std::size_t instances = 0;        ///< Burst instances contributing >= 0 samples.
  std::size_t instancesWithSamples = 0;  ///< Instances contributing >= 1 sample.
  double meanDurationNs = 0.0;      ///< Mean instance duration.
  double meanTotal = 0.0;           ///< Mean instance counter increment.

  /// Physical average rate (counts per ns) of the prototype instance.
  [[nodiscard]] double meanRatePerNs() const noexcept {
    return meanDurationNs > 0.0 ? meanTotal / meanDurationNs : 0.0;
  }
};

/// Folding options.
struct FoldOptions {
  /// Instances whose counter increment is below this are skipped (a zero or
  /// near-zero increment makes y ill-defined).
  double minCounterIncrement = 1.0;
  /// Skip instances shorter than this (ns); their samples carry no
  /// intra-burst information.
  trace::TimeNs minDurationNs = 1000;
  /// Measurement-intrusion compensation (the tool's own calibrated costs,
  /// as Extrae subtracts its known probe/interrupt overheads). Each sample
  /// inside a burst dilates the burst window by perSampleOverheadNs; the
  /// begin probe delays work start by probeOverheadNs. With these set, the
  /// normalized time of a sample is computed against the *work* timeline,
  /// removing the systematic leftward compression that otherwise biases the
  /// tail of every reconstruction. Defaults to 0 (no compensation).
  double perSampleOverheadNs = 0.0;
  double probeOverheadNs = 0.0;
  /// Bounded-memory folding: when > 0, each (cluster, counter) cloud retains
  /// at most this many points, chosen by a *deterministic* reservoir
  /// (Algorithm R over the canonical emission order, seeded per counter).
  /// Because the emission order is identical in every fold path — single
  /// counter, multi counter, batch and streaming — the retained cloud is
  /// identical too, so bit-identity across paths survives the cap. Instance
  /// counts and means always cover the full population. 0 = keep everything.
  std::size_t maxPointsPerCounter = 0;
};

/// Folds the samples of the bursts selected by \p memberIdx (indices into
/// \p bursts) for counter \p counter. \p trace provides the sample records.
/// Throws AnalysisError when no instance qualifies.
[[nodiscard]] FoldedCounter foldCluster(const trace::Trace& trace,
                                        std::span<const cluster::Burst> bursts,
                                        std::span<const std::size_t> memberIdx,
                                        counters::CounterId counter,
                                        const FoldOptions& options = {});

/// Outcome of one counter within a foldClusterMulti() call.
struct MultiFoldEntry {
  counters::CounterId counter = counters::CounterId::TotIns;
  /// The folded cloud, or nullopt when no instance qualifies for this
  /// counter (the condition under which foldCluster() throws).
  std::optional<FoldedCounter> folded;
  /// Failure description when !folded.
  std::string error;
};

/// Folds every counter in \p counterSet over one walk of the member bursts'
/// samples, instead of |counterSet| independent foldCluster() scans.
/// \p samples is the columnar view of the trace the bursts index into —
/// build it once per analysis and share it across every cluster's fold.
///
/// The result is bit-identical to calling foldCluster() once per counter:
/// instance qualification, accumulation order and the normalized-time
/// projection replay the single-counter code path exactly (the vectorized
/// kernels perform the same IEEE operations in the same order), and both
/// paths sort into the same *canonical total order* (t, then source burst,
/// then y — points equal under it are identical in every field), so the
/// sorted sequence is unique no matter which sorting algorithm produced it.
///
/// Unlike foldCluster(), a counter with no qualifying instance does not
/// throw; its entry reports the error so the remaining counters still fold.
[[nodiscard]] std::vector<MultiFoldEntry> foldClusterMulti(
    const SampleColumns& samples, std::span<const cluster::Burst> bursts,
    std::span<const std::size_t> memberIdx,
    std::span<const counters::CounterId> counterSet,
    const FoldOptions& options = {});

/// Convenience overload: builds the columnar sample view from \p trace and
/// folds. Callers folding more than one cluster should build SampleColumns
/// themselves and use the overload above.
[[nodiscard]] std::vector<MultiFoldEntry> foldClusterMulti(
    const trace::Trace& trace, std::span<const cluster::Burst> bursts,
    std::span<const std::size_t> memberIdx,
    std::span<const counters::CounterId> counterSet,
    const FoldOptions& options = {});

/// Incremental form of foldClusterMulti(): feed one member burst at a time,
/// in the cluster's global member order, then finish(). foldClusterMulti()
/// is a thin wrapper over this class, so the two are bit-identical by
/// construction — which is what lets the streaming engine fold a cluster
/// whose members arrive shard by shard (each add() reads the sample columns
/// that burst's [sampleFirst, sampleCount) window indexes into, so
/// different members may come from different shards' column sets) and still
/// reproduce batch output exactly.
///
/// Floating-point accumulation is order-dependent, so callers MUST add
/// members in the same order batch folding walks them (ascending global
/// burst index); the class never merges partial sums across members.
class MultiFoldAccumulator {
 public:
  MultiFoldAccumulator(std::vector<counters::CounterId> counterSet,
                       FoldOptions options);
  ~MultiFoldAccumulator();
  MultiFoldAccumulator(MultiFoldAccumulator&&) noexcept;
  MultiFoldAccumulator& operator=(MultiFoldAccumulator&&) noexcept;

  /// Pre-sizes the point buffers for an expected upper bound (optional).
  void reservePoints(std::size_t maxPoints);

  /// Folds the next member burst. \p samples provides the sample columns
  /// that \p burst's [sampleFirst, sampleCount) window indexes into.
  void add(const SampleColumns& samples, const cluster::Burst& burst);

  /// Members added so far (including skipped ones — the member index baked
  /// into FoldedPoint::burstIdx counts every add()).
  [[nodiscard]] std::size_t members() const noexcept { return members_; }

  /// Folded points currently retained across all counters (memory gauge).
  [[nodiscard]] std::size_t pointsHeld() const noexcept;

  /// Sorts each cloud into the canonical order and returns the entries.
  /// The accumulator is spent afterwards.
  [[nodiscard]] std::vector<MultiFoldEntry> finish();

 private:
  struct Accum;
  std::vector<counters::CounterId> counterSet_;
  FoldOptions options_;
  std::vector<Accum> acc_;
  std::size_t members_ = 0;
  // Per-burst scratch, kept across add() calls to avoid reallocation.
  std::vector<std::uint64_t> c0_;
  std::vector<double> increment_;
  std::vector<char> qualifies_;
  std::vector<char> any_;
  support::AlignedVector<double> t_;  ///< Normalized times of one window.
};

}  // namespace unveil::folding
