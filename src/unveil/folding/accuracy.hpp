#pragma once

/// \file accuracy.hpp
/// Accuracy accounting for folding reconstructions.
///
/// The paper's headline validation: folding's reconstruction differs from
/// directly measured fine-grain sampling by an absolute mean difference
/// below 5 %. Two reference curves are supported:
///
///  - the *empirical* reference, built from a fine-grain-sampled run by
///    differentiating each densely sampled instance and averaging (what the
///    paper compared against), and
///  - the *exact* ground truth, available here because the substrate is a
///    simulator (the phase model's analytic normalized rate).

#include <span>
#include <vector>

#include "unveil/cluster/burst.hpp"
#include "unveil/counters/shape.hpp"
#include "unveil/folding/rate.hpp"

namespace unveil::folding {

/// Mean absolute difference between \p candidate and \p reference, expressed
/// as a percentage of the reference's mean absolute level. Vectors must have
/// equal, non-zero length (same grid).
[[nodiscard]] double meanAbsDiffPercent(std::span<const double> candidate,
                                        std::span<const double> reference);

/// Samples the ground-truth normalized rate of \p shape on \p grid.
[[nodiscard]] std::vector<double> truthNormalizedRate(const counters::RateShape& shape,
                                                      std::span<const double> grid);

/// Empirical fine-grain reference: for every burst (selected by memberIdx)
/// with at least \p minSamplesPerInstance samples, compute finite-difference
/// normalized rates between consecutive samples and average them into
/// \p bins time bins; returns the binned curve interpolated onto \p grid.
/// Throws AnalysisError when no instance is densely sampled enough.
struct EmpiricalRateParams {
  std::size_t minSamplesPerInstance = 6;
  std::size_t bins = 48;
  /// Measurement-intrusion compensation, as in FoldOptions. Matters even
  /// more here: fine-grain sampling dilates each instance by samples ×
  /// perSampleOverheadNs (≈10 % at a 20 µs period).
  double perSampleOverheadNs = 0.0;
  double probeOverheadNs = 0.0;
};

[[nodiscard]] std::vector<double> empiricalNormalizedRate(
    const trace::Trace& trace, std::span<const cluster::Burst> bursts,
    std::span<const std::size_t> memberIdx, counters::CounterId counter,
    std::span<const double> grid, const EmpiricalRateParams& params = {});

}  // namespace unveil::folding
