#pragma once

/// \file band.hpp
/// Dispersion bands for folded reconstructions.
///
/// The folded cloud's per-bin spread measures how consistently the phase's
/// instances follow the prototype profile — tight bands mean the
/// reconstruction speaks for every instance, wide bands flag intra-cluster
/// heterogeneity (e.g. a data-dependent branch or contamination the
/// clustering missed). The band is robust: per-bin median ± k·MAD-sigma of
/// the cumulative fractions, interpolated and differentiated the same way
/// as the central fit so it can be drawn around the instantaneous rate.

#include "unveil/folding/fit.hpp"
#include "unveil/folding/folded.hpp"

namespace unveil::folding {

/// Band parameters.
struct BandParams {
  /// Half-width in MAD-sigmas (1.0 ≈ one robust standard deviation).
  double sigmas = 1.0;
  /// Bin count; 0 = the same adaptive rule as the central fit.
  std::size_t bins = 0;
  /// Grid resolution of the band curves.
  std::size_t gridPoints = 201;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// A cumulative-profile band with its induced rate band.
struct FoldBand {
  std::vector<double> t;             ///< Uniform grid over [0,1].
  std::vector<double> cumulativeLo;  ///< Lower cumulative envelope.
  std::vector<double> cumulativeHi;  ///< Upper cumulative envelope.
  std::vector<double> rateLo;        ///< Lower normalized-rate envelope.
  std::vector<double> rateHi;        ///< Upper normalized-rate envelope.
  /// Mean band half-width of the cumulative profile — the single-number
  /// heterogeneity score of the cluster.
  double meanHalfWidth = 0.0;
};

/// Computes the dispersion band of \p folded. Throws AnalysisError when the
/// cloud is empty.
[[nodiscard]] FoldBand foldBand(const FoldedCounter& folded,
                                const BandParams& params = {});

}  // namespace unveil::folding
