/// \file columnar_avx2.cpp
/// Explicit AVX2 variants of the fold kernels. This is the only folding TU
/// compiled with -mavx2 (see folding/CMakeLists.txt); nothing here may be
/// called unless support::simdLevel() reports Avx2. Note -mavx2 does NOT
/// enable FMA, and no fmadd intrinsic is used, so every operation below
/// rounds exactly like its scalar counterpart — bit-identical results.

#include <cstddef>
#include <cstdint>

#if defined(UNVEIL_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace unveil::folding::kernels {

namespace {

/// Exact unsigned 64-bit → double conversion (AVX2 has no native u64→f64).
/// Split into high and low 32-bit halves, each represented exactly inside a
/// biased double, recombine with one rounding add — the result equals the
/// correctly rounded static_cast<double>(x) for every u64.
inline __m256d u64ToDouble(__m256i x) noexcept {
  const __m256i hiBias = _mm256_castpd_si256(_mm256_set1_pd(0x1p84));
  const __m256i loBias = _mm256_castpd_si256(_mm256_set1_pd(0x1p52));
  const __m256i hi = _mm256_or_si256(_mm256_srli_epi64(x, 32), hiBias);
  const __m256i lo = _mm256_blend_epi32(x, loBias, 0xaa);
  const __m256d hiVal =
      _mm256_sub_pd(_mm256_castsi256_pd(hi), _mm256_set1_pd(0x1p84 + 0x1p52));
  return _mm256_add_pd(hiVal, _mm256_castsi256_pd(lo));
}

/// min(1, max(0, v)) with operand order chosen so NaN propagates exactly
/// like std::clamp(v, 0.0, 1.0) and -0.0 survives (maxpd/minpd return the
/// second operand on NaN or signed-zero ties).
inline __m256d clamp01(__m256d v) noexcept {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  return _mm256_min_pd(one, _mm256_max_pd(zero, v));
}

}  // namespace

void normalizedTimesAvx2(const std::uint64_t* time, std::size_t n,
                         std::uint64_t begin, double probeNs, double perSampleNs,
                         double workNs, double* out) {
  const __m256i vbegin = _mm256_set1_epi64x(static_cast<long long>(begin));
  const __m256d vprobe = _mm256_set1_pd(probeNs);
  const __m256d vwork = _mm256_set1_pd(workNs);
  std::size_t i = 0;
  if (perSampleNs == 0.0 && !std::signbit(perSampleNs)) {
    // Index term is exactly +0.0 — same shortcut as the portable kernel.
    for (; i + 4 <= n; i += 4) {
      const __m256i ticks = _mm256_sub_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(time + i)),
          vbegin);
      const __m256d elapsed = _mm256_sub_pd(u64ToDouble(ticks), vprobe);
      _mm256_storeu_pd(out + i, clamp01(_mm256_div_pd(elapsed, vwork)));
    }
    for (; i < n; ++i) {
      const double elapsed = static_cast<double>(time[i] - begin) - probeNs;
      out[i] = std::clamp(elapsed / workNs, 0.0, 1.0);
    }
    return;
  }
  const __m256d vper = _mm256_set1_pd(perSampleNs);
  // Index vector {i, i+1, i+2, i+3} as doubles — exact for any realistic n.
  __m256d vidx = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
  const __m256d vfour = _mm256_set1_pd(4.0);
  for (; i + 4 <= n; i += 4) {
    const __m256i ticks = _mm256_sub_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(time + i)), vbegin);
    const __m256d elapsed = _mm256_sub_pd(
        _mm256_sub_pd(u64ToDouble(ticks), vprobe), _mm256_mul_pd(vper, vidx));
    _mm256_storeu_pd(out + i, clamp01(_mm256_div_pd(elapsed, vwork)));
    vidx = _mm256_add_pd(vidx, vfour);
  }
  for (; i < n; ++i) {
    const double elapsed = static_cast<double>(time[i] - begin) - probeNs -
                           perSampleNs * static_cast<double>(i);
    out[i] = std::clamp(elapsed / workNs, 0.0, 1.0);
  }
}

void counterDeltasAvx2(const std::uint64_t* value, std::size_t n,
                       std::uint64_t c0, double increment, double* out) {
  const __m256i vc0 = _mm256_set1_epi64x(static_cast<long long>(c0));
  const __m256d vinc = _mm256_set1_pd(increment);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i delta = _mm256_sub_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(value + i)), vc0);
    _mm256_storeu_pd(out + i, _mm256_div_pd(u64ToDouble(delta), vinc));
  }
  for (; i < n; ++i)
    out[i] = static_cast<double>(value[i] - c0) / increment;
}

}  // namespace unveil::folding::kernels

#else  // !UNVEIL_HAVE_AVX2: TU intentionally empty (CMake should not add it).

namespace unveil::folding::kernels {}

#endif
