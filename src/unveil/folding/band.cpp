#include "unveil/folding/band.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "unveil/support/error.hpp"
#include "unveil/support/math.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::folding {

void BandParams::validate() const {
  if (sigmas <= 0.0) throw ConfigError("band sigmas must be positive");
  if (bins == 1) throw ConfigError("band bins must be 0 (auto) or >= 2");
  if (gridPoints < 2) throw ConfigError("band gridPoints must be >= 2");
}

FoldBand foldBand(const FoldedCounter& folded, const BandParams& params) {
  params.validate();
  if (folded.points.empty()) throw AnalysisError("foldBand: folded cloud is empty");

  const std::size_t bins =
      params.bins != 0 ? params.bins
                       : std::clamp<std::size_t>(folded.points.size() / 100, 8, 24);

  // Dispersion is measured as residuals around the central fit — the raw
  // per-bin spread of y would conflate the curve's own slope across the bin
  // with genuine cross-instance variation.
  const auto centralFit = fitCumulative(folded, FitParams{});
  const std::span<const double> tsCol = folded.points.ts();
  const std::span<const double> ysCol = folded.points.ys();
  std::vector<std::vector<double>> binResidual(bins), binT(bins);
  for (std::size_t i = 0; i < tsCol.size(); ++i) {
    const double t = std::clamp(tsCol[i], 0.0, 1.0);
    std::size_t b = 0;
    if (t == t)
      b = std::min(static_cast<std::size_t>(t * static_cast<double>(bins)),
                   bins - 1);
    binResidual[b].push_back(ysCol[i] - centralFit->value(t));
    binT[b].push_back(t);
  }
  std::vector<double> xs{0.0}, lo{0.0}, hi{0.0};
  double widthSum = 0.0;
  std::size_t widthCount = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (binResidual[b].empty()) continue;
    const double x = support::median(binT[b]);
    if (x <= xs.back() + 1e-9 || x >= 1.0 - 1e-9) continue;
    const double medResidual = support::median(binResidual[b]);
    const double sigma =
        binResidual[b].size() >= 4 ? support::madSigma(binResidual[b]) : 0.0;
    const double half = params.sigmas * sigma;
    const double center = centralFit->value(x) + medResidual;
    xs.push_back(x);
    lo.push_back(std::clamp(center - half, 0.0, 1.0));
    hi.push_back(std::clamp(center + half, 0.0, 1.0));
    widthSum += half;
    ++widthCount;
  }
  xs.push_back(1.0);
  lo.push_back(1.0);
  hi.push_back(1.0);

  // Envelopes must stay monotone to have meaningful derivatives.
  for (std::size_t i = 1; i < lo.size(); ++i) {
    lo[i] = std::max(lo[i], lo[i - 1]);
    hi[i] = std::max(hi[i], hi[i - 1]);
  }

  FoldBand band;
  band.t = support::linspace(0.0, 1.0, params.gridPoints);
  band.cumulativeLo.resize(band.t.size());
  band.cumulativeHi.resize(band.t.size());
  band.rateLo.resize(band.t.size());
  band.rateHi.resize(band.t.size());
  for (std::size_t i = 0; i < band.t.size(); ++i) {
    band.cumulativeLo[i] = support::interpLinear(xs, lo, band.t[i]);
    band.cumulativeHi[i] = support::interpLinear(xs, hi, band.t[i]);
  }
  // Rate envelopes from finite differences of the cumulative envelopes. The
  // *upper* rate envelope comes from the steepest admissible cumulative
  // path: hi - lo difference across the step bounds the local slope range.
  const double dt = band.t[1] - band.t[0];
  for (std::size_t i = 0; i < band.t.size(); ++i) {
    const std::size_t a = i > 0 ? i - 1 : 0;
    const std::size_t b = std::min(i + 1, band.t.size() - 1);
    const double span = static_cast<double>(b - a) * dt;
    const double centerSlopeLo =
        (band.cumulativeLo[b] - band.cumulativeLo[a]) / span;
    const double centerSlopeHi =
        (band.cumulativeHi[b] - band.cumulativeHi[a]) / span;
    band.rateLo[i] = std::max(0.0, std::min(centerSlopeLo, centerSlopeHi));
    band.rateHi[i] = std::max(centerSlopeLo, centerSlopeHi);
  }
  band.meanHalfWidth =
      widthCount > 0 ? widthSum / static_cast<double>(widthCount) : 0.0;
  return band;
}

}  // namespace unveil::folding
