#pragma once

/// \file prune.hpp
/// Robust outlier pruning of folded point clouds.
///
/// Instances perturbed by external noise (OS jitter, a page fault inside the
/// burst) produce folded points far from the cluster's cumulative profile.
/// Left in place they bias the fit; the paper prunes them before fitting.
/// The criterion is per-bin robust: bin the points by t, compute the median
/// and the MAD of y in each bin, and drop points deviating more than
/// madK × MAD-sigma from their bin median.

#include <cstddef>

#include "unveil/folding/folded.hpp"

namespace unveil::folding {

/// Pruning parameters.
struct PruneParams {
  std::size_t bins = 20;   ///< Number of t-bins for local statistics.
  double madK = 4.0;       ///< Rejection threshold in MAD-sigmas.
  /// Lower bound on the MAD-sigma so a perfectly tight bin (MAD 0) does not
  /// reject everything but its median.
  double minSigma = 0.005;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Result of a pruning pass.
struct PruneResult {
  FoldedCounter pruned;      ///< Copy of the input with outliers removed.
  std::size_t removed = 0;   ///< Number of points dropped.
};

/// Prunes outliers from \p folded. Bins with fewer than 4 points are left
/// untouched (no reliable local statistics).
[[nodiscard]] PruneResult pruneOutliers(const FoldedCounter& folded,
                                        const PruneParams& params = {});

}  // namespace unveil::folding
