#pragma once

/// \file fit.hpp
/// Curve fitting of folded cumulative profiles.
///
/// Folding yields a scatter of (t, y) points approximating the prototype
/// instance's *cumulative* counter profile — a monotone function with
/// f(0)=0 and f(1)=1. Its derivative is the instantaneous rate the analyst
/// wants. Three fitters are provided:
///
///  - Pchip (primary, the method the evaluation uses): robust per-bin
///    medians → isotonic regression (pool-adjacent-violators) → monotone
///    Fritsch–Carlson cubic interpolation. Monotone by construction, so the
///    derived rate is never negative; endpoints pinned at (0,0) and (1,1).
///  - Kernel: Nadaraya–Watson regression with a Gaussian kernel. Smooth but
///    neither monotone nor endpoint-exact; the fit-method ablation (A1)
///    quantifies what that costs.
///  - BinnedLinear: per-bin means joined linearly — the naive baseline.

#include <memory>
#include <string_view>

#include "unveil/folding/folded.hpp"

namespace unveil::folding {

/// Available fitters.
enum class FitMethod : std::uint8_t { Pchip = 0, Kernel, BinnedLinear };

/// Name of a fit method ("pchip"/"kernel"/"binned-linear").
[[nodiscard]] std::string_view fitMethodName(FitMethod m) noexcept;

/// Fitting parameters.
struct FitParams {
  FitMethod method = FitMethod::Pchip;
  /// Knot count for Pchip/BinnedLinear binning. 0 (default) selects the
  /// count adaptively from the folded cloud size: points/60 clamped to
  /// [8, 32]. Sparse clouds get wide bins (robust medians), dense clouds get
  /// fine bins (temporal resolution).
  std::size_t bins = 0;
  /// Gaussian bandwidth for the kernel fitter (normalized time units).
  double kernelBandwidth = 0.05;
  /// Windowed kernel evaluation: truncate the Gaussian far in its tail and
  /// locate the contributing points by binary search, making each evaluation
  /// O(log n + window) instead of O(n). The truncation keeps every weight
  /// down to ~1e-14 of the window peak, so results match the full sum to
  /// better than 1e-9 relative; disable only to benchmark the naive sum.
  bool kernelWindowed = true;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// A fitted cumulative profile y(t) with analytic/numeric derivative.
class CumulativeFit {
 public:
  virtual ~CumulativeFit() = default;

  /// Fitted cumulative fraction at t (clamped to [0,1]).
  [[nodiscard]] virtual double value(double t) const = 0;
  /// Fitted instantaneous normalized rate dy/dt at t.
  [[nodiscard]] virtual double derivative(double t) const = 0;
  /// Fitter name for reports.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Fits the folded cumulative profile. Throws AnalysisError when \p folded
/// has no points (nothing to fit).
[[nodiscard]] std::unique_ptr<CumulativeFit> fitCumulative(const FoldedCounter& folded,
                                                           const FitParams& params = {});

}  // namespace unveil::folding
