#pragma once

/// \file columnar.hpp
/// Columnar (structure-of-arrays) stores for the folding hot path.
///
/// The fold inner loops touch millions of tiny records — trace samples on
/// the way in, folded (t, y) points on the way out. Stored as
/// arrays-of-structs, every loop pays for the fields it does not read and
/// defeats vectorization; stored as columns, the three hot kernels
/// (normalized-time projection, counter-delta normalization, canonical
/// sorting) stream over contiguous, kColumnAlignment-aligned arrays.
///
/// Two stores live here:
///  - SampleColumns: per-field views of Trace::samples(), built once per
///    analysis (or once per shard in the streaming engine) and shared by
///    every cluster fold;
///  - PointColumns: the folded cloud of one (cluster, counter) pair —
///    normalized time, normalized delta, source burst, source rank.
///
/// Determinism contract: all kernels perform the same IEEE operations in
/// the same order as the historical scalar loops, and no build flag enables
/// FMA contraction, so scalar / auto-vectorized / explicit-AVX2 runs are
/// bit-identical (DESIGN.md §16). The canonical sort is pinned by the
/// canonical *total* order on points, under which equal points are
/// identical — any correct sort yields the same bytes.

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>

#include "unveil/counters/counter.hpp"
#include "unveil/support/aligned.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::folding {

/// One folded sample.
struct FoldedPoint {
  double t = 0.0;            ///< Normalized intra-instance time.
  double y = 0.0;            ///< Normalized cumulative counter fraction.
  std::size_t burstIdx = 0;  ///< Index of the source burst (into the member list).
  trace::Rank rank = 0;      ///< Source rank.
};

/// Columnar store of folded points. Presents enough of the std::vector
/// surface (size, push_back, operator[], iteration) that point-consuming
/// code reads naturally, while the fold/fit kernels go straight at the
/// column spans. burstIdx and rank are stored as 32 bits — a cluster with
/// 2^32 member bursts is beyond any trace this tool ingests, and the two
/// narrow columns halve the bandwidth of the sort's gather passes.
class PointColumns {
 public:
  using value_type = FoldedPoint;

  [[nodiscard]] std::size_t size() const noexcept { return t_.size(); }
  [[nodiscard]] bool empty() const noexcept { return t_.empty(); }

  void reserve(std::size_t n);
  void clear() noexcept;
  void shrink_to_fit();

  void push_back(const FoldedPoint& p);
  /// Overwrites point \p i (reservoir replacement).
  void set(std::size_t i, const FoldedPoint& p) noexcept;

  [[nodiscard]] FoldedPoint operator[](std::size_t i) const noexcept {
    return {t_[i], y_[i], static_cast<std::size_t>(burst_[i]), rank_[i]};
  }

  /// Column views (read-only).
  [[nodiscard]] std::span<const double> ts() const noexcept { return t_; }
  [[nodiscard]] std::span<const double> ys() const noexcept { return y_; }
  [[nodiscard]] std::span<const std::uint32_t> burstIdxs() const noexcept {
    return burst_;
  }
  [[nodiscard]] std::span<const trace::Rank> ranks() const noexcept {
    return rank_;
  }

  /// Bulk-append seam for the fold kernels: grows every column by \p extra
  /// default-initialized rows and returns the first new row's index. The
  /// caller fills [first, first+extra) through the mutable column pointers.
  std::size_t grow(std::size_t extra);
  [[nodiscard]] double* tData() noexcept { return t_.data(); }
  [[nodiscard]] double* yData() noexcept { return y_.data(); }
  [[nodiscard]] std::uint32_t* burstData() noexcept { return burst_.data(); }
  [[nodiscard]] trace::Rank* rankData() noexcept { return rank_.data(); }

  /// Scratch reused across several sortCanonical() calls.
  struct SortScratch {
    support::AlignedVector<std::uint32_t> offset;  ///< Bucket cursors.
    support::AlignedVector<std::uint32_t> bucket;  ///< Per-point bucket ids.
    support::AlignedVector<std::uint32_t> perm;    ///< Applied permutation.
    /// Gather targets, column-swapped with the store afterwards.
    support::AlignedVector<double> tmpT;
    support::AlignedVector<double> tmpY;
    support::AlignedVector<std::uint32_t> tmpB;
    support::AlignedVector<std::uint32_t> tmpR;
  };

  /// Sorts into the canonical total order: t, then source burst, then y.
  /// Points equal under it are identical in every field, so the result is
  /// the unique sorted sequence — byte-for-byte what a comparison sort of
  /// the equivalent FoldedPoint array produces. Exploits t ∈ [0, 1] with an
  /// O(n) bucket distribution on t above a size threshold. Non-finite t or
  /// y (impossible for fold-produced clouds, possible for hand-built ones)
  /// are ordered deterministically: NaN sorts before every number.
  void sortCanonical();
  void sortCanonical(SortScratch& scratch);

  /// sortCanonical(), additionally leaving the applied permutation in
  /// scratch.perm (sorted position i came from old row perm[i]) and
  /// returning true when no two adjacent sorted points are equal on
  /// (t, burstIdx) — i.e. the permutation is fully determined by the
  /// (t, burstIdx) columns alone, independent of y. A sibling cloud whose
  /// pre-sort (t, burstIdx) columns are bitwise identical then sorts to the
  /// same permutation, so applyPermutation() reproduces its canonical sort
  /// without re-sorting (the multi-counter fold's clouds share one sample
  /// walk and differ only in y).
  bool sortCanonicalRetainPerm(SortScratch& scratch);

  /// Reorders the columns by \p perm (from a sibling's
  /// sortCanonicalRetainPerm; see there for when this is sound).
  void applyPermutation(std::span<const std::uint32_t> perm,
                        SortScratch& scratch);

  /// Value-returning proxy iterator — enough for range-for and simple
  /// forward traversal.
  class ConstIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = FoldedPoint;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = FoldedPoint;

    ConstIterator() noexcept = default;
    ConstIterator(const PointColumns* c, std::size_t i) noexcept : c_(c), i_(i) {}
    [[nodiscard]] FoldedPoint operator*() const noexcept { return (*c_)[i_]; }
    ConstIterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    ConstIterator operator++(int) noexcept {
      ConstIterator old = *this;
      ++i_;
      return old;
    }
    [[nodiscard]] friend bool operator==(const ConstIterator& a,
                                         const ConstIterator& b) noexcept {
      return a.i_ == b.i_;
    }

   private:
    const PointColumns* c_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] ConstIterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] ConstIterator end() const noexcept { return {this, size()}; }

 private:
  support::AlignedVector<double> t_;
  support::AlignedVector<double> y_;
  support::AlignedVector<std::uint32_t> burst_;
  support::AlignedVector<trace::Rank> rank_;
};

/// Columnar view of a trace's sample records: one aligned array per field
/// the fold kernels read. Built once per analysis (batch) or once per shard
/// (streaming pass B) and shared read-only by every cluster fold. Row i
/// corresponds to Trace::samples()[i], so burst sample ranges index both.
class SampleColumns {
 public:
  SampleColumns() = default;

  /// Populates the columns from \p trace's samples (replacing any previous
  /// content).
  void build(const trace::Trace& trace);

  [[nodiscard]] std::size_t size() const noexcept { return time_.size(); }

  [[nodiscard]] const std::uint64_t* timeData() const noexcept {
    return time_.data();
  }
  [[nodiscard]] const std::uint64_t* valueData(counters::CounterId id) const noexcept {
    return value_[static_cast<std::size_t>(id)].data();
  }
  [[nodiscard]] const trace::CounterMask* maskData() const noexcept {
    return mask_.data();
  }
  [[nodiscard]] const trace::Rank* rankData() const noexcept {
    return rank_.data();
  }

  /// Bitwise AND of the valid masks over rows [first, first+count): a set
  /// bit means *every* sample in the range read that counter, unlocking the
  /// branch-free bulk fold path for it.
  [[nodiscard]] trace::CounterMask maskAnd(std::size_t first,
                                           std::size_t count) const noexcept;

 private:
  support::AlignedVector<std::uint64_t> time_;
  std::array<support::AlignedVector<std::uint64_t>, counters::kNumCounters> value_;
  support::AlignedVector<trace::CounterMask> mask_;
  support::AlignedVector<trace::Rank> rank_;
};

namespace kernels {

/// out[i] = clamp(((double)(time[i] − begin) − probeNs − perSampleNs·i) /
/// workNs, 0, 1) — the normalized-time projection of one burst's sample
/// window, index i being the sample's position inside the burst (all
/// samples dilate the burst, valid or not). Bit-identical to the scalar
/// per-sample expression in every dispatch path.
void normalizedTimes(const std::uint64_t* time, std::size_t n,
                     std::uint64_t begin, double probeNs, double perSampleNs,
                     double workNs, double* out);

/// out[i] = (double)(value[i] − c0) / increment — the normalized counter
/// delta of one burst's sample window. Counter monotonicity guarantees
/// value[i] >= c0. Bit-identical across dispatch paths.
void counterDeltas(const std::uint64_t* value, std::size_t n, std::uint64_t c0,
                   double increment, double* out);

}  // namespace kernels

}  // namespace unveil::folding
