#pragma once

/// \file regions.hpp
/// Region folding: mapping intra-phase time back to code.
///
/// Counters tell *what* happens inside a phase (rates); sampled callstacks
/// tell *where*. Each sample carries a region id (Sample::regionId); folding
/// those ids from every instance of a cluster onto normalized time [0,1]
/// yields the phase's internal code structure — which region owns which part
/// of the phase, with the region boundaries located to within a cell. The
/// analyst can then attribute an observed regime ("MIPS collapses after
/// t = 0.6") to a specific code region without any extra instrumentation.

#include <cstdint>
#include <map>
#include <vector>

#include "unveil/folding/folded.hpp"

namespace unveil::folding {

/// One contiguous run of normalized time owned by a region.
struct RegionSegment {
  std::uint32_t regionId = trace::kNoRegion;
  double begin = 0.0;       ///< Normalized time where the segment starts.
  double end = 0.0;         ///< Normalized time where it ends.
  double confidence = 0.0;  ///< Mean fraction of samples agreeing per cell.
  std::size_t samples = 0;  ///< Folded samples inside the segment.
};

/// The folded code structure of one cluster.
struct RegionProfile {
  /// Ordered segments tiling the sampled part of [0,1].
  std::vector<RegionSegment> segments;
  /// Fraction of attributed samples per region id.
  std::map<std::uint32_t, double> timeShare;
  std::size_t attributedSamples = 0;  ///< Samples with a region id.
  std::size_t totalSamples = 0;       ///< All samples in the cluster.
};

/// Region-profile parameters.
struct RegionParams {
  std::size_t cells = 48;  ///< Resolution of the normalized timeline.
  FoldOptions fold;        ///< Time projection (intrusion compensation).

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Folds the region ids of the samples of the bursts selected by
/// \p memberIdx. Throws AnalysisError when no sample carries a region.
[[nodiscard]] RegionProfile regionProfile(const trace::Trace& trace,
                                          std::span<const cluster::Burst> bursts,
                                          std::span<const std::size_t> memberIdx,
                                          const RegionParams& params = {});

}  // namespace unveil::folding
