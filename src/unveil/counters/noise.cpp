#include "unveil/counters/noise.hpp"

#include "unveil/support/error.hpp"

namespace unveil::counters {

void NoiseModel::validate() const {
  if (commonSigma < 0.0 || counterSigma < 0.0 || warpSigma < 0.0 ||
      outlierWarpSigma < 0.0)
    throw unveil::ConfigError("noise sigmas must be non-negative");
  if (outlierProb < 0.0 || outlierProb > 1.0)
    throw unveil::ConfigError("outlierProb must be in [0,1]");
}

double NoiseModel::realizeWarp(support::Rng& rng) const {
  const double sigma = rng.bernoulli(outlierProb) ? outlierWarpSigma : warpSigma;
  return rng.lognormalMedian(1.0, sigma);
}

std::array<double, kNumCounters> NoiseModel::realize(support::Rng& rng) const {
  std::array<double, kNumCounters> factors{};
  const double common = rng.lognormalMedian(1.0, commonSigma);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    factors[i] = common * rng.lognormalMedian(1.0, counterSigma);
  }
  return factors;
}

}  // namespace unveil::counters
