#include "unveil/counters/shape.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "unveil/support/error.hpp"

namespace unveil::counters {

namespace {
/// Resolution of the precomputed integral table. 4096 segments keeps cdf
/// error well below the noise floor of any experiment (~1e-7 for smooth
/// shapes) while construction stays microseconds.
constexpr std::size_t kGridSegments = 4096;
}  // namespace

RateShape::RateShape(std::string name, std::function<double(double)> fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  cumulative_.resize(kGridSegments + 1);
  cumulative_[0] = 0.0;
  double prev = fn_(0.0);
  UNVEIL_ASSERT(prev >= 0.0, "rate shape must be non-negative");
  for (std::size_t i = 1; i <= kGridSegments; ++i) {
    const double t = static_cast<double>(i) / kGridSegments;
    const double cur = fn_(t);
    UNVEIL_ASSERT(cur >= 0.0, "rate shape must be non-negative");
    cumulative_[i] = cumulative_[i - 1] + 0.5 * (prev + cur) / kGridSegments;
    prev = cur;
  }
  meanRate_ = cumulative_.back();
  if (meanRate_ <= 0.0)
    throw unveil::ConfigError("rate shape '" + name_ + "' integrates to zero");
}

double RateShape::value(double t) const noexcept {
  t = std::clamp(t, 0.0, 1.0);
  return fn_(t);
}

double RateShape::cdf(double t) const noexcept {
  t = std::clamp(t, 0.0, 1.0);
  const double pos = t * kGridSegments;
  const auto lo = static_cast<std::size_t>(pos);
  if (lo >= kGridSegments) return 1.0;
  const double frac = pos - static_cast<double>(lo);
  const double raw = cumulative_[lo] * (1.0 - frac) + cumulative_[lo + 1] * frac;
  return raw / meanRate_;
}

double RateShape::normalizedRate(double t) const noexcept {
  return value(t) / meanRate_;
}

RateShape RateShape::constant() {
  return RateShape("constant", [](double) { return 1.0; });
}

RateShape RateShape::ramp(double startLevel, double endLevel) {
  if (startLevel < 0.0 || endLevel < 0.0)
    throw unveil::ConfigError("ramp levels must be non-negative");
  return RateShape("ramp", [startLevel, endLevel](double t) {
    return startLevel + (endLevel - startLevel) * t;
  });
}

RateShape RateShape::piecewiseLinear(std::vector<std::pair<double, double>> points) {
  if (points.size() < 2) throw unveil::ConfigError("piecewiseLinear needs >= 2 points");
  if (points.front().first != 0.0 || points.back().first != 1.0)
    throw unveil::ConfigError("piecewiseLinear must span t in [0,1]");
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (!(points[i].first > points[i - 1].first))
      throw unveil::ConfigError("piecewiseLinear abscissae must strictly increase");
  }
  for (const auto& [t, r] : points) {
    (void)t;
    if (r < 0.0) throw unveil::ConfigError("piecewiseLinear rates must be >= 0");
  }
  return RateShape("piecewiseLinear", [pts = std::move(points)](double t) {
    if (t <= pts.front().first) return pts.front().second;
    if (t >= pts.back().first) return pts.back().second;
    std::size_t lo = 0, hi = pts.size() - 1;
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (pts[mid].first <= t) lo = mid;
      else hi = mid;
    }
    const double frac = (t - pts[lo].first) / (pts[hi].first - pts[lo].first);
    return pts[lo].second + (pts[hi].second - pts[lo].second) * frac;
  });
}

RateShape RateShape::plateau(double head, double body, double tail, double headFrac,
                             double tailFrac) {
  if (head < 0.0 || body < 0.0 || tail < 0.0)
    throw unveil::ConfigError("plateau levels must be non-negative");
  if (headFrac < 0.0 || tailFrac < 0.0 || headFrac + tailFrac > 0.9)
    throw unveil::ConfigError("plateau head/tail fractions invalid");
  // 3% of the burst for each transition keeps the shape continuous, which
  // matters for the fit-quality experiments (discontinuities inflate any
  // smoother's error for reasons unrelated to folding itself).
  const double ramp = 0.03;
  std::vector<std::pair<double, double>> pts;
  pts.emplace_back(0.0, head);
  if (headFrac > 0.0) {
    pts.emplace_back(headFrac, head);
    pts.emplace_back(std::min(headFrac + ramp, 1.0 - tailFrac), body);
  }
  if (tailFrac > 0.0) {
    pts.emplace_back(std::max(1.0 - tailFrac - ramp, headFrac + ramp), body);
    pts.emplace_back(1.0 - tailFrac, tail);
  }
  pts.emplace_back(1.0, tailFrac > 0.0 ? tail : body);
  // Deduplicate / enforce strictly increasing abscissae.
  std::vector<std::pair<double, double>> clean;
  for (const auto& p : pts) {
    if (!clean.empty() && p.first <= clean.back().first) continue;
    clean.push_back(p);
  }
  if (clean.size() < 2) return constant();
  if (clean.front().first != 0.0) clean.insert(clean.begin(), {0.0, clean.front().second});
  if (clean.back().first != 1.0) clean.emplace_back(1.0, clean.back().second);
  return piecewiseLinear(std::move(clean));
}

RateShape RateShape::sawtooth(int teeth, double low, double high) {
  if (teeth < 1) throw unveil::ConfigError("sawtooth needs >= 1 tooth");
  if (low < 0.0 || high < low) throw unveil::ConfigError("sawtooth needs 0 <= low <= high");
  return RateShape("sawtooth", [teeth, low, high](double t) {
    const double phase = t * teeth;
    const double frac = phase - std::floor(phase);
    return high - (high - low) * frac;
  });
}

RateShape RateShape::bump(double base, double amplitude, double center, double width) {
  if (base < 0.0) throw unveil::ConfigError("bump base must be >= 0");
  if (width <= 0.0) throw unveil::ConfigError("bump width must be > 0");
  if (base + std::min(amplitude, 0.0) < 0.0)
    throw unveil::ConfigError("bump must stay non-negative");
  return RateShape("bump", [base, amplitude, center, width](double t) {
    const double z = (t - center) / width;
    return base + amplitude * std::exp(-0.5 * z * z);
  });
}

RateShape RateShape::blend(std::vector<std::pair<double, RateShape>> weighted) {
  if (weighted.empty()) throw unveil::ConfigError("blend needs >= 1 shape");
  for (const auto& [w, s] : weighted) {
    (void)s;
    if (w <= 0.0) throw unveil::ConfigError("blend weights must be positive");
  }
  return RateShape("blend", [parts = std::move(weighted)](double t) {
    double v = 0.0;
    for (const auto& [w, s] : parts) v += w * s.value(t);
    return v;
  });
}

RateShape RateShape::fromFunction(std::string name, std::function<double(double)> fn) {
  if (!fn) throw unveil::ConfigError("fromFunction requires a callable");
  return RateShape(std::move(name), std::move(fn));
}

}  // namespace unveil::counters
