#include "unveil/counters/counter.hpp"

#include <string>

#include "unveil/support/error.hpp"

namespace unveil::counters {

std::string_view counterName(CounterId id) noexcept {
  switch (id) {
    case CounterId::TotIns: return "PAPI_TOT_INS";
    case CounterId::TotCyc: return "PAPI_TOT_CYC";
    case CounterId::L1Dcm: return "PAPI_L1_DCM";
    case CounterId::L2Dcm: return "PAPI_L2_DCM";
    case CounterId::FpOps: return "PAPI_FP_OPS";
    case CounterId::BrMsp: return "PAPI_BR_MSP";
  }
  return "PAPI_UNKNOWN";
}

CounterId counterFromName(std::string_view name) {
  for (CounterId id : kAllCounters) {
    if (counterName(id) == name) return id;
  }
  throw unveil::Error("unknown counter name: " + std::string(name));
}

CounterSet& CounterSet::operator+=(const CounterSet& other) noexcept {
  for (std::size_t i = 0; i < kNumCounters; ++i) values[i] += other.values[i];
  return *this;
}

CounterSet CounterSet::minus(const CounterSet& other) const {
  CounterSet out;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    UNVEIL_ASSERT(values[i] >= other.values[i],
                  "counter delta would be negative; counters are monotone");
    out.values[i] = values[i] - other.values[i];
  }
  return out;
}

double DerivedMetrics::ipc(const CounterSet& delta) noexcept {
  const auto cyc = delta[CounterId::TotCyc];
  if (cyc == 0) return 0.0;
  return static_cast<double>(delta[CounterId::TotIns]) / static_cast<double>(cyc);
}

double DerivedMetrics::mips(const CounterSet& delta, std::uint64_t durationNs) noexcept {
  if (durationNs == 0) return 0.0;
  // instructions / ns * 1e9 = instructions/s; / 1e6 = MIPS.
  return static_cast<double>(delta[CounterId::TotIns]) /
         static_cast<double>(durationNs) * 1e3;
}

double DerivedMetrics::l2MissesPerKiloIns(const CounterSet& delta) noexcept {
  const auto ins = delta[CounterId::TotIns];
  if (ins == 0) return 0.0;
  return static_cast<double>(delta[CounterId::L2Dcm]) / static_cast<double>(ins) * 1e3;
}

}  // namespace unveil::counters
