#pragma once

/// \file shape.hpp
/// Rate shapes: the ground-truth *internal evolution* of a metric inside a
/// computation burst.
///
/// A RateShape is a non-negative relative rate r(t) on normalized intra-burst
/// time t ∈ [0, 1]. The simulator assigns each (phase, counter) pair a shape
/// and a total count; the cumulative count at intra-burst time t is
/// total × cdf(t), where cdf is r's normalized integral. Folding's entire job
/// is to recover r(t)/mean(r) — the normalized instantaneous rate — from
/// scattered samples, so these shapes are the reference every accuracy
/// experiment compares against.

#include <functional>
#include <string>
#include <vector>

namespace unveil::counters {

/// Immutable rate shape with fast normalized-integral queries.
///
/// Construction precomputes a dense trapezoidal integral table, so cdf() and
/// value() are O(1)/O(log n). Shapes are value types (cheap shared internals).
class RateShape {
 public:
  /// Flat shape r(t) = 1.
  [[nodiscard]] static RateShape constant();

  /// Linear ramp from \p startLevel at t=0 to \p endLevel at t=1.
  /// Levels must be >= 0 and not both zero.
  [[nodiscard]] static RateShape ramp(double startLevel, double endLevel);

  /// Piecewise-linear shape through control points (t_i, r_i). t must start
  /// at 0, end at 1 and be strictly increasing; r_i >= 0.
  [[nodiscard]] static RateShape piecewiseLinear(
      std::vector<std::pair<double, double>> points);

  /// Head/body/tail plateau: level \p head on [0, headFrac), \p body on
  /// [headFrac, 1-tailFrac), \p tail on [1-tailFrac, 1], with short linear
  /// transitions so the shape stays continuous.
  [[nodiscard]] static RateShape plateau(double head, double body, double tail,
                                         double headFrac, double tailFrac);

  /// Sawtooth with \p teeth linear descents from \p high to \p low —
  /// models row-block structured kernels (e.g. SpMV over banded blocks).
  [[nodiscard]] static RateShape sawtooth(int teeth, double low, double high);

  /// Gaussian bump: base + amplitude * exp(-(t-center)^2 / (2 width^2)).
  [[nodiscard]] static RateShape bump(double base, double amplitude, double center,
                                      double width);

  /// Weighted pointwise sum of shapes: sum_i w_i * s_i(t), weights > 0.
  [[nodiscard]] static RateShape blend(
      std::vector<std::pair<double, RateShape>> weighted);

  /// Arbitrary user function (must be >= 0 on [0,1]); \p name for reports.
  [[nodiscard]] static RateShape fromFunction(std::string name,
                                              std::function<double(double)> fn);

  /// Relative rate at normalized time t (clamped to [0,1]).
  [[nodiscard]] double value(double t) const noexcept;

  /// Normalized cumulative integral: cdf(0)=0, cdf(1)=1, monotone.
  [[nodiscard]] double cdf(double t) const noexcept;

  /// Mean relative rate over [0,1] (the raw integral).
  [[nodiscard]] double meanRate() const noexcept { return meanRate_; }

  /// value(t) / meanRate(): the normalized instantaneous rate whose integral
  /// over [0,1] is exactly 1. This is what folding reconstructs.
  [[nodiscard]] double normalizedRate(double t) const noexcept;

  /// Human-readable shape description.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  RateShape(std::string name, std::function<double(double)> fn);

  std::string name_;
  std::function<double(double)> fn_;
  std::vector<double> cumulative_;  ///< cumulative_[i] = ∫0^{i/N} r, unnormalized.
  double meanRate_ = 1.0;
};

}  // namespace unveil::counters
