#include "unveil/counters/phase_model.hpp"

#include <algorithm>
#include <cmath>

#include "unveil/support/error.hpp"

namespace unveil::counters {

PhaseModel::PhaseModel(std::string name) : name_(std::move(name)) {}

void PhaseModel::setCounter(CounterId id, double baseTotal, RateShape shape) {
  if (baseTotal < 0.0) throw unveil::ConfigError("counter baseTotal must be >= 0");
  profiles_[counterIndex(id)] = CounterProfile{baseTotal, std::move(shape)};
}

void PhaseModel::setRegions(std::vector<std::pair<std::string, double>> namedWidths) {
  if (namedWidths.empty())
    throw unveil::ConfigError("setRegions requires at least one region");
  double total = 0.0;
  for (const auto& [name, width] : namedWidths) {
    (void)name;
    if (width <= 0.0)
      throw unveil::ConfigError("region widths must be positive");
    total += width;
  }
  regions_.clear();
  double cursor = 0.0;
  for (auto& [name, width] : namedWidths) {
    const double next = cursor + width / total;
    regions_.push_back(PhaseRegion{std::move(name), cursor, next});
    cursor = next;
  }
  regions_.back().end = 1.0;  // absorb rounding
}

std::uint32_t PhaseModel::regionAt(double frac) const noexcept {
  frac = std::clamp(frac, 0.0, 1.0);
  for (std::size_t i = 0; i + 1 < regions_.size(); ++i) {
    if (frac < regions_[i].end) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(regions_.size() - 1);
}

const CounterProfile& PhaseModel::profile(CounterId id) const noexcept {
  return profiles_[counterIndex(id)];
}

double PhaseModel::normalizedRate(CounterId id, double t) const noexcept {
  return profiles_[counterIndex(id)].shape.normalizedRate(t);
}

double PhaseModel::cdf(CounterId id, double t) const noexcept {
  return profiles_[counterIndex(id)].shape.cdf(t);
}

RealizedBurst::RealizedBurst(const PhaseModel& model,
                             std::array<double, kNumCounters> factors)
    : model_(&model) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto id = static_cast<CounterId>(i);
    totals_[i] = model.profile(id).baseTotal * factors[i];
  }
}

double RealizedBurst::total(CounterId id) const noexcept {
  return totals_[counterIndex(id)];
}

std::uint64_t RealizedBurst::cumulativeAt(CounterId id, double t) const noexcept {
  return static_cast<std::uint64_t>(std::llround(cumulativeAtExact(id, t)));
}

double RealizedBurst::cumulativeAtExact(CounterId id, double t) const noexcept {
  return totals_[counterIndex(id)] * model_->cdf(id, t);
}

CounterSet RealizedBurst::snapshotAt(double t) const noexcept {
  CounterSet out;
  for (CounterId id : kAllCounters) out[id] = cumulativeAt(id, t);
  return out;
}

}  // namespace unveil::counters
