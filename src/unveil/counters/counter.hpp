#pragma once

/// \file counter.hpp
/// Hardware-counter identities and snapshot containers.
///
/// Mirrors the PAPI preset counters the paper's tooling (Extrae + PAPI)
/// collects at instrumentation probes and sampling interrupts. Counters are
/// modelled as monotonically non-decreasing 64-bit counts per rank.

#include <array>
#include <cstdint>
#include <string_view>

namespace unveil::counters {

/// The counters every probe and sample snapshots.
enum class CounterId : std::uint8_t {
  TotIns = 0,  ///< PAPI_TOT_INS — completed instructions.
  TotCyc,      ///< PAPI_TOT_CYC — total cycles.
  L1Dcm,       ///< PAPI_L1_DCM — level-1 data-cache misses.
  L2Dcm,       ///< PAPI_L2_DCM — level-2 data-cache misses.
  FpOps,       ///< PAPI_FP_OPS — floating-point operations.
  BrMsp,       ///< PAPI_BR_MSP — mispredicted branches.
};

/// Number of modelled counters.
inline constexpr std::size_t kNumCounters = 6;

/// All counter ids, for range-for iteration.
inline constexpr std::array<CounterId, kNumCounters> kAllCounters = {
    CounterId::TotIns, CounterId::TotCyc, CounterId::L1Dcm,
    CounterId::L2Dcm,  CounterId::FpOps,  CounterId::BrMsp,
};

/// PAPI-style name of a counter id.
[[nodiscard]] std::string_view counterName(CounterId id) noexcept;

/// Parses a PAPI-style name back to an id; throws unveil::Error on unknown
/// names (used by the trace reader).
[[nodiscard]] CounterId counterFromName(std::string_view name);

/// Index of a counter id inside CounterSet storage.
[[nodiscard]] constexpr std::size_t counterIndex(CounterId id) noexcept {
  return static_cast<std::size_t>(id);
}

/// A snapshot of all counters (cumulative counts since rank start).
struct CounterSet {
  std::array<std::uint64_t, kNumCounters> values{};

  /// Mutable access by id.
  [[nodiscard]] std::uint64_t& operator[](CounterId id) noexcept {
    return values[counterIndex(id)];
  }
  /// Read access by id.
  [[nodiscard]] std::uint64_t operator[](CounterId id) const noexcept {
    return values[counterIndex(id)];
  }

  /// Component-wise sum.
  CounterSet& operator+=(const CounterSet& other) noexcept;

  /// Component-wise difference (asserts this >= other per component, since
  /// counters are monotone).
  [[nodiscard]] CounterSet minus(const CounterSet& other) const;

  friend bool operator==(const CounterSet&, const CounterSet&) = default;
};

/// Derived-metric helpers over a counter delta and a wall-clock duration.
/// Times are nanoseconds throughout unveil.
struct DerivedMetrics {
  /// Instructions per cycle; 0 when cycles are 0.
  [[nodiscard]] static double ipc(const CounterSet& delta) noexcept;
  /// Millions of instructions per second over \p durationNs.
  [[nodiscard]] static double mips(const CounterSet& delta, std::uint64_t durationNs) noexcept;
  /// L2 misses per kilo-instruction; 0 when instructions are 0.
  [[nodiscard]] static double l2MissesPerKiloIns(const CounterSet& delta) noexcept;
};

}  // namespace unveil::counters
