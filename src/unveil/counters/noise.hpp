#pragma once

/// \file noise.hpp
/// Stochastic variability of counter totals across burst instances.
///
/// Real applications never repeat a phase with bit-identical counts: OS
/// noise, data-dependent branches and cache state perturb every instance.
/// The model is multiplicative and lognormal: one *common* factor shared by
/// all counters of a burst (the whole instance ran slower/did more work) and
/// one independent per-counter factor (e.g. cache misses fluctuate more than
/// retired instructions). Median factors are exactly 1 so expected totals
/// stay calibrated.

#include <array>

#include "unveil/counters/counter.hpp"
#include "unveil/support/rng.hpp"

namespace unveil::counters {

/// Parameters of the per-burst multiplicative noise.
struct NoiseModel {
  /// Sigma of the common lognormal factor applied to every counter.
  double commonSigma = 0.02;
  /// Sigma of the independent per-counter lognormal factor.
  double counterSigma = 0.01;
  /// Sigma of the per-instance *time warp*: instance i's internal evolution
  /// is shape(t^w_i) with w_i lognormal(median 1, warpSigma). Models the
  /// within-phase regime boundaries (cache overflow point, block edges)
  /// shifting from instance to instance — the cross-instance dispersion the
  /// folding fit must filter. Endpoints are preserved (0^w=0, 1^w=1), and
  /// the warp is monotone, so counter monotonicity is unaffected.
  double warpSigma = 0.03;
  /// Probability that an instance is an *outlier*: something external (page
  /// fault burst, OS preemption, network interrupt storm) grossly distorted
  /// its internal timeline. Outlier instances draw their warp with
  /// outlierWarpSigma instead of warpSigma and produce folded points far off
  /// the cluster profile — the contamination MAD pruning exists to reject.
  double outlierProb = 0.01;
  /// Warp sigma used for outlier instances.
  double outlierWarpSigma = 0.5;

  /// Validates parameter ranges; throws ConfigError on negative sigmas.
  void validate() const;

  /// Draws one burst's multiplicative factors (per counter).
  [[nodiscard]] std::array<double, kNumCounters> realize(support::Rng& rng) const;

  /// Draws one burst's time-warp exponent.
  [[nodiscard]] double realizeWarp(support::Rng& rng) const;
};

}  // namespace unveil::counters
