#pragma once

/// \file phase_model.hpp
/// Ground-truth counter behaviour of one computation phase.
///
/// A PhaseModel says, for every hardware counter, how many counts a nominal
/// instance of the phase accumulates (baseTotal) and how those counts are
/// distributed over the instance's lifetime (a RateShape). A RealizedBurst
/// binds a PhaseModel to one concrete burst instance (noise factors applied)
/// and answers "what is the cumulative count at intra-burst time t?" — the
/// primitive from which the simulator produces both probe snapshots and
/// sample snapshots.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "unveil/counters/counter.hpp"
#include "unveil/counters/noise.hpp"
#include "unveil/counters/shape.hpp"

namespace unveil::counters {

/// Per-counter behaviour within a phase.
struct CounterProfile {
  double baseTotal = 0.0;  ///< Expected counts per nominal instance.
  RateShape shape = RateShape::constant();  ///< Internal evolution.
};

/// A named code region occupying a contiguous slice of a phase's work.
struct PhaseRegion {
  std::string name;
  double begin = 0.0;  ///< Work fraction where the region starts.
  double end = 1.0;    ///< Work fraction where it ends (exclusive).
};

/// Ground-truth model of one phase's counters.
class PhaseModel {
 public:
  /// \param name phase label used in reports and ground-truth records.
  explicit PhaseModel(std::string name);

  /// Defines counter \p id's behaviour. baseTotal must be >= 0.
  void setCounter(CounterId id, double baseTotal, RateShape shape);

  /// Defines the phase's code regions as (name, relative width) pairs that
  /// tile [0,1] in order; widths are normalized. Models what a sampled
  /// callstack would attribute each part of the phase to. Default: one
  /// region named "body". Throws ConfigError on empty input or non-positive
  /// widths.
  void setRegions(std::vector<std::pair<std::string, double>> namedWidths);

  /// Number of regions (>= 1).
  [[nodiscard]] std::size_t numRegions() const noexcept { return regions_.size(); }
  /// Region table in order.
  [[nodiscard]] const std::vector<PhaseRegion>& regions() const noexcept {
    return regions_;
  }
  /// Index of the region containing work fraction \p frac.
  [[nodiscard]] std::uint32_t regionAt(double frac) const noexcept;

  /// Profile of counter \p id (all counters have a default: 0 counts, flat).
  [[nodiscard]] const CounterProfile& profile(CounterId id) const noexcept;

  /// Phase label.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Ground-truth normalized instantaneous rate of counter \p id at
  /// normalized time t (integral over [0,1] is 1).
  [[nodiscard]] double normalizedRate(CounterId id, double t) const noexcept;

  /// Ground-truth cumulative fraction of counter \p id at normalized time t.
  [[nodiscard]] double cdf(CounterId id, double t) const noexcept;

 private:
  std::string name_;
  std::array<CounterProfile, kNumCounters> profiles_;
  std::vector<PhaseRegion> regions_{{"body", 0.0, 1.0}};
};

/// One burst instance: a PhaseModel with realized noise factors.
///
/// Cumulative counts are monotone non-decreasing in t by construction
/// (rounding of a monotone function), so probe/sample snapshots derived from
/// a RealizedBurst always satisfy the hardware-counter monotonicity
/// invariant.
class RealizedBurst {
 public:
  /// \param model   phase ground truth (must outlive this object).
  /// \param factors per-counter multiplicative noise factors.
  RealizedBurst(const PhaseModel& model, std::array<double, kNumCounters> factors);

  /// Realized total count of counter \p id for this instance.
  [[nodiscard]] double total(CounterId id) const noexcept;

  /// Cumulative count of counter \p id at normalized intra-burst time t.
  [[nodiscard]] std::uint64_t cumulativeAt(CounterId id, double t) const noexcept;

  /// Exact (unrounded) cumulative count at normalized time t. Callers that
  /// add this to an external accumulator must round the *sum*, never the
  /// parts — rounding parts separately can break counter monotonicity by 1.
  [[nodiscard]] double cumulativeAtExact(CounterId id, double t) const noexcept;

  /// All counters' cumulative counts at normalized time t.
  [[nodiscard]] CounterSet snapshotAt(double t) const noexcept;

  /// The underlying phase model.
  [[nodiscard]] const PhaseModel& model() const noexcept { return *model_; }

 private:
  const PhaseModel* model_;
  std::array<double, kNumCounters> totals_{};
};

}  // namespace unveil::counters
