#pragma once

/// \file sample.hpp
/// Stratified-sampled DBSCAN for million-burst traces.
///
/// Sampling is the source paper's own core trick (folding reconstructs a
/// phase from a sparse scatter of samples); here it is applied to the
/// clustering stage itself, following the two-phase stratified-sampling
/// approach of CPU performance characterization: cluster an exact DBSCAN
/// over a stratified sample of the bursts, then classify every remaining
/// burst by eps-neighborhood assignment to the sampled cores.
///
/// Strata are equal-width buckets over the (cheap, already-computed)
/// clustering features — with the default feature space that is
/// log-instructions × IPC buckets — and allocation is proportional with a
/// floor of one, so rare phases far from the dense blobs land in their own
/// strata and keep representation that uniform sampling would lose.
///
/// Determinism: stratum edges, the per-stratum selections (seeded
/// support::Rng substreams) and the classification (a pure per-point
/// function) are all independent of thread count, so results are
/// bit-identical for any --threads value and reproducible for a fixed seed.

#include <cstdint>
#include <vector>

#include "unveil/cluster/dbscan.hpp"
#include "unveil/cluster/features.hpp"

namespace unveil::cluster {

/// Stratified-sample selection parameters.
struct StratifiedSampleParams {
  /// Target sample size as a fraction of the input rows.
  double fraction = 0.05;
  /// Never sample fewer rows than this (clamped to the input size).
  std::size_t minSample = 2000;
  /// Never sample more rows than this — beyond it, exact DBSCAN on the
  /// sample would itself become the bottleneck.
  std::size_t maxSample = 100000;
  /// Equal-width buckets per feature dimension (total strata are capped at
  /// kMaxStrata by reducing per-dimension buckets).
  std::size_t bucketsPerDim = 8;
  /// Root seed for the per-stratum selection substreams.
  std::uint64_t seed = 1;

  /// Upper bound on the total stratum count.
  static constexpr std::size_t kMaxStrata = 4096;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// A stratified sample of a feature matrix.
struct StratifiedSample {
  /// Selected row indices, ascending.
  std::vector<std::size_t> indices;
  /// Number of non-empty strata the selection drew from.
  std::size_t strata = 0;
};

/// Draws a stratified sample of \p m: rows are bucketed per dimension by
/// equal-width edges, strata sampled proportionally (floor of one row per
/// non-empty stratum), deterministic for a fixed seed.
[[nodiscard]] StratifiedSample stratifiedSample(const FeatureMatrix& m,
                                                const StratifiedSampleParams& params);

/// Parameters for sampled DBSCAN.
struct SampledDbscanParams {
  /// Density parameters, interpreted on the full data set.
  DbscanParams dbscan{};
  /// Sample selection.
  StratifiedSampleParams sample{};
  /// Scale minPts by the realized sampling rate when clustering the sample
  /// (a sample of fraction f keeps ~f of every eps-neighborhood, so the
  /// density threshold must shrink accordingly). Floor of 2.
  bool scaleMinPts = true;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Sampled clustering outcome: full-length labels plus sampling telemetry.
struct SampledClustering {
  /// Labels over every input row, cluster ids ordered by descending member
  /// count like dbscan().
  Clustering clustering;
  /// Rows clustered exactly (the stratified sample).
  std::size_t sampleSize = 0;
  /// Rows labeled by eps-neighborhood classification (everything else).
  std::size_t classified = 0;
  /// Non-empty strata used by the selection.
  std::size_t strata = 0;
};

/// Clusters a stratified sample of \p features with exact grid DBSCAN, then
/// classifies the remaining rows in parallel: each joins the cluster of its
/// nearest sampled core within eps (ties: lowest sample row), or noise when
/// no sampled core is in range. Deterministic for any thread count.
[[nodiscard]] SampledClustering dbscanSampled(const FeatureMatrix& features,
                                              const SampledDbscanParams& params);

}  // namespace unveil::cluster
