#include "unveil/cluster/refine.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "unveil/support/error.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::cluster {

void RefineParams::validate() const {
  if (positionPurity <= 0.0 || positionPurity > 1.0)
    throw ConfigError("refine positionPurity must be in (0, 1]");
  if (maxCooccurrence < 0.0 || maxCooccurrence >= 1.0)
    throw ConfigError("refine maxCooccurrence must be in [0, 1)");
  if (minTemporalOverlap < 0.0 || minTemporalOverlap > 1.0)
    throw ConfigError("refine minTemporalOverlap must be in [0, 1]");
}

namespace {

/// Union-find over cluster ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[std::max(a, b)] = std::min(a, b);
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

RefineResult refineByStructure(std::span<const Burst> bursts,
                               const Clustering& clustering, std::size_t period,
                               const RefineParams& params) {
  params.validate();
  telemetry::Span span("cluster.refine");
  span.attr("clusters", clustering.numClusters);
  span.attr("period", period);
  RefineResult result;
  result.clustering = clustering;
  result.mapping.resize(clustering.numClusters);
  std::iota(result.mapping.begin(), result.mapping.end(), 0);
  if (period == 0 || clustering.numClusters < 2) return result;

  const auto sequences = clusterSequences(bursts, clustering);
  const std::size_t k = clustering.numClusters;

  // Position histograms, (rank, iteration) occupancy and lifetime per
  // cluster.
  std::vector<std::map<std::size_t, std::size_t>> posHist(k);
  std::vector<std::size_t> totals(k, 0);
  std::vector<std::set<std::pair<trace::Rank, std::size_t>>> cells(k);
  std::vector<trace::TimeNs> firstSeen(k, ~trace::TimeNs{0});
  std::vector<trace::TimeNs> lastSeen(k, 0);
  for (const auto& seq : sequences) {
    for (std::size_t i = 0; i < seq.labels.size(); ++i) {
      const int label = seq.labels[i];
      if (label < 0) continue;
      const auto c = static_cast<std::size_t>(label);
      ++posHist[c][i % period];
      ++totals[c];
      cells[c].insert({seq.rank, i / period});
      firstSeen[c] = std::min(firstSeen[c], seq.begins[i]);
      lastSeen[c] = std::max(lastSeen[c], seq.begins[i]);
    }
  }

  // Modal position and purity per cluster.
  std::vector<std::size_t> modalPos(k, 0);
  std::vector<double> purity(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    std::size_t best = 0;
    for (const auto& [pos, count] : posHist[c]) {
      if (count > best) {
        best = count;
        modalPos[c] = pos;
      }
    }
    purity[c] = totals[c] > 0
                    ? static_cast<double>(best) / static_cast<double>(totals[c])
                    : 0.0;
  }

  UnionFind uf(k);
  for (std::size_t a = 0; a < k; ++a) {
    if (purity[a] < params.positionPurity) continue;
    for (std::size_t b = a + 1; b < k; ++b) {
      if (purity[b] < params.positionPurity) continue;
      if (modalPos[a] != modalPos[b]) continue;
      // Exclusivity: overlapping (rank, iteration) cells.
      const auto& small = cells[a].size() <= cells[b].size() ? cells[a] : cells[b];
      const auto& large = cells[a].size() <= cells[b].size() ? cells[b] : cells[a];
      std::size_t both = 0;
      for (const auto& cell : small) both += large.contains(cell) ? 1 : 0;
      const double cooccur =
          small.empty() ? 1.0
                        : static_cast<double>(both) / static_cast<double>(small.size());
      if (cooccur > params.maxCooccurrence) continue;
      // Temporal coexistence: a regime split (same position, exclusive, but
      // living in different halves of the run) must not merge.
      const double overlap =
          static_cast<double>(std::min(lastSeen[a], lastSeen[b])) -
          static_cast<double>(std::max(firstSeen[a], firstSeen[b]));
      const double shorterSpan = static_cast<double>(
          std::min(lastSeen[a] - firstSeen[a], lastSeen[b] - firstSeen[b]));
      const double overlapFrac =
          shorterSpan > 0.0 ? std::max(overlap, 0.0) / shorterSpan
                            : (overlap >= 0.0 ? 1.0 : 0.0);
      if (overlapFrac < params.minTemporalOverlap) continue;
      if (uf.unite(a, b)) ++result.mergesApplied;
    }
  }
  span.attr("merges", result.mergesApplied);
  if (result.mergesApplied == 0) return result;

  // Relabel: roots -> dense ids ordered by merged size (largest first).
  std::vector<std::size_t> mergedSize(k, 0);
  for (std::size_t c = 0; c < k; ++c) mergedSize[uf.find(c)] += totals[c];
  std::vector<std::size_t> roots;
  for (std::size_t c = 0; c < k; ++c)
    if (uf.find(c) == c) roots.push_back(c);
  std::sort(roots.begin(), roots.end(), [&](std::size_t a, std::size_t b) {
    if (mergedSize[a] != mergedSize[b]) return mergedSize[a] > mergedSize[b];
    return a < b;
  });
  std::vector<int> rootToNew(k, -1);
  for (std::size_t newId = 0; newId < roots.size(); ++newId)
    rootToNew[roots[newId]] = static_cast<int>(newId);

  for (std::size_t c = 0; c < k; ++c)
    result.mapping[c] = rootToNew[uf.find(c)];
  for (auto& label : result.clustering.labels) {
    if (label >= 0) label = result.mapping[static_cast<std::size_t>(label)];
  }
  result.clustering.numClusters = roots.size();
  return result;
}

}  // namespace unveil::cluster
