#pragma once

/// \file refine.hpp
/// Structure-driven cluster refinement.
///
/// DBSCAN occasionally fragments one application phase into several clusters
/// — typically when static rank imbalance stretches the phase along the
/// instructions/duration axis until density gaps open. Fragments are easy to
/// recognize *structurally*: the application executes its phases in a fixed
/// per-iteration order, so two clusters that are really one phase occupy the
/// same position of the iteration pattern and never co-occur in one
/// iteration of one rank. This pass (a pragmatic take on the group's
/// aggregative-refinement follow-up work) merges such fragments.
///
/// Merge criterion for clusters A and B:
///  1. positional coincidence — considering each rank's burst sequence
///     modulo the detected period, A and B occur at the same position;
///  2. exclusivity — no (rank, iteration) executes both A and B; and
///  3. temporal coexistence — A's and B's lifetimes overlap substantially.
/// (1)+(2) follow from "A and B are the same phase" but also hold for a
/// phase that *changed regime* mid-run (e.g. after a mesh refinement) —
/// those clusters are genuinely different performance phases and must stay
/// split, which is what (3) enforces: rank-split fragments coexist for the
/// whole run, regime splits are temporally disjoint.

#include "unveil/cluster/structure.hpp"

namespace unveil::cluster {

/// Refinement parameters.
struct RefineParams {
  /// Minimum fraction of a cluster's occurrences at its modal period
  /// position for the position to count as well-defined.
  double positionPurity = 0.75;
  /// Maximum fraction of (rank, iteration) cells where both clusters occur
  /// for them to still count as mutually exclusive.
  double maxCooccurrence = 0.05;
  /// Minimum overlap of the two clusters' [first, last] lifetime intervals,
  /// as a fraction of the shorter lifetime, for a merge (criterion 3).
  double minTemporalOverlap = 0.5;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Outcome of a refinement pass.
struct RefineResult {
  Clustering clustering;       ///< Relabelled (size-ordered) clustering.
  std::size_t mergesApplied = 0;
  /// For each input cluster id, the output cluster id it was mapped to.
  std::vector<int> mapping;
};

/// Merges structurally identical cluster fragments. \p period is the
/// iteration period in bursts (from detectGlobalPeriod); when 0 the input is
/// returned unchanged. Noise labels are preserved.
[[nodiscard]] RefineResult refineByStructure(std::span<const Burst> bursts,
                                             const Clustering& clustering,
                                             std::size_t period,
                                             const RefineParams& params = {});

}  // namespace unveil::cluster
