#include "unveil/cluster/eps_grid.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "unveil/support/error.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::cluster {

namespace {

/// Squared Euclidean distance between two rows (same accumulation order as
/// the historical brute-force loops, so results are bit-identical).
double dist2(std::span<const double> p, std::span<const double> q) {
  double d2 = 0.0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    const double diff = p[k] - q[k];
    d2 += diff * diff;
  }
  return d2;
}

}  // namespace

EpsGrid::EpsGrid(const FeatureMatrix& m, double cellSize)
    : m_(m), cell_(cellSize), inv_(0.0), valid_(false) {
  const std::size_t d = m.dims();
  if (d == 0 || d > kMaxDims) return;
  if (!(cellSize > 0.0) || !std::isfinite(cellSize)) return;
  inv_ = 1.0 / cellSize;
  if (!std::isfinite(inv_)) return;
  valid_ = true;
  telemetry::count("cluster.grid_builds", 1);

  std::array<std::int64_t, kMaxDims> minCell{};
  std::array<std::int64_t, kMaxDims> maxCell{};
  minCell.fill(std::numeric_limits<std::int64_t>::max());
  maxCell.fill(std::numeric_limits<std::int64_t>::min());

  cells_.reserve(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto p = m.row(i);
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t k = 0; k < d; ++k) {
      const auto c = static_cast<std::int64_t>(std::floor(p[k] * inv_));
      minCell[k] = std::min(minCell[k], c);
      maxCell[k] = std::max(maxCell[k], c);
      h = hashCombine(h, c);
    }
    cells_[h].push_back(i);
  }
  for (std::size_t k = 0; k < d; ++k)
    if (maxCell[k] >= minCell[k])
      maxRing_ = std::max(maxRing_, maxCell[k] - minCell[k] + 1);
}

std::uint64_t EpsGrid::cellHashOfRow(std::size_t i) const {
  const auto p = m_.row(i);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t k = 0; k < p.size(); ++k)
    h = hashCombine(h, static_cast<std::int64_t>(std::floor(p[k] * inv_)));
  return h;
}

void EpsGrid::neighbors(std::size_t i, double radius2,
                        std::vector<std::size_t>& out) const {
  UNVEIL_ASSERT(valid_, "EpsGrid::neighbors on invalid grid");
  out.clear();
  const auto p = m_.row(i);
  const std::size_t d = p.size();
  std::array<std::int64_t, kMaxDims> base{};
  for (std::size_t k = 0; k < d; ++k)
    base[k] = static_cast<std::int64_t>(std::floor(p[k] * inv_));
  // Enumerate the 3^d adjacent cells via a mixed-radix counter over offsets
  // in {-1, 0, 1}^d, hashing each cell's coordinates incrementally.
  std::array<int, kMaxDims> offs{};
  offs.fill(-1);
  while (true) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t k = 0; k < d; ++k) h = hashCombine(h, base[k] + offs[k]);
    auto it = cells_.find(h);
    if (it != cells_.end()) {
      for (std::size_t j : it->second) {
        if (dist2(p, m_.row(j)) <= radius2) out.push_back(j);
      }
    }
    std::size_t k = 0;
    while (k < d && offs[k] == 1) {
      offs[k] = -1;
      ++k;
    }
    if (k == d) break;
    ++offs[k];
  }
}

double EpsGrid::kthNearestDist(std::size_t i, std::size_t k) const {
  UNVEIL_ASSERT(valid_, "EpsGrid::kthNearestDist on invalid grid");
  const auto p = m_.row(i);
  const std::size_t d = p.size();
  std::array<std::int64_t, kMaxDims> base{};
  for (std::size_t dim = 0; dim < d; ++dim)
    base[dim] = static_cast<std::int64_t>(std::floor(p[dim] * inv_));

  // Max-heap of the k+1 smallest squared distances seen so far.
  const std::size_t want = k + 1;
  std::vector<double> heap;
  heap.reserve(want);
  auto offer = [&](double d2) {
    if (heap.size() < want) {
      heap.push_back(d2);
      std::push_heap(heap.begin(), heap.end());
    } else if (d2 < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = d2;
      std::push_heap(heap.begin(), heap.end());
    }
  };

  auto scanCell = [&](std::uint64_t h) {
    auto it = cells_.find(h);
    if (it == cells_.end()) return;
    for (std::size_t j : it->second) {
      if (j == i) continue;
      offer(dist2(p, m_.row(j)));
    }
  };

  // Recursive enumeration of cells at Chebyshev ring r (max |offset| == r),
  // hashing coordinates as the recursion descends.
  std::array<std::int64_t, kMaxDims> cell{};
  auto ringCells = [&](auto&& self, std::size_t dim, std::int64_t r,
                       std::uint64_t h, bool onEdge) -> void {
    if (dim == d) {
      if (onEdge || r == 0) scanCell(h);
      return;
    }
    for (std::int64_t off = -r; off <= r; ++off) {
      cell[dim] = base[dim] + off;
      self(self, dim + 1, r, hashCombine(h, cell[dim]),
           onEdge || off == r || off == -r);
    }
  };

  for (std::int64_t r = 0; r <= maxRing_; ++r) {
    if (heap.size() == want && r >= 2) {
      // Any point in a cell at Chebyshev ring r is at least (r-1)·cell away
      // from p (p lies somewhere inside its own cell), so once the current
      // k-th best is closer than that bound no farther ring can improve it.
      const double bound = static_cast<double>(r - 1) * cell_;
      if (bound * bound >= heap.front()) break;
    }
    ringCells(ringCells, 0, r, 0x9e3779b97f4a7c15ULL, false);
  }
  UNVEIL_ASSERT(heap.size() == want, "kthNearestDist: not enough rows");
  return std::sqrt(heap.front());
}

double EpsGrid::knnCellSize(const FeatureMatrix& m, std::size_t k) {
  const std::size_t n = m.rows();
  const std::size_t d = m.dims();
  if (n == 0 || d == 0 || d > kMaxDims || k == 0) return 0.0;
  // Bounding-box extents; degenerate dimensions contribute nothing to the
  // volume (every point shares their cell index anyway).
  double logVol = 0.0;
  std::size_t effDims = 0;
  for (std::size_t dim = 0; dim < d; ++dim) {
    double lo = m.at(0, dim), hi = m.at(0, dim);
    for (std::size_t i = 1; i < n; ++i) {
      lo = std::min(lo, m.at(i, dim));
      hi = std::max(hi, m.at(i, dim));
    }
    const double extent = hi - lo;
    if (extent > 0.0 && std::isfinite(extent)) {
      logVol += std::log(extent);
      ++effDims;
    }
  }
  if (effDims == 0) return 0.0;
  // Cell edge so that cell volume ≈ (k / n) × bounding volume.
  const double logCell =
      (logVol + std::log(static_cast<double>(k) / static_cast<double>(n))) /
      static_cast<double>(effDims);
  const double cellSize = std::exp(logCell);
  return std::isfinite(cellSize) && cellSize > 0.0 ? cellSize : 0.0;
}

}  // namespace unveil::cluster
