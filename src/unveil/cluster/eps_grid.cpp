#include "unveil/cluster/eps_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "unveil/cluster/distance.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/telemetry.hpp"

namespace unveil::cluster {

namespace {

/// Batch-evaluates squared distances from \p p to the listed rows in chunks
/// and invokes `fn(row, d2)` in ascending list order: the distance math runs
/// through the vectorized kernel while callers keep their selection logic
/// scalar (and their tie rules intact).
template <typename Fn>
void forEachDist2(std::span<const double> p, const FeatureMatrix& m,
                  std::span<const std::size_t> rows, Fn&& fn) {
  constexpr std::size_t kChunk = 64;
  double d2buf[kChunk];
  if (rows.empty()) return;
  const double* base = m.row(0).data();
  for (std::size_t c = 0; c < rows.size(); c += kChunk) {
    const std::size_t cnt = std::min(kChunk, rows.size() - c);
    distance2Batch(p.data(), p.size(), base, m.dims(), rows.data() + c, cnt,
                   d2buf);
    for (std::size_t t = 0; t < cnt; ++t) fn(rows[c + t], d2buf[t]);
  }
}

/// Contiguous-row form of forEachDist2, for full-matrix scans.
template <typename Fn>
void forEachDist2Rows(std::span<const double> p, const FeatureMatrix& m,
                      std::size_t first, std::size_t count, Fn&& fn) {
  constexpr std::size_t kChunk = 64;
  double d2buf[kChunk];
  if (count == 0) return;
  const double* base = m.row(0).data();
  for (std::size_t c = 0; c < count; c += kChunk) {
    const std::size_t cnt = std::min(kChunk, count - c);
    distance2BatchRows(p.data(), p.size(), base, m.dims(), first + c, cnt,
                       d2buf);
    for (std::size_t t = 0; t < cnt; ++t) fn(first + c + t, d2buf[t]);
  }
}

/// Cell indices are kept well inside int64 so ring arithmetic (index ± reach)
/// can never overflow. Coordinates this large mean the cell size is absurdly
/// small relative to the data spread — brute force is the right fallback.
constexpr double kMaxCellCoord = 1e15;

}  // namespace

EpsGrid::EpsGrid(const FeatureMatrix& m, double cellSize)
    : m_(m), cell_(cellSize), inv_(0.0), valid_(false) {
  const std::size_t d = m.dims();
  if (d == 0 || d > kMaxDims) return;
  if (!(cellSize > 0.0) || !std::isfinite(cellSize)) return;
  inv_ = 1.0 / cellSize;
  if (!std::isfinite(inv_)) return;

  const std::size_t n = m.rows();
  // Pass 1: cell coordinates per row, with overflow/NaN screening.
  std::vector<std::array<std::int64_t, kMaxDims>> rowCoord(n);
  std::array<std::int64_t, kMaxDims> minCell{};
  std::array<std::int64_t, kMaxDims> maxCell{};
  minCell.fill(std::numeric_limits<std::int64_t>::max());
  maxCell.fill(std::numeric_limits<std::int64_t>::min());
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = m.row(i);
    for (std::size_t k = 0; k < d; ++k) {
      const double scaled = p[k] * inv_;
      if (!std::isfinite(scaled) || std::abs(scaled) > kMaxCellCoord) return;
      const auto c = static_cast<std::int64_t>(std::floor(scaled));
      rowCoord[i][k] = c;
      minCell[k] = std::min(minCell[k], c);
      maxCell[k] = std::max(maxCell[k], c);
    }
  }
  valid_ = true;
  telemetry::count("cluster.grid_builds", 1);
  for (std::size_t k = 0; k < d; ++k)
    if (n > 0 && maxCell[k] >= minCell[k])
      maxRing_ = std::max(maxRing_, maxCell[k] - minCell[k] + 1);

  // Pass 2: assign occupied-cell ids (collision chains keep distinct
  // coordinates distinct) and count members.
  cellOfRow_.resize(n);
  buckets_.reserve(n);
  std::vector<std::size_t> counts;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t h = hashCoord(rowCoord[i], d);
    std::size_t cell = kNoCell;
    auto it = buckets_.find(h);
    if (it != buckets_.end()) {
      for (std::size_t c = it->second; c != kNoCell; c = nextInBucket_[c]) {
        if (std::equal(cellCoords_[c].begin(), cellCoords_[c].begin() +
                           static_cast<std::ptrdiff_t>(d),
                       rowCoord[i].begin())) {
          cell = c;
          break;
        }
      }
    }
    if (cell == kNoCell) {
      cell = cellCoords_.size();
      cellCoords_.push_back(rowCoord[i]);
      nextInBucket_.push_back(it != buckets_.end() ? it->second : kNoCell);
      buckets_[h] = cell;
      counts.push_back(0);
    }
    cellOfRow_[i] = cell;
    ++counts[cell];
  }

  // Pass 3: CSR member lists in row order.
  memberOffsets_.assign(cellCoords_.size() + 1, 0);
  for (std::size_t c = 0; c < counts.size(); ++c)
    memberOffsets_[c + 1] = memberOffsets_[c] + counts[c];
  memberRows_.resize(n);
  std::vector<std::size_t> cursor(memberOffsets_.begin(), memberOffsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) memberRows_[cursor[cellOfRow_[i]]++] = i;
}

std::size_t EpsGrid::findCell(const std::array<std::int64_t, kMaxDims>& coord,
                              std::size_t d) const {
  const auto it = buckets_.find(hashCoord(coord, d));
  if (it == buckets_.end()) return kNoCell;
  for (std::size_t c = it->second; c != kNoCell; c = nextInBucket_[c]) {
    if (std::equal(cellCoords_[c].begin(),
                   cellCoords_[c].begin() + static_cast<std::ptrdiff_t>(d),
                   coord.begin()))
      return c;
  }
  return kNoCell;
}

std::span<const std::size_t> EpsGrid::cellMembers(std::size_t c) const {
  return {memberRows_.data() + memberOffsets_[c],
          memberOffsets_[c + 1] - memberOffsets_[c]};
}

double EpsGrid::cellBoxDist2(std::size_t a, std::size_t b) const {
  const std::size_t d = m_.dims();
  double sum = 0.0;
  for (std::size_t k = 0; k < d; ++k) {
    const std::int64_t delta = std::llabs(cellCoords_[a][k] - cellCoords_[b][k]);
    if (delta > 1) {
      const double gap = static_cast<double>(delta - 1) * cell_;
      sum += gap * gap;
    }
  }
  return sum;
}

void EpsGrid::neighborsImpl(std::span<const double> p,
                            const std::array<std::int64_t, kMaxDims>& base,
                            double radius2, std::vector<std::size_t>& out) const {
  const std::size_t d = p.size();
  // ceil(radius / cell) with a +1 ulp-safety margin so a point exactly at
  // the radius is never missed by the cell enumeration.
  const double radius = std::sqrt(radius2);
  const auto reach =
      static_cast<std::int64_t>(std::floor(radius * inv_)) + 1;

  // Bound the enumeration to the occupied bounding box; when the window
  // still exceeds the occupied cell count, scanning every cell (with a box
  // prune) is cheaper than enumerating empty coordinates.
  double window = 1.0;
  for (std::size_t k = 0; k < d; ++k)
    window *= static_cast<double>(2 * reach + 1);
  if (window > static_cast<double>(cellCount())) {
    for (std::size_t c = 0; c < cellCount(); ++c) {
      // Box prune: nearest point of the cell's box to p.
      double boxD2 = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        const double lo = static_cast<double>(cellCoords_[c][k]) * cell_;
        const double hi = lo + cell_;
        if (p[k] < lo) {
          const double g = lo - p[k];
          boxD2 += g * g;
        } else if (p[k] > hi) {
          const double g = p[k] - hi;
          boxD2 += g * g;
        }
      }
      // The box prune is conservative (cell boundaries are fp-rounded), so
      // widen it by one cell edge before discarding.
      const double slack = std::sqrt(radius2) + cell_;
      if (boxD2 > slack * slack) continue;
      forEachDist2(p, m_, cellMembers(c), [&](std::size_t j, double d2v) {
        if (d2v <= radius2) out.push_back(j);
      });
    }
    return;
  }

  std::array<std::int64_t, kMaxDims> coord{};
  std::array<std::int64_t, kMaxDims> offs{};
  offs.fill(-reach);
  while (true) {
    for (std::size_t k = 0; k < d; ++k) coord[k] = base[k] + offs[k];
    const std::size_t cell = findCell(coord, d);
    if (cell != kNoCell) {
      forEachDist2(p, m_, cellMembers(cell), [&](std::size_t j, double d2v) {
        if (d2v <= radius2) out.push_back(j);
      });
    }
    std::size_t k = 0;
    while (k < d && offs[k] == reach) {
      offs[k] = -reach;
      ++k;
    }
    if (k == d) break;
    ++offs[k];
  }
}

void EpsGrid::neighbors(std::size_t i, double radius2,
                        std::vector<std::size_t>& out) const {
  UNVEIL_ASSERT(valid_, "EpsGrid::neighbors on invalid grid");
  out.clear();
  neighborsImpl(m_.row(i), cellCoords_[cellOfRow_[i]], radius2, out);
}

void EpsGrid::neighbors(std::span<const double> p, double radius2,
                        std::vector<std::size_t>& out) const {
  UNVEIL_ASSERT(valid_, "EpsGrid::neighbors on invalid grid");
  UNVEIL_ASSERT(p.size() == m_.dims(), "EpsGrid::neighbors dims mismatch");
  out.clear();
  std::array<std::int64_t, kMaxDims> base{};
  for (std::size_t k = 0; k < p.size(); ++k) {
    const double scaled = p[k] * inv_;
    if (!std::isfinite(scaled) || std::abs(scaled) > kMaxCellCoord) {
      // The query point lies outside the indexable range; scan every cell
      // via the box-pruned path by forcing an oversized window.
      for (std::size_t c = 0; c < cellCount(); ++c)
        forEachDist2(p, m_, cellMembers(c), [&](std::size_t j, double d2v) {
          if (d2v <= radius2) out.push_back(j);
        });
      return;
    }
    base[k] = static_cast<std::int64_t>(std::floor(scaled));
  }
  neighborsImpl(p, base, radius2, out);
}

std::size_t EpsGrid::nearest(std::span<const double> p, double radius2) const {
  UNVEIL_ASSERT(valid_, "EpsGrid::nearest on invalid grid");
  UNVEIL_ASSERT(p.size() == m_.dims(), "EpsGrid::nearest dims mismatch");
  const std::size_t d = p.size();
  double bestD2 = std::numeric_limits<double>::infinity();
  std::size_t best = kNoRow;
  auto consider = [&](std::size_t j, double d2v) {
    if (d2v > radius2) return;
    if (d2v < bestD2 || (d2v == bestD2 && j < best)) {
      bestD2 = d2v;
      best = j;
    }
  };

  // Out-of-range query points and windows larger than the occupied cell set
  // degrade to a row scan (row order makes the tie rule trivial).
  std::array<std::int64_t, kMaxDims> base{};
  bool inRange = true;
  for (std::size_t k = 0; k < d && inRange; ++k) {
    const double scaled = p[k] * inv_;
    if (!std::isfinite(scaled) || std::abs(scaled) > kMaxCellCoord)
      inRange = false;
    else
      base[k] = static_cast<std::int64_t>(std::floor(scaled));
  }
  const double radius = std::sqrt(radius2);
  const auto reach = static_cast<std::int64_t>(std::floor(radius * inv_)) + 1;
  double window = 1.0;
  for (std::size_t k = 0; k < d; ++k)
    window *= static_cast<double>(2 * reach + 1);
  if (!inRange || window > static_cast<double>(cellCount())) {
    forEachDist2Rows(p, m_, 0, m_.rows(), consider);
    return best;
  }

  auto scanCell = [&](const std::array<std::int64_t, kMaxDims>& coord) {
    const std::size_t c = findCell(coord, d);
    if (c == kNoCell) return;
    // Exact point-to-box distance; skipping only on strict excess keeps
    // boundary ties (a member at exactly the best distance) reachable.
    double boxD2 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double lo = static_cast<double>(coord[k]) * cell_;
      const double hi = lo + cell_;
      if (p[k] < lo) {
        const double g = lo - p[k];
        boxD2 += g * g;
      } else if (p[k] > hi) {
        const double g = p[k] - hi;
        boxD2 += g * g;
      }
    }
    if (boxD2 > std::min(bestD2, radius2)) return;
    forEachDist2(p, m_, cellMembers(c), consider);
  };

  std::array<std::int64_t, kMaxDims> cell{};
  auto ringCells = [&](auto&& self, std::size_t dim, std::int64_t r,
                       bool onEdge) -> void {
    if (dim == d) {
      if (onEdge || r == 0) scanCell(cell);
      return;
    }
    for (std::int64_t off = -r; off <= r; ++off) {
      cell[dim] = base[dim] + off;
      self(self, dim + 1, r, onEdge || off == r || off == -r);
    }
  };

  for (std::int64_t r = 0; r <= reach; ++r) {
    if (r >= 2) {
      // Any point in a cell at Chebyshev ring r is at least (r-1)·cell from
      // p; once that bound exceeds both the best hit and the radius, no
      // farther ring can improve the answer.
      const double bound = static_cast<double>(r - 1) * cell_;
      if (bound * bound > std::min(bestD2, radius2)) break;
    }
    ringCells(ringCells, 0, r, false);
  }
  return best;
}

double EpsGrid::kthNearestDist(std::size_t i, std::size_t k) const {
  UNVEIL_ASSERT(valid_, "EpsGrid::kthNearestDist on invalid grid");
  const auto p = m_.row(i);
  const std::size_t d = p.size();
  const auto& base = cellCoords_[cellOfRow_[i]];

  // Max-heap of the k+1 smallest squared distances seen so far.
  const std::size_t want = k + 1;
  std::vector<double> heap;
  heap.reserve(want);
  auto offer = [&](double d2v) {
    if (heap.size() < want) {
      heap.push_back(d2v);
      std::push_heap(heap.begin(), heap.end());
    } else if (d2v < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = d2v;
      std::push_heap(heap.begin(), heap.end());
    }
  };

  auto scanCell = [&](const std::array<std::int64_t, kMaxDims>& coord) {
    const std::size_t c = findCell(coord, d);
    if (c == kNoCell) return;
    // The batch kernel also computes row i's own (zero) distance; it is
    // skipped at offer time, so the offer sequence matches the scalar loop.
    forEachDist2(p, m_, cellMembers(c), [&](std::size_t j, double d2v) {
      if (j != i) offer(d2v);
    });
  };

  // Recursive enumeration of cells at Chebyshev ring r (max |offset| == r).
  std::array<std::int64_t, kMaxDims> cell{};
  auto ringCells = [&](auto&& self, std::size_t dim, std::int64_t r,
                       bool onEdge) -> void {
    if (dim == d) {
      if (onEdge || r == 0) scanCell(cell);
      return;
    }
    for (std::int64_t off = -r; off <= r; ++off) {
      cell[dim] = base[dim] + off;
      self(self, dim + 1, r, onEdge || off == r || off == -r);
    }
  };

  for (std::int64_t r = 0; r <= maxRing_; ++r) {
    if (heap.size() == want && r >= 2) {
      // Any point in a cell at Chebyshev ring r is at least (r-1)·cell away
      // from p (p lies somewhere inside its own cell), so once the current
      // k-th best is closer than that bound no farther ring can improve it.
      const double bound = static_cast<double>(r - 1) * cell_;
      if (bound * bound >= heap.front()) break;
    }
    ringCells(ringCells, 0, r, false);
  }
  UNVEIL_ASSERT(heap.size() == want, "kthNearestDist: not enough rows");
  return std::sqrt(heap.front());
}

double EpsGrid::knnCellSize(const FeatureMatrix& m, std::size_t k) {
  const std::size_t n = m.rows();
  const std::size_t d = m.dims();
  if (n == 0 || d == 0 || d > kMaxDims || k == 0) return 0.0;
  // Bounding-box extents; degenerate dimensions contribute nothing to the
  // volume (every point shares their cell index anyway).
  double logVol = 0.0;
  std::size_t effDims = 0;
  for (std::size_t dim = 0; dim < d; ++dim) {
    double lo = m.at(0, dim), hi = m.at(0, dim);
    for (std::size_t i = 1; i < n; ++i) {
      lo = std::min(lo, m.at(i, dim));
      hi = std::max(hi, m.at(i, dim));
    }
    const double extent = hi - lo;
    if (extent > 0.0 && std::isfinite(extent)) {
      logVol += std::log(extent);
      ++effDims;
    }
  }
  if (effDims == 0) return 0.0;
  // Cell edge so that cell volume ≈ (k / n) × bounding volume.
  const double logCell =
      (logVol + std::log(static_cast<double>(k) / static_cast<double>(n))) /
      static_cast<double>(effDims);
  const double cellSize = std::exp(logCell);
  return std::isfinite(cellSize) && cellSize > 0.0 ? cellSize : 0.0;
}

}  // namespace unveil::cluster
