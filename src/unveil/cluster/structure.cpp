#include "unveil/cluster/structure.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "unveil/support/error.hpp"

namespace unveil::cluster {

std::vector<RankSequence> clusterSequences(std::span<const Burst> bursts,
                                           const Clustering& clustering) {
  if (bursts.size() != clustering.labels.size())
    throw ConfigError("clusterSequences: bursts and labels must align");
  std::map<trace::Rank, RankSequence> byRank;
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    auto& rs = byRank[bursts[i].rank];
    rs.rank = bursts[i].rank;
    rs.labels.push_back(clustering.labels[i]);
    rs.begins.push_back(bursts[i].begin);
  }
  std::vector<RankSequence> out;
  out.reserve(byRank.size());
  for (auto& [rank, rs] : byRank) {
    // Bursts arrive sorted by (rank, begin) from extraction, but sort
    // defensively: structure detection is meaningless on unordered input.
    std::vector<std::size_t> order(rs.labels.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return rs.begins[a] < rs.begins[b]; });
    RankSequence sorted;
    sorted.rank = rank;
    sorted.labels.reserve(order.size());
    sorted.begins.reserve(order.size());
    for (std::size_t i : order) {
      sorted.labels.push_back(rs.labels[i]);
      sorted.begins.push_back(rs.begins[i]);
    }
    out.push_back(std::move(sorted));
  }
  return out;
}

PeriodResult detectGlobalPeriod(std::span<const RankSequence> sequences,
                                std::size_t maxPeriod, double threshold) {
  std::map<std::size_t, std::size_t> votes;
  std::map<std::size_t, PeriodResult> bestByPeriod;
  for (const auto& seq : sequences) {
    const PeriodResult r = detectPeriod(seq.labels, maxPeriod, threshold);
    if (r.period == 0) continue;
    ++votes[r.period];
    auto& best = bestByPeriod[r.period];
    if (r.matchFraction > best.matchFraction) best = r;
  }
  std::size_t modal = 0;
  std::size_t modalVotes = 0;
  for (const auto& [period, count] : votes) {
    if (count > modalVotes) {
      modal = period;
      modalVotes = count;
    }
  }
  return modal == 0 ? PeriodResult{} : bestByPeriod[modal];
}

double spmdScore(std::span<const Burst> bursts, const Clustering& clustering,
                 trace::Rank numRanks) {
  if (bursts.size() != clustering.labels.size())
    throw ConfigError("spmdScore: bursts and labels must align");
  if (numRanks == 0) throw ConfigError("spmdScore: numRanks must be > 0");
  std::map<int, std::set<trace::Rank>> ranksPerCluster;
  std::map<int, std::size_t> sizePerCluster;
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const int label = clustering.labels[i];
    if (label < 0) continue;
    ranksPerCluster[label].insert(bursts[i].rank);
    ++sizePerCluster[label];
  }
  double weighted = 0.0;
  std::size_t total = 0;
  for (const auto& [label, ranks] : ranksPerCluster) {
    const std::size_t size = sizePerCluster[label];
    weighted += static_cast<double>(size) * static_cast<double>(ranks.size()) /
                static_cast<double>(numRanks);
    total += size;
  }
  return total > 0 ? weighted / static_cast<double>(total) : 1.0;
}

PeriodResult detectPeriod(std::span<const int> sequence, std::size_t maxPeriod,
                          double threshold) {
  PeriodResult best;
  const std::size_t n = sequence.size();
  if (n < 4) return best;
  const std::size_t cap = std::min(maxPeriod, n / 2);
  for (std::size_t p = 1; p <= cap; ++p) {
    std::size_t match = 0;
    std::size_t considered = 0;
    for (std::size_t i = 0; i + p < n; ++i) {
      // Noise labels are wildcards: an unexplained burst should not break
      // an otherwise perfect period.
      if (sequence[i] == kNoiseLabel || sequence[i + p] == kNoiseLabel) continue;
      ++considered;
      match += (sequence[i] == sequence[i + p]) ? 1 : 0;
    }
    if (considered == 0) continue;
    const double frac = static_cast<double>(match) / static_cast<double>(considered);
    if (frac >= threshold) {
      best.period = p;
      best.matchFraction = frac;
      break;  // smallest qualifying period wins
    }
  }
  if (best.period == 0) return best;

  // Modal label per period position.
  best.signature.resize(best.period);
  for (std::size_t pos = 0; pos < best.period; ++pos) {
    std::map<int, std::size_t> hist;
    for (std::size_t i = pos; i < n; i += best.period) ++hist[sequence[i]];
    int mode = kNoiseLabel;
    std::size_t modeCount = 0;
    for (const auto& [label, count] : hist) {
      if (count > modeCount) {
        mode = label;
        modeCount = count;
      }
    }
    best.signature[pos] = mode;
  }
  return best;
}

}  // namespace unveil::cluster
