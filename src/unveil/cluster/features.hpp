#pragma once

/// \file features.hpp
/// Feature extraction and normalization for burst clustering.
///
/// The paper's clustering (following González et al.) describes each burst
/// by a small set of aggregate metrics — canonically completed instructions
/// and IPC, with duration as a common alternative — and clusters in that
/// space after normalization. This file provides the feature builders and a
/// reusable z-score normalizer.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "unveil/cluster/burst.hpp"

namespace unveil::cluster {

/// Per-burst scalar features available for clustering.
enum class FeatureId : std::uint8_t {
  LogDurationNs,   ///< log10 of the burst duration (ns).
  LogInstructions, ///< log10(1 + completed instructions).
  Ipc,             ///< Instructions per cycle.
  AvgMips,         ///< Average MIPS over the burst.
  L2PerKIns,       ///< L2 misses per kilo-instruction.
};

/// Human-readable feature name.
[[nodiscard]] std::string_view featureName(FeatureId id) noexcept;

/// Dense row-major feature matrix.
class FeatureMatrix {
 public:
  /// Creates a rows × dims matrix initialized to zero.
  FeatureMatrix(std::size_t rows, std::size_t dims);

  /// Mutable element access.
  [[nodiscard]] double& at(std::size_t row, std::size_t dim);
  /// Element read access.
  [[nodiscard]] double at(std::size_t row, std::size_t dim) const;
  /// One row as a span.
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// Number of rows (bursts).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  /// Number of feature dimensions.
  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }

 private:
  std::size_t rows_;
  std::size_t dims_;
  std::vector<double> data_;
};

/// Computes one feature value for one burst.
[[nodiscard]] double burstFeature(const Burst& burst, FeatureId id);

/// Builds the feature matrix for \p bursts over \p features.
/// Throws ConfigError when \p features is empty.
[[nodiscard]] FeatureMatrix buildFeatures(std::span<const Burst> bursts,
                                          std::span<const FeatureId> features);

/// The paper's default feature space: log completed instructions × IPC.
[[nodiscard]] std::vector<FeatureId> defaultFeatures();

/// Column-wise z-score normalizer (fit once, apply to any matrix with the
/// same dimensionality — e.g. cluster centroids back-projection).
class ZScoreNormalizer {
 public:
  /// Learns per-column mean and stddev from \p m. Columns with zero spread
  /// keep scale 1 so they pass through unchanged.
  static ZScoreNormalizer fit(const FeatureMatrix& m);

  /// Returns a normalized copy of \p m (must match fitted dims).
  [[nodiscard]] FeatureMatrix apply(const FeatureMatrix& m) const;

  /// Maps one normalized row back to original units.
  [[nodiscard]] std::vector<double> invert(std::span<const double> row) const;

  /// Per-column means.
  [[nodiscard]] const std::vector<double>& means() const noexcept { return mean_; }
  /// Per-column standard deviations (1 where degenerate).
  [[nodiscard]] const std::vector<double>& scales() const noexcept { return scale_; }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace unveil::cluster
