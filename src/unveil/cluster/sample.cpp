#include "unveil/cluster/sample.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "unveil/cluster/distance.hpp"
#include "unveil/cluster/eps_grid.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/rng.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::cluster {

void StratifiedSampleParams::validate() const {
  if (!(fraction > 0.0) || fraction > 1.0)
    throw ConfigError("sample fraction must be in (0, 1]");
  if (minSample < 1) throw ConfigError("sample minSample must be >= 1");
  if (maxSample < minSample)
    throw ConfigError("sample maxSample must be >= minSample");
  if (bucketsPerDim < 1) throw ConfigError("sample bucketsPerDim must be >= 1");
}

void SampledDbscanParams::validate() const {
  dbscan.validate();
  sample.validate();
}

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Per-dimension equal-width bucket edges over the column's observed
/// [min, max] range. Equal-width — not quantile — bucketing is deliberate:
/// quantile edges allocate buckets by mass, so a rare phase far from the
/// dense blobs shares its stratum with the dense tail and the floor-of-one
/// guarantee protects nothing. Equal-width edges give outlying regions of
/// feature space their own strata regardless of how few rows they hold.
std::vector<double> bucketEdges(const FeatureMatrix& m, std::size_t dim,
                                std::size_t buckets) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double v = m.at(i, dim);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<double> edges;
  if (!(hi > lo)) return edges;  // degenerate column: one bucket
  edges.reserve(buckets - 1);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (std::size_t b = 1; b < buckets; ++b)
    edges.push_back(lo + width * static_cast<double>(b));
  return edges;
}

}  // namespace

StratifiedSample stratifiedSample(const FeatureMatrix& m,
                                  const StratifiedSampleParams& params) {
  params.validate();
  telemetry::Span span("cluster.stratified_sample");
  const std::size_t n = m.rows();
  const std::size_t d = m.dims();
  StratifiedSample out;
  if (n == 0) return out;

  // Cap total strata: buckets^d <= kMaxStrata, at least 2 buckets per
  // dimension (1 when even 2^d would blow the cap).
  std::size_t buckets = params.bucketsPerDim;
  auto strataOf = [&](std::size_t b) {
    double total = 1.0;
    for (std::size_t k = 0; k < d; ++k) total *= static_cast<double>(b);
    return total;
  };
  while (buckets > 1 &&
         strataOf(buckets) > static_cast<double>(StratifiedSampleParams::kMaxStrata))
    --buckets;

  // Stratum of each row: mixed-radix digit per dimension from the quantile
  // edges (upper_bound gives the bucket).
  std::vector<std::vector<double>> edges(d);
  for (std::size_t k = 0; k < d; ++k)
    edges[k] = buckets > 1 ? bucketEdges(m, k, buckets) : std::vector<double>{};
  std::vector<std::uint32_t> stratumOf(n);
  support::globalPool().parallelFor(n, [&](std::size_t i) {
    std::uint32_t s = 0;
    for (std::size_t k = 0; k < d; ++k) {
      const auto& e = edges[k];
      const auto digit = static_cast<std::uint32_t>(
          std::upper_bound(e.begin(), e.end(), m.at(i, k)) - e.begin());
      s = s * static_cast<std::uint32_t>(buckets) + digit;
    }
    stratumOf[i] = s;
  });

  // Group rows by stratum (dense remap of occupied strata, first-seen
  // order — deterministic).
  std::vector<std::uint32_t> denseId(strataOf(buckets) > 0
                                         ? static_cast<std::size_t>(strataOf(buckets))
                                         : 1,
                                     std::numeric_limits<std::uint32_t>::max());
  std::vector<std::vector<std::size_t>> strataRows;
  for (std::size_t i = 0; i < n; ++i) {
    auto& id = denseId[stratumOf[i]];
    if (id == std::numeric_limits<std::uint32_t>::max()) {
      id = static_cast<std::uint32_t>(strataRows.size());
      strataRows.emplace_back();
    }
    strataRows[id].push_back(i);
  }
  out.strata = strataRows.size();

  // Proportional allocation with a floor of one per non-empty stratum, so
  // rare phases survive the sampling.
  const std::size_t target = std::min(
      n, std::clamp(static_cast<std::size_t>(std::llround(
                        params.fraction * static_cast<double>(n))),
                    params.minSample, params.maxSample));
  out.indices.reserve(target + out.strata);
  for (std::size_t s = 0; s < strataRows.size(); ++s) {
    auto& rows = strataRows[s];
    const auto quota = std::min(
        rows.size(),
        std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(
                   static_cast<double>(target) * static_cast<double>(rows.size()) /
                   static_cast<double>(n)))));
    if (quota >= rows.size()) {
      out.indices.insert(out.indices.end(), rows.begin(), rows.end());
      continue;
    }
    // Partial Fisher-Yates over the stratum's rows with a per-stratum
    // substream: selection is independent of every other stratum.
    support::Rng rng(params.seed, "stratified-sample");
    auto sub = rng.fork(std::to_string(s));
    for (std::size_t j = 0; j < quota; ++j) {
      const auto pick = static_cast<std::size_t>(sub.uniformInt(
          static_cast<std::int64_t>(j), static_cast<std::int64_t>(rows.size() - 1)));
      std::swap(rows[j], rows[pick]);
      out.indices.push_back(rows[j]);
    }
  }
  std::sort(out.indices.begin(), out.indices.end());
  span.attr("rows", n);
  span.attr("sampled", out.indices.size());
  span.attr("strata", out.strata);
  return out;
}

SampledClustering dbscanSampled(const FeatureMatrix& features,
                                const SampledDbscanParams& params) {
  params.validate();
  telemetry::Span span("cluster.dbscan_sampled");
  span.attr("points", features.rows());
  span.attr("eps", params.dbscan.eps);
  const std::size_t n = features.rows();
  const std::size_t d = features.dims();

  SampledClustering out;
  out.clustering.labels.assign(n, kNoiseLabel);
  out.clustering.core.assign(n, 0);
  if (n == 0) return out;

  // 1. Stratified selection.
  const StratifiedSample sample = stratifiedSample(features, params.sample);
  const std::size_t s = sample.indices.size();
  out.sampleSize = s;
  out.strata = sample.strata;

  // 2. Exact grid DBSCAN on the sample. A sample of rate f keeps ~f of any
  //    eps-neighborhood, so the density threshold scales with the realized
  //    rate (floor 2) to detect the same structure.
  FeatureMatrix sub(s, d);
  for (std::size_t i = 0; i < s; ++i)
    for (std::size_t k = 0; k < d; ++k) sub.at(i, k) = features.at(sample.indices[i], k);
  DbscanParams sampleParams = params.dbscan;
  if (params.scaleMinPts && s < n) {
    const double rate = static_cast<double>(s) / static_cast<double>(n);
    sampleParams.minPts = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::llround(
               static_cast<double>(params.dbscan.minPts) * rate)));
  }
  const Clustering sampleClustering = dbscan(sub, sampleParams);

  // Sampled rows carry their exact labels (and core flags) straight over.
  for (std::size_t i = 0; i < s; ++i) {
    out.clustering.labels[sample.indices[i]] = sampleClustering.labels[i];
    out.clustering.core[sample.indices[i]] = sampleClustering.core[i];
  }

  // 3. Classify the remaining rows in parallel: nearest sampled core within
  //    eps (ties: lowest sample row) — the same rule exact DBSCAN uses for
  //    border points, so sampled and exact agree wherever the sample saw
  //    the neighborhood. Pure per-point function + slot-per-index writes =
  //    bit-identical for any thread count.
  //
  //    The cores get their own grid with a finer cell than the eps-grid:
  //    the query wants one nearest core, and with eps far above the blob
  //    scale an eps-neighborhood holds a large fraction of the sample, so
  //    collecting it per point is quadratic in practice. nearest() prunes
  //    by the best hit so far, making the cost track local core density.
  //    The divisor shrinks with dimensionality to bound the (2r+1)^d ring
  //    enumeration for points with no core in range.
  const double eps2 = params.dbscan.eps * params.dbscan.eps;
  std::vector<std::size_t> coreRows;  // ascending, so grid ties = sample ties
  for (std::size_t j = 0; j < s; ++j)
    if (sampleClustering.core[j]) coreRows.push_back(j);
  FeatureMatrix cores(coreRows.size(), d);
  for (std::size_t c = 0; c < coreRows.size(); ++c)
    for (std::size_t k = 0; k < d; ++k) cores.at(c, k) = sub.at(coreRows[c], k);
  const double divisor = d <= 2 ? 4.0 : (d == 3 ? 2.0 : 1.0);
  const EpsGrid coreGrid(cores, params.dbscan.eps / divisor);
  const bool brute = !coreGrid.valid();
  if (brute && !coreRows.empty()) {
    telemetry::count("cluster.bruteforce_fallbacks", 1);
    span.attr("bruteforce", 1);
  }
  std::vector<std::uint8_t> sampled(n, 0);
  for (std::size_t idx : sample.indices) sampled[idx] = 1;
  support::globalPool().parallelForChunks(n, 1024, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (sampled[i] || coreRows.empty()) continue;
      const auto p = features.row(i);
      std::size_t bestCore = kNone;
      if (!brute) {
        const std::size_t hit = coreGrid.nearest(p, eps2);
        if (hit != EpsGrid::kNoRow) bestCore = coreRows[hit];
      } else {
        // Batch the distance math over the contiguous core table; the
        // selection stays scalar in ascending c, preserving the tie rule.
        double bestD2 = std::numeric_limits<double>::infinity();
        std::size_t bestC = kNone;
        constexpr std::size_t kChunk = 64;
        double d2buf[kChunk];
        const double* coreBase = cores.row(0).data();
        for (std::size_t c0 = 0; c0 < coreRows.size(); c0 += kChunk) {
          const std::size_t cnt = std::min(kChunk, coreRows.size() - c0);
          distance2BatchRows(p.data(), d, coreBase, d, c0, cnt, d2buf);
          for (std::size_t t = 0; t < cnt; ++t) {
            const double d2v = d2buf[t];
            if (d2v > eps2) continue;
            const std::size_t c = c0 + t;
            if (d2v < bestD2 || (d2v == bestD2 && c < bestC)) {
              bestD2 = d2v;
              bestC = c;
            }
          }
        }
        if (bestC != kNone) bestCore = coreRows[bestC];
      }
      if (bestCore != kNone)
        out.clustering.labels[i] = sampleClustering.labels[bestCore];
    }
  });
  out.classified = n - s;

  // 4. Re-rank cluster ids by full-data-set member count (descending, ties
  //    by lowest core row — the same tie-break exact dbscan() uses, so the
  //    fraction-1.0 degenerate case reproduces its ordering exactly) so the
  //    "cluster 0 is the largest" convention holds over all rows, not just
  //    the sample.
  const std::size_t numClusters = sampleClustering.numClusters;
  std::vector<std::size_t> sizes(numClusters, 0);
  std::vector<std::size_t> minRow(numClusters, kNone);
  for (std::size_t i = 0; i < n; ++i) {
    const int l = out.clustering.labels[i];
    if (l < 0) continue;
    const auto c = static_cast<std::size_t>(l);
    ++sizes[c];
    if (minRow[c] == kNone && out.clustering.core[i]) minRow[c] = i;
  }
  std::vector<std::size_t> order(numClusters);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (sizes[a] != sizes[b]) return sizes[a] > sizes[b];
    return minRow[a] < minRow[b];
  });
  std::vector<int> remap(numClusters);
  for (std::size_t newId = 0; newId < numClusters; ++newId)
    remap[order[newId]] = static_cast<int>(newId);
  for (auto& l : out.clustering.labels)
    if (l >= 0) l = remap[static_cast<std::size_t>(l)];
  out.clustering.numClusters = numClusters;

  span.attr("sample_size", out.sampleSize);
  span.attr("classified", out.classified);
  span.attr("strata", out.strata);
  span.attr("clusters", out.clustering.numClusters);
  telemetry::count("cluster.sample_size", out.sampleSize);
  telemetry::count("cluster.classified", out.classified);
  return out;
}

}  // namespace unveil::cluster
