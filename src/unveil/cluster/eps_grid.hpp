#pragma once

/// \file eps_grid.hpp
/// Uniform-grid spatial index over a FeatureMatrix.
///
/// Cells are cubes of a fixed edge length; each occupied cell maps to the
/// row indices it contains. Two query shapes are provided:
///
///  - neighbors(): all rows within a radius no larger than the cell edge
///    (the DBSCAN region query — inspect the 3^d adjacent cells);
///  - kthNearestDist(): exact k-nearest-neighbor distance via expanding
///    Chebyshev rings of cells (the estimateEps k-dist query).
///
/// Cell coordinates are hashed incrementally (no per-query allocation).
/// Hash collisions merge two cells' point lists; that is benign for both
/// queries because candidates are always distance-filtered, so collisions
/// can only add candidates, never hide them.
///
/// The grid degrades gracefully: when the requested cell size is degenerate
/// (non-positive or non-finite, e.g. all points identical) or the
/// dimensionality exceeds kMaxDims, valid() is false and callers must fall
/// back to brute force.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "unveil/cluster/features.hpp"

namespace unveil::cluster {

class EpsGrid {
 public:
  /// Dimensionality cap: cell enumeration is exponential in dims (3^d for
  /// neighbors), so high-dimensional inputs use brute force instead.
  static constexpr std::size_t kMaxDims = 8;

  /// Indexes \p m with cubic cells of edge \p cellSize. \p m must outlive
  /// the grid. Check valid() before querying.
  EpsGrid(const FeatureMatrix& m, double cellSize);

  /// False when the grid cannot index this input (degenerate cell size or
  /// too many dimensions); queries must not be called then.
  [[nodiscard]] bool valid() const noexcept { return valid_; }

  /// Rows within sqrt(radius2) (Euclidean) of row \p i, including i itself.
  /// Requires radius2 <= cellSize^2 (only the 3^d adjacent cells are
  /// inspected). Thread-safe for concurrent callers with distinct \p out.
  void neighbors(std::size_t i, double radius2, std::vector<std::size_t>& out) const;

  /// Exact Euclidean distance from row \p i to its (k+1)-th nearest *other*
  /// row (k is 0-based: k = 0 gives the nearest neighbor). Requires the
  /// matrix to hold at least k+2 rows. Thread-safe.
  [[nodiscard]] double kthNearestDist(std::size_t i, std::size_t k) const;

  /// Heuristic cell edge for k-NN queries: sized so a cell holds ~\p k
  /// points under uniform density over the bounding box of the
  /// non-degenerate dimensions. Returns 0 when every dimension is
  /// degenerate (all points identical) — callers should then skip the grid.
  [[nodiscard]] static double knnCellSize(const FeatureMatrix& m, std::size_t k);

 private:
  [[nodiscard]] static std::uint64_t hashCombine(std::uint64_t h, std::int64_t v) noexcept {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }

  /// Hash of the cell containing row \p i (computed from its coordinates).
  [[nodiscard]] std::uint64_t cellHashOfRow(std::size_t i) const;

  const FeatureMatrix& m_;
  double cell_;
  double inv_;
  bool valid_;
  /// Largest per-dimension cell-index span; bounds ring expansion.
  std::int64_t maxRing_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> cells_;
};

}  // namespace unveil::cluster
