#pragma once

/// \file eps_grid.hpp
/// Uniform-grid spatial index over a FeatureMatrix.
///
/// Cells are cubes of a fixed edge length; each occupied cell maps to the
/// row indices it contains (CSR layout: one flat index array plus offsets).
/// Cell coordinates are stored exactly, so hash collisions are resolved by
/// coordinate comparison — a lookup never merges two distinct cells. Three
/// query shapes are provided:
///
///  - neighbors(): all rows within an arbitrary radius of a row or of a free
///    point — inspects the (2r+1)^d cells that can intersect the ball (the
///    DBSCAN region query);
///  - nearest(): the single closest row to a free point within a radius, via
///    expanding Chebyshev rings with per-cell box-distance pruning (the
///    sampled-mode classification query — cost tracks local density, not the
///    size of the whole eps-neighborhood);
///  - kthNearestDist(): exact k-nearest-neighbor distance via expanding
///    Chebyshev rings of cells (the estimateEps k-dist query);
///  - cell-level access (cellCount/cellMembers/cellOfRow/forEachNeighborCell):
///    the primitives the cell-based DBSCAN builds on. With an edge no larger
///    than eps/sqrt(d), any two rows sharing a cell are within eps of each
///    other, which lets dense cells be classified wholesale.
///
/// The grid degrades gracefully: when the requested cell size is degenerate
/// (non-positive or non-finite, e.g. eps underflow), the dimensionality
/// exceeds kMaxDims, or a coordinate/cell ratio would overflow the cell
/// index range, valid() is false and callers must fall back to brute force.

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "unveil/cluster/features.hpp"

namespace unveil::cluster {

class EpsGrid {
 public:
  /// Dimensionality cap: cell enumeration is exponential in dims (3^d or
  /// more for neighbors), so high-dimensional inputs use brute force.
  static constexpr std::size_t kMaxDims = 8;

  /// Returned by nearest() when no row lies within the query radius.
  static constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

  /// Indexes \p m with cubic cells of edge \p cellSize. \p m must outlive
  /// the grid. Check valid() before querying.
  EpsGrid(const FeatureMatrix& m, double cellSize);

  /// False when the grid cannot index this input (degenerate cell size, too
  /// many dimensions, or cell coordinates out of the indexable range);
  /// queries must not be called then.
  [[nodiscard]] bool valid() const noexcept { return valid_; }

  /// Cell edge length the grid was built with.
  [[nodiscard]] double cellSize() const noexcept { return cell_; }

  /// Rows within sqrt(radius2) (Euclidean) of row \p i, including i itself.
  /// Any radius is supported: the query inspects every cell within
  /// ceil(radius/cellSize) cells of i's cell. Thread-safe for concurrent
  /// callers with distinct \p out.
  void neighbors(std::size_t i, double radius2, std::vector<std::size_t>& out) const;

  /// Rows within sqrt(radius2) of the free point \p p (which need not be a
  /// row of the indexed matrix — the sampled-classification query).
  /// \p p must have the matrix dimensionality. Thread-safe.
  void neighbors(std::span<const double> p, double radius2,
                 std::vector<std::size_t>& out) const;

  /// Row nearest to the free point \p p among those within sqrt(radius2),
  /// ties broken toward the lowest row index; kNoRow when no row is in
  /// range. Searches expanding Chebyshev rings of cells, pruning each cell
  /// by the exact point-to-box distance against the best hit so far, so the
  /// cost scales with the local density around \p p rather than with the
  /// number of rows inside the radius. Thread-safe.
  [[nodiscard]] std::size_t nearest(std::span<const double> p, double radius2) const;

  /// Exact Euclidean distance from row \p i to its (k+1)-th nearest *other*
  /// row (k is 0-based: k = 0 gives the nearest neighbor). Requires the
  /// matrix to hold at least k+2 rows. Thread-safe.
  [[nodiscard]] double kthNearestDist(std::size_t i, std::size_t k) const;

  /// Heuristic cell edge for k-NN queries: sized so a cell holds ~\p k
  /// points under uniform density over the bounding box of the
  /// non-degenerate dimensions. Returns 0 when every dimension is
  /// degenerate (all points identical) — callers should then skip the grid.
  [[nodiscard]] static double knnCellSize(const FeatureMatrix& m, std::size_t k);

  /// Number of occupied cells.
  [[nodiscard]] std::size_t cellCount() const noexcept { return cellCoords_.size(); }

  /// Rows contained in occupied cell \p c (insertion == row order).
  [[nodiscard]] std::span<const std::size_t> cellMembers(std::size_t c) const;

  /// Occupied-cell index of row \p i.
  [[nodiscard]] std::size_t cellOfRow(std::size_t i) const { return cellOfRow_[i]; }

  /// Smallest squared Euclidean distance between any point of cell \p a's
  /// box and any point of cell \p b's box (0 for adjacent/overlapping
  /// boxes). Used to prune cell pairs that cannot contain an eps pair.
  [[nodiscard]] double cellBoxDist2(std::size_t a, std::size_t b) const;

  /// Invokes \p fn(cellIndex) for every occupied cell within Chebyshev
  /// distance \p reach of cell \p c, excluding \p c itself.
  template <typename Fn>
  void forEachNeighborCell(std::size_t c, std::int64_t reach, Fn&& fn) const {
    const auto& base = cellCoords_[c];
    const std::size_t d = m_.dims();
    std::array<std::int64_t, kMaxDims> coord{};
    // Mixed-radix counter over offsets in [-reach, reach]^d.
    std::array<std::int64_t, kMaxDims> offs{};
    offs.fill(-reach);
    while (true) {
      bool self = true;
      for (std::size_t k = 0; k < d; ++k) {
        coord[k] = base[k] + offs[k];
        self = self && offs[k] == 0;
      }
      if (!self) {
        const std::size_t cell = findCell(coord, d);
        if (cell != kNoCell) fn(cell);
      }
      std::size_t k = 0;
      while (k < d && offs[k] == reach) {
        offs[k] = -reach;
        ++k;
      }
      if (k == d) break;
      ++offs[k];
    }
  }

 private:
  static constexpr std::size_t kNoCell = static_cast<std::size_t>(-1);

  [[nodiscard]] static std::uint64_t hashCombine(std::uint64_t h, std::int64_t v) noexcept {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }

  [[nodiscard]] static std::uint64_t hashCoord(
      const std::array<std::int64_t, kMaxDims>& coord, std::size_t d) noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t k = 0; k < d; ++k) h = hashCombine(h, coord[k]);
    return h;
  }

  /// Occupied-cell index for exact coordinates \p coord, or kNoCell. Walks
  /// the hash bucket's collision chain comparing coordinates, so two cells
  /// sharing a hash are never conflated.
  [[nodiscard]] std::size_t findCell(const std::array<std::int64_t, kMaxDims>& coord,
                                     std::size_t d) const;

  /// Generic radius query around \p p whose own cell has coordinates
  /// \p base; \p skipRow is excluded (pass kNoCell to keep every row).
  void neighborsImpl(std::span<const double> p,
                     const std::array<std::int64_t, kMaxDims>& base,
                     double radius2, std::vector<std::size_t>& out) const;

  const FeatureMatrix& m_;
  double cell_;
  double inv_;
  bool valid_;
  /// Largest per-dimension cell-index span; bounds ring expansion.
  std::int64_t maxRing_ = 0;
  /// Exact integer coordinates of each occupied cell.
  std::vector<std::array<std::int64_t, kMaxDims>> cellCoords_;
  /// CSR member storage: rows of cell c are
  /// memberRows_[memberOffsets_[c] .. memberOffsets_[c+1]).
  std::vector<std::size_t> memberOffsets_;
  std::vector<std::size_t> memberRows_;
  /// Occupied-cell index per row.
  std::vector<std::size_t> cellOfRow_;
  /// Hash → head of a collision chain of occupied-cell indices.
  std::unordered_map<std::uint64_t, std::size_t> buckets_;
  /// Next cell in the same hash bucket (kNoCell terminates the chain).
  std::vector<std::size_t> nextInBucket_;
};

}  // namespace unveil::cluster
