#include "unveil/cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "unveil/support/error.hpp"

namespace unveil::cluster {

void KmeansParams::validate() const {
  if (k == 0) throw ConfigError("kmeans k must be >= 1");
  if (maxIterations == 0) throw ConfigError("kmeans maxIterations must be >= 1");
}

namespace {

double dist2(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

KmeansResult kmeans(const FeatureMatrix& features, const KmeansParams& params) {
  params.validate();
  const std::size_t n = features.rows();
  const std::size_t d = features.dims();
  if (n < params.k) throw AnalysisError("kmeans: fewer points than clusters");

  support::Rng rng(params.seed, "kmeans");

  // k-means++ seeding.
  std::vector<std::vector<double>> centers;
  centers.reserve(params.k);
  {
    const auto first = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    centers.emplace_back(features.row(first).begin(), features.row(first).end());
    std::vector<double> minD2(n, std::numeric_limits<double>::infinity());
    while (centers.size() < params.k) {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        minD2[i] = std::min(minD2[i], dist2(features.row(i), centers.back()));
        total += minD2[i];
      }
      std::size_t chosen = 0;
      if (total > 0.0) {
        const double target = rng.uniform(0.0, total);
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          acc += minD2[i];
          if (acc >= target) {
            chosen = i;
            break;
          }
        }
      } else {
        chosen = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
      }
      centers.emplace_back(features.row(chosen).begin(), features.row(chosen).end());
    }
  }

  std::vector<int> assign(n, 0);
  KmeansResult result;
  bool converged = false;
  std::size_t iter = 0;
  for (; iter < params.maxIterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double bestD = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centers.size(); ++c) {
        const double dd = dist2(features.row(i), centers[c]);
        if (dd < bestD) {
          bestD = dd;
          best = static_cast<int>(c);
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    // Recompute centroids.
    std::vector<std::vector<double>> sums(params.k, std::vector<double>(d, 0.0));
    std::vector<std::size_t> counts(params.k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = features.row(i);
      auto& s = sums[static_cast<std::size_t>(assign[i])];
      for (std::size_t k = 0; k < d; ++k) s[k] += row[k];
      ++counts[static_cast<std::size_t>(assign[i])];
    }
    for (std::size_t c = 0; c < params.k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its old center
      for (std::size_t k = 0; k < d; ++k)
        centers[c][k] = sums[c][k] / static_cast<double>(counts[c]);
    }
    if (!changed) {
      converged = true;
      break;
    }
  }

  // Order clusters by size (largest = 0) for parity with dbscan().
  std::vector<std::size_t> sizes(params.k, 0);
  for (int a : assign) ++sizes[static_cast<std::size_t>(a)];
  std::vector<int> order(params.k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (sizes[static_cast<std::size_t>(a)] != sizes[static_cast<std::size_t>(b)])
      return sizes[static_cast<std::size_t>(a)] > sizes[static_cast<std::size_t>(b)];
    return a < b;
  });
  std::vector<int> remap(params.k);
  for (std::size_t newId = 0; newId < params.k; ++newId)
    remap[static_cast<std::size_t>(order[newId])] = static_cast<int>(newId);

  result.clustering.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    result.clustering.labels[i] = remap[static_cast<std::size_t>(assign[i])];
  result.clustering.numClusters = params.k;
  result.centroids.resize(params.k);
  for (std::size_t c = 0; c < params.k; ++c)
    result.centroids[static_cast<std::size_t>(remap[c])] = centers[c];
  result.iterationsRun = iter + (converged ? 1 : 0);
  result.converged = converged;
  return result;
}

}  // namespace unveil::cluster
