/// \file distance_avx2.cpp
/// Explicit AVX2 variants of the batch distance kernels. The only cluster TU
/// compiled with -mavx2; callable only when support::simdLevel() is Avx2.
/// No fmadd is used (and -mavx2 does not enable FMA contraction), so each
/// lane rounds exactly like the scalar distance2 loop — bit-identical.

#include "unveil/cluster/distance.hpp"

#if defined(UNVEIL_HAVE_AVX2)

#include <immintrin.h>

namespace unveil::cluster {

namespace {

/// Four candidates in the lanes of one __m256d; dimension k advances
/// together, so each lane's accumulation order equals the scalar loop's.
inline __m256d accumulate4(const double* q, std::size_t d, const double* r0,
                           const double* r1, const double* r2,
                           const double* r3) noexcept {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t k = 0; k < d; ++k) {
    const __m256d qk = _mm256_set1_pd(q[k]);
    const __m256d rk = _mm256_set_pd(r3[k], r2[k], r1[k], r0[k]);
    const __m256d diff = _mm256_sub_pd(qk, rk);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  return acc;
}

}  // namespace

void distance2BatchAvx2(const double* q, std::size_t d, const double* base,
                        std::size_t stride, const std::size_t* idx,
                        std::size_t count, double* out) {
  std::size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    const __m256d acc = accumulate4(q, d, base + idx[c] * stride,
                                    base + idx[c + 1] * stride,
                                    base + idx[c + 2] * stride,
                                    base + idx[c + 3] * stride);
    _mm256_storeu_pd(out + c, acc);
  }
  for (; c < count; ++c)
    out[c] = distance2({q, d}, {base + idx[c] * stride, d});
}

void distance2BatchRowsAvx2(const double* q, std::size_t d, const double* base,
                            std::size_t stride, std::size_t firstRow,
                            std::size_t count, double* out) {
  std::size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    const double* r0 = base + (firstRow + c) * stride;
    const __m256d acc =
        accumulate4(q, d, r0, r0 + stride, r0 + 2 * stride, r0 + 3 * stride);
    _mm256_storeu_pd(out + c, acc);
  }
  for (; c < count; ++c)
    out[c] = distance2({q, d}, {base + (firstRow + c) * stride, d});
}

}  // namespace unveil::cluster

#else  // !UNVEIL_HAVE_AVX2: TU intentionally empty (CMake should not add it).

namespace unveil::cluster {}

#endif
