#pragma once

/// \file distance.hpp
/// The z-scored feature distance kernel shared by EpsGrid, DBSCAN (grid and
/// brute backends) and the sampled-clustering classifier. Historically each
/// of those carried its own identical dist2 copy; this header is the single
/// definition, plus batch forms that evaluate one query against many
/// candidate rows with vectorized lanes.
///
/// Determinism contract (DESIGN.md §16): every form accumulates in
/// ascending dimension order per candidate, exactly like the scalar loop,
/// and no build flag enables FMA contraction — so scalar, portable-batch
/// and explicit-AVX2 paths return bit-identical doubles.

#include <cstddef>
#include <span>

namespace unveil::cluster {

/// Squared Euclidean distance between a query and one candidate row,
/// accumulated in ascending dimension order — the canonical order every
/// caller historically used.
[[nodiscard]] inline double distance2(std::span<const double> q,
                                      std::span<const double> r) noexcept {
  double d2 = 0.0;
  for (std::size_t k = 0; k < q.size(); ++k) {
    const double diff = q[k] - r[k];
    d2 += diff * diff;
  }
  return d2;
}

/// out[c] = distance2(q, row idx[c]) over a row-major matrix (\p base with
/// \p stride doubles per row), for c in [0, count). Lanes are candidates;
/// each lane accumulates in ascending dimension order, so every out[c] is
/// bit-identical to the scalar distance2 call.
void distance2Batch(const double* q, std::size_t d, const double* base,
                    std::size_t stride, const std::size_t* idx,
                    std::size_t count, double* out);

/// out[c] = distance2(q, row firstRow + c): the contiguous-row form of
/// distance2Batch (full-matrix scans, core-table classification).
void distance2BatchRows(const double* q, std::size_t d, const double* base,
                        std::size_t stride, std::size_t firstRow,
                        std::size_t count, double* out);

}  // namespace unveil::cluster
