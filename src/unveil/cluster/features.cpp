#include "unveil/cluster/features.hpp"

#include <cmath>

#include "unveil/support/error.hpp"
#include "unveil/support/stats.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::cluster {

std::string_view featureName(FeatureId id) noexcept {
  switch (id) {
    case FeatureId::LogDurationNs: return "log10(duration ns)";
    case FeatureId::LogInstructions: return "log10(instructions)";
    case FeatureId::Ipc: return "IPC";
    case FeatureId::AvgMips: return "avg MIPS";
    case FeatureId::L2PerKIns: return "L2 misses/kIns";
  }
  return "?";
}

FeatureMatrix::FeatureMatrix(std::size_t rows, std::size_t dims)
    : rows_(rows), dims_(dims), data_(rows * dims, 0.0) {
  if (dims == 0) throw ConfigError("feature matrix requires dims > 0");
}

double& FeatureMatrix::at(std::size_t row, std::size_t dim) {
  UNVEIL_ASSERT(row < rows_ && dim < dims_, "feature matrix index out of range");
  return data_[row * dims_ + dim];
}

double FeatureMatrix::at(std::size_t row, std::size_t dim) const {
  UNVEIL_ASSERT(row < rows_ && dim < dims_, "feature matrix index out of range");
  return data_[row * dims_ + dim];
}

std::span<const double> FeatureMatrix::row(std::size_t r) const {
  UNVEIL_ASSERT(r < rows_, "feature matrix row out of range");
  return {data_.data() + r * dims_, dims_};
}

double burstFeature(const Burst& burst, FeatureId id) {
  using counters::CounterId;
  using counters::DerivedMetrics;
  const auto delta = burst.delta();
  switch (id) {
    case FeatureId::LogDurationNs:
      return std::log10(static_cast<double>(std::max<trace::TimeNs>(burst.durationNs(), 1)));
    case FeatureId::LogInstructions:
      return std::log10(1.0 + static_cast<double>(delta[CounterId::TotIns]));
    case FeatureId::Ipc:
      return DerivedMetrics::ipc(delta);
    case FeatureId::AvgMips:
      return DerivedMetrics::mips(delta, burst.durationNs());
    case FeatureId::L2PerKIns:
      return DerivedMetrics::l2MissesPerKiloIns(delta);
  }
  return 0.0;
}

FeatureMatrix buildFeatures(std::span<const Burst> bursts,
                            std::span<const FeatureId> features) {
  if (features.empty()) throw ConfigError("buildFeatures requires >= 1 feature");
  FeatureMatrix m(bursts.size(), features.size());
  // Rows are independent and each job writes only its own rows, so the
  // matrix is bit-identical for any pool size.
  support::globalPool().parallelForChunks(
      bursts.size(), 512, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          for (std::size_t d = 0; d < features.size(); ++d)
            m.at(i, d) = burstFeature(bursts[i], features[d]);
      });
  return m;
}

std::vector<FeatureId> defaultFeatures() {
  return {FeatureId::LogInstructions, FeatureId::Ipc};
}

ZScoreNormalizer ZScoreNormalizer::fit(const FeatureMatrix& m) {
  ZScoreNormalizer n;
  n.mean_.assign(m.dims(), 0.0);
  n.scale_.assign(m.dims(), 1.0);
  for (std::size_t d = 0; d < m.dims(); ++d) {
    support::RunningStats rs;
    for (std::size_t r = 0; r < m.rows(); ++r) rs.add(m.at(r, d));
    n.mean_[d] = rs.mean();
    const double sd = rs.stddev();
    n.scale_[d] = sd > 0.0 ? sd : 1.0;
  }
  return n;
}

FeatureMatrix ZScoreNormalizer::apply(const FeatureMatrix& m) const {
  if (m.dims() != mean_.size())
    throw ConfigError("normalizer dims mismatch");
  FeatureMatrix out(m.rows(), m.dims());
  support::globalPool().parallelForChunks(
      m.rows(), 1024, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r)
          for (std::size_t d = 0; d < m.dims(); ++d)
            out.at(r, d) = (m.at(r, d) - mean_[d]) / scale_[d];
      });
  return out;
}

std::vector<double> ZScoreNormalizer::invert(std::span<const double> row) const {
  if (row.size() != mean_.size()) throw ConfigError("normalizer dims mismatch");
  std::vector<double> out(row.size());
  for (std::size_t d = 0; d < row.size(); ++d)
    out[d] = row[d] * scale_[d] + mean_[d];
  return out;
}

}  // namespace unveil::cluster
