#pragma once

/// \file dbscan.hpp
/// DBSCAN density-based clustering — the paper's structure-detection
/// algorithm (per González et al., "Automatic detection of parallel
/// applications computation phases", which the methodology builds on).
///
/// DBSCAN needs no cluster count, finds arbitrarily shaped clusters and
/// leaves low-density bursts unclustered as noise — all three properties
/// matter for computation bursts, whose feature-space footprint is dense
/// blobs (phases) plus stragglers (perturbed instances).
///
/// The implementation is cell-based (Gunawan-style): points are binned into
/// a uniform grid with edge eps/sqrt(d), so any two points sharing a cell
/// are mutually within eps. A cell holding >= minPts points makes all its
/// points core with zero distance computations — in the dense-blob regime
/// (the paper's workload) core detection is O(n) rather than O(n · k).
/// Clusters are the connected components of core points in the eps graph,
/// computed by union-find over core cells; border points join the cluster
/// of their nearest core neighbor (ties broken by lowest core index).
/// Every step is order-independent, so labels are deterministic and
/// identical for any thread count. The all-pairs path survives only as a
/// last resort when the grid cannot index the input (tracked by the
/// cluster.bruteforce_fallbacks telemetry counter).

#include <cstdint>
#include <vector>

#include "unveil/cluster/features.hpp"

namespace unveil::cluster {

/// Label given to noise points.
inline constexpr int kNoiseLabel = -1;

/// DBSCAN parameters.
struct DbscanParams {
  /// Neighborhood radius in normalized feature space.
  double eps = 0.08;
  /// Minimum neighborhood size (including the point itself) to be core.
  std::size_t minPts = 10;

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// Clustering outcome: one label per input row.
struct Clustering {
  /// Per-row labels: kNoiseLabel or 0-based cluster id. Cluster ids are
  /// ordered by descending member count (cluster 0 is the largest).
  std::vector<int> labels;
  /// Number of clusters found.
  std::size_t numClusters = 0;
  /// Per-row core flags (1 = core point), filled by dbscan(). Empty for
  /// clusterings produced by other means (kmeans, structural refinement).
  /// Sampled-mode classification assigns unseen points to the cluster of
  /// their nearest sampled *core*, so dbscan exposes this.
  std::vector<std::uint8_t> core;

  /// Member count of cluster \p c.
  [[nodiscard]] std::size_t clusterSize(int c) const noexcept;
  /// Number of noise points (single pass over the labels).
  [[nodiscard]] std::size_t noiseCount() const noexcept;
  /// Row indices of cluster \p c, in input order.
  [[nodiscard]] std::vector<std::size_t> members(int c) const;
  /// Member lists of every cluster at once: buckets()[c] == members(c) for
  /// all c, built in one O(n) pass instead of numClusters scans.
  [[nodiscard]] std::vector<std::vector<std::size_t>> buckets() const;
};

/// Grid cell edge the cell-based DBSCAN uses for a given eps and
/// dimensionality: eps/sqrt(d) (shrunk slightly so the cell diagonal
/// provably fits inside eps) for d <= 4, eps otherwise. Exposed so the
/// sampled-clustering classifier builds a compatible index.
[[nodiscard]] double dbscanCellEdge(double eps, std::size_t dims);

/// Runs DBSCAN over the (already normalized) feature matrix.
[[nodiscard]] Clustering dbscan(const FeatureMatrix& features, const DbscanParams& params);

/// Heuristic eps estimation: the \p quantile of the distribution of
/// k-nearest-neighbor distances (k = minPts), the standard knee heuristic.
/// Useful when calibrating eps for an unknown application. The k-NN query
/// runs on a uniform-grid index (see eps_grid.hpp) across worker threads;
/// both are exact, so the estimate is identical to the brute-force scan.
[[nodiscard]] double estimateEps(const FeatureMatrix& features, std::size_t minPts,
                                 double quantile = 0.90);

}  // namespace unveil::cluster
