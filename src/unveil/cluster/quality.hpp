#pragma once

/// \file quality.hpp
/// External and internal clustering quality metrics used by the structure-
/// detection experiments (T3, A2): adjusted Rand index and purity against
/// ground-truth phase labels, silhouette as the label-free criterion, and a
/// confusion matrix for reports.

#include <cstdint>
#include <span>
#include <vector>

#include "unveil/cluster/dbscan.hpp"
#include "unveil/cluster/features.hpp"

namespace unveil::cluster {

/// Adjusted Rand index between predicted labels and truth labels (same
/// length). Noise points (label < 0) count as their own singleton-style
/// class via a dedicated bucket, matching common DBSCAN evaluation practice.
/// Returns a value in [-1, 1]; 1 means identical partitions.
[[nodiscard]] double adjustedRandIndex(std::span<const int> predicted,
                                       std::span<const std::uint32_t> truth);

/// Purity: fraction of points whose cluster's majority truth label matches
/// their own. Noise points count as errors (they were not explained).
[[nodiscard]] double purity(std::span<const int> predicted,
                            std::span<const std::uint32_t> truth);

/// Mean silhouette coefficient over clustered (non-noise) points, computed
/// on at most \p maxPoints points (uniform stride subsample) to bound cost.
/// Returns 0 when fewer than two clusters exist.
[[nodiscard]] double silhouette(const FeatureMatrix& features,
                                std::span<const int> labels,
                                std::size_t maxPoints = 2000);

/// cluster × truth contingency counts; row index = cluster id (last row =
/// noise when present), column index = dense truth-label index.
struct ConfusionMatrix {
  std::vector<std::uint32_t> truthLabels;  ///< Column meaning.
  std::vector<std::vector<std::size_t>> counts;  ///< [row][col].
  bool hasNoiseRow = false;
};

/// Builds the contingency table between \p predicted and \p truth.
[[nodiscard]] ConfusionMatrix confusionMatrix(std::span<const int> predicted,
                                              std::span<const std::uint32_t> truth);

}  // namespace unveil::cluster
