#pragma once

/// \file structure.hpp
/// Application-structure recovery from clustered bursts.
///
/// Once bursts carry cluster labels, each rank's chronological label
/// sequence reveals the application's iterative skeleton: a repeating
/// pattern whose length is the number of computation phases per iteration.
/// detectPeriod finds that length by self-similarity (the discrete analogue
/// of the spectral analysis the same group published in their follow-up
/// ICPADS 2011 paper), and iterationSignature extracts the canonical phase
/// order within one iteration.

#include <cstddef>
#include <span>
#include <vector>

#include "unveil/cluster/burst.hpp"
#include "unveil/cluster/dbscan.hpp"

namespace unveil::cluster {

/// One rank's chronological cluster-label sequence.
struct RankSequence {
  trace::Rank rank = 0;
  std::vector<int> labels;            ///< Cluster label per burst, in time order.
  std::vector<trace::TimeNs> begins;  ///< Matching burst start times.
};

/// Splits clustered bursts into per-rank chronological sequences.
/// \p bursts and \p clustering.labels must be index-aligned.
[[nodiscard]] std::vector<RankSequence> clusterSequences(std::span<const Burst> bursts,
                                                         const Clustering& clustering);

/// Outcome of period detection on one label sequence.
struct PeriodResult {
  std::size_t period = 0;       ///< Detected period; 0 when none found.
  double matchFraction = 0.0;   ///< Self-similarity at that period, in [0,1].
  std::vector<int> signature;   ///< Modal label at each position of one period.
};

/// Finds the smallest period p <= maxPeriod with self-match fraction >=
/// \p threshold (noise labels are wildcards); signature is the per-position
/// modal label. Returns period 0 when no period qualifies.
[[nodiscard]] PeriodResult detectPeriod(std::span<const int> sequence,
                                        std::size_t maxPeriod = 64,
                                        double threshold = 0.9);

/// Runs detectPeriod on every rank's sequence and returns the modal nonzero
/// period's result (the rank whose match fraction is highest among those
/// agreeing with the modal period). Returns a zero PeriodResult when no rank
/// exhibits a period.
[[nodiscard]] PeriodResult detectGlobalPeriod(
    std::span<const RankSequence> sequences, std::size_t maxPeriod = 64,
    double threshold = 0.9);

/// SPMD-ness of a clustering (after González et al.'s "SPMDiness" concept):
/// how uniformly the detected phases are executed by all ranks. Per cluster,
/// the coverage is (#distinct ranks with a member)/numRanks; the score is
/// the member-count-weighted mean coverage over clusters, in (0, 1]. A pure
/// SPMD application scores 1; rank-specialized structure (master/worker)
/// scores low. Noise bursts are excluded. Returns 1.0 when nothing is
/// clustered.
[[nodiscard]] double spmdScore(std::span<const Burst> bursts,
                               const Clustering& clustering, trace::Rank numRanks);

}  // namespace unveil::cluster
