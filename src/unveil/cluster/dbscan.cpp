#include "unveil/cluster/dbscan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <optional>
#include <vector>

#include "unveil/cluster/distance.hpp"
#include "unveil/cluster/eps_grid.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/stats.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::cluster {

void DbscanParams::validate() const {
  if (eps <= 0.0) throw ConfigError("dbscan eps must be positive");
  if (minPts < 1) throw ConfigError("dbscan minPts must be >= 1");
}

std::size_t Clustering::clusterSize(int c) const noexcept {
  std::size_t n = 0;
  for (int l : labels) n += (l == c) ? 1 : 0;
  return n;
}

std::size_t Clustering::noiseCount() const noexcept {
  return static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), kNoiseLabel));
}

std::vector<std::size_t> Clustering::members(int c) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] == c) out.push_back(i);
  return out;
}

std::vector<std::vector<std::size_t>> Clustering::buckets() const {
  std::vector<std::size_t> counts(numClusters, 0);
  for (int l : labels) {
    if (l < 0) continue;
    UNVEIL_ASSERT(static_cast<std::size_t>(l) < numClusters,
                  "cluster label out of range");
    ++counts[static_cast<std::size_t>(l)];
  }
  std::vector<std::vector<std::size_t>> out(numClusters);
  for (std::size_t c = 0; c < numClusters; ++c) out[c].reserve(counts[c]);
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] >= 0) out[static_cast<std::size_t>(labels[i])].push_back(i);
  return out;
}

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// Core-count and connectivity loops below early-exit mid-scan, so they use
// the shared scalar distance2 from distance.hpp rather than a batch form.

/// Plain sequential union-find over cell indices. Unions are collected in
/// parallel (slot-per-cell edge lists) and applied here in one pass, so the
/// result is the true connected components — deterministic regardless of
/// thread count or edge order.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a < b) parent_[b] = a;
    else parent_[a] = b;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// Intermediate result both neighbor backends produce: core flags, a
/// component id per core point, the smallest core row of each component,
/// and a per-point (component, squared distance) assignment for borders.
struct RawClusters {
  std::vector<std::uint8_t> core;         ///< 1 = core point.
  std::vector<std::size_t> compOf;        ///< Component per point; kNone = noise.
  std::vector<std::size_t> minCoreRow;    ///< Per component.
};

/// Final label pass shared by the grid and brute backends: sizes per
/// component (cores + borders), ordering by (size desc, min core row asc) —
/// which reproduces the classic "discovery order" tie-break, since a
/// cluster is historically discovered at its lowest-index core — and the
/// dense relabel.
void finalize(const RawClusters& raw, Clustering& out) {
  const std::size_t numComps = raw.minCoreRow.size();
  std::vector<std::size_t> sizes(numComps, 0);
  for (std::size_t c : raw.compOf)
    if (c != kNone) ++sizes[c];
  std::vector<std::size_t> order(numComps);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (sizes[a] != sizes[b]) return sizes[a] > sizes[b];
    return raw.minCoreRow[a] < raw.minCoreRow[b];
  });
  std::vector<int> remap(numComps);
  for (std::size_t newId = 0; newId < numComps; ++newId)
    remap[order[newId]] = static_cast<int>(newId);

  const std::size_t n = raw.compOf.size();
  for (std::size_t i = 0; i < n; ++i)
    out.labels[i] = raw.compOf[i] != kNone ? remap[raw.compOf[i]] : kNoiseLabel;
  out.core = raw.core;
  out.numClusters = numComps;
}

/// Grid backend: cell-based DBSCAN. Cells have edge <= eps/sqrt(d) when the
/// dimensionality allows (any two same-cell points are then mutually within
/// eps, so a cell with >= minPts points is all-core for free); for d >= 5
/// the cell edge falls back to eps to keep the ring enumeration at 3^d.
RawClusters gridDbscan(const FeatureMatrix& features, const DbscanParams& params,
                       const EpsGrid& grid, telemetry::Span& span) {
  const std::size_t n = features.rows();
  const double eps2 = params.eps * params.eps;
  const double cell = grid.cellSize();
  // Cells whose diagonal provably fits inside eps allow the dense-cell
  // shortcut; the 0.999 shrink applied by the caller guarantees the margin.
  const bool sameCellWithinEps =
      cell * cell * static_cast<double>(features.dims()) <= eps2;
  // ceil(eps / cell), tolerant of the exact-ratio case (cell == eps).
  const double ratio = params.eps / cell;
  const auto reach = static_cast<std::int64_t>(
                         std::floor(ratio * (1.0 - 1e-12))) + 1;

  support::ThreadPool& pool = support::globalPool();
  RawClusters raw;
  raw.core.assign(n, 0);
  raw.compOf.assign(n, kNone);

  const std::size_t numCells = grid.cellCount();
  // Candidate neighbor cells per cell, box-pruned; computed once and shared
  // by the core-count, cell-union and border passes.
  std::vector<std::vector<std::size_t>> cellNeighbors(numCells);
  std::uint64_t denseCorePoints = 0;
  std::uint64_t scannedPoints = 0;
  {
    std::vector<std::uint64_t> denseHits(numCells, 0);
    std::vector<std::uint64_t> scanned(numCells, 0);
    pool.parallelFor(numCells, [&](std::size_t c) {
      auto& neigh = cellNeighbors[c];
      grid.forEachNeighborCell(c, reach, [&](std::size_t b) {
        if (grid.cellBoxDist2(c, b) <= eps2) neigh.push_back(b);
      });
      const auto members = grid.cellMembers(c);
      if (sameCellWithinEps && members.size() >= params.minPts) {
        for (std::size_t i : members) raw.core[i] = 1;
        denseHits[c] = members.size();
        return;
      }
      scanned[c] = members.size();
      for (std::size_t i : members) {
        const auto p = features.row(i);
        // Same-cell points are all within eps when the diagonal fits;
        // otherwise they are distance-checked like everyone else.
        std::size_t count = sameCellWithinEps ? members.size() : 0;
        if (!sameCellWithinEps) {
          for (std::size_t j : members) {
            if (distance2(p, features.row(j)) <= eps2 && ++count >= params.minPts)
              break;
          }
        }
        if (count < params.minPts) {
          for (std::size_t b : neigh) {
            for (std::size_t j : grid.cellMembers(b)) {
              if (distance2(p, features.row(j)) <= eps2 && ++count >= params.minPts)
                break;
            }
            if (count >= params.minPts) break;
          }
        }
        raw.core[i] = count >= params.minPts ? 1 : 0;
      }
    });
    for (std::size_t c = 0; c < numCells; ++c) {
      denseCorePoints += denseHits[c];
      scannedPoints += scanned[c];
    }
  }

  // Union cells that hold eps-connected cores. Edges are gathered in
  // parallel (one slot per cell; each unordered pair examined exactly once
  // via the b > c direction) and united sequentially — connected components
  // do not depend on union order, so the result is deterministic.
  std::vector<std::uint8_t> cellHasCore(numCells, 0);
  for (std::size_t i = 0; i < n; ++i)
    if (raw.core[i]) cellHasCore[grid.cellOfRow(i)] = 1;
  std::vector<std::vector<std::size_t>> edges(numCells);
  pool.parallelFor(numCells, [&](std::size_t c) {
    if (!cellHasCore[c]) return;
    for (std::size_t b : cellNeighbors[c]) {
      if (b <= c || !cellHasCore[b]) continue;
      bool connected = false;
      for (std::size_t i : grid.cellMembers(c)) {
        if (!raw.core[i]) continue;
        const auto p = features.row(i);
        for (std::size_t j : grid.cellMembers(b)) {
          if (raw.core[j] && distance2(p, features.row(j)) <= eps2) {
            connected = true;
            break;
          }
        }
        if (connected) break;
      }
      if (connected) edges[c].push_back(b);
    }
  });
  UnionFind uf(numCells);
  for (std::size_t c = 0; c < numCells; ++c)
    for (std::size_t b : edges[c]) uf.unite(c, b);

  // Components in ascending min-core-row order: walking rows in order and
  // numbering unseen roots reproduces the classic discovery order.
  std::vector<std::size_t> compOfCell(numCells, kNone);
  for (std::size_t i = 0; i < n; ++i) {
    if (!raw.core[i]) continue;
    const std::size_t root = uf.find(grid.cellOfRow(i));
    if (compOfCell[root] == kNone) {
      compOfCell[root] = raw.minCoreRow.size();
      raw.minCoreRow.push_back(i);
    }
    raw.compOf[i] = compOfCell[root];
  }
  // Resolve every core cell to its component up front: find() mutates the
  // union-find (path compression), so it must not run inside the parallel
  // border pass below.
  for (std::size_t c = 0; c < numCells; ++c) {
    if (compOfCell[c] != kNone || !cellHasCore[c]) continue;
    compOfCell[c] = compOfCell[uf.find(c)];
  }

  // Border pass: every non-core point joins the cluster of its nearest core
  // within eps (ties: lowest core row). Pure per-point function of the
  // input, so the parallel slot-per-index writes are deterministic.
  pool.parallelFor(numCells, [&](std::size_t c) {
    const auto members = grid.cellMembers(c);
    bool anyBorderWork = false;
    for (std::size_t i : members) anyBorderWork = anyBorderWork || !raw.core[i];
    if (!anyBorderWork) return;
    for (std::size_t i : members) {
      if (raw.core[i]) continue;
      const auto p = features.row(i);
      double bestD2 = std::numeric_limits<double>::infinity();
      std::size_t bestCore = kNone;
      auto consider = [&](std::size_t j) {
        if (!raw.core[j]) return;
        const double d2v = distance2(p, features.row(j));
        if (d2v > eps2) return;
        if (d2v < bestD2 || (d2v == bestD2 && j < bestCore)) {
          bestD2 = d2v;
          bestCore = j;
        }
      };
      for (std::size_t j : members) consider(j);
      for (std::size_t b : cellNeighbors[c])
        for (std::size_t j : grid.cellMembers(b)) consider(j);
      if (bestCore != kNone)
        raw.compOf[i] = compOfCell[grid.cellOfRow(bestCore)];
    }
  });

  span.attr("cells", numCells);
  span.attr("dense_core_points", denseCorePoints);
  span.attr("scanned_points", scannedPoints);
  telemetry::count("cluster.dense_core_points", denseCorePoints);
  telemetry::count("cluster.neighbor_queries", scannedPoints);
  return raw;
}

/// Brute backend — the last-resort all-pairs path for inputs the grid
/// cannot index (dimensionality > EpsGrid::kMaxDims, eps underflow, or
/// coordinates outside the indexable range). Same semantics as the grid
/// backend; its use is tracked by cluster.bruteforce_fallbacks.
RawClusters bruteDbscan(const FeatureMatrix& features, const DbscanParams& params) {
  const std::size_t n = features.rows();
  const double eps2 = params.eps * params.eps;
  support::ThreadPool& pool = support::globalPool();

  RawClusters raw;
  raw.core.assign(n, 0);
  raw.compOf.assign(n, kNone);
  pool.parallelFor(n, [&](std::size_t i) {
    const auto p = features.row(i);
    std::size_t count = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (distance2(p, features.row(j)) <= eps2 && ++count >= params.minPts) break;
    }
    raw.core[i] = count >= params.minPts ? 1 : 0;
  });
  telemetry::count("cluster.neighbor_queries", n);

  // Components of cores by sequential BFS in row order: discovery order is
  // ascending min core row, matching the grid backend's numbering.
  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < n; ++i) {
    if (!raw.core[i] || raw.compOf[i] != kNone) continue;
    const std::size_t comp = raw.minCoreRow.size();
    raw.minCoreRow.push_back(i);
    raw.compOf[i] = comp;
    queue.assign(1, i);
    while (!queue.empty()) {
      const std::size_t cur = queue.back();
      queue.pop_back();
      const auto p = features.row(cur);
      for (std::size_t j = 0; j < n; ++j) {
        if (!raw.core[j] || raw.compOf[j] != kNone) continue;
        if (distance2(p, features.row(j)) <= eps2) {
          raw.compOf[j] = comp;
          queue.push_back(j);
        }
      }
    }
  }

  // Borders: nearest core within eps, ties to the lowest core row.
  pool.parallelFor(n, [&](std::size_t i) {
    if (raw.core[i]) return;
    const auto p = features.row(i);
    double bestD2 = std::numeric_limits<double>::infinity();
    std::size_t bestCore = kNone;
    for (std::size_t j = 0; j < n; ++j) {
      if (!raw.core[j]) continue;
      const double d2v = distance2(p, features.row(j));
      if (d2v <= eps2 && d2v < bestD2) {
        bestD2 = d2v;
        bestCore = j;
      }
    }
    if (bestCore != kNone) raw.compOf[i] = raw.compOf[bestCore];
  });
  return raw;
}

}  // namespace

double dbscanCellEdge(double eps, std::size_t dims) {
  if (dims >= 1 && dims <= 4) {
    // eps/sqrt(d), shrunk so the cell diagonal is provably <= eps even
    // after floating-point rounding: same-cell points are then always
    // mutual eps-neighbors.
    return eps / std::sqrt(static_cast<double>(dims)) * 0.999;
  }
  // Higher dimensionality: diagonal cells would need (2·ceil(sqrt(d))+1)^d
  // ring enumeration; an eps edge keeps the ring at 3^d, trading away the
  // dense-cell shortcut.
  return eps;
}

Clustering dbscan(const FeatureMatrix& features, const DbscanParams& params) {
  params.validate();
  telemetry::Span span("cluster.dbscan");
  span.attr("points", features.rows());
  span.attr("eps", params.eps);
  const std::size_t n = features.rows();
  Clustering out;
  out.labels.assign(n, kNoiseLabel);
  out.core.assign(n, 0);
  if (n == 0) return out;

  const EpsGrid grid(features, dbscanCellEdge(params.eps, features.dims()));
  RawClusters raw;
  if (grid.valid()) {
    raw = gridDbscan(features, params, grid, span);
  } else {
    telemetry::count("cluster.bruteforce_fallbacks", 1);
    span.attr("bruteforce", 1);
    raw = bruteDbscan(features, params);
  }
  finalize(raw, out);
  span.attr("clusters", out.numClusters);
  return out;
}

double estimateEps(const FeatureMatrix& features, std::size_t minPts, double quantile) {
  const std::size_t n = features.rows();
  if (n < 2) throw AnalysisError("estimateEps needs >= 2 points");
  if (minPts < 1) throw ConfigError("estimateEps minPts must be >= 1");
  telemetry::Span span("cluster.estimate_eps");
  span.attr("points", n);
  // k-NN distances on a subsample — eps calibration does not need every
  // point. The k-th index matches the historical brute-force selection:
  // min(minPts, n-1) - 1 into the sorted distances to the other points.
  const std::size_t sampleStride = std::max<std::size_t>(1, n / 2000);
  std::vector<std::size_t> sampled;
  for (std::size_t i = 0; i < n; i += sampleStride) sampled.push_back(i);
  const std::size_t kth = std::min(minPts, n - 1) - 1;

  // Grid-accelerated exact k-NN; brute force remains as the fallback when
  // the heuristic cell span is degenerate (e.g. all points identical).
  std::optional<EpsGrid> grid;
  const double cellSize = EpsGrid::knnCellSize(features, minPts);
  if (cellSize > 0.0) {
    grid.emplace(features, cellSize);
    if (!grid->valid()) grid.reset();
  }

  auto bruteKth = [&](std::size_t i) {
    std::vector<double> dists;
    dists.reserve(n - 1);
    const auto p = features.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.push_back(distance2(p, features.row(j)));
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(kth),
                     dists.end());
    return std::sqrt(dists[kth]);
  };

  // The sampled points are independent; run them on the shared pool. Each
  // result goes to its own slot, so the k-dist sequence (and hence the
  // quantile) is identical to the sequential order for any thread count.
  std::vector<double> kDist(sampled.size());
  support::globalPool().parallelFor(sampled.size(), [&](std::size_t s) {
    kDist[s] = grid ? grid->kthNearestDist(sampled[s], kth) : bruteKth(sampled[s]);
  });
  span.attr("sampled", sampled.size());
  telemetry::count("cluster.knn_queries", sampled.size());
  return support::quantile(kDist, quantile);
}

}  // namespace unveil::cluster
