#include "unveil/cluster/dbscan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <numeric>
#include <unordered_map>

#include "unveil/support/error.hpp"
#include "unveil/support/stats.hpp"

namespace unveil::cluster {

void DbscanParams::validate() const {
  if (eps <= 0.0) throw ConfigError("dbscan eps must be positive");
  if (minPts < 1) throw ConfigError("dbscan minPts must be >= 1");
}

std::size_t Clustering::clusterSize(int c) const noexcept {
  std::size_t n = 0;
  for (int l : labels) n += (l == c) ? 1 : 0;
  return n;
}

std::size_t Clustering::noiseCount() const noexcept { return clusterSize(kNoiseLabel); }

std::vector<std::size_t> Clustering::members(int c) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] == c) out.push_back(i);
  return out;
}

namespace {

/// Uniform grid over d-dimensional points with cell edge = eps. Neighbor
/// queries inspect the 3^d adjacent cells.
class EpsGrid {
 public:
  EpsGrid(const FeatureMatrix& m, double eps) : m_(m), inv_(1.0 / eps) {
    cells_.reserve(m.rows());
    for (std::size_t i = 0; i < m.rows(); ++i)
      cells_[keyOf(m.row(i))].push_back(i);
  }

  /// Indices within eps (Euclidean) of row \p i, including i itself.
  void neighbors(std::size_t i, double eps2, std::vector<std::size_t>& out) const {
    out.clear();
    const auto p = m_.row(i);
    const std::size_t d = p.size();
    std::vector<std::int64_t> base(d);
    for (std::size_t k = 0; k < d; ++k)
      base[k] = static_cast<std::int64_t>(std::floor(p[k] * inv_));
    // Enumerate 3^d neighbor cells via mixed-radix counter.
    std::vector<int> offs(d, -1);
    while (true) {
      std::vector<std::int64_t> cell(d);
      for (std::size_t k = 0; k < d; ++k) cell[k] = base[k] + offs[k];
      auto it = cells_.find(hashCell(cell));
      if (it != cells_.end()) {
        for (std::size_t j : it->second) {
          double dist2 = 0.0;
          const auto q = m_.row(j);
          for (std::size_t k = 0; k < d; ++k) {
            const double diff = p[k] - q[k];
            dist2 += diff * diff;
          }
          if (dist2 <= eps2) out.push_back(j);
        }
      }
      // Advance counter.
      std::size_t k = 0;
      while (k < d && offs[k] == 1) {
        offs[k] = -1;
        ++k;
      }
      if (k == d) break;
      ++offs[k];
    }
  }

 private:
  [[nodiscard]] std::uint64_t keyOf(std::span<const double> p) const {
    std::vector<std::int64_t> cell(p.size());
    for (std::size_t k = 0; k < p.size(); ++k)
      cell[k] = static_cast<std::int64_t>(std::floor(p[k] * inv_));
    return hashCell(cell);
  }

  [[nodiscard]] static std::uint64_t hashCell(const std::vector<std::int64_t>& cell) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::int64_t v : cell) {
      h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  const FeatureMatrix& m_;
  double inv_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> cells_;
};

}  // namespace

Clustering dbscan(const FeatureMatrix& features, const DbscanParams& params) {
  params.validate();
  const std::size_t n = features.rows();
  Clustering out;
  out.labels.assign(n, kNoiseLabel);
  if (n == 0) return out;

  const EpsGrid grid(features, params.eps);
  const double eps2 = params.eps * params.eps;

  constexpr int kUnvisited = -2;
  std::vector<int> label(n, kUnvisited);
  int nextCluster = 0;
  std::vector<std::size_t> neigh;
  std::vector<std::size_t> seedNeigh;

  for (std::size_t i = 0; i < n; ++i) {
    if (label[i] != kUnvisited) continue;
    grid.neighbors(i, eps2, neigh);
    if (neigh.size() < params.minPts) {
      label[i] = kNoiseLabel;
      continue;
    }
    const int cluster = nextCluster++;
    label[i] = cluster;
    std::deque<std::size_t> queue(neigh.begin(), neigh.end());
    while (!queue.empty()) {
      const std::size_t j = queue.front();
      queue.pop_front();
      if (label[j] == kNoiseLabel) label[j] = cluster;  // border point
      if (label[j] != kUnvisited) continue;
      label[j] = cluster;
      grid.neighbors(j, eps2, seedNeigh);
      if (seedNeigh.size() >= params.minPts)
        queue.insert(queue.end(), seedNeigh.begin(), seedNeigh.end());
    }
  }

  // Relabel clusters by descending size so cluster 0 is always the largest —
  // the convention the paper's plots use.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(nextCluster), 0);
  for (int l : label)
    if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
  std::vector<int> order(static_cast<std::size_t>(nextCluster));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (sizes[static_cast<std::size_t>(a)] != sizes[static_cast<std::size_t>(b)])
      return sizes[static_cast<std::size_t>(a)] > sizes[static_cast<std::size_t>(b)];
    return a < b;
  });
  std::vector<int> remap(static_cast<std::size_t>(nextCluster));
  for (int newId = 0; newId < nextCluster; ++newId)
    remap[static_cast<std::size_t>(order[static_cast<std::size_t>(newId)])] = newId;

  for (std::size_t i = 0; i < n; ++i)
    out.labels[i] = label[i] >= 0 ? remap[static_cast<std::size_t>(label[i])]
                                  : kNoiseLabel;
  out.numClusters = static_cast<std::size_t>(nextCluster);
  return out;
}

double estimateEps(const FeatureMatrix& features, std::size_t minPts, double quantile) {
  const std::size_t n = features.rows();
  if (n < 2) throw AnalysisError("estimateEps needs >= 2 points");
  if (minPts < 1) throw ConfigError("estimateEps minPts must be >= 1");
  // Exact k-NN by brute force on a subsample to keep this O(s·n) — eps
  // calibration does not need every point.
  const std::size_t sampleStride = std::max<std::size_t>(1, n / 2000);
  std::vector<double> kDist;
  std::vector<double> dists;
  for (std::size_t i = 0; i < n; i += sampleStride) {
    dists.clear();
    const auto p = features.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d2 = 0.0;
      const auto q = features.row(j);
      for (std::size_t k = 0; k < p.size(); ++k) {
        const double diff = p[k] - q[k];
        d2 += diff * diff;
      }
      dists.push_back(d2);
    }
    const std::size_t k = std::min(minPts, dists.size()) - 1;
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(k),
                     dists.end());
    kDist.push_back(std::sqrt(dists[k]));
  }
  return support::quantile(kDist, quantile);
}

}  // namespace unveil::cluster
