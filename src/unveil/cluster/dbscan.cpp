#include "unveil/cluster/dbscan.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <numeric>
#include <optional>

#include "unveil/cluster/eps_grid.hpp"
#include "unveil/support/error.hpp"
#include "unveil/support/stats.hpp"
#include "unveil/support/telemetry.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::cluster {

void DbscanParams::validate() const {
  if (eps <= 0.0) throw ConfigError("dbscan eps must be positive");
  if (minPts < 1) throw ConfigError("dbscan minPts must be >= 1");
}

std::size_t Clustering::clusterSize(int c) const noexcept {
  std::size_t n = 0;
  for (int l : labels) n += (l == c) ? 1 : 0;
  return n;
}

std::size_t Clustering::noiseCount() const noexcept {
  return static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), kNoiseLabel));
}

std::vector<std::size_t> Clustering::members(int c) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] == c) out.push_back(i);
  return out;
}

std::vector<std::vector<std::size_t>> Clustering::buckets() const {
  std::vector<std::size_t> counts(numClusters, 0);
  for (int l : labels) {
    if (l < 0) continue;
    UNVEIL_ASSERT(static_cast<std::size_t>(l) < numClusters,
                  "cluster label out of range");
    ++counts[static_cast<std::size_t>(l)];
  }
  std::vector<std::vector<std::size_t>> out(numClusters);
  for (std::size_t c = 0; c < numClusters; ++c) out[c].reserve(counts[c]);
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] >= 0) out[static_cast<std::size_t>(labels[i])].push_back(i);
  return out;
}

namespace {

/// Brute-force region query, used when the grid cannot index the input
/// (degenerate extents or too many dimensions).
void bruteNeighbors(const FeatureMatrix& m, std::size_t i, double radius2,
                    std::vector<std::size_t>& out) {
  out.clear();
  const auto p = m.row(i);
  for (std::size_t j = 0; j < m.rows(); ++j) {
    double d2 = 0.0;
    const auto q = m.row(j);
    for (std::size_t k = 0; k < p.size(); ++k) {
      const double diff = p[k] - q[k];
      d2 += diff * diff;
    }
    if (d2 <= radius2) out.push_back(j);
  }
}

}  // namespace

Clustering dbscan(const FeatureMatrix& features, const DbscanParams& params) {
  params.validate();
  telemetry::Span span("cluster.dbscan");
  span.attr("points", features.rows());
  span.attr("eps", params.eps);
  const std::size_t n = features.rows();
  Clustering out;
  out.labels.assign(n, kNoiseLabel);
  if (n == 0) return out;

  const EpsGrid grid(features, params.eps);
  const double eps2 = params.eps * params.eps;
  // Queries are counted locally and reported once — never per query, which
  // would put an atomic add in the hot loop.
  std::uint64_t queries = 0;
  auto query = [&](std::size_t i, std::vector<std::size_t>& neighOut) {
    ++queries;
    if (grid.valid()) grid.neighbors(i, eps2, neighOut);
    else bruteNeighbors(features, i, eps2, neighOut);
  };

  // The expansion below queries every point exactly once, so with multiple
  // threads the region queries — the dominant cost — are precomputed on the
  // worker pool instead of issued on demand. A query's result is a pure
  // function of the input, so labels are bit-identical whether a list was
  // precomputed or re-queried sequentially, for any thread count. Stored
  // lists are capped at a global entry budget (dense degenerate inputs can
  // have Θ(n²) total neighbors); points over budget fall back to an
  // on-demand query during the sequential sweep.
  std::vector<std::vector<std::size_t>> precomputed;
  std::vector<char> stored;
  support::ThreadPool& pool = support::globalPool();
  if (pool.threads() > 1) {
    constexpr std::size_t kEntryBudget = std::size_t{1} << 24;  // ~128 MiB
    precomputed.resize(n);
    stored.assign(n, 0);
    std::atomic<std::size_t> storedEntries{0};
    std::atomic<std::uint64_t> parallelQueries{0};
    pool.parallelFor(n, [&](std::size_t i) {
      std::vector<std::size_t> neighOut;
      if (grid.valid()) grid.neighbors(i, eps2, neighOut);
      else bruteNeighbors(features, i, eps2, neighOut);
      parallelQueries.fetch_add(1, std::memory_order_relaxed);
      const std::size_t before =
          storedEntries.fetch_add(neighOut.size(), std::memory_order_relaxed);
      if (before + neighOut.size() > kEntryBudget) return;  // over budget
      precomputed[i] = std::move(neighOut);
      stored[i] = 1;
    });
    queries += parallelQueries.load(std::memory_order_relaxed);
  }
  auto neighborsOf = [&](std::size_t i, std::vector<std::size_t>& scratch)
      -> const std::vector<std::size_t>& {
    if (!stored.empty() && stored[i]) return precomputed[i];
    query(i, scratch);
    return scratch;
  };

  constexpr int kUnvisited = -2;
  std::vector<int> label(n, kUnvisited);
  int nextCluster = 0;
  std::vector<std::size_t> neighScratch;
  std::vector<std::size_t> seedScratch;

  for (std::size_t i = 0; i < n; ++i) {
    if (label[i] != kUnvisited) continue;
    const auto& neigh = neighborsOf(i, neighScratch);
    if (neigh.size() < params.minPts) {
      label[i] = kNoiseLabel;
      continue;
    }
    const int cluster = nextCluster++;
    label[i] = cluster;
    std::deque<std::size_t> queue(neigh.begin(), neigh.end());
    while (!queue.empty()) {
      const std::size_t j = queue.front();
      queue.pop_front();
      if (label[j] == kNoiseLabel) label[j] = cluster;  // border point
      if (label[j] != kUnvisited) continue;
      label[j] = cluster;
      const auto& seedNeigh = neighborsOf(j, seedScratch);
      if (seedNeigh.size() >= params.minPts)
        queue.insert(queue.end(), seedNeigh.begin(), seedNeigh.end());
    }
  }

  // Relabel clusters by descending size so cluster 0 is always the largest —
  // the convention the paper's plots use.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(nextCluster), 0);
  for (int l : label)
    if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
  std::vector<int> order(static_cast<std::size_t>(nextCluster));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (sizes[static_cast<std::size_t>(a)] != sizes[static_cast<std::size_t>(b)])
      return sizes[static_cast<std::size_t>(a)] > sizes[static_cast<std::size_t>(b)];
    return a < b;
  });
  std::vector<int> remap(static_cast<std::size_t>(nextCluster));
  for (int newId = 0; newId < nextCluster; ++newId)
    remap[static_cast<std::size_t>(order[static_cast<std::size_t>(newId)])] = newId;

  for (std::size_t i = 0; i < n; ++i)
    out.labels[i] = label[i] >= 0 ? remap[static_cast<std::size_t>(label[i])]
                                  : kNoiseLabel;
  out.numClusters = static_cast<std::size_t>(nextCluster);
  span.attr("clusters", out.numClusters);
  span.attr("queries", queries);
  telemetry::count("cluster.neighbor_queries", queries);
  return out;
}

double estimateEps(const FeatureMatrix& features, std::size_t minPts, double quantile) {
  const std::size_t n = features.rows();
  if (n < 2) throw AnalysisError("estimateEps needs >= 2 points");
  if (minPts < 1) throw ConfigError("estimateEps minPts must be >= 1");
  telemetry::Span span("cluster.estimate_eps");
  span.attr("points", n);
  // k-NN distances on a subsample — eps calibration does not need every
  // point. The k-th index matches the historical brute-force selection:
  // min(minPts, n-1) - 1 into the sorted distances to the other points.
  const std::size_t sampleStride = std::max<std::size_t>(1, n / 2000);
  std::vector<std::size_t> sampled;
  for (std::size_t i = 0; i < n; i += sampleStride) sampled.push_back(i);
  const std::size_t kth = std::min(minPts, n - 1) - 1;

  // Grid-accelerated exact k-NN; brute force remains as the fallback when
  // the heuristic cell span is degenerate (e.g. all points identical).
  std::optional<EpsGrid> grid;
  const double cellSize = EpsGrid::knnCellSize(features, minPts);
  if (cellSize > 0.0) {
    grid.emplace(features, cellSize);
    if (!grid->valid()) grid.reset();
  }

  auto bruteKth = [&](std::size_t i) {
    std::vector<double> dists;
    dists.reserve(n - 1);
    const auto p = features.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d2 = 0.0;
      const auto q = features.row(j);
      for (std::size_t k = 0; k < p.size(); ++k) {
        const double diff = p[k] - q[k];
        d2 += diff * diff;
      }
      dists.push_back(d2);
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(kth),
                     dists.end());
    return std::sqrt(dists[kth]);
  };

  // The sampled points are independent; run them on the shared pool. Each
  // result goes to its own slot, so the k-dist sequence (and hence the
  // quantile) is identical to the sequential order for any thread count.
  std::vector<double> kDist(sampled.size());
  support::globalPool().parallelFor(sampled.size(), [&](std::size_t s) {
    kDist[s] = grid ? grid->kthNearestDist(sampled[s], kth) : bruteKth(sampled[s]);
  });
  span.attr("sampled", sampled.size());
  telemetry::count("cluster.knn_queries", sampled.size());
  return support::quantile(kDist, quantile);
}

}  // namespace unveil::cluster
