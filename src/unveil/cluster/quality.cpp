#include "unveil/cluster/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "unveil/support/error.hpp"

namespace unveil::cluster {

namespace {

/// Maps arbitrary label values to dense 0-based indices.
template <typename T>
std::unordered_map<T, std::size_t> denseIndex(std::span<const T> labels) {
  std::unordered_map<T, std::size_t> idx;
  for (const T& l : labels)
    if (!idx.contains(l)) idx.emplace(l, idx.size());
  return idx;
}

double comb2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

double adjustedRandIndex(std::span<const int> predicted,
                         std::span<const std::uint32_t> truth) {
  if (predicted.size() != truth.size())
    throw ConfigError("ARI: label vectors must have equal length");
  const std::size_t n = predicted.size();
  if (n == 0) return 1.0;

  auto pIdx = denseIndex(predicted);
  auto tIdx = denseIndex(truth);
  std::vector<std::vector<std::size_t>> table(pIdx.size(),
                                              std::vector<std::size_t>(tIdx.size(), 0));
  for (std::size_t i = 0; i < n; ++i)
    ++table[pIdx.at(predicted[i])][tIdx.at(truth[i])];

  std::vector<std::size_t> rowSum(pIdx.size(), 0), colSum(tIdx.size(), 0);
  double sumComb = 0.0;
  for (std::size_t r = 0; r < table.size(); ++r) {
    for (std::size_t c = 0; c < table[r].size(); ++c) {
      rowSum[r] += table[r][c];
      colSum[c] += table[r][c];
      sumComb += comb2(static_cast<double>(table[r][c]));
    }
  }
  double rowComb = 0.0, colComb = 0.0;
  for (std::size_t s : rowSum) rowComb += comb2(static_cast<double>(s));
  for (std::size_t s : colSum) colComb += comb2(static_cast<double>(s));
  const double total = comb2(static_cast<double>(n));
  const double expected = rowComb * colComb / total;
  const double maxIndex = 0.5 * (rowComb + colComb);
  if (maxIndex == expected) return 1.0;  // degenerate: single cluster both sides
  return (sumComb - expected) / (maxIndex - expected);
}

double purity(std::span<const int> predicted, std::span<const std::uint32_t> truth) {
  if (predicted.size() != truth.size())
    throw ConfigError("purity: label vectors must have equal length");
  if (predicted.empty()) return 1.0;
  std::map<int, std::map<std::uint32_t, std::size_t>> byCluster;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    ++byCluster[predicted[i]][truth[i]];
  std::size_t correct = 0;
  for (const auto& [cluster, hist] : byCluster) {
    if (cluster < 0) continue;  // noise is never correct
    std::size_t best = 0;
    for (const auto& [label, count] : hist) best = std::max(best, count);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double silhouette(const FeatureMatrix& features, std::span<const int> labels,
                  std::size_t maxPoints) {
  if (features.rows() != labels.size())
    throw ConfigError("silhouette: labels must match feature rows");
  // Collect clustered points.
  std::vector<std::size_t> pts;
  std::map<int, std::size_t> clusterSizes;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0) {
      pts.push_back(i);
      ++clusterSizes[labels[i]];
    }
  }
  if (clusterSizes.size() < 2) return 0.0;
  const std::size_t stride = std::max<std::size_t>(1, pts.size() / maxPoints);

  auto d = [&](std::size_t a, std::size_t b) {
    double s = 0.0;
    const auto pa = features.row(a);
    const auto pb = features.row(b);
    for (std::size_t k = 0; k < pa.size(); ++k) {
      const double diff = pa[k] - pb[k];
      s += diff * diff;
    }
    return std::sqrt(s);
  };

  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t ii = 0; ii < pts.size(); ii += stride) {
    const std::size_t i = pts[ii];
    std::map<int, std::pair<double, std::size_t>> sums;  // cluster -> (sum, n)
    for (std::size_t j : pts) {
      if (j == i) continue;
      auto& [sum, cnt] = sums[labels[j]];
      sum += d(i, j);
      ++cnt;
    }
    double a = 0.0;
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [cluster, sc] : sums) {
      const double avg = sc.first / static_cast<double>(sc.second);
      if (cluster == labels[i]) a = avg;
      else b = std::min(b, avg);
    }
    if (!std::isfinite(b)) continue;
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      total += (b - a) / denom;
      ++counted;
    }
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

ConfusionMatrix confusionMatrix(std::span<const int> predicted,
                                std::span<const std::uint32_t> truth) {
  if (predicted.size() != truth.size())
    throw ConfigError("confusionMatrix: label vectors must have equal length");
  ConfusionMatrix cm;
  // Dense, sorted truth columns for stable output.
  std::map<std::uint32_t, std::size_t> tIdx;
  for (auto t : truth) tIdx.emplace(t, 0);
  std::size_t next = 0;
  for (auto& [label, idx] : tIdx) {
    idx = next++;
    cm.truthLabels.push_back(label);
  }
  int maxCluster = -1;
  for (int p : predicted) maxCluster = std::max(maxCluster, p);
  bool hasNoise = std::any_of(predicted.begin(), predicted.end(),
                              [](int p) { return p < 0; });
  const std::size_t rows = static_cast<std::size_t>(maxCluster + 1) + (hasNoise ? 1 : 0);
  cm.counts.assign(std::max<std::size_t>(rows, 1),
                   std::vector<std::size_t>(cm.truthLabels.size(), 0));
  cm.hasNoiseRow = hasNoise;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const std::size_t row = predicted[i] >= 0
                                ? static_cast<std::size_t>(predicted[i])
                                : static_cast<std::size_t>(maxCluster + 1);
    ++cm.counts[row][tIdx.at(truth[i])];
  }
  return cm;
}

}  // namespace unveil::cluster
