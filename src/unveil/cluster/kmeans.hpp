#pragma once

/// \file kmeans.hpp
/// k-means baseline clustering (k-means++ seeding, Lloyd iterations).
///
/// Included as the comparison algorithm for the clustering ablation (A2):
/// unlike DBSCAN it requires the cluster count up front, assigns every
/// straggler to some cluster (no noise concept) and prefers spherical
/// clusters — exactly the weaknesses the paper's choice of DBSCAN avoids.

#include <cstdint>

#include "unveil/cluster/dbscan.hpp"
#include "unveil/cluster/features.hpp"
#include "unveil/support/rng.hpp"

namespace unveil::cluster {

/// k-means parameters.
struct KmeansParams {
  std::size_t k = 3;            ///< Cluster count.
  std::size_t maxIterations = 100;  ///< Lloyd iteration cap.
  std::uint64_t seed = 7;       ///< Seeding randomness.

  /// Throws ConfigError on invalid values.
  void validate() const;
};

/// k-means result: a Clustering (no noise labels) plus centroids.
struct KmeansResult {
  Clustering clustering;
  /// Centroids in normalized feature space, row-major k × dims, indexed by
  /// final (size-ordered) cluster id.
  std::vector<std::vector<double>> centroids;
  std::size_t iterationsRun = 0;
  bool converged = false;
};

/// Runs k-means++ / Lloyd on the (already normalized) features.
/// Throws AnalysisError when k exceeds the number of points.
[[nodiscard]] KmeansResult kmeans(const FeatureMatrix& features, const KmeansParams& params);

}  // namespace unveil::cluster
