#pragma once

/// \file burst.hpp
/// Computation-burst extraction from traces.
///
/// A burst is a maximal region of uninterrupted computation on one rank. Two
/// extraction strategies are provided, mirroring what real tools can do:
///
///  - fromPhaseEvents: pair PhaseBegin/PhaseEnd probes. Requires phase
///    instrumentation; yields one burst per phase instance. The event's
///    phase id is kept in truthPhase strictly for *evaluation* (ARI against
///    ground truth) — clustering never reads it.
///  - fromMpiGaps: the paper-faithful strategy. A burst is whatever happens
///    between an MpiEnd and the next MpiBegin on the same rank; no knowledge
///    of application phases is needed, and adjacent phases that are not
///    separated by MPI merge into one burst.
///
/// Extraction also associates every sample falling inside a burst with that
/// burst — the raw material folding consumes.

#include <cstdint>
#include <vector>

#include "unveil/counters/counter.hpp"
#include "unveil/trace/trace.hpp"

namespace unveil::cluster {

/// Sentinel for "no ground-truth phase known" (MPI-gap extraction).
inline constexpr std::uint32_t kNoPhase = 0xffffffffu;

/// One computation burst with its aggregate metrics and attached samples.
struct Burst {
  trace::Rank rank = 0;
  trace::TimeNs begin = 0;
  trace::TimeNs end = 0;
  counters::CounterSet beginCounters;  ///< Snapshot at burst start.
  counters::CounterSet endCounters;    ///< Snapshot at burst end.
  /// Samples with begin <= time < end are rows
  /// [sampleFirst, sampleFirst + sampleCount) of Trace::samples(). The
  /// attachment is always one contiguous run: samples are (rank, time)-
  /// sorted and bursts never overlap within a rank, so a [first, count)
  /// range replaces the index-per-sample list an AoS layout would need —
  /// and lets the fold kernels stream the window straight out of the
  /// columnar sample store.
  std::size_t sampleFirst = 0;
  std::size_t sampleCount = 0;
  /// Ground-truth phase id for evaluation only; kNoPhase when unknown.
  std::uint32_t truthPhase = kNoPhase;

  /// Burst duration in ns.
  [[nodiscard]] trace::TimeNs durationNs() const noexcept { return end - begin; }
  /// Counter delta across the burst.
  [[nodiscard]] counters::CounterSet delta() const {
    return endCounters.minus(beginCounters);
  }
};

/// Burst-extraction entry points.
struct BurstExtraction {
  /// Minimum burst duration to keep (ns); shorter bursts are measurement
  /// artifacts and are dropped (paper does the same with a duration filter).
  trace::TimeNs minDurationNs = 1000;

  /// Extracts one burst per PhaseBegin/PhaseEnd pair. Throws TraceError on
  /// unbalanced or interleaved phase events. \p trace must be finalized.
  [[nodiscard]] std::vector<Burst> fromPhaseEvents(const trace::Trace& trace) const;

  /// Extracts one burst per (MpiEnd, next MpiBegin) gap per rank.
  /// \p trace must be finalized.
  [[nodiscard]] std::vector<Burst> fromMpiGaps(const trace::Trace& trace) const;
};

}  // namespace unveil::cluster
