#include "unveil/cluster/distance.hpp"

#include "unveil/support/simd.hpp"

namespace unveil::cluster {

#if defined(UNVEIL_HAVE_AVX2)
// Implemented in distance_avx2.cpp (compiled with -mavx2).
void distance2BatchAvx2(const double* q, std::size_t d, const double* base,
                        std::size_t stride, const std::size_t* idx,
                        std::size_t count, double* out);
void distance2BatchRowsAvx2(const double* q, std::size_t d, const double* base,
                            std::size_t stride, std::size_t firstRow,
                            std::size_t count, double* out);
#endif

namespace {

inline bool useAvx2() noexcept {
  return support::simdLevel() == support::SimdLevel::Avx2;
}

/// Four candidate lanes per iteration; each lane's accumulator advances in
/// ascending k exactly like the scalar loop, so the compiler may keep the
/// four sums in one vector register without changing any rounding.
void batchPortable(const double* q, std::size_t d, const double* base,
                   std::size_t stride, const std::size_t* idx,
                   std::size_t count, double* out) {
  std::size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    const double* r0 = base + idx[c] * stride;
    const double* r1 = base + idx[c + 1] * stride;
    const double* r2 = base + idx[c + 2] * stride;
    const double* r3 = base + idx[c + 3] * stride;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double qk = q[k];
      const double d0 = qk - r0[k];
      const double d1 = qk - r1[k];
      const double d2v = qk - r2[k];
      const double d3 = qk - r3[k];
      a0 += d0 * d0;
      a1 += d1 * d1;
      a2 += d2v * d2v;
      a3 += d3 * d3;
    }
    out[c] = a0;
    out[c + 1] = a1;
    out[c + 2] = a2;
    out[c + 3] = a3;
  }
  for (; c < count; ++c)
    out[c] = distance2({q, d}, {base + idx[c] * stride, d});
}

void batchRowsPortable(const double* q, std::size_t d, const double* base,
                       std::size_t stride, std::size_t firstRow,
                       std::size_t count, double* out) {
  std::size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    const double* r0 = base + (firstRow + c) * stride;
    const double* r1 = r0 + stride;
    const double* r2 = r1 + stride;
    const double* r3 = r2 + stride;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double qk = q[k];
      const double d0 = qk - r0[k];
      const double d1 = qk - r1[k];
      const double d2v = qk - r2[k];
      const double d3 = qk - r3[k];
      a0 += d0 * d0;
      a1 += d1 * d1;
      a2 += d2v * d2v;
      a3 += d3 * d3;
    }
    out[c] = a0;
    out[c + 1] = a1;
    out[c + 2] = a2;
    out[c + 3] = a3;
  }
  for (; c < count; ++c)
    out[c] = distance2({q, d}, {base + (firstRow + c) * stride, d});
}

}  // namespace

void distance2Batch(const double* q, std::size_t d, const double* base,
                    std::size_t stride, const std::size_t* idx,
                    std::size_t count, double* out) {
#if defined(UNVEIL_HAVE_AVX2)
  if (useAvx2()) {
    distance2BatchAvx2(q, d, base, stride, idx, count, out);
    return;
  }
#endif
  batchPortable(q, d, base, stride, idx, count, out);
}

void distance2BatchRows(const double* q, std::size_t d, const double* base,
                        std::size_t stride, std::size_t firstRow,
                        std::size_t count, double* out) {
#if defined(UNVEIL_HAVE_AVX2)
  if (useAvx2()) {
    distance2BatchRowsAvx2(q, d, base, stride, firstRow, count, out);
    return;
  }
#endif
  batchRowsPortable(q, d, base, stride, firstRow, count, out);
}

}  // namespace unveil::cluster
