#include "unveil/cluster/burst.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "unveil/support/error.hpp"

namespace unveil::cluster {

namespace {

/// Attaches sample indices to bursts. Both inputs are sorted by (rank, time)
/// (guaranteed by Trace::finalize), so a single merge pass suffices.
void attachSamples(const trace::Trace& trace, std::vector<Burst>& bursts) {
  const auto& samples = trace.samples();
  std::size_t si = 0;
  for (auto& b : bursts) {
    while (si < samples.size() &&
           (samples[si].rank < b.rank ||
            (samples[si].rank == b.rank && samples[si].time < b.begin)))
      ++si;
    std::size_t sj = si;
    while (sj < samples.size() && samples[sj].rank == b.rank &&
           samples[sj].time < b.end) {
      b.sampleIdx.push_back(sj);
      ++sj;
    }
    // Do not advance si past sj: bursts never overlap per rank, so the next
    // burst starts at or after b.end; si will catch up in its skip loop.
  }
}

}  // namespace

std::vector<Burst> BurstExtraction::fromPhaseEvents(const trace::Trace& trace) const {
  if (!trace.finalized()) throw TraceError("burst extraction requires a finalized trace");
  std::vector<Burst> bursts;
  std::optional<trace::Event> open;
  for (const auto& e : trace.events()) {
    if (e.kind == trace::EventKind::PhaseBegin) {
      if (open && open->rank == e.rank)
        throw TraceError("nested PhaseBegin on rank " + std::to_string(e.rank) +
                         " at t=" + std::to_string(e.time));
      open = e;
    } else if (e.kind == trace::EventKind::PhaseEnd) {
      if (!open || open->rank != e.rank || open->value != e.value)
        throw TraceError("unmatched PhaseEnd on rank " + std::to_string(e.rank) +
                         " at t=" + std::to_string(e.time));
      Burst b;
      b.rank = e.rank;
      b.begin = open->time;
      b.end = e.time;
      b.beginCounters = open->counters;
      b.endCounters = e.counters;
      b.truthPhase = e.value;
      if (b.durationNs() >= minDurationNs) bursts.push_back(std::move(b));
      open.reset();
    }
    // MPI events between a PhaseEnd and the next PhaseBegin are ignored here.
  }
  std::sort(bursts.begin(), bursts.end(), [](const Burst& a, const Burst& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.begin < b.begin;
  });
  attachSamples(trace, bursts);
  return bursts;
}

std::vector<Burst> BurstExtraction::fromMpiGaps(const trace::Trace& trace) const {
  if (!trace.finalized()) throw TraceError("burst extraction requires a finalized trace");
  std::vector<Burst> bursts;
  // Events are sorted by (rank, time); walk each rank's stream and emit a
  // burst for every MpiEnd -> next MpiBegin gap. The run prologue (before
  // the first MPI call) is also a burst.
  std::optional<trace::Event> lastMpiEnd;
  trace::Rank currentRank = 0;
  bool first = true;
  std::optional<trace::Event> rankFirstEvent;
  for (const auto& e : trace.events()) {
    if (first || e.rank != currentRank) {
      currentRank = e.rank;
      lastMpiEnd.reset();
      rankFirstEvent.reset();
      first = false;
    }
    if (e.kind == trace::EventKind::MpiBegin) {
      const trace::Event* openFrom = nullptr;
      if (lastMpiEnd) openFrom = &*lastMpiEnd;
      else if (rankFirstEvent) openFrom = &*rankFirstEvent;
      if (openFrom != nullptr && e.time > openFrom->time) {
        Burst b;
        b.rank = e.rank;
        b.begin = openFrom->time;
        b.end = e.time;
        b.beginCounters = openFrom->counters;
        b.endCounters = e.counters;
        b.truthPhase = kNoPhase;
        if (b.durationNs() >= minDurationNs) bursts.push_back(std::move(b));
      }
      lastMpiEnd.reset();
    } else if (e.kind == trace::EventKind::MpiEnd) {
      lastMpiEnd = e;
    } else if (!rankFirstEvent && !lastMpiEnd) {
      // A phase probe before any MPI activity anchors the prologue burst.
      if (!rankFirstEvent) rankFirstEvent = e;
    }
  }
  std::sort(bursts.begin(), bursts.end(), [](const Burst& a, const Burst& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.begin < b.begin;
  });
  attachSamples(trace, bursts);
  return bursts;
}

}  // namespace unveil::cluster
