#include "unveil/cluster/burst.hpp"

#include <algorithm>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "unveil/support/error.hpp"
#include "unveil/support/thread_pool.hpp"

namespace unveil::cluster {

namespace {

/// Per-rank [begin, end) slices of the (rank, time)-sorted event stream —
/// the unit of parallelism for extraction. Ranks with no events keep {0,0}.
std::vector<std::pair<std::size_t, std::size_t>> rankEventRanges(
    const trace::Trace& trace) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges(trace.numRanks(),
                                                          {0, 0});
  const auto& events = trace.events();
  std::size_t i = 0;
  while (i < events.size()) {
    const trace::Rank r = events[i].rank;
    std::size_t j = i;
    while (j < events.size() && events[j].rank == r) ++j;
    ranges[r] = {i, j};
    i = j;
  }
  return ranges;
}

/// Runs \p extractRank over every rank's event slice on the shared pool and
/// concatenates the per-rank bursts in rank order — identical to the old
/// sequential walk over the whole (rank, time)-sorted stream, for any
/// thread count. A rank slice that throws surfaces the lowest rank's error,
/// which is also what the sequential walk hit first.
template <typename ExtractRank>
std::vector<Burst> extractPerRank(const trace::Trace& trace,
                                  const ExtractRank& extractRank) {
  const auto ranges = rankEventRanges(trace);
  const auto& events = trace.events();
  std::vector<std::vector<Burst>> perRank(ranges.size());
  support::globalPool().parallelFor(ranges.size(), [&](std::size_t r) {
    const auto [begin, end] = ranges[r];
    perRank[r] = extractRank(
        std::span<const trace::Event>(events.data() + begin, end - begin));
  });
  std::size_t total = 0;
  for (const auto& v : perRank) total += v.size();
  std::vector<Burst> bursts;
  bursts.reserve(total);
  for (auto& v : perRank)
    for (auto& b : v) bursts.push_back(std::move(b));
  return bursts;
}

/// Attaches sample ranges to bursts. Both inputs are sorted by
/// (rank, time) and bursts never overlap within a rank, so each rank is an
/// independent merge pass; ranks run in parallel, each writing only its own
/// bursts' [sampleFirst, sampleCount) windows.
void attachSamples(const trace::Trace& trace, std::vector<Burst>& bursts) {
  const auto& samples = trace.samples();
  // Per-rank burst ranges (bursts are concatenated in rank order).
  std::vector<std::pair<std::size_t, std::size_t>> burstRanges(trace.numRanks(),
                                                               {0, 0});
  std::size_t i = 0;
  while (i < bursts.size()) {
    const trace::Rank r = bursts[i].rank;
    std::size_t j = i;
    while (j < bursts.size() && bursts[j].rank == r) ++j;
    burstRanges[r] = {i, j};
    i = j;
  }
  support::globalPool().parallelFor(burstRanges.size(), [&](std::size_t r) {
    const auto [bBegin, bEnd] = burstRanges[r];
    if (bBegin == bEnd) return;
    // First sample of this rank; the two-pointer sweep below never needs to
    // look back before it.
    std::size_t si = static_cast<std::size_t>(
        std::lower_bound(samples.begin(), samples.end(), r,
                         [](const trace::Sample& s, trace::Rank rank) {
                           return s.rank < rank;
                         }) -
        samples.begin());
    for (std::size_t bi = bBegin; bi < bEnd; ++bi) {
      Burst& b = bursts[bi];
      while (si < samples.size() && samples[si].rank == b.rank &&
             samples[si].time < b.begin)
        ++si;
      std::size_t sj = si;
      while (sj < samples.size() && samples[sj].rank == b.rank &&
             samples[sj].time < b.end)
        ++sj;
      b.sampleFirst = si;
      b.sampleCount = sj - si;
      // Do not advance si past sj: bursts never overlap per rank, so the
      // next burst starts at or after b.end; si catches up in its skip loop.
    }
  });
}

}  // namespace

std::vector<Burst> BurstExtraction::fromPhaseEvents(const trace::Trace& trace) const {
  if (!trace.finalized()) throw TraceError("burst extraction requires a finalized trace");
  auto bursts = extractPerRank(
      trace, [&](std::span<const trace::Event> events) {
        std::vector<Burst> out;
        std::optional<trace::Event> open;
        for (const auto& e : events) {
          if (e.kind == trace::EventKind::PhaseBegin) {
            if (open)
              throw TraceError("nested PhaseBegin on rank " +
                               std::to_string(e.rank) +
                               " at t=" + std::to_string(e.time));
            open = e;
          } else if (e.kind == trace::EventKind::PhaseEnd) {
            if (!open || open->value != e.value)
              throw TraceError("unmatched PhaseEnd on rank " +
                               std::to_string(e.rank) +
                               " at t=" + std::to_string(e.time));
            Burst b;
            b.rank = e.rank;
            b.begin = open->time;
            b.end = e.time;
            b.beginCounters = open->counters;
            b.endCounters = e.counters;
            b.truthPhase = e.value;
            if (b.durationNs() >= minDurationNs) out.push_back(std::move(b));
            open.reset();
          }
          // MPI events between a PhaseEnd and the next PhaseBegin are
          // ignored here.
        }
        return out;
      });
  std::sort(bursts.begin(), bursts.end(), [](const Burst& a, const Burst& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.begin < b.begin;
  });
  attachSamples(trace, bursts);
  return bursts;
}

std::vector<Burst> BurstExtraction::fromMpiGaps(const trace::Trace& trace) const {
  if (!trace.finalized()) throw TraceError("burst extraction requires a finalized trace");
  // Each rank's time-sorted stream yields a burst for every MpiEnd -> next
  // MpiBegin gap. The run prologue (before the first MPI call) is also a
  // burst.
  auto bursts = extractPerRank(
      trace, [&](std::span<const trace::Event> events) {
        std::vector<Burst> out;
        std::optional<trace::Event> lastMpiEnd;
        std::optional<trace::Event> rankFirstEvent;
        for (const auto& e : events) {
          if (e.kind == trace::EventKind::MpiBegin) {
            const trace::Event* openFrom = nullptr;
            if (lastMpiEnd) openFrom = &*lastMpiEnd;
            else if (rankFirstEvent) openFrom = &*rankFirstEvent;
            if (openFrom != nullptr && e.time > openFrom->time) {
              Burst b;
              b.rank = e.rank;
              b.begin = openFrom->time;
              b.end = e.time;
              b.beginCounters = openFrom->counters;
              b.endCounters = e.counters;
              b.truthPhase = kNoPhase;
              if (b.durationNs() >= minDurationNs) out.push_back(std::move(b));
            }
            lastMpiEnd.reset();
          } else if (e.kind == trace::EventKind::MpiEnd) {
            lastMpiEnd = e;
          } else if (!rankFirstEvent && !lastMpiEnd) {
            // A phase probe before any MPI activity anchors the prologue.
            rankFirstEvent = e;
          }
        }
        return out;
      });
  std::sort(bursts.begin(), bursts.end(), [](const Burst& a, const Burst& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.begin < b.begin;
  });
  attachSamples(trace, bursts);
  return bursts;
}

}  // namespace unveil::cluster
