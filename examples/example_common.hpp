#pragma once

/// \file example_common.hpp
/// Shared driver for the per-application deep-dive examples: simulate a
/// measured run, analyze it, print the paper-style report, save figure data
/// next to the binary, and check folding accuracy against the exact ground
/// truth the simulator knows.

#include <iostream>
#include <string>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/analysis/report.hpp"
#include "unveil/sim/engine.hpp"
#include "unveil/support/log.hpp"
#include "unveil/support/table.hpp"

namespace unveil::examples {

/// Full deep-dive on one bundled application. Writes figure data files
/// prefixed with the app name into the working directory.
inline int deepDive(const std::string& appName) {
  const auto params = analysis::standardParams(/*seed=*/7);
  std::cout << "=== " << appName << ": " << params.ranks << " ranks, "
            << params.iterations << " iterations ===\n\n";

  // Folding-setup run (coarse sampling) and fine-grain reference run.
  const auto coarse =
      analysis::runMeasured(appName, params, sim::MeasurementConfig::folding());
  const auto fine =
      analysis::runMeasured(appName, params, sim::MeasurementConfig::fineGrain());

  support::logInfo("coarse run: " + std::to_string(coarse.trace.samples().size()) +
                   " samples, runtime " +
                   std::to_string(static_cast<double>(coarse.totalRuntimeNs) / 1e9) +
                   " s");
  support::logInfo("fine run: " + std::to_string(fine.trace.samples().size()) +
                   " samples, runtime " +
                   std::to_string(static_cast<double>(fine.totalRuntimeNs) / 1e9) +
                   " s");

  const auto result = analysis::analyze(
      coarse.trace,
      analysis::calibratedPipelineConfig(sim::MeasurementConfig::folding()));
  analysis::clusterSummaryTable(result).print(std::cout, appName + " clusters");

  std::cout << "\niteration structure: period " << result.period.period
            << ", self-similarity " << result.period.matchFraction * 100.0 << "%\n";

  // Folding accuracy against both references.
  support::Table acc({"cluster", "phase", "instances", "folded points",
                      "vs fine-grain (%)", "vs exact truth (%)"});
  for (const auto& a : analysis::foldingAccuracy(coarse, fine, result,
                                                 counters::CounterId::TotIns)) {
    acc.addRow({static_cast<long long>(a.clusterId), a.phaseName,
                static_cast<long long>(a.instances),
                static_cast<long long>(a.foldedPoints), a.vsFinePercent,
                a.vsTruthPercent});
  }
  std::cout << '\n';
  acc.print(std::cout, "folding accuracy (instantaneous MIPS)");

  // Figure data files.
  const auto scatter = analysis::scatterSeries(
      result, cluster::FeatureId::LogDurationNs, cluster::FeatureId::Ipc,
      appName + ".scatter");
  scatter.save(appName + "_scatter.dat");
  const auto mips =
      analysis::rateSeries(result, counters::CounterId::TotIns, appName + ".mips");
  mips.save(appName + "_mips.dat");
  const auto l2 =
      analysis::rateSeries(result, counters::CounterId::L2Dcm, appName + ".l2");
  l2.save(appName + "_l2.dat");

  support::logInfo("figure data written: " + appName + "_scatter.dat, " + appName +
                   "_mips.dat, " + appName + "_l2.dat");
  return 0;
}

}  // namespace unveil::examples
