/// \file analyze_nbsolver.cpp
/// Deep-dive analysis of the Krylov-solver application: the SpMV cluster's
/// instantaneous MIPS shows the row-block sawtooth (invisible in aggregate
/// profiles), and the AXPY cluster appears with twice the instance count —
/// the structure detector reports the 4-phase iteration signature.

#include "example_common.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  return unveil::examples::deepDive("nbsolver");
}
