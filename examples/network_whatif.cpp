/// \file network_whatif.cpp
/// Dimemas-style what-if study: replay the same application under different
/// interconnects and observe how the time share of communication and the
/// detected computation structure respond. Shows that the simulation
/// substrate is a general experimentation vehicle, not just a trace
/// generator for the folding experiments.

#include <iostream>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/sim/engine.hpp"
#include "unveil/support/table.hpp"
#include "unveil/support/log.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  struct Interconnect {
    const char* label;
    double latencyNs;
    double bandwidthBytesPerNs;
  };
  const Interconnect nets[] = {
      {"infiniband-like (1 us, 10 GB/s)", 1'000.0, 10.0},
      {"fast fabric (200 ns, 50 GB/s)", 200.0, 50.0},
      {"slow ethernet (50 us, 1 GB/s)", 50'000.0, 1.0},
  };

  support::Table t({"interconnect", "runtime (s)", "compute share (%)",
                    "clusters found", "period"});
  for (const auto& net : nets) {
    sim::SimConfig cfg;
    cfg.measurement = sim::MeasurementConfig::folding();
    cfg.network.latencyNs = net.latencyNs;
    cfg.network.bandwidthBytesPerNs = net.bandwidthBytesPerNs;
    auto params = analysis::standardParams(/*seed=*/61);
    params.ranks = 32;  // more ranks -> deeper collective trees
    const auto run = sim::run(sim::apps::makeWavesim(params), cfg);

    // Compute share from state intervals.
    double compute = 0.0, total = 0.0;
    for (const auto& s : run.trace.states()) {
      const double d = static_cast<double>(s.end - s.begin);
      total += d;
      if (s.state == trace::State::Compute) compute += d;
    }
    const auto result = analysis::analyze(run.trace);
    t.addRow({std::string(net.label),
              static_cast<double>(run.totalRuntimeNs) / 1e9,
              total > 0.0 ? compute / total * 100.0 : 0.0,
              static_cast<long long>(result.clustering.numClusters),
              static_cast<long long>(result.period.period)});
  }
  t.print(std::cout, "network what-if on wavesim (32 ranks)");
  std::cout << "\nthe computation structure (clusters, period) is invariant to the\n"
               "interconnect — only the communication share moves. Detected phases\n"
               "are a property of the code, as the paper's methodology assumes.\n";
  return 0;
}
