/// \file optimization_check.cpp
/// The before/after workflow: did the cache-blocking of wavesim's stencil
/// sweep actually work, and *how*? Aggregate timers would show a runtime
/// win; the run diff shows where it came from — the sweep cluster's duration
/// drops ~22%, its average MIPS and IPC rise, and its internal profile
/// flattens (large profile distance) while every other phase is untouched
/// (near-zero deltas) — exactly the surgical change the optimization made.

#include <iostream>

#include "unveil/analysis/diffrun.hpp"
#include "unveil/analysis/experiments.hpp"
#include "unveil/support/log.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  const auto params = analysis::standardParams(/*seed=*/101);
  const auto mc = sim::MeasurementConfig::folding();
  const auto cfg = analysis::calibratedPipelineConfig(mc);

  const auto baseline = analysis::runMeasured("wavesim", params, mc);
  const auto blocked = analysis::runMeasured("wavesim-blocked", params, mc);

  const auto before = analysis::analyze(baseline.trace, cfg);
  const auto after = analysis::analyze(blocked.trace, cfg);
  const auto diff = analysis::diffRuns(before, after);

  analysis::diffTable(diff).print(
      std::cout, "wavesim: baseline vs cache-blocked sweep (B rel. to A)");

  std::cout << "\ntotal runtime: "
            << static_cast<double>(baseline.totalRuntimeNs) / 1e9 << " s -> "
            << static_cast<double>(blocked.totalRuntimeNs) / 1e9 << " s ("
            << (static_cast<double>(blocked.totalRuntimeNs) /
                    static_cast<double>(baseline.totalRuntimeNs) -
                1.0) *
                   100.0
            << "%)\n";
  std::cout << "\nreading the table: the sweep row shows the duration win, the\n"
               "MIPS/IPC gain and a large profile distance (the overflow collapse\n"
               "is gone); halo pack and pointwise update rows sit near zero —\n"
               "the optimization changed exactly what it claimed to change.\n";
  return 0;
}
