/// \file analyze_wavesim.cpp
/// Deep-dive analysis of the stencil/PDE application: expect three phase
/// clusters; the dominant one (the sweep) shows MIPS decaying and the L2
/// miss rate climbing mid-burst — the cache-overflow signature that
/// motivates splitting the sweep's loop nest.

#include "example_common.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  return unveil::examples::deepDive("wavesim");
}
