/// \file region_attribution.cpp
/// From regime to source line: combine rate folding with code-region folding
/// to answer the analyst's real question — *which code* is responsible for
/// the performance regime observed inside a phase.
///
/// On wavesim's stencil sweep the reconstruction shows MIPS collapsing after
/// t ≈ 0.6; the folded callstack regions show that exact interval belongs to
/// the "overflow_tail" region. No fine-grain measurement, no extra
/// instrumentation — just coarse samples folded two ways.

#include <iostream>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/folding/regions.hpp"
#include "unveil/support/log.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  const auto params = analysis::standardParams(/*seed=*/97);
  const auto mc = sim::MeasurementConfig::folding();
  const auto run = analysis::runMeasured("wavesim", params, mc);
  const auto cfg = analysis::calibratedPipelineConfig(mc);
  const auto result = analysis::analyze(run.trace, cfg);

  for (const auto& c : result.clusters) {
    if (c.modalTruthPhase != 1 || !c.folded) continue;  // the sweep
    const auto mips = c.rates.at(counters::CounterId::TotIns).ratePerMicrosecond();
    const auto& grid = c.rates.at(counters::CounterId::TotIns).t;

    folding::RegionParams rp;
    rp.fold = cfg.reconstruct.fold;
    const auto profile =
        folding::regionProfile(run.trace, result.bursts, c.memberIdx, rp);

    std::cout << "stencil sweep: instantaneous MIPS with code-region ownership\n\n";
    std::cout << "  t      MIPS   region\n";
    for (double t : {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95}) {
      const auto gi = static_cast<std::size_t>(t * static_cast<double>(grid.size() - 1));
      const folding::RegionSegment* owner = nullptr;
      for (const auto& seg : profile.segments)
        if (t >= seg.begin && t < seg.end) owner = &seg;
      std::cout << "  " << t << "   " << static_cast<long long>(mips[gi]) << "   "
                << (owner ? run.app->phase(1).model
                                .regions()[owner->regionId - 1]
                                .name
                          : std::string("?"))
                << '\n';
    }
    std::cout << "\nverdict: the MIPS collapse (~"
              << static_cast<long long>(mips[static_cast<std::size_t>(
                     0.45 * static_cast<double>(grid.size()))])
              << " -> "
              << static_cast<long long>(mips.back())
              << ") is owned by region '"
              << run.app->phase(1).model.regions().back().name
              << "' — that loop is where cache-blocking effort should go.\n";
  }
  return 0;
}
