/// \file overhead_study.cpp
/// Measurement perturbation study: the same application under no
/// measurement, instrumentation only, coarse sampling (the folding setup)
/// and fine-grain sampling. Demonstrates the paper's motivating trade-off:
/// fine-grain detail at fine-grain cost versus folding's fine-grain detail
/// at coarse-grain cost.

#include <iostream>

#include "unveil/analysis/experiments.hpp"
#include "unveil/support/table.hpp"
#include "unveil/support/log.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  const auto params = analysis::standardParams(/*seed=*/3);

  struct Setup {
    const char* label;
    sim::MeasurementConfig config;
  };
  const Setup setups[] = {
      {"no measurement", sim::MeasurementConfig::none()},
      {"instrumentation only", sim::MeasurementConfig::instrumentationOnly()},
      {"coarse sampling (folding)", sim::MeasurementConfig::folding()},
      {"fine-grain sampling", sim::MeasurementConfig::fineGrain()},
  };

  support::Table t({"configuration", "runtime (s)", "dilation (%)", "samples",
                    "probe events"});
  double baseline = 0.0;
  for (const auto& s : setups) {
    const auto run = analysis::runMeasured("wavesim", params, s.config);
    const double seconds = static_cast<double>(run.totalRuntimeNs) / 1e9;
    if (baseline == 0.0) baseline = seconds;
    t.addRow({std::string(s.label), seconds, (seconds / baseline - 1.0) * 100.0,
              static_cast<long long>(run.trace.samples().size()),
              static_cast<long long>(run.trace.events().size())});
  }
  t.print(std::cout, "measurement overhead on wavesim");
  std::cout << "\nfolding consumes the coarse-sampling run yet reconstructs the\n"
               "fine-grain view — compare the dilation columns above.\n";
  return 0;
}
