/// \file quickstart.cpp
/// Minimal end-to-end tour of the unveil public API:
///   1. simulate a measured run of a bundled application,
///   2. run the clustering + folding pipeline on its trace,
///   3. print what was found: clusters, structure, and the internal
///      evolution (instantaneous MIPS) of the dominant phase.

#include <iostream>

#include "unveil/analysis/pipeline.hpp"
#include "unveil/analysis/report.hpp"
#include "unveil/sim/apps/apps.hpp"
#include "unveil/sim/engine.hpp"
#include "unveil/support/log.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;

  // 1. Simulate a coarsely measured run (instrumented phase boundaries +
  //    ~1 ms sampling, the folding setup).
  sim::apps::AppParams params;
  params.ranks = 8;
  params.iterations = 80;
  params.seed = 42;
  const auto app = sim::apps::makeWavesim(params);

  sim::SimConfig simConfig;
  simConfig.measurement = sim::MeasurementConfig::folding();
  const sim::RunResult run = sim::run(app, simConfig);

  std::cout << "simulated '" << run.app->name() << "': " << run.trace.numRanks()
            << " ranks, " << run.trace.samples().size() << " samples, "
            << run.trace.events().size() << " probe events, runtime "
            << static_cast<double>(run.totalRuntimeNs) / 1e9 << " s\n\n";

  // 2. Analyze: burst extraction -> DBSCAN -> folding -> rates.
  const analysis::PipelineResult result = analysis::analyze(run.trace);

  // 3. Report.
  analysis::clusterSummaryTable(result).print(std::cout, "detected computation phases");

  std::cout << "\ndetected iteration period: " << result.period.period
            << " bursts (self-similarity "
            << result.period.matchFraction * 100.0 << "%)\n";

  for (const auto& c : result.clusters) {
    if (!c.folded) continue;
    const auto it = c.rates.find(counters::CounterId::TotIns);
    if (it == c.rates.end()) continue;
    const auto mips = it->second.ratePerMicrosecond();
    std::cout << "\ncluster " << c.clusterId
              << " internal evolution (instantaneous MIPS at t=0, 0.25, 0.5, 0.75, 1):";
    for (double t : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const auto idx =
          static_cast<std::size_t>(t * static_cast<double>(mips.size() - 1));
      std::cout << ' ' << static_cast<long long>(mips[idx]);
    }
    std::cout << '\n';
  }
  std::cout << "\nquickstart done\n";
  return 0;
}
