/// \file analyze_particlemesh.cpp
/// Deep-dive analysis of the particle/tree application: strong per-rank load
/// imbalance widens the force-evaluation cluster along the duration axis,
/// yet folding still recovers its compute-bound head / memory-bound tail
/// profile because normalization removes instance-length variation.

#include "example_common.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  return unveil::examples::deepDive("particlemesh");
}
