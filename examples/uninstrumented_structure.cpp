/// \file uninstrumented_structure.cpp
/// Structure detection without phase instrumentation: bursts are extracted
/// from the gaps between MPI events only (the paper-faithful mode). Phases
/// not separated by MPI merge into one burst — here wavesim's sweep and
/// pointwise update become a single cluster — yet the iteration skeleton is
/// still recovered, and folding unveils the merged burst's interior, showing
/// *both* regimes inside one detected phase.

#include <iostream>

#include "unveil/analysis/experiments.hpp"
#include "unveil/analysis/pipeline.hpp"
#include "unveil/analysis/report.hpp"
#include "unveil/support/log.hpp"

int main(int argc, char** argv) {
  unveil::support::applyVerbosityArgs(argc, argv);
  using namespace unveil;
  const auto params = analysis::standardParams(/*seed=*/11);
  const auto run =
      analysis::runMeasured("wavesim", params, sim::MeasurementConfig::folding());

  analysis::PipelineConfig config;
  config.useMpiGaps = true;  // no phase probes consulted
  const auto result = analysis::analyze(run.trace, config);

  analysis::clusterSummaryTable(result).print(
      std::cout, "wavesim phases from MPI gaps only (no phase probes)");
  std::cout << "\niteration period: " << result.period.period
            << " bursts per iteration (self-similarity "
            << result.period.matchFraction * 100.0 << "%)\n";

  for (const auto& c : result.clusters) {
    const auto it = c.rates.find(counters::CounterId::TotIns);
    if (it == c.rates.end()) continue;
    const auto mips = it->second.ratePerMicrosecond();
    std::cout << "\ncluster " << c.clusterId << " (" << c.instances
              << " instances) MIPS profile:";
    for (double t : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      const auto idx =
          static_cast<std::size_t>(t * static_cast<double>(mips.size() - 1));
      std::cout << ' ' << static_cast<long long>(mips[idx]);
    }
    std::cout << '\n';
  }
  std::cout << "\nnote the merged sweep+update cluster: high-MIPS plateau at the\n"
               "end of the burst is the pointwise update hiding inside.\n";
  return 0;
}
