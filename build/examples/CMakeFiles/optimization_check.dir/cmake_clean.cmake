file(REMOVE_RECURSE
  "CMakeFiles/optimization_check.dir/optimization_check.cpp.o"
  "CMakeFiles/optimization_check.dir/optimization_check.cpp.o.d"
  "optimization_check"
  "optimization_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
