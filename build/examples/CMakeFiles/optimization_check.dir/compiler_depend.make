# Empty compiler generated dependencies file for optimization_check.
# This may be replaced when dependencies are built.
