# Empty compiler generated dependencies file for uninstrumented_structure.
# This may be replaced when dependencies are built.
