file(REMOVE_RECURSE
  "CMakeFiles/uninstrumented_structure.dir/uninstrumented_structure.cpp.o"
  "CMakeFiles/uninstrumented_structure.dir/uninstrumented_structure.cpp.o.d"
  "uninstrumented_structure"
  "uninstrumented_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uninstrumented_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
