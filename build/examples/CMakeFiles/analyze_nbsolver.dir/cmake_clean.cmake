file(REMOVE_RECURSE
  "CMakeFiles/analyze_nbsolver.dir/analyze_nbsolver.cpp.o"
  "CMakeFiles/analyze_nbsolver.dir/analyze_nbsolver.cpp.o.d"
  "analyze_nbsolver"
  "analyze_nbsolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_nbsolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
