# Empty compiler generated dependencies file for analyze_nbsolver.
# This may be replaced when dependencies are built.
