# Empty compiler generated dependencies file for overhead_study.
# This may be replaced when dependencies are built.
