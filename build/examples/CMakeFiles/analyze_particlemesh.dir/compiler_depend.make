# Empty compiler generated dependencies file for analyze_particlemesh.
# This may be replaced when dependencies are built.
