file(REMOVE_RECURSE
  "CMakeFiles/analyze_particlemesh.dir/analyze_particlemesh.cpp.o"
  "CMakeFiles/analyze_particlemesh.dir/analyze_particlemesh.cpp.o.d"
  "analyze_particlemesh"
  "analyze_particlemesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_particlemesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
