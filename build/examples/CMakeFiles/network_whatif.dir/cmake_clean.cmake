file(REMOVE_RECURSE
  "CMakeFiles/network_whatif.dir/network_whatif.cpp.o"
  "CMakeFiles/network_whatif.dir/network_whatif.cpp.o.d"
  "network_whatif"
  "network_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
