# Empty dependencies file for network_whatif.
# This may be replaced when dependencies are built.
