# Empty compiler generated dependencies file for analyze_wavesim.
# This may be replaced when dependencies are built.
