file(REMOVE_RECURSE
  "CMakeFiles/analyze_wavesim.dir/analyze_wavesim.cpp.o"
  "CMakeFiles/analyze_wavesim.dir/analyze_wavesim.cpp.o.d"
  "analyze_wavesim"
  "analyze_wavesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_wavesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
