file(REMOVE_RECURSE
  "CMakeFiles/region_attribution.dir/region_attribution.cpp.o"
  "CMakeFiles/region_attribution.dir/region_attribution.cpp.o.d"
  "region_attribution"
  "region_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
