# Empty compiler generated dependencies file for region_attribution.
# This may be replaced when dependencies are built.
